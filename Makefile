# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench bench-report experiments experiments-fast docs examples clean all lint lint-fast detcheck

# Keep in sync with .github/workflows/ci.yml and .pre-commit-config.yaml:
# an unpinned ruff turns toolchain releases into surprise CI failures.
RUFF_VERSION = 0.12.5

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

# Static analysis: detcheck (the in-tree determinism/protocol linter, see
# docs/STATIC_ANALYSIS.md) always runs; ruff runs when installed (the
# container image does not bundle it; CI installs the pinned version).
lint: detcheck
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src scripts benchmarks tests examples; \
	else \
		echo "ruff not installed; skipped (pip install ruff==$(RUFF_VERSION))"; \
	fi

# Pre-commit speed: lint only python files changed vs origin/main (falling
# back to main, then HEAD), plus untracked ones.
lint-fast:
	$(PYTHON) scripts/detcheck.py --changed

detcheck:
	$(PYTHON) scripts/detcheck.py

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ --ignore=tests/properties --ignore=tests/integration

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Perf trajectory: times the kernel + representative experiments, writes the
# next BENCH_N.json and fails on regression vs the previous snapshot.
bench-report:
	$(PYTHON) scripts/bench_report.py

bench-smoke:
	$(PYTHON) scripts/bench_report.py --quick

experiments:
	$(PYTHON) scripts/run_experiments.py

# Same tables, one pytest process per experiment fanned across cores.
experiments-fast:
	$(PYTHON) scripts/run_experiments.py --jobs 4

docs:
	$(PYTHON) scripts/gen_api_index.py

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/banking.py
	$(PYTHON) examples/inventory.py
	$(PYTHON) examples/failover.py
	$(PYTHON) examples/broadcast_playground.py
	$(PYTHON) examples/trace_anatomy.py

artifacts:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -prune -exec rm -rf {} +

all: install test bench docs
