# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench experiments docs examples clean all

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ --ignore=tests/properties --ignore=tests/integration

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) scripts/run_experiments.py

docs:
	$(PYTHON) scripts/gen_api_index.py

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/banking.py
	$(PYTHON) examples/inventory.py
	$(PYTHON) examples/failover.py
	$(PYTHON) examples/broadcast_playground.py
	$(PYTHON) examples/trace_anatomy.py

artifacts:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -prune -exec rm -rf {} +

all: install test bench docs
