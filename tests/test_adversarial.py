"""The adversarial schedules, aimed at every protocol: invariants hold."""

import pytest

from repro.analysis.audit import assert_clean
from repro.core.cluster import Cluster, ClusterConfig
from repro.core.transaction import AbortReason
from repro.workload.adversarial import (
    opposed_lock_orders,
    per_op_cross_causality,
    reader_gauntlet,
    required_objects,
    submit_all,
    symmetric_race,
    write_skew_web,
)

PROTOCOLS = ["rbp", "cbp", "abp", "p2p"]


def run_schedule(protocol, schedule, **overrides):
    defaults = dict(
        protocol=protocol,
        num_sites=3,
        num_objects=required_objects(schedule),
        seed=86,
        max_attempts=40,
        retry_backoff=6.0,
        p2p_write_timeout=150.0,
        p2p_deadlock_interval=5.0,
    )
    defaults.update(overrides)
    cluster = Cluster(ClusterConfig(**defaults))
    count = submit_all(cluster, schedule)
    result = cluster.run(
        max_time=5_000_000.0, stop_when=cluster.await_specs(count)
    )
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged
    cluster.run_for(300.0)
    assert_clean(cluster, strict_wal=False)
    return cluster, result


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_symmetric_race(protocol):
    cluster, result = run_schedule(protocol, symmetric_race())
    assert result.incomplete_specs == 0
    # Every racing pair leaves exactly one value per key in the end.
    for n in range(6):
        finals = {r.store.read(f"x{n}").value for r in cluster.replicas}
        assert len(finals) == 1


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_write_skew_web(protocol):
    cluster, result = run_schedule(protocol, write_skew_web())
    assert result.incomplete_specs == 0
    # The 1SR checker (asserted in run_schedule) is the point; additionally
    # the serial order must exist.
    assert cluster.recorder.serial_order() is not None


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_opposed_lock_orders(protocol):
    cluster, result = run_schedule(protocol, opposed_lock_orders())
    assert result.incomplete_specs == 0
    if protocol == "p2p":
        # The factory worked: the baseline actually deadlocked/timed out.
        stress = (
            result.metrics.deadlocks_detected
            + result.metrics.aborts_by_reason[AbortReason.TIMEOUT]
        )
        assert stress > 0
    else:
        assert result.metrics.deadlocks_detected == 0


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_reader_gauntlet(protocol):
    cluster, result = run_schedule(protocol, reader_gauntlet())
    assert result.incomplete_specs == 0
    assert result.metrics.readonly_abort_count() == 0
    for reader in range(4):
        assert cluster.spec_status(f"gauntlet{reader}").committed


def test_per_op_cross_causality_cbp():
    schedule = per_op_cross_causality()
    cluster, result = run_schedule(
        "cbp", schedule, cbp_per_op=True, cbp_heartbeat=15.0
    )
    assert result.incomplete_specs == 0


def test_schedules_are_deterministic():
    assert symmetric_race() == symmetric_race()
    assert write_skew_web() == write_skew_web()


def test_required_objects():
    schedule = symmetric_race(pairs=3)
    assert required_objects(schedule) == 3
