"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationEngine, SimulationError


def test_events_fire_in_time_order(engine):
    fired = []
    engine.schedule(5.0, fired.append, "b")
    engine.schedule(1.0, fired.append, "a")
    engine.schedule(9.0, fired.append, "c")
    engine.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order(engine):
    fired = []
    for tag in ("first", "second", "third"):
        engine.schedule(3.0, fired.append, tag)
    engine.run()
    assert fired == ["first", "second", "third"]


def test_now_advances_to_event_time(engine):
    seen = []
    engine.schedule(2.5, lambda: seen.append(engine.now))
    engine.schedule(7.0, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [2.5, 7.0]


def test_run_until_stops_clock_at_bound(engine):
    fired = []
    engine.schedule(4.0, fired.append, "early")
    engine.schedule(100.0, fired.append, "late")
    engine.run(until=10.0)
    assert fired == ["early"]
    assert engine.now == 10.0


def test_events_scheduled_during_run_execute(engine):
    fired = []

    def outer():
        engine.schedule(1.0, fired.append, "inner")

    engine.schedule(1.0, outer)
    engine.run()
    assert fired == ["inner"]


def test_cancelled_event_does_not_fire(engine):
    fired = []
    handle = engine.schedule(1.0, fired.append, "x")
    handle.cancel()
    engine.run()
    assert fired == []
    assert not handle.pending


def test_cancel_after_fire_is_noop(engine):
    fired = []
    handle = engine.schedule(1.0, fired.append, "x")
    engine.run()
    handle.cancel()
    assert fired == ["x"]


def test_negative_delay_rejected(engine):
    with pytest.raises(SimulationError):
        engine.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected(engine):
    engine.schedule(5.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(1.0, lambda: None)


def test_stop_from_callback(engine):
    fired = []
    engine.schedule(1.0, fired.append, "a")
    engine.schedule(2.0, engine.stop)
    engine.schedule(3.0, fired.append, "b")
    engine.run()
    assert fired == ["a"]


def test_stop_when_predicate(engine):
    fired = []
    for i in range(10):
        engine.schedule(float(i + 1), fired.append, i)
    engine.run(stop_when=lambda: len(fired) >= 4)
    assert fired == [0, 1, 2, 3]


def test_max_events_budget(engine):
    fired = []
    for i in range(10):
        engine.schedule(float(i + 1), fired.append, i)
    engine.run(max_events=3)
    assert len(fired) == 3


def test_step_returns_false_when_empty(engine):
    assert engine.step() is False
    engine.schedule(1.0, lambda: None)
    assert engine.step() is True
    assert engine.step() is False


def test_peek_time_skips_cancelled(engine):
    handle = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    handle.cancel()
    assert engine.peek_time() == 2.0


def test_pending_count(engine):
    handles = [engine.schedule(float(i + 1), lambda: None) for i in range(5)]
    handles[0].cancel()
    assert engine.pending_count() == 4


def test_engine_not_reentrant(engine):
    def reenter():
        with pytest.raises(SimulationError):
            engine.run()

    engine.schedule(1.0, reenter)
    engine.run()


def test_events_processed_counter(engine):
    for i in range(4):
        engine.schedule(float(i), lambda: None)
    engine.run()
    assert engine.events_processed == 4


def test_zero_delay_event_runs_after_current(engine):
    order = []

    def first():
        order.append("first-start")
        engine.schedule(0.0, order.append, "zero")
        order.append("first-end")

    engine.schedule(1.0, first)
    engine.run()
    assert order == ["first-start", "first-end", "zero"]
