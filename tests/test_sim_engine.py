"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import (
    RUN_BUDGET,
    RUN_EXHAUSTED,
    RUN_HORIZON,
    RUN_PREDICATE,
    RUN_STOPPED,
    SimulationEngine,
    SimulationError,
)


def test_events_fire_in_time_order(engine):
    fired = []
    engine.schedule(5.0, fired.append, "b")
    engine.schedule(1.0, fired.append, "a")
    engine.schedule(9.0, fired.append, "c")
    engine.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order(engine):
    fired = []
    for tag in ("first", "second", "third"):
        engine.schedule(3.0, fired.append, tag)
    engine.run()
    assert fired == ["first", "second", "third"]


def test_now_advances_to_event_time(engine):
    seen = []
    engine.schedule(2.5, lambda: seen.append(engine.now))
    engine.schedule(7.0, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [2.5, 7.0]


def test_run_until_stops_clock_at_bound(engine):
    fired = []
    engine.schedule(4.0, fired.append, "early")
    engine.schedule(100.0, fired.append, "late")
    engine.run(until=10.0)
    assert fired == ["early"]
    assert engine.now == 10.0


def test_events_scheduled_during_run_execute(engine):
    fired = []

    def outer():
        engine.schedule(1.0, fired.append, "inner")

    engine.schedule(1.0, outer)
    engine.run()
    assert fired == ["inner"]


def test_cancelled_event_does_not_fire(engine):
    fired = []
    handle = engine.schedule(1.0, fired.append, "x")
    handle.cancel()
    engine.run()
    assert fired == []
    assert not handle.pending


def test_cancel_after_fire_is_noop(engine):
    fired = []
    handle = engine.schedule(1.0, fired.append, "x")
    engine.run()
    handle.cancel()
    assert fired == ["x"]


def test_negative_delay_rejected(engine):
    with pytest.raises(SimulationError):
        engine.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected(engine):
    engine.schedule(5.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(1.0, lambda: None)


def test_stop_from_callback(engine):
    fired = []
    engine.schedule(1.0, fired.append, "a")
    engine.schedule(2.0, engine.stop)
    engine.schedule(3.0, fired.append, "b")
    engine.run()
    assert fired == ["a"]


def test_stop_when_predicate(engine):
    fired = []
    for i in range(10):
        engine.schedule(float(i + 1), fired.append, i)
    engine.run(stop_when=lambda: len(fired) >= 4)
    assert fired == [0, 1, 2, 3]


def test_max_events_budget(engine):
    fired = []
    for i in range(10):
        engine.schedule(float(i + 1), fired.append, i)
    engine.run(max_events=3)
    assert len(fired) == 3


def test_step_returns_false_when_empty(engine):
    assert engine.step() is False
    engine.schedule(1.0, lambda: None)
    assert engine.step() is True
    assert engine.step() is False


def test_peek_time_skips_cancelled(engine):
    handle = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    handle.cancel()
    assert engine.peek_time() == 2.0


def test_pending_count(engine):
    handles = [engine.schedule(float(i + 1), lambda: None) for i in range(5)]
    handles[0].cancel()
    assert engine.pending_count() == 4


def test_engine_not_reentrant(engine):
    def reenter():
        with pytest.raises(SimulationError):
            engine.run()

    engine.schedule(1.0, reenter)
    engine.run()


def test_events_processed_counter(engine):
    for i in range(4):
        engine.schedule(float(i), lambda: None)
    engine.run()
    assert engine.events_processed == 4


def test_run_reports_stop_reason(engine):
    engine.schedule(1.0, lambda: None)
    engine.schedule(50.0, lambda: None)
    assert engine.run(until=10.0) == RUN_HORIZON  # event at 50 still queued
    assert engine.run(until=60.0) == RUN_EXHAUSTED
    assert engine.run(until=100.0) == RUN_EXHAUSTED  # idle to horizon
    assert engine.now == 100.0


def test_run_reason_distinguishes_idle_horizon_from_exhaustion(engine):
    """peek_time() is None both when idle-until-horizon consumed everything
    and when events remain beyond the bound; run()'s reason is the only
    reliable discriminator."""
    engine.schedule(5.0, lambda: None)
    reason = engine.run(until=10.0)
    assert reason == RUN_EXHAUSTED and engine.peek_time() is None
    engine.schedule_at(100.0, lambda: None)
    reason = engine.run(until=20.0)
    assert reason == RUN_HORIZON
    assert engine.peek_time() == 100.0


def test_run_reason_predicate_budget_stop(engine):
    fired = []
    for i in range(10):
        engine.schedule(float(i + 1), fired.append, i)
    assert engine.run(stop_when=lambda: len(fired) >= 2) == RUN_PREDICATE
    assert engine.run(max_events=3) == RUN_BUDGET
    engine.schedule(0.0, engine.stop)
    assert engine.run() == RUN_STOPPED


def test_pending_count_is_o1_and_correct_under_churn(engine):
    handles = [engine.schedule(float(i + 1), lambda: None) for i in range(100)]
    for handle in handles[::2]:
        handle.cancel()
    assert engine.pending_count() == 50
    handles[1].cancel()
    handles[1].cancel()  # double cancel must not double count
    assert engine.pending_count() == 49
    engine.run()
    assert engine.pending_count() == 0


def test_compaction_bounds_heap_under_cancel_churn(engine):
    """ARQ-style churn: arm timers, cancel nearly all before they fire.
    Without compaction the heap holds every cancelled entry until its
    deadline surfaces; with it, garbage stays below the compact threshold."""
    live = []

    def churn(rounds):
        for handle in live:
            handle.cancel()
        live.clear()
        if rounds <= 0:
            return
        for i in range(20):
            live.append(engine.schedule(1000.0 + i, lambda: None))
        engine.schedule(1.0, churn, rounds - 1)

    engine.schedule(0.0, churn, 500)  # 10k timers armed, all cancelled
    engine.run()
    assert engine.compactions > 0
    # Bounded: nowhere near the 10k cancelled entries, and pending is clean.
    assert engine.heap_size() <= 2 * engine.compact_min
    assert engine.pending_count() == 0


def _trace_run(engine):
    """A mixed schedule/cancel workload recording (time, tag) firings."""
    fired = []

    def work(round_no, cancel_these):
        for handle in cancel_these:
            handle.cancel()
        fired.append((engine.now, round_no))
        if round_no >= 40:
            return
        doomed = [
            engine.schedule(5.0 + (round_no * 7 + k) % 11, lambda: None)
            for k in range(6)
        ]
        engine.schedule(1.0 + (round_no % 3) * 0.5, work, round_no + 1, doomed)
        engine.schedule(0.25, fired.append, (engine.now, f"tick{round_no}"))

    engine.schedule(0.0, work, 0, [])
    engine.run()
    return fired


def test_compaction_is_invisible_to_event_ordering():
    """The same workload with compaction enabled and disabled must fire the
    same events at the same times in the same order."""
    compacting = SimulationEngine()
    compacting.compact_min = 4  # compact aggressively
    plain = SimulationEngine()
    plain.compact_min = 10**9  # never compact
    trace_a = _trace_run(compacting)
    trace_b = _trace_run(plain)
    assert trace_a == trace_b
    assert compacting.compactions > 0
    assert plain.compactions == 0


def test_reschedule_defers_pending_timer_in_place(engine):
    fired = []
    handle = engine.schedule(5.0, fired.append, "early")
    heap_before = engine.heap_size()
    again = engine.reschedule(handle, 9.0, fired.append, "late")
    assert again is handle  # reused, not reallocated
    assert engine.heap_size() == heap_before  # no extra heap entry
    engine.run()
    assert fired == ["late"]
    assert engine.now == 9.0


def test_reschedule_fresh_when_dead_or_earlier(engine):
    fired = []
    # None / fired / cancelled handles fall back to a fresh schedule.
    handle = engine.reschedule(None, 1.0, fired.append, "a")
    engine.run()
    assert fired == ["a"]
    replacement = engine.reschedule(handle, 1.0, fired.append, "b")
    assert replacement is not handle
    # An earlier deadline cannot reuse the heap position: cancel + push.
    final = engine.reschedule(replacement, 0.5, fired.append, "c")
    assert final is not replacement and not replacement.pending
    engine.run()
    assert fired == ["a", "c"]


def test_reschedule_deferred_timer_tiebreak_is_deterministic(engine):
    """A deferred timer is re-sorted with a fresh sequence number when its
    old position surfaces, so at an exactly shared deadline it fires after
    events that were directly scheduled there — deterministically."""
    fired = []
    handle = engine.schedule(2.0, fired.append, "timer")
    engine.reschedule(handle, 6.0, fired.append, "timer")
    engine.schedule(6.0, fired.append, "other")
    engine.run()
    assert fired == ["other", "timer"]


def test_zero_delay_event_runs_after_current(engine):
    order = []

    def first():
        order.append("first-start")
        engine.schedule(0.0, order.append, "zero")
        order.append("first-end")

    engine.schedule(1.0, first)
    engine.run()
    assert order == ["first-start", "first-end", "zero"]
