"""Unit tests for the one-copy serialization graph checker."""

import pytest

from repro.db.serialization import HistoryRecorder, replicas_converged
from repro.db.storage import VersionedStore


def test_empty_history_is_serializable():
    recorder = HistoryRecorder()
    result = recorder.check()
    assert result.ok
    assert result.num_transactions == 0


def test_simple_chain_is_serializable():
    recorder = HistoryRecorder()
    recorder.record_commit("T1", 0, reads={"x": 0}, writes={"x": 1}, commit_time=1.0)
    recorder.record_commit("T2", 1, reads={"x": 1}, writes={"x": 2}, commit_time=2.0)
    result = recorder.check()
    assert result.ok
    assert recorder.serial_order() == ["T1", "T2"]


def test_rw_cycle_detected():
    """The classic write-skew cycle: T1 reads x writes y, T2 reads y
    writes x, both reading the initial versions."""
    recorder = HistoryRecorder()
    recorder.record_commit("T1", 0, reads={"x": 0}, writes={"y": 1}, commit_time=1.0)
    recorder.record_commit("T2", 1, reads={"y": 0}, writes={"x": 1}, commit_time=1.0)
    result = recorder.check()
    assert not result.acyclic
    assert set(result.cycle) == {"T1", "T2"}
    assert recorder.serial_order() is None


def test_lost_update_cycle_detected():
    """Both transactions read version 0 and write versions 1 and 2: the
    second writer overwrote a value it never saw."""
    recorder = HistoryRecorder()
    recorder.record_commit("T1", 0, reads={"x": 0}, writes={"x": 1}, commit_time=1.0)
    recorder.record_commit("T2", 1, reads={"x": 0}, writes={"x": 2}, commit_time=2.0)
    result = recorder.check()
    assert not result.acyclic  # T2 -> T1 (rw) and T1 -> T2 (ww)


def test_duplicate_version_writers_flagged():
    recorder = HistoryRecorder()
    recorder.record_commit("T1", 0, reads={}, writes={"x": 1}, commit_time=1.0)
    recorder.record_commit("T2", 1, reads={}, writes={"x": 1}, commit_time=2.0)
    result = recorder.check()
    assert not result.ok
    assert any("written by both" in c for c in result.version_conflicts)


def test_version_gap_flagged():
    recorder = HistoryRecorder()
    recorder.record_commit("T1", 0, reads={}, writes={"x": 3}, commit_time=1.0)
    result = recorder.check()
    assert any("has no recorded writer" in c for c in result.version_conflicts)


def test_read_of_phantom_version_flagged():
    recorder = HistoryRecorder()
    recorder.record_commit("T1", 0, reads={"x": 5}, writes={}, commit_time=1.0)
    result = recorder.check()
    assert any("no committed transaction wrote" in c for c in result.version_conflicts)


def test_double_record_rejected():
    recorder = HistoryRecorder()
    recorder.record_commit("T1", 0, reads={}, writes={"x": 1}, commit_time=1.0)
    with pytest.raises(ValueError):
        recorder.record_commit("T1", 0, reads={}, writes={"y": 1}, commit_time=2.0)


def test_read_only_transactions_serialize():
    recorder = HistoryRecorder()
    recorder.record_commit("W1", 0, reads={}, writes={"x": 1}, commit_time=1.0)
    recorder.record_commit("R1", 1, reads={"x": 0}, writes={}, commit_time=1.5)
    recorder.record_commit("R2", 2, reads={"x": 1}, writes={}, commit_time=2.0)
    result = recorder.check()
    assert result.ok
    order = recorder.serial_order()
    assert order.index("R1") < order.index("W1") < order.index("R2")


def test_blind_writes_serializable():
    recorder = HistoryRecorder()
    recorder.record_commit("T1", 0, reads={}, writes={"x": 1}, commit_time=1.0)
    recorder.record_commit("T2", 1, reads={}, writes={"x": 2}, commit_time=2.0)
    assert recorder.check().ok


def test_explain_mentions_cycle():
    recorder = HistoryRecorder()
    recorder.record_commit("T1", 0, reads={"x": 0}, writes={"y": 1}, commit_time=1.0)
    recorder.record_commit("T2", 1, reads={"y": 0}, writes={"x": 1}, commit_time=1.0)
    text = recorder.check().explain()
    assert "VIOLATION" in text and "cycle" in text


def test_replicas_converged():
    a, b = VersionedStore(), VersionedStore()
    for s in (a, b):
        s.initialize(["x"])
    assert replicas_converged([a, b])
    a.install("x", 1, "T1")
    assert not replicas_converged([a, b])
    b.install("x", 1, "T1")
    assert replicas_converged([a, b])
    assert replicas_converged([])
    assert replicas_converged([a])


def test_provisional_record_keeps_version_order_dense():
    """Regression (E13 churn, cbp/20 sites/seed 3): cohorts installed a
    group-committed write whose initiator died before ``record_commit``,
    leaving a version with no recorded writer.  The cohort-side
    provisional record must satisfy the writer check."""
    recorder = HistoryRecorder()
    recorder.record_commit_provisional("T1", 2, writes={"x": 1}, commit_time=5.0)
    recorder.record_commit("T2", 1, reads={"x": 1}, writes={"x": 2}, commit_time=6.0)
    result = recorder.check()
    assert result.ok, result.explain()


def test_provisional_record_is_idempotent_across_cohorts():
    recorder = HistoryRecorder()
    recorder.record_commit_provisional("T1", 2, writes={"x": 1}, commit_time=5.0)
    recorder.record_commit_provisional("T1", 3, writes={"x": 1}, commit_time=5.5)
    assert len(recorder) == 1
    assert recorder.committed[0].site == 2  # first cohort wins


def test_full_record_upgrades_a_provisional_in_place():
    recorder = HistoryRecorder()
    recorder.record_commit_provisional("T1", 2, writes={"x": 1}, commit_time=5.0)
    recorder.record_commit("T1", 0, reads={"y": 0}, writes={"x": 1}, commit_time=6.0)
    assert len(recorder) == 1
    record = recorder.committed[0]
    assert not record.provisional
    assert record.site == 0
    assert record.reads == (("y", 0),)
    # A second full record is still an error after the upgrade.
    with pytest.raises(ValueError, match="recorded twice"):
        recorder.record_commit("T1", 0, reads={}, writes={"x": 1}, commit_time=7.0)


def test_upgrade_with_empty_writes_keeps_cohort_versions():
    """A partitioned-away initiator completing later may not know the
    version numbers the cohorts stamped; its empty write set must not
    erase the provisional record's authoritative versions."""
    recorder = HistoryRecorder()
    recorder.record_commit_provisional("T1", 2, writes={"x": 3}, commit_time=5.0)
    recorder.record_commit("T1", 0, reads={}, writes={}, commit_time=9.0)
    assert recorder.committed[0].writes == (("x", 3),)
