"""Unit tests for FIFO broadcast."""

from dataclasses import dataclass

from repro.broadcast.fifo import FifoBroadcast
from repro.broadcast.message import BroadcastMessage, MessageId


@dataclass
class Item:
    n: int
    sender: int = 0
    kind: str = "item"


def test_per_sender_order_preserved(harness_factory):
    h = harness_factory(num_sites=3, stack="fifo")
    for n in range(20):
        h.layers[0].broadcast(Item(n))
    h.run()
    for site in range(3):
        assert [p.n for p in h.payloads(site)] == list(range(20))


def test_interleaved_senders_each_fifo(harness_factory):
    h = harness_factory(num_sites=3, stack="fifo")
    for n in range(10):
        h.layers[0].broadcast(Item(n, sender=0))
        h.layers[1].broadcast(Item(n, sender=1))
    h.run()
    for site in range(3):
        for sender in (0, 1):
            seq = [p.n for p in h.payloads(site) if p.sender == sender]
            assert seq == list(range(10))


def test_holdback_reorders_out_of_order_arrivals():
    """Drive the FIFO layer directly with shuffled sequence numbers."""

    class FakeReliable:
        def __init__(self):
            self.site = 0
            self.deliver = None

        def set_deliver(self, fn):
            self.deliver = fn

        def broadcast(self, payload, kind=None):  # pragma: no cover
            raise NotImplementedError

    fake = FakeReliable()
    fifo = FifoBroadcast(fake)
    got = []
    fifo.set_deliver(lambda m: got.append(m.payload))
    order = [2, 0, 1, 4, 3]
    for seq in order:
        fake.deliver(BroadcastMessage(MessageId(7, seq), f"p{seq}"))
    assert got == ["p0", "p1", "p2", "p3", "p4"]


def test_fifo_over_lossy_network(harness_factory):
    h = harness_factory(num_sites=2, stack="fifo", loss_rate=0.25, seed=13)
    for n in range(30):
        h.layers[0].broadcast(Item(n))
    h.run(until=100000.0)
    assert [p.n for p in h.payloads(1)] == list(range(30))
