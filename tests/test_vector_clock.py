"""Unit tests for vector clocks."""

import itertools

import pytest

from repro.broadcast.vector_clock import (
    AFTER,
    BEFORE,
    CONCURRENT,
    EQUAL,
    VectorClock,
)


def test_zero_clock():
    vc = VectorClock.zero(3)
    assert list(vc) == [0, 0, 0]
    assert len(vc) == 3


def test_zero_rejects_nonpositive():
    with pytest.raises(ValueError):
        VectorClock.zero(0)


def test_increment_returns_new_clock():
    a = VectorClock.zero(3)
    b = a.increment(1)
    assert list(a) == [0, 0, 0]
    assert list(b) == [0, 1, 0]


def test_increment_inplace():
    a = VectorClock.zero(2)
    a.increment_inplace(0)
    assert list(a) == [1, 0]


def test_merge_componentwise_max():
    a = VectorClock([3, 0, 2])
    b = VectorClock([1, 4, 2])
    assert list(a.merge(b)) == [3, 4, 2]
    a.merge_inplace(b)
    assert list(a) == [3, 4, 2]


def test_happens_before_strict():
    a = VectorClock([1, 0])
    b = VectorClock([1, 1])
    assert a < b
    assert a.happens_before(b)
    assert not b < a
    assert not a < a  # irreflexive


def test_le_is_reflexive():
    a = VectorClock([2, 3])
    assert a <= a


def test_concurrency():
    a = VectorClock([1, 0])
    b = VectorClock([0, 1])
    assert a.concurrent_with(b)
    assert b.concurrent_with(a)
    assert not a.concurrent_with(a)


def test_equality_and_hash():
    a = VectorClock([1, 2])
    b = VectorClock([1, 2])
    assert a == b
    assert hash(a) == hash(b)
    assert a != VectorClock([2, 1])


def test_size_mismatch_rejected():
    with pytest.raises(ValueError):
        VectorClock([1]).merge(VectorClock([1, 2]))
    with pytest.raises(ValueError):
        bool(VectorClock([1]) <= VectorClock([1, 2]))


def test_dominates_entry():
    vc = VectorClock([0, 5, 2])
    assert vc.dominates_entry(1, 5)
    assert vc.dominates_entry(1, 3)
    assert not vc.dominates_entry(1, 6)
    assert vc.dominates_entry(0, 0)


def test_compare_four_outcomes():
    a = VectorClock([1, 0])
    b = VectorClock([1, 1])
    assert a.compare(b) == BEFORE
    assert b.compare(a) == AFTER
    assert a.compare(VectorClock([1, 0])) == EQUAL
    assert a.compare(VectorClock([0, 1])) == CONCURRENT


def test_compare_agrees_with_operators():
    """The fused compare() must classify every pair exactly as the rich
    comparisons do (exhaustive over all 3-site clocks with entries < 3)."""
    clocks = [VectorClock(list(v)) for v in itertools.product(range(3), repeat=3)]
    for a in clocks:
        for b in clocks:
            verdict = a.compare(b)
            assert (verdict == BEFORE) == (a < b)
            assert (verdict == AFTER) == (b < a)
            assert (verdict == EQUAL) == (a == b)
            assert (verdict == CONCURRENT) == a.concurrent_with(b)
            assert (verdict in (BEFORE, EQUAL)) == (a <= b)


def test_compare_size_mismatch_rejected():
    with pytest.raises(ValueError):
        VectorClock([1]).compare(VectorClock([1, 2]))


def test_copy_is_independent():
    a = VectorClock([1, 2])
    b = a.copy()
    b.increment_inplace(0)
    assert list(a) == [1, 2]
    assert list(b) == [2, 2]


def test_delta_since_lists_changed_entries_in_site_order():
    new = VectorClock([3, 0, 7, 2])
    old = VectorClock([3, 0, 5, 1])
    assert new.delta_since(old) == ((2, 7), (3, 2))
    assert new.delta_since(new) == ()


def test_delta_since_includes_regressions():
    """delta_since is a raw diff, not a monotone one: a receiver replaying
    deltas against the sender's previous stamp needs every differing entry,
    including ones the reference clock is ahead on."""
    new = VectorClock([1, 4])
    old = VectorClock([2, 4])
    assert new.delta_since(old) == ((0, 1),)


def test_apply_delta_round_trips():
    old = VectorClock([3, 0, 5, 1])
    new = VectorClock([3, 2, 5, 9])
    rebuilt = old.apply_delta(new.delta_since(old))
    assert rebuilt == new
    assert list(old) == [3, 0, 5, 1]  # apply_delta copies


def test_delta_since_size_mismatch_rejected():
    with pytest.raises(ValueError):
        VectorClock([1]).delta_since(VectorClock([1, 2]))
