"""Unit tests for the datagram network: FIFO, loss, partitions, crashes."""

from dataclasses import dataclass

import pytest

from repro.net.latency import FixedLatency, UniformLatency
from repro.net.network import Network
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RngRegistry


@dataclass
class Ping:
    n: int
    kind: str = "ping"


def build(num_sites=3, **kwargs):
    engine = SimulationEngine()
    network = Network(engine, num_sites, rng=RngRegistry(5), **kwargs)
    inboxes = [[] for _ in range(num_sites)]
    for site in range(num_sites):
        network.attach(site, lambda d, site=site: inboxes[site].append(d))
    return engine, network, inboxes


def test_basic_delivery_with_latency():
    engine, network, inboxes = build(latency=FixedLatency(2.0))
    network.send(0, 1, Ping(1))
    engine.run()
    assert [d.payload.n for d in inboxes[1]] == [1]
    assert inboxes[1][0].deliver_time == 2.0


def test_fifo_per_link_despite_latency_jitter():
    engine, network, inboxes = build(latency=UniformLatency(0.1, 5.0))
    for n in range(50):
        network.send(0, 1, Ping(n))
    engine.run()
    assert [d.payload.n for d in inboxes[1]] == list(range(50))


def test_loopback_is_delivered():
    engine, network, inboxes = build()
    network.send(2, 2, Ping(7))
    engine.run()
    assert [d.payload.n for d in inboxes[2]] == [7]


def test_messages_to_crashed_site_dropped():
    engine, network, inboxes = build()
    network.set_site_up(1, False)
    network.send(0, 1, Ping(1))
    engine.run()
    assert inboxes[1] == []
    assert network.stats.dropped_crashed == 1


def test_crashed_sender_cannot_send():
    engine, network, inboxes = build()
    network.set_site_up(0, False)
    network.send(0, 1, Ping(1))
    engine.run()
    assert inboxes[1] == []


def test_crash_while_in_flight_drops():
    engine, network, inboxes = build(latency=FixedLatency(5.0))
    network.send(0, 1, Ping(1))
    engine.schedule(1.0, network.set_site_up, 1, False)
    engine.run()
    assert inboxes[1] == []


def test_partition_blocks_and_heal_restores():
    engine, network, inboxes = build()
    network.partitions.split([[0], [1, 2]])
    network.send(0, 1, Ping(1))
    engine.run()
    assert inboxes[1] == []
    assert network.stats.dropped_partition == 1
    network.partitions.heal()
    network.send(0, 1, Ping(2))
    engine.run()
    assert [d.payload.n for d in inboxes[1]] == [2]


def test_loss_rate_drops_roughly_that_fraction():
    engine, network, inboxes = build(loss_rate=0.3)
    for n in range(1000):
        network.send(0, 1, Ping(n))
    engine.run()
    received = len(inboxes[1])
    assert 600 < received < 800
    assert network.stats.dropped_loss == 1000 - received


def test_message_accounting_by_kind():
    engine, network, inboxes = build()
    network.send(0, 1, Ping(1))
    network.send(0, 2, Ping(2))
    network.multicast(0, [0, 1, 2], Ping(3))
    engine.run()
    assert network.stats.by_kind["ping"] == 4  # multicast skips self
    assert network.stats.sent == 4
    assert network.stats.delivered == 4


def test_multicast_include_self():
    engine, network, inboxes = build()
    network.multicast(0, [0, 1], Ping(1), include_self=True)
    engine.run()
    assert len(inboxes[0]) == 1 and len(inboxes[1]) == 1


def test_unknown_site_rejected():
    engine, network, _ = build()
    with pytest.raises(ValueError):
        network.send(0, 9, Ping(1))


def test_kind_defaults_to_type_name():
    engine, network, inboxes = build()
    network.send(0, 1, {"raw": True})
    engine.run()
    assert network.stats.by_kind["dict"] == 1
