"""Protocol tests for the point-to-point ROWA + centralized 2PC baseline."""

from repro.core.transaction import AbortReason


def test_single_update_commits_everywhere(cluster_factory, make_spec):
    cluster = cluster_factory("p2p")
    cluster.submit(make_spec("t1", 0, reads=["x0"], writes={"x0": 7}))
    result = cluster.run()
    assert result.ok and result.committed_specs == 1
    for replica in cluster.replicas:
        assert replica.store.read("x0").value == 7


def test_message_pattern_centralized_2pc(cluster_factory, make_spec):
    """One write, N=3: (N-1) writes + (N-1) acks + (N-1) prepare +
    (N-1) votes + (N-1) decisions — linear, not quadratic like RBP votes."""
    cluster = cluster_factory("p2p", num_sites=3, retry_aborted=False)
    cluster.submit(make_spec("t1", 0, writes={"x0": 1}))
    result = cluster.run()
    kinds = result.messages_by_kind
    assert kinds["p2p.write"] == 2
    assert kinds["p2p.write_ack"] == 2
    assert kinds["p2p.prepare"] == 2
    assert kinds["p2p.vote"] == 2
    assert kinds["p2p.decision"] == 2


def test_sequential_conflicting_writers_wait_not_abort(cluster_factory, make_spec):
    """WAIT discipline: a lock conflict queues rather than aborting, so
    two *sequential* conflicting writers both commit with zero aborts."""
    cluster = cluster_factory("p2p", retry_aborted=False)
    cluster.submit(make_spec("w1", 0, writes={"x0": "a"}), at=0.0)
    cluster.submit(make_spec("w2", 1, writes={"x0": "b"}), at=50.0)
    result = cluster.run()
    assert result.ok
    assert result.committed_specs == 2
    assert not result.metrics.aborted


def test_truly_concurrent_single_key_writers_cross_deadlock(cluster_factory, make_spec):
    """Two concurrent writers of the same key grab their home replica's
    lock first and then wait for each other's — a *distributed* deadlock
    invisible to local cycle detection, broken only by the write timeout.
    This is the pathology the paper's broadcast protocols eliminate."""
    cluster = cluster_factory(
        "p2p", retry_aborted=True, p2p_write_timeout=100.0
    )
    cluster.submit(make_spec("w1", 0, writes={"x0": "a"}), at=0.0)
    cluster.submit(make_spec("w2", 1, writes={"x0": "b"}), at=0.2)
    result = cluster.run(max_time=100000)
    assert result.ok
    assert result.committed_specs == 2  # retries get through
    assert result.metrics.aborts_by_reason[AbortReason.TIMEOUT] >= 1


def test_distributed_deadlock_resolved(cluster_factory, make_spec):
    """Two transactions writing {x0, x1} in opposite orders from different
    homes: the classic distributed deadlock.  The baseline must detect it
    (cycle check or timeout) and make progress."""
    cluster = cluster_factory(
        "p2p", retry_aborted=True, p2p_write_timeout=150.0, p2p_deadlock_interval=5.0
    )
    # spec writes are sorted by key, so force opposite orders via key names
    # chosen to sort differently per transaction.
    cluster.submit(make_spec("a", 0, writes={"x0": 1, "x1": 1}), at=0.0)
    cluster.submit(make_spec("b", 1, writes={"x1": 2, "x0": 2}), at=0.5)
    result = cluster.run(max_time=100000)
    assert result.ok
    assert result.committed_specs == 2


def test_local_deadlock_detection_counts(cluster_factory):
    from repro.workload import WorkloadConfig
    from repro.workload.runner import run_standard_mix

    cluster = cluster_factory(
        "p2p", num_objects=4, seed=2, p2p_write_timeout=150.0, p2p_deadlock_interval=5.0
    )
    result = run_standard_mix(
        cluster,
        WorkloadConfig(num_objects=4, num_sites=3, read_ops=2, write_ops=2, zipf_theta=0.9),
        transactions=25,
        mpl=6,
        max_time=500000,
    )
    assert result.ok
    # Under this contention the WAIT baseline hits deadlocks/timeouts.
    deadlockish = (
        result.metrics.deadlocks_detected
        + result.metrics.aborts_by_reason[AbortReason.TIMEOUT]
        + result.metrics.aborts_by_reason[AbortReason.DEADLOCK]
    )
    assert deadlockish > 0


def test_read_only_never_aborts(cluster_factory, make_spec):
    cluster = cluster_factory("p2p")
    cluster.submit(make_spec("r1", 1, reads=["x0", "x1", "x2"]))
    result = cluster.run()
    assert cluster.spec_status("r1").committed
    assert result.metrics.readonly_abort_count() == 0


def test_incremental_read_locks_wait_for_writers(cluster_factory, make_spec):
    cluster = cluster_factory("p2p", retry_aborted=False)
    cluster.submit(make_spec("w", 0, writes={"x0": "v"}), at=0.0)
    cluster.submit(make_spec("r", 1, reads=["x0"]), at=0.5)
    result = cluster.run()
    assert result.ok and result.committed_specs == 2
    # The reader saw either the old or the new value, consistently 1SR.


def test_view_change_completes_a_tally_missing_a_crashed_voter(
    cluster_factory, make_spec
):
    """Regression: the 2PC tally waits on *all* view members, and a voter
    that crashes after receiving the prepare never answers.  Before the
    ``on_view_change`` re-check the home wedged forever on that tally
    (surfaced by the E13 churn soak at p2p/20 sites/seed 3)."""
    cluster = cluster_factory(
        "p2p",
        num_sites=4,
        enable_failure_detector=True,
        fd_interval=20.0,
        fd_timeout=80.0,
    )
    silent = cluster.replicas[3]
    silent._on_prepare = lambda src, prepare: None  # dies holding its vote
    cluster.submit(make_spec("T1", 0, writes={"x0": 1}))
    cluster.crash_site(3, at=30.0)  # write round done, vote outstanding
    result = cluster.run(max_time=20_000.0)
    assert cluster.spec_status("T1").committed
    assert result.serialization.ok


def test_view_change_completes_a_write_round_missing_a_crashed_acker(
    cluster_factory, make_spec
):
    """Same wedge, one phase earlier: the ROWA write round waits on every
    view member's ack.  The eviction of the silent member must let the
    round proceed with the survivors' acks."""
    cluster = cluster_factory(
        "p2p",
        num_sites=4,
        enable_failure_detector=True,
        fd_interval=20.0,
        fd_timeout=80.0,
        # Keep the write timeout out of the picture: this test pins the
        # view-change path, not the timeout/retry fallback.
        p2p_write_timeout=60_000.0,
    )
    deaf = cluster.replicas[3]
    deaf._on_write = lambda src, write: None  # never acks
    cluster.submit(make_spec("T1", 0, writes={"x0": 1}))
    cluster.crash_site(3, at=30.0)
    result = cluster.run(max_time=20_000.0)
    assert cluster.spec_status("T1").committed
    assert result.serialization.ok
