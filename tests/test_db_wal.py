"""Unit tests for the write-ahead log."""

from repro.db.storage import VersionedStore
from repro.db.wal import LogRecordType, WriteAheadLog


def test_append_assigns_dense_lsns():
    wal = WriteAheadLog()
    assert wal.log_begin("T1") == 0
    assert wal.log_write("T1", "x", 1) == 1
    assert wal.log_commit("T1") == 2
    assert wal.last_lsn == 2
    assert len(wal) == 3


def test_replay_applies_only_committed():
    wal = WriteAheadLog()
    wal.log_begin("T1")
    wal.log_write("T1", "x", 10)
    wal.log_commit("T1")
    wal.log_begin("T2")
    wal.log_write("T2", "x", 99)
    wal.log_abort("T2")
    wal.log_begin("T3")
    wal.log_write("T3", "y", 7)
    # T3 never commits: in-flight at crash.

    store = VersionedStore()
    store.initialize(["x", "y"])
    applied = wal.replay(store)
    assert applied == 1
    assert store.read("x").value == 10
    assert store.read("y").value == 0


def test_replay_preserves_commit_order():
    wal = WriteAheadLog()
    for tx, value in (("T1", 1), ("T2", 2)):
        wal.log_begin(tx)
        wal.log_write(tx, "x", value)
    # T2 commits before T1.
    wal.log_commit("T2")
    wal.log_commit("T1")
    store = VersionedStore()
    store.initialize(["x"])
    wal.replay(store)
    assert store.read("x").value == 1  # T1 is the later commit
    assert store.read("x").version == 2


def test_replay_reproduces_online_state():
    """Replaying a replica's log into a fresh store reproduces its state —
    the crash-recovery property."""
    wal = WriteAheadLog()
    online = VersionedStore()
    online.initialize(["x", "y"])
    for n, tx in enumerate(["A", "B", "C"]):
        wal.log_begin(tx)
        wal.log_write(tx, "x", n)
        wal.log_write(tx, "y", n * 10)
        online.install("x", n, tx)
        online.install("y", n * 10, tx)
        wal.log_commit(tx)
    recovered = VersionedStore()
    recovered.initialize(["x", "y"])
    wal.replay(recovered)
    assert recovered.digest() == online.digest()


def test_committed_transactions_in_order():
    wal = WriteAheadLog()
    wal.log_begin("T1")
    wal.log_commit("T1")
    wal.log_begin("T2")
    wal.log_abort("T2")
    wal.log_begin("T3")
    wal.log_commit("T3")
    assert wal.committed_transactions() == ["T1", "T3"]


def test_truncate():
    wal = WriteAheadLog()
    wal.log_begin("T1")
    wal.truncate()
    assert len(wal) == 0
    assert wal.last_lsn == -1


def test_record_rendering():
    wal = WriteAheadLog()
    wal.log_write("T1", "x", 5)
    record = next(iter(wal))
    assert record.type is LogRecordType.WRITE
    assert "x" in str(record) and "T1" in str(record)
