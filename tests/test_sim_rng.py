"""Unit tests for the deterministic RNG registry."""

from repro.sim.rng import RngRegistry, derive_seed


def test_same_name_same_stream_object():
    registry = RngRegistry(1)
    assert registry.stream("net") is registry.stream("net")


def test_streams_reproducible_across_registries():
    a = RngRegistry(42).stream("workload")
    b = RngRegistry(42).stream("workload")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    registry = RngRegistry(42)
    a = [registry.stream("a").random() for _ in range(5)]
    b = [registry.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_master_seeds_differ():
    a = RngRegistry(1).stream("x").random()
    b = RngRegistry(2).stream("x").random()
    assert a != b


def test_consuming_one_stream_does_not_perturb_another():
    registry1 = RngRegistry(7)
    registry1.stream("noise").random()  # consume from an unrelated stream
    value1 = registry1.stream("target").random()

    registry2 = RngRegistry(7)
    value2 = registry2.stream("target").random()
    assert value1 == value2


def test_derive_seed_stable():
    # Regression pin: the derivation must never change, or every recorded
    # experiment's numbers shift.
    assert derive_seed(0, "network") == derive_seed(0, "network")
    assert derive_seed(0, "a") != derive_seed(0, "b")
    assert 0 <= derive_seed(123, "stream") < 2**64


def test_fork_is_independent():
    base = RngRegistry(9)
    fork = base.fork("child")
    assert base.stream("s").random() != fork.stream("s").random()
    # Forks are themselves reproducible.
    again = RngRegistry(9).fork("child")
    assert RngRegistry(9).fork("child").stream("s").random() == again.stream("s").random()
