"""Unit tests for the partition manager."""

import pytest

from repro.net.partition import PartitionManager


def test_fully_connected_by_default():
    pm = PartitionManager(4)
    assert pm.is_fully_connected()
    assert all(pm.connected(a, b) for a in range(4) for b in range(4))


def test_split_separates_groups():
    pm = PartitionManager(5)
    pm.split([[0, 1, 2], [3, 4]])
    assert pm.connected(0, 2)
    assert pm.connected(3, 4)
    assert not pm.connected(0, 3)
    assert not pm.is_fully_connected()


def test_unmentioned_sites_form_leftover_group():
    pm = PartitionManager(5)
    pm.split([[0, 1]])
    assert pm.connected(2, 3) and pm.connected(3, 4)
    assert not pm.connected(0, 2)


def test_isolate_cuts_single_site():
    pm = PartitionManager(4)
    pm.isolate(2)
    assert not pm.connected(2, 0)
    assert pm.connected(0, 1) and pm.connected(0, 3)
    assert pm.connected(2, 2)


def test_heal_restores_everything():
    pm = PartitionManager(4)
    pm.split([[0], [1], [2], [3]])
    pm.heal()
    assert pm.is_fully_connected()


def test_majority_group():
    pm = PartitionManager(5)
    pm.split([[0, 1, 2], [3, 4]])
    assert pm.majority_group() == [0, 1, 2]
    pm.split([[0, 1], [2, 3]])  # 4 is leftover alone; no majority of 5
    assert pm.majority_group() is None


def test_groups_listing():
    pm = PartitionManager(4)
    pm.split([[1, 3], [0, 2]])
    assert sorted(map(tuple, pm.groups())) == [(0, 2), (1, 3)]


def test_duplicate_site_rejected():
    pm = PartitionManager(4)
    with pytest.raises(ValueError):
        pm.split([[0, 1], [1, 2]])


def test_unknown_site_rejected():
    pm = PartitionManager(3)
    with pytest.raises(ValueError):
        pm.split([[0, 7]])
    with pytest.raises(ValueError):
        pm.isolate(5)
