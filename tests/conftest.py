"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.broadcast.causal import CausalBroadcast
from repro.broadcast.reliable import ReliableBroadcast
from repro.broadcast.total import TotalOrderBroadcast
from repro.core.cluster import Cluster, ClusterConfig
from repro.core.transaction import TransactionSpec
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.net.router import ChannelRouter
from repro.net.transport import ReliableTransport
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RngRegistry


@pytest.fixture
def engine() -> SimulationEngine:
    return SimulationEngine()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


class BroadcastHarness:
    """A network of N sites with a chosen broadcast stack, for layer tests.

    Collects deliveries per site in ``delivered[site]`` as (payload, extra)
    tuples, where ``extra`` is layer-specific (None, vector clock, or order
    index).
    """

    def __init__(
        self,
        num_sites: int = 3,
        stack: str = "reliable",
        relay: bool = False,
        loss_rate: float = 0.0,
        seed: int = 0,
        mode: str = "sequencer",
    ):
        self.engine = SimulationEngine()
        self.network = Network(
            self.engine,
            num_sites,
            latency=UniformLatency(0.5, 1.5),
            rng=RngRegistry(seed),
            loss_rate=loss_rate,
        )
        self.num_sites = num_sites
        self.transports = []
        self.routers = []
        self.layers = []
        self.delivered: list[list[tuple]] = [[] for _ in range(num_sites)]
        for site in range(num_sites):
            transport = ReliableTransport(self.engine, self.network, site)
            router = ChannelRouter(transport)
            reliable = ReliableBroadcast(self.engine, router, site, num_sites, relay=relay)
            self.transports.append(transport)
            self.routers.append(router)
            if stack == "reliable":
                reliable.set_deliver(self._make_sink(site, lambda m: (m.payload, None)))
                self.layers.append(reliable)
            elif stack == "fifo":
                from repro.broadcast.fifo import FifoBroadcast

                fifo = FifoBroadcast(reliable)
                fifo.set_deliver(self._make_sink(site, lambda m: (m.payload, m.id)))
                self.layers.append(fifo)
            elif stack == "causal":
                causal = CausalBroadcast(reliable)
                causal.set_deliver(
                    self._make_sink(site, lambda m, env: (env.payload, env.vc))
                )
                self.layers.append(causal)
            elif stack == "total":
                causal = CausalBroadcast(reliable)
                total = TotalOrderBroadcast(self.engine, causal, mode=mode, token_hold=0.5)
                total.set_deliver(
                    self._make_sink(site, lambda p, env, idx: (p, idx))
                )
                self.layers.append(total)
            else:
                raise ValueError(stack)

    def _make_sink(self, site: int, shape):
        def sink(*args):
            self.delivered[site].append(shape(*args))

        return sink

    def run(self, until: float = 1000.0) -> None:
        self.engine.run(until=until)

    def payloads(self, site: int) -> list:
        return [payload for payload, _ in self.delivered[site]]


@pytest.fixture
def harness_factory():
    return BroadcastHarness


def quick_cluster(protocol: str = "rbp", **overrides) -> Cluster:
    """A small deterministic cluster for protocol tests."""
    defaults = dict(protocol=protocol, num_sites=3, num_objects=16, seed=11)
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults))


def spec(name: str, home: int = 0, reads=(), writes=None) -> TransactionSpec:
    return TransactionSpec.make(name, home, read_keys=list(reads), writes=writes)


@pytest.fixture
def cluster_factory():
    return quick_cluster


@pytest.fixture
def make_spec():
    return spec
