"""Tests for the shared replica behaviour (read phase, fast paths)."""

from repro.core.transaction import AbortReason, Transaction, TxPhase


def make_tx(spec, attempt=1, at=0.0):
    return Transaction(spec, attempt, submit_time=at, first_submit_time=at)


def test_read_only_fast_path_records_versions(cluster_factory, make_spec):
    cluster = cluster_factory("rbp")
    cluster.submit(make_spec("r", 0, reads=["x0", "x1"]))
    cluster.run()
    committed = cluster.recorder.committed
    assert len(committed) == 1
    assert committed[0].reads == (("x0", 0), ("x1", 0))
    assert committed[0].writes == ()


def test_reads_observe_committed_values(cluster_factory, make_spec):
    cluster = cluster_factory("rbp")
    cluster.submit(make_spec("w", 0, writes={"x0": "fresh"}), at=0.0)
    cluster.submit(make_spec("r", 1, reads=["x0"]), at=200.0)
    cluster.run()
    record = next(r for r in cluster.recorder.committed if r.tx.startswith("r"))
    assert record.reads == (("x0", 1),)


def test_read_locks_block_until_writer_finishes(cluster_factory, make_spec):
    """A reader whose keys overlap an in-flight writer's locks waits and
    then sees the committed value (never a torn or dirty read)."""
    cluster = cluster_factory("rbp", trace=True)
    cluster.submit(make_spec("w", 0, writes={"x0": "v1", "x1": "v1"}), at=0.0)
    cluster.submit(make_spec("r", 0, reads=["x0", "x1"]), at=1.0)
    cluster.run()
    record = next(r for r in cluster.recorder.committed if r.tx.startswith("r"))
    versions = dict(record.reads)
    # Atomic snapshot: both keys at version 0 (before) or both at 1 (after).
    assert versions in ({"x0": 0, "x1": 0}, {"x0": 1, "x1": 1})


def test_submit_to_crashed_replica_aborts(cluster_factory, make_spec):
    cluster = cluster_factory("rbp", retry_aborted=False)
    cluster.replicas[0].crash()
    cluster.network.set_site_up(0, False)
    cluster.submit(make_spec("t", 0, writes={"x0": 1}))
    cluster.run(max_time=100)
    assert cluster.spec_status("t").last_outcome is AbortReason.SITE_FAILURE


def test_install_writes_is_sorted_and_logged(cluster_factory):
    cluster = cluster_factory("rbp")
    replica = cluster.replicas[0]
    versions = replica.install_writes("TX", {"x2": "b", "x0": "a"})
    assert versions == {"x0": 1, "x2": 1}
    committed = replica.wal.committed_transactions()
    assert committed == ["TX"]
    writes = [r for r in replica.wal if r.type.value == "write"]
    assert [r.key for r in writes] == ["x0", "x2"]


def test_preempt_spares_read_only_and_public(cluster_factory, make_spec):
    cluster = cluster_factory("rbp")
    replica = cluster.replicas[0]
    # A read-only transaction holding x0.
    ro = make_tx(make_spec("ro", 0, reads=["x0"]))
    # Drive only the lock acquisition path: mark it local.
    replica.local[ro.tx_id] = ro
    from repro.db.locks import LockMode

    replica.locks.try_acquire(ro.tx_id, "x0", LockMode.SHARED)
    preempted = replica.preempt_local_readers("x0", exempt="other")
    assert preempted == []
    # A public update transaction is also spared.
    up = make_tx(make_spec("up", 0, reads=["x0"], writes={"x1": 1}))
    replica.local[up.tx_id] = up
    replica.public.add(up.tx_id)
    replica.locks.try_acquire(up.tx_id, "x0", LockMode.SHARED)
    assert replica.preempt_local_readers("x0", exempt="other") == []
    # A private update transaction is preempted.
    priv = make_tx(make_spec("priv", 0, reads=["x0"], writes={"x1": 1}))
    priv.phase = TxPhase.READING
    replica.local[priv.tx_id] = priv
    replica.locks.try_acquire(priv.tx_id, "x0", LockMode.SHARED)
    assert replica.preempt_local_readers("x0", exempt="other") == [priv.tx_id]
    assert priv.phase is TxPhase.ABORTED


def test_view_change_updates_membership_and_quorum(cluster_factory):
    cluster = cluster_factory("rbp", num_sites=3)
    replica = cluster.replicas[0]
    replica.on_view_change([0, 1], True)
    assert replica.view_members == [0, 1]
    assert replica.other_members() == [1]
    replica.on_view_change([0], False)
    assert not replica.has_quorum
