"""Tests for the ASCII chart renderer."""

import pytest

from repro.analysis.charts import AsciiChart, chart_sweep
from repro.analysis.experiment import ExperimentSweep


def test_basic_render_contains_series_points():
    chart = AsciiChart(title="demo", width=20, height=6)
    chart.add_series("up", [0, 1, 2], [1.0, 2.0, 3.0])
    art = chart.render()
    assert "demo" in art
    assert "o=up" in art
    assert art.count("o") >= 3 + 1  # three points + legend glyph


def test_multiple_series_get_distinct_glyphs():
    chart = AsciiChart(width=20, height=6)
    chart.add_series("a", [0, 1], [1, 2])
    chart.add_series("b", [0, 1], [2, 1])
    art = chart.render()
    assert "o=a" in art and "x=b" in art


def test_axis_labels_show_extremes():
    chart = AsciiChart(width=24, height=5)
    chart.add_series("s", [2, 10], [5.0, 50.0])
    art = chart.render()
    assert "50" in art and "5" in art  # y extremes
    assert "2" in art and "10" in art  # x extremes


def test_log_scale_compresses_magnitudes():
    linear = AsciiChart(width=30, height=9)
    linear.add_series("s", [0, 1, 2], [1.0, 10.0, 1000.0])
    logged = AsciiChart(width=30, height=9, log_y=True)
    logged.add_series("s", [0, 1, 2], [1.0, 10.0, 1000.0])

    def row_of(art, glyph="o"):
        rows = [i for i, line in enumerate(art.splitlines()) if glyph in line]
        return rows

    # In the linear chart the two small values collapse to the bottom row;
    # in the log chart they occupy distinct rows.
    linear_rows = row_of(linear.render())
    logged_rows = row_of(logged.render())
    assert len(set(logged_rows)) >= len(set(linear_rows))


def test_flat_series_renders():
    chart = AsciiChart(width=10, height=4)
    chart.add_series("flat", [0, 1, 2], [7.0, 7.0, 7.0])
    assert "7" in chart.render()


def test_validation():
    chart = AsciiChart()
    with pytest.raises(ValueError):
        chart.add_series("bad", [1, 2], [1.0])
    with pytest.raises(ValueError):
        chart.add_series("empty", [], [])
    assert AsciiChart().render() == "(empty chart)"


def test_chart_sweep_integration():
    sweep = ExperimentSweep(
        name="demo",
        scenario=lambda protocol, parameter, seed: {
            "m": parameter * (1 if protocol == "a" else 2)
        },
        parameters=(1, 2, 4),
        protocols=("a", "b"),
    ).run()
    art = chart_sweep(sweep, "m", width=24, height=6)
    assert "demo: m" in art
    assert "o=a" in art and "x=b" in art
