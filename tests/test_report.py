"""Tests for the ASCII reporting helpers."""

import pytest

from repro.analysis.report import Table, bullet_list, format_ratio


def test_table_renders_header_and_rows():
    table = Table(["protocol", "msgs"], title="E1")
    table.add_row("rbp", 42)
    table.add_row("cbp", 7)
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "E1"
    assert "protocol" in lines[1] and "msgs" in lines[1]
    assert any("rbp" in line and "42" in line for line in lines)


def test_table_column_count_enforced():
    table = Table(["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)


def test_table_float_formatting():
    table = Table(["v"])
    table.add_row(3.14159)
    assert "3.14" in table.render()


def test_table_alignment_widths():
    table = Table(["name", "value"])
    table.add_row("long-protocol-name", 1)
    text = table.render()
    header, rule, row = text.splitlines()
    assert len(header) == len(rule) == len(row)


def test_format_ratio():
    assert format_ratio(6.0, 2.0) == "3.0x"
    assert format_ratio(1.0, 0.0) == "inf"


def test_bullet_list():
    text = bullet_list(["one", "two"])
    assert text == "  - one\n  - two"
