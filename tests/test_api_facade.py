"""Tests for the high-level ReplicatedDatabase facade."""

import pytest

from repro.core.api import ReplicatedDatabase


@pytest.mark.parametrize("protocol", ["rbp", "cbp", "abp", "p2p"])
def test_write_then_read_everywhere(protocol):
    db = ReplicatedDatabase(protocol=protocol, sites=3, seed=4)
    outcome = db.write({"alice": 100})
    assert outcome.committed
    for site in range(3):
        assert db.read("alice", site=site) == 100
    report = db.close()
    assert report["converged"]
    assert "1SR OK" in report["serialization"]


def test_transfer_helper_moves_money():
    db = ReplicatedDatabase(protocol="cbp", sites=3, seed=5)
    db.write({"alice": 100, "bob": 50})
    outcome = db.transfer("alice", "bob", 30)
    assert outcome.committed
    assert db.read("alice") == 70
    assert db.read("bob") == 80
    db.close()


def test_execute_returns_read_values():
    db = ReplicatedDatabase(protocol="abp", sites=3, seed=6)
    db.write({"k": "v1"})
    outcome = db.execute(reads=["k"], writes={"k": "v2"})
    assert outcome.committed
    assert outcome.values.get("k") == "v1"  # the value *read* (pre-write)
    db.close()


def test_outcome_truthiness_and_latency():
    db = ReplicatedDatabase(protocol="rbp", sites=3, seed=7)
    outcome = db.write({"x": 1})
    assert outcome
    assert outcome.latency > 0
    assert outcome.attempts == 1
    db.close()


def test_dynamic_keys_created_on_demand():
    db = ReplicatedDatabase(protocol="rbp", sites=2, seed=8)
    assert db.read("never_seen_before") == 0
    db.write({"another_new_key": 9})
    assert db.read("another_new_key", site=1) == 9
    db.close()


def test_explicit_schema_rejects_unknown_keys():
    db = ReplicatedDatabase(protocol="rbp", sites=2, objects=["a", "b"], seed=9)
    db.write({"a": 1})
    with pytest.raises(KeyError):
        db.write({"zzz": 1})
    db.close()


def test_submissions_from_different_sites():
    db = ReplicatedDatabase(protocol="cbp", sites=4, seed=10)
    for site in range(4):
        assert db.write({f"s{site}": site}, site=site).committed
    for site in range(4):
        for probe in range(4):
            assert db.read(f"s{site}", site=probe) == site
    db.close()


def test_close_is_terminal():
    db = ReplicatedDatabase(protocol="rbp", sites=2, seed=11)
    db.write({"x": 1})
    db.close()
    with pytest.raises(RuntimeError):
        db.write({"x": 2})
    with pytest.raises(RuntimeError):
        db.close()


def test_sequential_transfers_conserve_money():
    db = ReplicatedDatabase(protocol="abp", sites=3, seed=12)
    accounts = {f"acct{i}": 100 for i in range(5)}
    db.write(accounts)
    rng_moves = [(0, 1, 10), (1, 2, 35), (2, 3, 5), (3, 4, 60), (4, 0, 25)]
    for src, dst, amount in rng_moves:
        assert db.transfer(f"acct{src}", f"acct{dst}", amount).committed
    total = sum(db.read(f"acct{i}") for i in range(5))
    assert total == 500
    db.close()


def test_unknown_site_rejected_with_friendly_error():
    db = ReplicatedDatabase(protocol="rbp", sites=2, seed=13)
    with pytest.raises(ValueError, match="unknown site"):
        db.write({"x": 1}, site=9)
    with pytest.raises(ValueError, match="unknown site"):
        db.read("x", site=-1)
    db.close()
