"""Unit tests for atomic (total-order) broadcast, both orderers."""

from dataclasses import dataclass

import pytest


@dataclass
class Op:
    label: str
    kind: str = "op"


@pytest.mark.parametrize("mode", ["sequencer", "token"])
def test_all_sites_deliver_same_total_order(harness_factory, mode):
    h = harness_factory(num_sites=4, stack="total", mode=mode)
    for n in range(5):
        for site in range(4):
            h.layers[site].broadcast(Op(f"s{site}n{n}"))
    h.run(until=5000.0)
    orders = [[p.label for p, idx in h.delivered[site] if idx is not None] for site in range(4)]
    assert len(orders[0]) == 20
    assert all(order == orders[0] for order in orders)


@pytest.mark.parametrize("mode", ["sequencer", "token"])
def test_order_indexes_are_contiguous(harness_factory, mode):
    h = harness_factory(num_sites=3, stack="total", mode=mode)
    for n in range(7):
        h.layers[n % 3].broadcast(Op(f"m{n}"))
    h.run(until=5000.0)
    for site in range(3):
        indexes = [idx for _, idx in h.delivered[site] if idx is not None]
        assert indexes == list(range(7))


def test_total_order_respects_causality(harness_factory):
    """If m1 causally precedes m2 the total order must place m1 first."""
    h = harness_factory(num_sites=3, stack="total")
    sink = h.delivered[1]

    def reply(payload, envelope, idx):
        sink.append((payload, idx))
        if payload.label == "first":
            h.layers[1].broadcast(Op("second"))

    h.layers[1].set_deliver(reply)
    h.layers[0].broadcast(Op("first"))
    h.run(until=5000.0)
    for site in (0, 2):
        labels = [p.label for p, idx in h.delivered[site] if idx is not None]
        assert labels.index("first") < labels.index("second")


def test_causal_only_messages_bypass_ordering(harness_factory):
    h = harness_factory(num_sites=3, stack="total")
    h.layers[0].broadcast_causal(Op("causal"))
    h.layers[0].broadcast(Op("ordered"))
    h.run(until=5000.0)
    for site in range(3):
        by_label = {p.label: idx for p, idx in h.delivered[site]}
        assert by_label["causal"] is None
        assert by_label["ordered"] == 0


def test_causal_writes_precede_their_ordered_commit(harness_factory):
    """The ABP-B requirement: a site always has a transaction's causally
    broadcast writes before its atomically broadcast commit request."""
    h = harness_factory(num_sites=4, stack="total")
    for t in range(5):
        h.layers[t % 4].broadcast_causal(Op(f"w{t}"))
        h.layers[t % 4].broadcast(Op(f"c{t}"))
    h.run(until=5000.0)
    for site in range(4):
        labels = [p.label for p, _ in h.delivered[site]]
        for t in range(5):
            assert labels.index(f"w{t}") < labels.index(f"c{t}")


def test_sequencer_is_lowest_site(harness_factory):
    h = harness_factory(num_sites=3, stack="total")
    assert h.layers[0].is_sequencer
    assert not h.layers[1].is_sequencer


def test_sequencer_reelection_on_group_change(harness_factory):
    h = harness_factory(num_sites=3, stack="total")
    h.layers[1].set_group([1, 2])
    assert h.layers[1].is_sequencer


def test_token_mode_uses_token_messages(harness_factory):
    h = harness_factory(num_sites=3, stack="total", mode="token")
    h.layers[1].broadcast(Op("x"))
    h.run(until=100.0)
    assert h.network.stats.by_kind["abcast.token"] > 0


def test_sequencer_emits_order_assignments(harness_factory):
    h = harness_factory(num_sites=3, stack="total", mode="sequencer")
    h.layers[1].broadcast(Op("x"))
    h.run(until=100.0)
    assert h.network.stats.by_kind["abcast.order"] > 0


def test_invalid_mode_rejected():
    from repro.broadcast.total import TotalOrderBroadcast

    with pytest.raises(ValueError):
        TotalOrderBroadcast(None, _FakeCausal(), mode="quantum")


class _FakeCausal:
    site = 0
    num_sites = 1

    def set_deliver(self, fn):
        pass
