"""Tests for the named workload scenarios."""

import pytest

from repro.cli import main
from repro.workload.scenarios import SCENARIOS, get_scenario, scenario_names


def test_catalog_is_nonempty_and_consistent():
    assert len(SCENARIOS) >= 5
    for name, scenario in SCENARIOS.items():
        assert scenario.name == name
        assert scenario.description
        assert scenario.suggested_mpl >= 1


def test_lookup_known_and_unknown():
    assert get_scenario("hotspot").workload.zipf_theta > 1.0
    with pytest.raises(KeyError, match="available"):
        get_scenario("nope")


def test_scenario_names_sorted():
    names = scenario_names()
    assert names == sorted(names)
    assert "uniform" in names


def test_for_sites_rebinds_geometry():
    scenario = get_scenario("uniform")
    workload = scenario.for_sites(9)
    assert workload.num_sites == 9
    # Original untouched (frozen semantics).
    assert scenario.workload.num_sites == 4


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_every_scenario_runs_on_every_protocol(name):
    """Smoke: each scenario drives a small cluster to a clean finish."""
    from repro.core.cluster import Cluster, ClusterConfig
    from repro.workload.runner import run_standard_mix

    scenario = get_scenario(name)
    cluster = Cluster(
        ClusterConfig(
            protocol="abp",
            num_sites=3,
            num_objects=scenario.workload.num_objects,
            seed=3,
        )
    )
    result = run_standard_mix(
        cluster, scenario.for_sites(3), transactions=12, mpl=3
    )
    assert result.ok
    assert result.committed_specs == 12


def test_cli_scenario_flag(capsys):
    code = main(
        [
            "run",
            "rbp",
            "--scenario",
            "read_mostly",
            "--transactions",
            "8",
            "--mpl",
            "2",
            "--sites",
            "3",
        ]
    )
    assert code == 0
    assert "1SR OK" in capsys.readouterr().out
