"""Unit tests for the majority-quorum membership service."""

from repro.broadcast.failure_detector import FailureDetector
from repro.broadcast.membership import MembershipService, View
from repro.net.network import Network
from repro.net.router import ChannelRouter
from repro.net.transport import ReliableTransport
from repro.sim.engine import SimulationEngine


def build(num_sites=5, interval=10.0, timeout=35.0):
    engine = SimulationEngine()
    network = Network(engine, num_sites)
    detectors, services = [], []
    for site in range(num_sites):
        transport = ReliableTransport(engine, network, site)
        router = ChannelRouter(transport)
        detector = FailureDetector(
            engine, router, site, num_sites, interval=interval, timeout=timeout
        )
        service = MembershipService(engine, router, detector, site, num_sites)
        detectors.append(detector)
        services.append(service)
    return engine, network, detectors, services


def crash(engine, network, detectors, services, site, at):
    engine.schedule_at(at, network.set_site_up, site, False)
    engine.schedule_at(at, detectors[site].crash)
    engine.schedule_at(at, services[site].crash)


def test_initial_view_is_everyone():
    engine, network, detectors, services = build()
    view = services[0].view
    assert view.view_id == 0
    assert view.members == (0, 1, 2, 3, 4)
    assert view.has_quorum(5)
    assert view.coordinator() == 0


def test_view_excludes_crashed_site():
    engine, network, detectors, services = build()
    crash(engine, network, detectors, services, 3, at=50.0)
    engine.run(until=500.0)
    for site in (0, 1, 2, 4):
        assert services[site].view.members == (0, 1, 2, 4)
        assert services[site].view.view_id >= 1


def test_coordinator_failure_passes_leadership():
    engine, network, detectors, services = build()
    crash(engine, network, detectors, services, 0, at=50.0)
    engine.run(until=600.0)
    for site in (1, 2, 3, 4):
        assert services[site].view.members == (1, 2, 3, 4)
    assert services[1].i_am_coordinator()


def test_minority_partition_loses_primary_component():
    engine, network, detectors, services = build()
    engine.schedule(50.0, network.partitions.split, [[0, 1, 2], [3, 4]])
    engine.run(until=600.0)
    assert services[0].in_primary_component
    assert services[1].in_primary_component
    # The minority side cannot install a quorum view.
    assert not services[3].in_primary_component
    assert not services[4].in_primary_component


def test_listeners_fire_with_joined_set():
    engine, network, detectors, services = build()
    events = []
    services[0].add_listener(lambda view, joined: events.append((view.view_id, joined)))
    crash(engine, network, detectors, services, 4, at=50.0)
    engine.run(until=300.0)
    network.set_site_up(4, True)
    detectors[4].recover()
    services[4].recover()
    engine.run(until=900.0)
    assert any(4 in joined for _, joined in events)
    assert services[0].view.members == (0, 1, 2, 3, 4)
    assert services[4].view.members == (0, 1, 2, 3, 4)


def test_view_quorum_math():
    assert View(0, (0, 1, 2)).has_quorum(5)
    assert not View(0, (0, 1)).has_quorum(5)
    assert View(0, (0,)).has_quorum(1)


def test_stale_view_announcements_ignored():
    engine, network, detectors, services = build(num_sites=3)
    current = services[1].view
    stale = View(current.view_id - 1 if current.view_id else 0, (1,))
    # Deliver a stale announcement directly.
    from repro.broadcast.membership import ViewMessage

    services[1]._on_message(0, ViewMessage(stale))
    assert services[1].view == current


def test_view_id_collision_after_partition_resolves():
    """Regression: both sides of a partition advance their view counters
    independently; after healing, the stale side must not reject the
    coordinator's announcement forever (the join/resync path re-proposes
    past the collided counter)."""
    engine, network, detectors, services = build(num_sites=4)
    engine.schedule(50.0, network.partitions.split, [[0, 1, 2], [3]])
    engine.run(until=400.0)
    # Both sides have advanced independently.
    assert services[0].view.members == (0, 1, 2)
    assert services[3].view.members in ((3,), (0, 3), (0, 1, 3), (0, 2, 3))
    network.partitions.heal()
    engine.run(until=1500.0)
    final_views = {tuple(s.view.members) for s in services}
    assert final_views == {(0, 1, 2, 3)}
    ids = {s.view.view_id for s in services}
    assert len(ids) == 1


def test_join_request_is_proof_of_life():
    """Regression for the join-eviction race: the coordinator's stale
    suspicion of a joiner must be cleared by the JoinRequest itself.
    Without that, the joiner is admitted into view N but evicted again in
    view N+1 by the next suspicion-driven proposal — and every message
    multicast during the eviction window postdates the state transfer's
    clock cut, opening a permanent causal delivery gap."""
    from repro.broadcast.membership import JoinRequest

    engine, network, detectors, services = build()
    crash(engine, network, detectors, services, 4, at=50.0)
    engine.run(until=300.0)
    assert 4 in detectors[0].suspected
    assert 4 not in services[0].view.members
    # Deliver the join request directly, before site 4 has sent a single
    # heartbeat the coordinator could have heard.
    services[0]._on_message(4, JoinRequest(site=4, view_id=services[4].view.view_id))
    assert 4 not in detectors[0].suspected  # the request is proof of life
    assert 4 in services[0].view.members  # admitted...
    # ...and the next detector ticks do not evict the joiner again while
    # its silence clock is still inside the timeout.
    engine.run(until=engine.now + 20.0)
    assert 4 in services[0].view.members
