"""Unit tests for the fail-stop process abstraction."""

from repro.sim.engine import SimulationEngine
from repro.sim.process import Process


class Ticker(Process):
    def __init__(self, engine):
        super().__init__(engine, "ticker")
        self.ticks = 0
        self.crashes = 0
        self.recoveries = 0

    def tick(self):
        self.ticks += 1
        self.schedule(1.0, self.tick)

    def on_crash(self):
        self.crashes += 1

    def on_recover(self):
        self.recoveries += 1


def test_scheduled_work_runs_while_alive():
    engine = SimulationEngine()
    ticker = Ticker(engine)
    ticker.schedule(1.0, ticker.tick)
    engine.run(until=5.5)
    assert ticker.ticks == 5


def test_crash_cancels_pending_timers():
    engine = SimulationEngine()
    ticker = Ticker(engine)
    ticker.schedule(1.0, ticker.tick)
    engine.schedule(3.5, ticker.crash)
    engine.run(until=100.0)
    assert ticker.ticks == 3
    assert ticker.crashes == 1
    assert not ticker.alive


def test_schedules_after_crash_do_not_fire():
    engine = SimulationEngine()
    ticker = Ticker(engine)
    ticker.crash()
    ticker.schedule(1.0, ticker.tick)
    engine.run()
    assert ticker.ticks == 0


def test_timers_from_before_crash_do_not_fire_after_recover():
    engine = SimulationEngine()
    ticker = Ticker(engine)
    ticker.schedule(10.0, ticker.tick)  # pre-crash timer
    engine.schedule(1.0, ticker.crash)
    engine.schedule(2.0, ticker.recover)
    engine.run(until=50.0)
    # The pre-crash timer was cancelled; recovery does not resurrect it.
    assert ticker.ticks == 0
    assert ticker.recoveries == 1
    assert ticker.alive


def test_crash_epoch_guards_in_flight_callbacks():
    """A timer armed pre-crash never fires, even if crash+recover both
    happen before its deadline (the epoch check catches stale closures)."""
    engine = SimulationEngine()
    ticker = Ticker(engine)
    ticker.schedule(5.0, ticker.tick)
    engine.schedule(1.0, ticker.crash)
    engine.schedule(2.0, ticker.recover)
    engine.schedule(6.0, lambda: ticker.schedule(1.0, ticker.tick))
    engine.run(until=10.0)
    assert ticker.ticks >= 1  # post-recovery timer works
    assert ticker.crashes == 1


def test_double_crash_and_double_recover_are_idempotent():
    engine = SimulationEngine()
    ticker = Ticker(engine)
    ticker.crash()
    ticker.crash()
    assert ticker.crashes == 1
    ticker.recover()
    ticker.recover()
    assert ticker.recoveries == 1
