"""Tests for detcheck (``repro.analysis.staticcheck``).

Each rule gets a positive fixture (the rule fires), a negative fixture
(the idiomatic pattern passes), and the suppression/baseline machinery is
exercised end to end.  The final meta-test runs the real checker over the
live tree, which is how CI keeps the codebase detcheck-clean.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.staticcheck import (
    ALL_RULE_IDS,
    Baseline,
    RULES,
    check_module,
    check_paths,
    main,
    parse_suppressions,
)
from repro.analysis.staticcheck.findings import fingerprint_findings

ROOT = pathlib.Path(__file__).resolve().parent.parent


def run_rules(source: str, protocol_layer: bool = False, enabled=None):
    """Rule ids hit by ``source``, in (line, id) order."""
    findings = check_module(
        textwrap.dedent(source),
        "fixture.py",
        enabled or ALL_RULE_IDS,
        protocol_layer=protocol_layer,
    )
    return [f.rule.id for f in findings]


# -- D101: ambient randomness -------------------------------------------------


def test_d101_flags_module_level_random():
    assert "D101" in run_rules(
        """
        import random

        def jitter():
            return random.random()
        """
    )


def test_d101_flags_renamed_import_and_urandom():
    hits = run_rules(
        """
        import random as rnd
        import os

        def draw():
            return rnd.uniform(0, 1) + len(os.urandom(4))
        """
    )
    assert hits.count("D101") == 2


def test_d101_allows_seeded_stream_and_random_class():
    assert "D101" not in run_rules(
        """
        import random

        def make(seed, registry):
            explicit = random.Random(seed)
            stream = registry.stream("retry")
            return explicit.random() + stream.uniform(0.5, 1.5)
        """
    )


# -- D102: wall-clock reads ---------------------------------------------------


def test_d102_flags_time_and_datetime():
    hits = run_rules(
        """
        import time
        import datetime

        def stamp():
            return time.time(), datetime.datetime.now()
        """
    )
    assert hits.count("D102") == 2


def test_d102_allows_simulated_clock():
    assert "D102" not in run_rules(
        """
        def stamp(self):
            return self.engine.now
        """
    )


# -- D103 / D104: unordered iteration feeding ordering-sensitive sinks --------


def test_d103_flags_set_loop_feeding_send():
    assert "D103" in run_rules(
        """
        def flush(self):
            peers = {1, 2, 3}
            for peer in peers:
                self.router.send(peer, "c", None, "k")
        """
    )


def test_d103_infers_set_typed_parameters():
    # Regression shape of the LockManager._reevaluate bug: a set-annotated
    # parameter driving lock grants in hash order across processes.
    assert "D103" in run_rules(
        """
        class LockManager:
            def _reevaluate(self, touched: set[str]) -> None:
                callbacks = []
                for key in touched:
                    callbacks.append(key)
        """
    )


def test_d103_allows_sorted_set_loop():
    assert "D103" not in run_rules(
        """
        def flush(self):
            peers = {1, 2, 3}
            for peer in sorted(peers):
                self.router.send(peer, "c", None, "k")
        """
    )


def test_d103_allows_order_insensitive_consumption():
    # Unordered-to-unordered rebuilds and order-free folds don't fix an
    # iteration order into anything downstream.
    assert "D103" not in run_rules(
        """
        def collect(self, peers):
            live = {p for p in peers if p.alive}
            return live, max(s.site for s in live)
        """
    )


def test_d104_flags_dict_view_driving_appends():
    assert "D104" in run_rules(
        """
        def drain(self, table):
            out = []
            for key, value in table.items():
                out.append((key, value))
            return out
        """
    )


def test_d104_allows_sorted_items():
    assert "D104" not in run_rules(
        """
        def drain(self, table):
            out = []
            for key, value in sorted(table.items()):
                out.append((key, value))
            return out
        """
    )


# -- D105: hash()/id() ordering ----------------------------------------------


def test_d105_flags_bare_hash_and_identity_sort_key():
    hits = run_rules(
        """
        def bucket(name, items):
            slot = hash(name) % 8
            return slot, sorted(items, key=id)
        """
    )
    assert hits.count("D105") == 2


def test_d105_exempts_dunder_hash_delegation():
    assert "D105" not in run_rules(
        """
        class Clock:
            def __hash__(self):
                return hash(tuple(self.entries))
        """
    )


# -- D106: float accumulation over unordered collections ----------------------


def test_d106_flags_sum_over_set():
    assert "D106" in run_rules(
        """
        def merge(latencies):
            samples = set(latencies)
            return sum(samples)
        """
    )


def test_d106_flags_genexp_over_dict_view():
    assert "D106" in run_rules(
        """
        def merge(per_site):
            return sum(v for v in per_site.values())
        """
    )


def test_d106_allows_sum_over_list():
    assert "D106" not in run_rules(
        """
        def merge(latencies):
            samples = list(latencies)
            return sum(samples)
        """
    )


# -- P201 / P202: wire payload shape ------------------------------------------

PAYLOAD_OK = """
    from dataclasses import dataclass

    from repro.net.sizes import register_payload


    @dataclass(slots=True)
    class Ping:
        seq: int
        kind: str = "x.ping"


    register_payload(Ping)
    """


def test_p201_flags_unslotted_payload():
    hits = run_rules(
        """
        from dataclasses import dataclass

        @dataclass
        class Ping:
            seq: int
            kind: str = "x.ping"
        """
    )
    assert "P201" in hits and "P202" in hits


def test_p201_p202_pass_for_slotted_registered_payload():
    hits = run_rules(PAYLOAD_OK)
    assert "P201" not in hits and "P202" not in hits


def test_p202_accepts_wire_size_shortcut():
    hits = run_rules(
        """
        class Ping:
            __slots__ = ("seq",)
            kind = "x.ping"

            def __wire_size__(self):
                return 24
        """
    )
    assert "P202" not in hits


def test_p201_ignores_non_payload_classes():
    assert run_rules(
        """
        class Config:
            retries = 3
        """
    ) == []


# -- P203: timer staleness guards ---------------------------------------------


def test_p203_flags_unguarded_timer_callback():
    assert "P203" in run_rules(
        """
        class Proto:
            def arm(self):
                self.schedule(10.0, self._fire)

            def _fire(self):
                self.router.send(0, "c", None, "k")
        """
    )


def test_p203_accepts_early_return_guard():
    assert "P203" not in run_rules(
        """
        class Proto:
            def arm(self):
                self.schedule(10.0, self._fire)

            def _fire(self):
                if not self.alive:
                    return
                self.router.send(0, "c", None, "k")
        """
    )


def test_p203_accepts_epoch_token_parameter():
    assert "P203" not in run_rules(
        """
        class Proto:
            def arm(self):
                self.schedule(10.0, self._fire, self.epoch)

            def _fire(self, epoch):
                if epoch != self.epoch:
                    return
                self.router.send(0, "c", None, "k")
        """
    )


def test_p203_exempts_zero_delay_dispatch():
    assert "P203" not in run_rules(
        """
        class Proto:
            def arm(self):
                self.schedule(0.0, self._fire)

            def _fire(self):
                self.router.send(0, "c", None, "k")
        """
    )


# -- P204: raw transport sends (protocol layer only) --------------------------


def test_p204_flags_raw_network_send_in_protocol_layer():
    assert "P204" in run_rules(
        """
        class Proto:
            def push(self):
                self.network.send(0, 1, None)
        """,
        protocol_layer=True,
    )


def test_p204_only_applies_to_protocol_layer():
    assert "P204" not in run_rules(
        """
        class Harness:
            def push(self):
                self.network.send(0, 1, None)
        """,
        protocol_layer=False,
    )


def test_p204_allows_router_send():
    assert "P204" not in run_rules(
        """
        class Proto:
            def push(self):
                self.router.send(0, "chan", None, "kind")
        """,
        protocol_layer=True,
    )


# -- E001: parse errors -------------------------------------------------------


def test_e001_on_syntax_error():
    assert run_rules("def broken(:\n") == ["E001"]


# -- suppressions -------------------------------------------------------------


def check_file(tmp_path, source, baseline=None):
    target = tmp_path / "mod.py"
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return check_paths([target], root=tmp_path, baseline=baseline)


def test_trailing_pragma_suppresses(tmp_path):
    findings = check_file(
        tmp_path,
        """
        import random

        def jitter():
            return random.random()  # detcheck: ignore[D101] — fixture
        """,
    )
    assert [f.rule.id for f in findings] == ["D101"]
    assert findings[0].suppressed and not findings[0].is_new


def test_standalone_pragma_covers_comment_block(tmp_path):
    findings = check_file(
        tmp_path,
        """
        import random

        def jitter():
            # detcheck: ignore[D101] — justification prose may continue
            # onto further comment lines before the statement itself.
            return random.random()
        """,
    )
    assert findings[0].suppressed


def test_pragma_for_other_rule_does_not_cover(tmp_path):
    findings = check_file(
        tmp_path,
        """
        import random

        def jitter():
            return random.random()  # detcheck: ignore[D102]
        """,
    )
    assert not findings[0].suppressed and findings[0].is_new


def test_file_ignore_pragma(tmp_path):
    findings = check_file(
        tmp_path,
        """
        # detcheck: file-ignore[D102] — wall clock is this module's job
        import time

        def a():
            return time.time()

        def b():
            return time.perf_counter()
        """,
    )
    assert len(findings) == 2
    assert all(f.suppressed for f in findings)


def test_parse_suppressions_table():
    table = parse_suppressions(
        "# detcheck: file-ignore[D101]\n"
        "x = 1  # detcheck: ignore[D103, D104]\n"
    )
    assert table.file_wide == {"D101"}
    assert table.covers(2, "D103") and table.covers(2, "D104")
    assert not table.covers(2, "D105")


# -- baseline round-trip ------------------------------------------------------


def test_baseline_roundtrip(tmp_path):
    source = """
        import random

        def jitter():
            return random.random()
        """
    findings = check_file(tmp_path, source)
    assert [f.is_new for f in findings] == [True]

    baseline_path = tmp_path / "baseline.json"
    count = Baseline.write(baseline_path, findings)
    assert count == 1
    raw = json.loads(baseline_path.read_text())
    assert raw["version"] == 1 and len(raw["findings"]) == 1

    reloaded = Baseline.load(baseline_path)
    again = check_file(tmp_path, source, baseline=reloaded)
    assert [f.baselined for f in again] == [True]
    assert not any(f.is_new for f in again)
    assert reloaded.stale_entries() == []


def test_baseline_reports_stale_entries(tmp_path):
    findings = check_file(
        tmp_path,
        """
        import random

        def jitter():
            return random.random()
        """,
    )
    baseline_path = tmp_path / "baseline.json"
    Baseline.write(baseline_path, findings)
    reloaded = Baseline.load(baseline_path)
    clean = check_file(tmp_path, "x = 1\n", baseline=reloaded)
    assert clean == []
    assert len(reloaded.stale_entries()) == 1


def test_fingerprints_survive_line_moves(tmp_path):
    base = "import random\n\ndef f():\n    return random.random()\n"
    moved = "import random\n\n\n# shifted\ndef f():\n    return random.random()\n"
    first = check_file(tmp_path, base)
    second = check_file(tmp_path, moved)
    assert first[0].fingerprint == second[0].fingerprint
    assert first[0].line != second[0].line


def test_fingerprints_distinguish_duplicate_lines():
    source = (
        "import random\n"
        "def f():\n"
        "    return random.random()\n"
        "def g():\n"
        "    return random.random()\n"
    )
    findings = check_module(source, "dup.py", ALL_RULE_IDS)
    fingerprint_findings(findings)
    assert len({f.fingerprint for f in findings}) == 2


# -- CLI ----------------------------------------------------------------------


def test_cli_exit_codes_and_json(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n", encoding="utf-8")
    assert main(["--no-baseline", str(clean)]) == 0
    capsys.readouterr()

    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nr = random.random()\n", encoding="utf-8")
    assert main(["--no-baseline", "--format", "json", str(dirty)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["new"] == 1
    assert payload["findings"][0]["rule"] == "D101"

    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n", encoding="utf-8")
    assert main(["--no-baseline", str(broken)]) == 2
    capsys.readouterr()


def test_cli_select_and_ignore_families(tmp_path, capsys):
    mixed = tmp_path / "mixed.py"
    mixed.write_text(
        "import time\nimport random\n"
        "t = time.time()\nr = random.random()\n",
        encoding="utf-8",
    )
    assert main(["--no-baseline", "--select", "D102", str(mixed)]) == 1
    out = capsys.readouterr().out
    assert "D102" in out and "D101" not in out
    assert main(["--no-baseline", "--ignore", "D", str(mixed)]) == 0
    capsys.readouterr()


def test_cli_rejects_unknown_rule(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--select", "D999", "src"])
    assert excinfo.value.code == 2
    capsys.readouterr()


def test_rule_catalogue_is_complete():
    # E001 (parse error) is not selectable, but must be in the catalogue.
    assert set(ALL_RULE_IDS) | {"E001"} == set(RULES)
    for rule in RULES.values():
        assert rule.summary and rule.hint


# -- S301/S304: hot-path membership materialization ---------------------------


def test_s301_flags_member_scan_in_message_handler():
    # The PR 6 commit-tally O(n^2) class: a per-ack member-set rebuild.
    assert "S301" in run_rules(
        """
        class Proto:
            def __init__(self, router):
                router.register("commit", self._on_ack)

            def _on_ack(self, src, ack):
                tally = self.acks[ack.tx]
                tally.add(src)
                if set(self.view_members) <= tally:
                    self.commit(ack.tx)
        """
    )


def test_s301_reverting_length_guard_regresses():
    """The acceptance criterion: the O(1)-length-guard fix, and its revert."""
    guarded = """
        class Proto:
            def __init__(self, router):
                router.register("commit", self._on_ack)

            def _on_ack(self, src, ack):
                tally = self.acks[ack.tx]
                tally.add(src)
                if len(tally) >= len(self.view_members) and set(self.view_members) <= tally:
                    self.commit(ack.tx)
        """
    reverted = guarded.replace("len(tally) >= len(self.view_members) and ", "")
    assert "S301" not in run_rules(guarded)
    assert "S301" in run_rules(reverted)


def test_s301_allows_early_return_length_guard():
    assert "S301" not in run_rules(
        """
        class Proto:
            def __init__(self, router):
                router.register("commit", self._on_ack)

            def _on_ack(self, src, ack):
                tally = self.acks[ack.tx]
                tally.add(src)
                if len(tally) < len(self.view_members):
                    return
                missing = set(self.view_members) - tally
                self.commit(ack.tx, missing)
        """
    )


def test_s301_allows_dissemination_fanout_loop():
    assert "S301" not in run_rules(
        """
        class Proto:
            def __init__(self, router):
                router.register("req", self._on_request)

            def _on_request(self, src, msg):
                for dst in self.view_members:
                    self.router.send(dst, "c", msg, "k")
        """
    )


def test_s301_ignores_cold_paths():
    # The same build in __init__ (or an unregistered method) is fine.
    assert "S301" not in run_rules(
        """
        class Proto:
            def __init__(self, router):
                router.register("c", self._on_msg)
                self.peers = set(self.view_members)

            def _on_msg(self, src, msg):
                self.seen.add(msg.id)

            def audit(self):
                return sorted(set(self.view_members))
        """
    )


def test_s301_hot_path_pragma_marks_entry():
    assert "S301" in run_rules(
        """
        class Proto:
            # detcheck: hot-path
            def fast(self):
                return set(self.view_members)
        """
    )


def test_s304_flags_derived_temporaries():
    # The local carries the taint; the flagged build never names the source.
    hits = run_rules(
        """
        class Proto:
            def __init__(self, router):
                router.register("c", self._on_msg)

            def _on_msg(self, src, msg):
                alive = self.view_members
                snapshot = sorted(alive)
                self.latest = snapshot
        """
    )
    assert "S304" in hits and "S301" not in hits


# -- S302: unmemoized envelope wire sizes -------------------------------------


def test_s302_flags_envelope_without_wire_size():
    assert "S302" in run_rules(
        """
        class Envelope:
            payload: object
            kind: str = "x"
        """
    )


def test_s302_allows_memoized_envelope():
    assert "S302" not in run_rules(
        """
        class Envelope:
            payload: object
            kind: str = "x"

            def __wire_size__(self):
                return 8
        """
    )


# -- S303: loop-invariant rebuilds --------------------------------------------


def test_s303_flags_sorted_rebuilt_per_iteration():
    assert "S303" in run_rules(
        """
        class Proto:
            def __init__(self, engine):
                engine.schedule(5.0, self._tick)

            def _tick(self):
                for item in self.queue:
                    if item in sorted(self.order):
                        self.emit(item)
        """
    )


def test_s303_allows_hoisted_build_and_loop_varying_arg():
    assert "S303" not in run_rules(
        """
        class Proto:
            def __init__(self, engine):
                engine.schedule(5.0, self._tick)

            def _tick(self):
                order = sorted(self.order)
                for item in self.queue:
                    if item in order:
                        self.order = self.order + [item]
                        refreshed = sorted(self.order)
                        self.emit(item, refreshed)
        """
    )


# -- H401: timer mutations ordered against the staleness guard ----------------


def test_h401_flags_unguarded_timer_mutation():
    assert "H401" in run_rules(
        """
        class Proto:
            def __init__(self, engine):
                engine.schedule(5.0, self._retry)

            def _retry(self):
                self.pending.clear()
                self.router.send(0, "c", None, "k")
        """
    )


def test_h401_flags_mutation_before_guard():
    assert "H401" in run_rules(
        """
        class Proto:
            def __init__(self, engine):
                engine.schedule(5.0, self._retry)

            def _retry(self):
                self.state = "retrying"
                if self.done:
                    return
                self.router.send(0, "c", None, "k")
        """
    )


def test_h401_allows_guard_first_and_counter_bumps():
    assert "H401" not in run_rules(
        """
        class Proto:
            def __init__(self, engine):
                engine.schedule(5.0, self._retry, 1)

            def _retry(self, attempt):
                self.retries += 1
                if attempt != self.attempt:
                    return
                self.pending.clear()
                self.router.send(0, "c", None, "k")
        """
    )


def test_h401_ignores_zero_delay_dispatch():
    # schedule(0, ...) is the uniform local-delivery path, not a timer.
    assert "H401" not in run_rules(
        """
        class Proto:
            def __init__(self, engine, message):
                engine.schedule(0.0, self._deliver, message)

            def _deliver(self, message):
                self.delivered.append(message)
        """
    )


# -- H402: read -> send -> mutate re-entrancy window ---------------------------


def test_h402_flags_send_between_read_and_mutation():
    assert "H402" in run_rules(
        """
        class Proto:
            def __init__(self, router):
                router.register("c", self._on_msg)

            def _on_msg(self, src, msg):
                count = len(self.outbox)
                self.router.send(src, "c", count, "k")
                self.outbox = []
        """
    )


def test_h402_allows_mutate_before_send():
    # The swap-drain idiom: complete the transition, then send.
    assert "H402" not in run_rules(
        """
        class Proto:
            def __init__(self, router):
                router.register("c", self._on_msg)

            def _on_msg(self, src, msg):
                outbox, self.outbox = self.outbox, []
                for item in outbox:
                    self.router.send(src, "c", item, "k")
        """
    )


# -- H403: durable installs inside the recovery window -------------------------


def test_h403_flags_install_without_deferral():
    assert "H403" in run_rules(
        """
        class Proto:
            def __init__(self, router):
                router.register("c", self._on_msg)

            def _on_msg(self, src, msg):
                self._apply(msg)

            def _apply(self, msg):
                self.store.install(msg.key, msg.value, msg.tx)
        """
    )


def test_h403_allows_recovering_deferral():
    assert "H403" not in run_rules(
        """
        class Proto:
            def __init__(self, router):
                router.register("c", self._on_msg)

            def _on_msg(self, src, msg):
                if self.recovering:
                    self._backlog.append(msg)
                    return
                self._apply(msg)

            def _apply(self, msg):
                self.store.install(msg.key, msg.value, msg.tx)
        """
    )


def test_h403_ignores_handlers_without_installs():
    assert "H403" not in run_rules(
        """
        class Proto:
            def __init__(self, router):
                router.register("c", self._on_msg)

            def _on_msg(self, src, msg):
                self.seen.add(msg.id)
        """
    )


# -- S/H suppression and baseline round-trips ---------------------------------

_S301_SOURCE = """
    class Proto:
        def __init__(self, router):
            router.register("commit", self._on_ack)

        def _on_ack(self, src, ack):
            if set(self.view_members) <= self.acks[ack.tx]:{pragma}
                self.commit(ack.tx)
    """


def test_s_rule_pragma_suppresses(tmp_path):
    findings = check_file(
        tmp_path,
        _S301_SOURCE.format(pragma="  # detcheck: ignore[S301] — fixture"),
    )
    assert [f.rule.id for f in findings] == ["S301"]
    assert findings[0].suppressed and not findings[0].is_new


def test_s_rule_baseline_roundtrip(tmp_path):
    source = _S301_SOURCE.format(pragma="")
    findings = check_file(tmp_path, source)
    assert [(f.rule.id, f.is_new) for f in findings] == [("S301", True)]
    baseline_path = tmp_path / "baseline.json"
    Baseline.write(baseline_path, findings)
    again = check_file(tmp_path, source, baseline=Baseline.load(baseline_path))
    assert [f.baselined for f in again] == [True]
    assert not any(f.is_new for f in again)


def test_h_rule_pragma_suppresses(tmp_path):
    findings = check_file(
        tmp_path,
        """
        class Proto:
            def __init__(self, engine):
                engine.schedule(5.0, self._retry)

            def _retry(self):
                # detcheck: ignore[H401] — fixture justification
                self.pending.clear()
        """,
    )
    hits = [f for f in findings if f.rule.id == "H401"]
    assert hits and all(f.suppressed for f in hits)


def test_cli_select_s_and_h_families(tmp_path, capsys):
    target = tmp_path / "mixed.py"
    target.write_text(
        textwrap.dedent(
            """
            import random

            class Proto:
                def __init__(self, router, engine):
                    router.register("c", self._on_msg)
                    engine.schedule(5.0, self._retry)

                def _on_msg(self, src, msg):
                    members = set(self.view_members)
                    self.tallies[msg.tx] = members

                def _retry(self):
                    self.pending.clear()
                    self.jitter = random.random()
            """
        ),
        encoding="utf-8",
    )
    assert main(["--no-baseline", "--select", "S", str(target)]) == 1
    out = capsys.readouterr().out
    assert "S301" in out and "H401" not in out and "D101" not in out
    assert main(["--no-baseline", "--select", "H401", str(target)]) == 1
    out = capsys.readouterr().out
    assert "H401" in out and "S301" not in out
    assert main(["--no-baseline", "--ignore", "D,P,S,H", str(target)]) == 0
    capsys.readouterr()


# -- the --changed mode -------------------------------------------------------


def _git(cwd, *args):
    subprocess.run(
        ["git", *args], cwd=cwd, check=True, capture_output=True, text=True
    )


def test_cli_changed_mode(tmp_path, monkeypatch, capsys):
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "config", "user.email", "dev@example.invalid")
    _git(tmp_path, "config", "user.name", "dev")
    committed = tmp_path / "committed.py"
    committed.write_text("import time\nt = time.time()\n", encoding="utf-8")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-qm", "base")
    monkeypatch.chdir(tmp_path)

    # Nothing changed: the committed violation is out of scope, exit 0.
    assert main(["--no-baseline", "--changed", "."]) == 0
    assert "no changed python files" in capsys.readouterr().out

    # An untracked violating file is in scope and fails the run.
    (tmp_path / "fresh.py").write_text(
        "import random\nr = random.random()\n", encoding="utf-8"
    )
    assert main(["--no-baseline", "--changed", "."]) == 1
    assert "D101" in capsys.readouterr().out

    # Editing the committed file brings it into scope too.
    committed.write_text(
        "import time\nt = time.time()\nu = time.time()\n", encoding="utf-8"
    )
    assert main(["--no-baseline", "--changed", "--select", "D102", "."]) == 1
    out = capsys.readouterr().out
    assert out.count("D102") >= 2


def test_cli_changed_outside_git_checkout(tmp_path, monkeypatch, capsys):
    (tmp_path / "mod.py").write_text("x = 1\n", encoding="utf-8")
    monkeypatch.setenv("GIT_DIR", str(tmp_path / "nowhere"))
    monkeypatch.chdir(tmp_path)
    assert main(["--no-baseline", "--changed", "."]) == 2
    assert "requires a git checkout" in capsys.readouterr().out


# -- the live tree ------------------------------------------------------------


def test_live_tree_is_detcheck_clean():
    """The shipped tree has no new findings (suppressions must justify)."""
    findings = check_paths(
        [ROOT / "src", ROOT / "scripts", ROOT / "benchmarks"], root=ROOT
    )
    new = [f for f in findings if f.is_new]
    assert not new, "\n".join(f.render() for f in new)


def test_wrapper_script_runs_clean():
    proc = subprocess.run(
        [sys.executable, str(ROOT / "scripts" / "detcheck.py")],
        capture_output=True,
        text=True,
        cwd=ROOT,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_seeded_violation_is_caught(tmp_path):
    """The acceptance gate: a synthetic violation must fail the run."""
    bad = tmp_path / "seeded.py"
    bad.write_text(
        "import time\n\ndef now():\n    return time.time()\n", encoding="utf-8"
    )
    assert main(["--no-baseline", str(bad)]) == 1


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-v"]))
