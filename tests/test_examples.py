"""Smoke tests: every example script runs to a clean exit.

Examples are documentation that executes; these tests keep them from
rotting as the library evolves.
"""

import pathlib
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = ROOT / "examples"


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=ROOT,
    )


def test_quickstart():
    proc = run_example("quickstart.py")
    assert proc.returncode == 0, proc.stderr[-2000:]
    for protocol in ("p2p", "rbp", "cbp", "abp"):
        assert protocol in proc.stdout


@pytest.mark.parametrize("protocol", ["rbp", "abp"])
def test_banking(protocol):
    proc = run_example("banking.py", protocol)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "money conserved" in proc.stdout
    assert "1SR OK" in proc.stdout


def test_inventory():
    proc = run_example("inventory.py", timeout=420)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "Inventory" in proc.stdout
    assert "abp" in proc.stdout


def test_failover():
    proc = run_example("failover.py")
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "refused by quorum check" in proc.stdout
    assert "replicas converged: True" in proc.stdout


def test_broadcast_playground():
    proc = run_example("broadcast_playground.py")
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "all ordering guarantees held" in proc.stdout


def test_trace_anatomy_single_protocol():
    proc = run_example("trace_anatomy.py", "abp")
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "abp.commit_request" in proc.stdout
    assert "transaction timeline" in proc.stdout
