"""Membership under cascading and repeated failures."""

from repro.broadcast.failure_detector import FailureDetector
from repro.broadcast.membership import MembershipService
from repro.net.network import Network
from repro.net.router import ChannelRouter
from repro.net.transport import ReliableTransport
from repro.sim.engine import SimulationEngine


def build(num_sites=7, interval=10.0, timeout=35.0):
    engine = SimulationEngine()
    network = Network(engine, num_sites)
    detectors, services = [], []
    for site in range(num_sites):
        transport = ReliableTransport(engine, network, site)
        router = ChannelRouter(transport)
        detector = FailureDetector(
            engine, router, site, num_sites, interval=interval, timeout=timeout
        )
        services.append(MembershipService(engine, router, detector, site, num_sites))
        detectors.append(detector)
    return engine, network, detectors, services


def crash(engine, network, detectors, services, site, at):
    engine.schedule_at(at, network.set_site_up, site, False)
    engine.schedule_at(at, detectors[site].crash)
    engine.schedule_at(at, services[site].crash)


def recover(engine, network, detectors, services, site, at):
    engine.schedule_at(at, network.set_site_up, site, True)
    engine.schedule_at(at, detectors[site].recover)
    engine.schedule_at(at, services[site].recover)


def live_views(services):
    return {tuple(s.view.members) for s in services if s.alive}


def test_cascading_coordinator_crashes():
    """Sites 0, 1, 2 crash in sequence; leadership walks down the id
    order and the survivors converge on one view each time."""
    engine, network, detectors, services = build()
    for site, at in ((0, 100.0), (1, 400.0), (2, 700.0)):
        crash(engine, network, detectors, services, site, at)
    engine.run(until=1500.0)
    assert live_views(services) == {(3, 4, 5, 6)}
    assert services[3].i_am_coordinator()
    assert all(s.in_primary_component for s in services if s.alive)


def test_simultaneous_double_crash():
    engine, network, detectors, services = build()
    crash(engine, network, detectors, services, 2, 100.0)
    crash(engine, network, detectors, services, 5, 100.0)
    engine.run(until=800.0)
    assert live_views(services) == {(0, 1, 3, 4, 6)}


def test_crash_below_quorum_blocks_primary():
    """With 4 of 7 sites down, no view can hold a majority of all sites."""
    engine, network, detectors, services = build()
    for site, at in ((3, 50.0), (4, 50.0), (5, 50.0), (6, 50.0)):
        crash(engine, network, detectors, services, site, at)
    engine.run(until=800.0)
    for service in services[:3]:
        assert not service.in_primary_component


def test_mass_recovery_restores_full_view():
    engine, network, detectors, services = build()
    for site in (4, 5, 6):
        crash(engine, network, detectors, services, site, 50.0)
    for site in (4, 5, 6):
        recover(engine, network, detectors, services, site, 1000.0 + site * 100.0)
    engine.run(until=4000.0)
    assert live_views(services) == {tuple(range(7))}
    assert all(s.in_primary_component for s in services)


def test_flapping_site_reconverges():
    """A site that crashes and recovers repeatedly ends in the view."""
    engine, network, detectors, services = build(num_sites=5)
    for round_ in range(3):
        base = 100.0 + round_ * 800.0
        crash(engine, network, detectors, services, 4, base)
        recover(engine, network, detectors, services, 4, base + 400.0)
    engine.run(until=5000.0)
    assert live_views(services) == {(0, 1, 2, 3, 4)}


def test_view_ids_monotone_per_site():
    engine, network, detectors, services = build(num_sites=5)
    observed = {site: [] for site in range(5)}
    for site in range(5):
        services[site].add_listener(
            lambda view, joined, site=site: observed[site].append(view.view_id)
        )
    crash(engine, network, detectors, services, 3, 100.0)
    recover(engine, network, detectors, services, 3, 800.0)
    crash(engine, network, detectors, services, 4, 1600.0)
    engine.run(until=4000.0)
    for site, ids in observed.items():
        assert ids == sorted(ids), (site, ids)
