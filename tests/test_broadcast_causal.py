"""Unit tests for causal broadcast: causal delivery order and exposed clocks."""

from dataclasses import dataclass


@dataclass
class Event:
    label: str
    kind: str = "event"


def causal_positions(harness, site):
    return {p.label: i for i, (p, _) in enumerate(harness.delivered[site])}


def test_single_sender_fifo_is_causal(harness_factory):
    h = harness_factory(num_sites=3, stack="causal")
    for n in range(10):
        h.layers[0].broadcast(Event(f"m{n}"))
    h.run()
    for site in range(3):
        assert [p.label for p in h.payloads(site)] == [f"m{n}" for n in range(10)]


def test_reply_delivered_after_original_everywhere(harness_factory):
    """The classic causality test: a reply triggered by delivery of the
    original must never be delivered before the original at any site."""
    h = harness_factory(num_sites=4, stack="causal")

    # Site 1 replies as soon as it delivers site 0's question.
    original_sink = h.delivered[1]

    def reply_when_question(message, envelope):
        original_sink.append((envelope.payload, envelope.vc))
        if envelope.payload.label == "question":
            h.layers[1].broadcast(Event("answer"))

    h.layers[1].set_deliver(reply_when_question)
    h.layers[0].broadcast(Event("question"))
    h.run()
    for site in (0, 2, 3):
        positions = causal_positions(h, site)
        assert positions["question"] < positions["answer"]


def test_transitive_causality_chain(harness_factory):
    h = harness_factory(num_sites=3, stack="causal")

    def chain(site, trigger, response):
        inner_sink = h.delivered[site]

        def handler(message, envelope):
            inner_sink.append((envelope.payload, envelope.vc))
            if envelope.payload.label == trigger:
                h.layers[site].broadcast(Event(response))

        h.layers[site].set_deliver(handler)

    chain(1, "a", "b")
    chain(2, "b", "c")
    h.layers[0].broadcast(Event("a"))
    h.run()
    positions = causal_positions(h, 0)
    assert positions["a"] < positions["b"] < positions["c"]


def test_clocks_identify_concurrency(harness_factory):
    h = harness_factory(num_sites=3, stack="causal")
    h.layers[0].broadcast(Event("left"))
    h.layers[1].broadcast(Event("right"))
    h.run()
    clocks = {p.label: vc for p, vc in h.delivered[2]}
    assert clocks["left"].concurrent_with(clocks["right"])


def test_clocks_reflect_causal_order(harness_factory):
    h = harness_factory(num_sites=3, stack="causal")
    sink = h.delivered[1]

    def reply(message, envelope):
        sink.append((envelope.payload, envelope.vc))
        if envelope.payload.label == "cause":
            h.layers[1].broadcast(Event("effect"))

    h.layers[1].set_deliver(reply)
    h.layers[0].broadcast(Event("cause"))
    h.run()
    clocks = {p.label: vc for p, vc in h.delivered[2]}
    assert clocks["cause"] < clocks["effect"]


def test_back_to_back_broadcasts_have_distinct_increasing_stamps(harness_factory):
    h = harness_factory(num_sites=2, stack="causal")
    env1 = h.layers[0].broadcast(Event("one"))
    env2 = h.layers[0].broadcast(Event("two"))
    assert env1.vc[0] == 1 and env2.vc[0] == 2
    h.run()
    assert [p.label for p in h.payloads(1)] == ["one", "two"]


def test_local_clock_advances_on_delivery(harness_factory):
    h = harness_factory(num_sites=2, stack="causal")
    h.layers[0].broadcast(Event("x"))
    h.run()
    assert h.layers[1].clock[0] == 1
    assert h.layers[0].clock[0] == 1


def test_pending_holdback_counts(harness_factory):
    h = harness_factory(num_sites=3, stack="causal")
    assert h.layers[0].pending_count() == 0


def _enable_deltas(h):
    for layer in h.layers:
        layer.enable_delta_clocks()


def test_delta_clocks_deliver_identically(harness_factory):
    """Delta-encoded stamps must reconstruct to the exact clocks the full
    encoding ships: same delivery order, same exposed vector clocks — even
    over a lossy network where retransmission reorders arrivals."""
    plain = harness_factory(num_sites=4, stack="causal", loss_rate=0.15, seed=23)
    delta = harness_factory(num_sites=4, stack="causal", loss_rate=0.15, seed=23)
    _enable_deltas(delta)
    for h in (plain, delta):
        sink = h.delivered[1]

        def reply(message, envelope, h=h, sink=sink):
            sink.append((envelope.payload, envelope.vc))
            if envelope.payload.label == "m0":
                h.layers[1].broadcast(Event("reply"))

        h.layers[1].set_deliver(reply)
        for n in range(8):
            h.layers[0].broadcast(Event(f"m{n}"))
        h.run(until=100000.0)
    for site in range(4):
        assert [
            (p.label, tuple(vc)) for p, vc in delta.delivered[site]
        ] == [(p.label, tuple(vc)) for p, vc in plain.delivered[site]]
    # The cheap encoding was actually used (back-to-back sends from one
    # sender change a single entry).
    assert sum(layer.deltas_sent for layer in delta.layers) > 0


def test_first_broadcast_is_full_then_deltas(harness_factory):
    h = harness_factory(num_sites=6, stack="causal")
    _enable_deltas(h)
    layer = h.layers[0]
    layer.broadcast(Event("a"))
    layer.broadcast(Event("b"))  # one changed entry: delta wins at n=6
    h.run()
    assert layer.fulls_sent == 1
    assert layer.deltas_sent == 1
    for site in range(6):
        assert [p.label for p in h.payloads(site)] == ["a", "b"]


def test_disruption_forces_full_stamp(harness_factory):
    """After note_disruption (view change) the next stamp goes out full,
    resynchronizing every receiver's reconstruction state."""
    h = harness_factory(num_sites=6, stack="causal")
    _enable_deltas(h)
    layer = h.layers[0]
    layer.broadcast(Event("a"))
    layer.note_disruption()
    layer.broadcast(Event("b"))
    h.run()
    assert layer.fulls_sent == 2
    assert layer.deltas_sent == 0
    for site in range(6):
        assert [p.label for p in h.payloads(site)] == ["a", "b"]


def test_delta_only_sent_when_smaller(harness_factory):
    """At 2 sites a full clock (2 ints) is cheaper than any delta pair, so
    the encoder must keep shipping full stamps."""
    h = harness_factory(num_sites=2, stack="causal")
    _enable_deltas(h)
    for n in range(4):
        h.layers[0].broadcast(Event(f"m{n}"))
    h.run()
    assert h.layers[0].deltas_sent == 0
    assert h.layers[0].fulls_sent == 4
    assert [p.label for p in h.payloads(1)] == [f"m{n}" for n in range(4)]


def test_causal_order_over_lossy_network(harness_factory):
    h = harness_factory(num_sites=3, stack="causal", loss_rate=0.2, seed=17)
    sink = h.delivered[1]

    def reply(message, envelope):
        sink.append((envelope.payload, envelope.vc))
        if envelope.payload.label == "q0":
            h.layers[1].broadcast(Event("a0"))

    h.layers[1].set_deliver(reply)
    for n in range(5):
        h.layers[0].broadcast(Event(f"q{n}"))
    h.run(until=100000.0)
    positions = causal_positions(h, 2)
    assert len(positions) == 6
    assert positions["q0"] < positions["a0"]
