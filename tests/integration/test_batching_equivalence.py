"""Batching correctness: passthrough bit-identity and batched outcome
equivalence.

Two different guarantees, deliberately tested at two different strengths:

- ``batching=None`` (the default) must be **bit-identical** to the
  pre-batching simulator: no batcher object is constructed, so the wire
  traffic, the byte accounting and every replica's final state reproduce
  the pinned outcome digests below exactly.  Any change to the default
  path — however innocent — shows up here as a digest mismatch.
- ``batching`` enabled is held to **outcome equivalence**: the same
  transactions commit, every replica converges to the same store, and the
  history stays one-copy serializable.  Trace identity is out of scope by
  design (coalescing shifts event timing by up to one flush window).

The pinned digests are computed by exactly this module's ``run_cell`` /
``outcome_digest`` pair; re-pin them only when a deliberate change to the
default path is being made.
"""

import hashlib

import pytest

from repro.broadcast.batching import BatchingConfig
from repro.core.cluster import Cluster, ClusterConfig
from repro.core.transaction import TransactionSpec
from repro.workload.generator import WorkloadConfig
from repro.workload.runner import ClosedLoopRunner

PROTOCOLS = ["rbp", "cbp", "abp", "p2p"]
LOSS_RATES = [0.0, 0.05]

#: Outcome digests of the default (passthrough) configuration, one per
#: (protocol, loss) cell of the standard closed-loop mix.
PINNED_PASSTHROUGH = {
    ("rbp", 0.0): "7dad9ce394a91692",
    ("rbp", 0.05): "8497de0396461104",
    ("cbp", 0.0): "32ad4707236a257f",
    ("cbp", 0.05): "3778cb6e0770d1b4",
    ("abp", 0.0): "808c347762b4dc64",
    ("abp", 0.05): "6d9661765974e859",
    ("p2p", 0.0): "486895b99c27ad43",
    ("p2p", 0.05): "3857fa96e61e54e0",
}


def run_cell(protocol, loss, **overrides):
    config = ClusterConfig(
        protocol=protocol,
        num_sites=4,
        num_objects=32,
        seed=2098,
        loss_rate=loss,
        **overrides,
    )
    cluster = Cluster(config)
    workload = WorkloadConfig(
        num_objects=32,
        num_sites=4,
        read_ops=2,
        write_ops=2,
        zipf_theta=0.0,
        readonly_fraction=0.0,
    )
    runner = ClosedLoopRunner(cluster, workload, mpl=6, transactions=60)
    runner.start()
    result = cluster.run(max_time=5_000_000.0)
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged
    return cluster, result


def outcome_digest(cluster, result):
    """sha256 over every replica's final store snapshot, the per-kind
    message counts, the committed set and the total messages/bytes."""
    material = repr(
        (
            tuple(replica.store.digest() for replica in cluster.replicas),
            tuple(sorted(result.messages_by_kind.items())),
            tuple(
                sorted(
                    name
                    for name, status in cluster._specs.items()
                    if status.committed
                )
            ),
            result.network_stats["sent"],
            result.network_stats["bytes_sent"],
        )
    )
    return hashlib.sha256(material.encode()).hexdigest()[:16]


def outcome_summary(cluster, result):
    """The outcome-equivalence projection: the committed set.

    Replica-state agreement *within* each run is asserted by ``run_cell``
    (``result.converged``); final store contents may differ *between* the
    runs because batching legitimately reorders commits of concurrent
    transactions — 1SR admits any serial order.
    """
    return tuple(
        sorted(name for name, status in cluster._specs.items() if status.committed)
    )


#: Base-cell cache so the pinning test and the equivalence tests share one
#: passthrough run per (protocol, loss) cell.
_BASE: dict = {}


def base_cell(protocol, loss):
    key = (protocol, loss)
    if key not in _BASE:
        _BASE[key] = run_cell(protocol, loss)
    return _BASE[key]


@pytest.mark.parametrize("loss", LOSS_RATES)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_passthrough_is_bit_identical(protocol, loss):
    cluster, result = base_cell(protocol, loss)
    assert outcome_digest(cluster, result) == PINNED_PASSTHROUGH[(protocol, loss)]


@pytest.mark.parametrize("loss", LOSS_RATES)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_batched_outcome_equivalence(protocol, loss):
    """Flush-window batching (plus group commit and delta clocks) must
    commit the same transactions and converge to the same stores — while
    actually coalescing: strictly fewer physical datagrams."""
    base_cluster, base_result = base_cell(protocol, loss)
    cluster, result = run_cell(protocol, loss, batching=BatchingConfig(flush_window=2.0))
    assert outcome_summary(cluster, result) == outcome_summary(base_cluster, base_result)
    assert result.network_stats["sent"] < base_result.network_stats["sent"]
    assert sum(b.batches_sent for b in cluster.batchers if b is not None) > 0


def test_zero_window_batching_outcome_equivalence():
    """flush_window=0.0 coalesces same-instant traffic only; outcomes must
    still match the passthrough run (rbp exercises votes + acks + 2PC)."""
    base_cluster, base_result = base_cell("rbp", 0.0)
    cluster, result = run_cell("rbp", 0.0, batching=True)
    assert outcome_summary(cluster, result) == outcome_summary(base_cluster, base_result)
    assert result.network_stats["sent"] < base_result.network_stats["sent"]


def test_batching_config_normalization():
    assert ClusterConfig(protocol="rbp", num_sites=3).batching is None
    assert ClusterConfig(protocol="rbp", num_sites=3, batching=True).batching == (
        BatchingConfig()
    )
    assert ClusterConfig(protocol="rbp", num_sites=3, batching=3).batching == (
        BatchingConfig(flush_window=3.0)
    )
    with pytest.raises(ValueError, match="batching"):
        ClusterConfig(protocol="rbp", num_sites=3, batching="yes")


@pytest.mark.parametrize("protocol", ["rbp", "cbp", "abp"])
def test_view_change_mid_window(protocol):
    """Crash a site while flush windows are open: the survivors' batched
    traffic and the causal layer's full-clock fallback must keep the
    majority live and consistent."""
    cluster = Cluster(
        ClusterConfig(
            protocol=protocol,
            num_sites=5,
            num_objects=16,
            seed=13,
            enable_failure_detector=True,
            fd_interval=20.0,
            fd_timeout=80.0,
            batching=BatchingConfig(flush_window=5.0),
        )
    )
    for n in range(4):
        cluster.submit(
            TransactionSpec.make(f"pre{n}", n, writes={f"x{n}": n}), at=100.0 + n
        )
    # Crash inside the busy phase: open windows at the crashed site are
    # lost (fail-stop); survivors re-arm and continue.
    cluster.crash_site(4, at=103.0)
    for n in range(4):
        cluster.submit(
            TransactionSpec.make(f"post{n}", n, writes={f"x{n + 8}": n}),
            at=2000.0 + n * 50.0,
        )
    result = cluster.run(max_time=100000)
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged
    for n in range(4):
        assert cluster.spec_status(f"post{n}").committed


@pytest.mark.parametrize("protocol", ["rbp", "cbp"])
def test_crash_and_recover_with_batching(protocol):
    """Round-trip a crash through recovery with batching on: the rejoiner
    must catch up (state transfer + full-clock refresh) and commit."""
    cluster = Cluster(
        ClusterConfig(
            protocol=protocol,
            num_sites=5,
            num_objects=16,
            seed=13,
            enable_failure_detector=True,
            fd_interval=20.0,
            fd_timeout=80.0,
            batching=BatchingConfig(flush_window=2.0),
        )
    )
    cluster.crash_site(4, at=50.0)
    for n in range(4):
        cluster.submit(
            TransactionSpec.make(f"down{n}", n, writes={f"x{n}": n}),
            at=500.0 + n * 50.0,
        )
    cluster.recover_site(4, at=5000.0)
    cluster.submit(
        TransactionSpec.make("rejoined", 4, writes={"x10": "back"}), at=20000.0
    )
    result = cluster.run(max_time=200000)
    assert result.ok
    assert cluster.spec_status("rejoined").committed


@pytest.mark.parametrize("seed", [70, 77])
def test_crash_under_loss_with_batching_and_relay(seed):
    """Crash + datagram loss + batching, with eager-flooding relay on.

    With ``relay=False`` a sender crash mid-broadcast can strand a message
    that reached only some sites: the survivors stamp later clocks with it
    and a site that lost its copy holds back forever (pre-existing
    agreement limitation, see ``repro.broadcast.reliable`` — it bites
    passthrough and batched runs at the same rate, e.g. seed 70
    passthrough / seed 77 batched in this scenario).  ``relay=True`` is
    the documented mitigation; this pins that it keeps working when the
    relays themselves ride through batch envelopes.
    """
    for batching in (None, BatchingConfig(flush_window=2.0)):
        cluster = Cluster(
            ClusterConfig(
                protocol="cbp",
                num_sites=5,
                num_objects=32,
                seed=seed,
                loss_rate=0.05,
                relay=True,
                batching=batching,
                enable_failure_detector=True,
            )
        )
        workload = WorkloadConfig(
            num_objects=32,
            num_sites=5,
            read_ops=2,
            write_ops=2,
            zipf_theta=0.0,
            readonly_fraction=0.0,
        )
        runner = ClosedLoopRunner(cluster, workload, mpl=4, transactions=40)
        runner.start()
        cluster.crash_site(4, at=120.0)
        cluster.recover_site(4, at=4000.0)
        result = cluster.run(max_time=500_000.0)
        assert result.serialization.ok
        assert result.converged
        assert result.incomplete_specs == 0
