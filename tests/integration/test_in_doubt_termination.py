"""In-doubt decision-query termination under partitions and crashes.

Deterministic scenarios exercise the RBP decision-query subsystem
(PROTOCOLS.md): a cohort that voted YES and lost sight of its home must
not guess — it queries the surviving members' decision logs and adopts
the first authoritative outcome, falling back to presumed abort only when
the answers *prove* no commit tally can exist anywhere (enough provable
never-voters to block every quorum, or the whole cluster answering with
nothing).  When every answerer is itself an in-doubt YES voter, the query
parks: a departed member may hold the commit, and its durable decision
log settles the question when it rejoins.

All timings are derived, not tuned: with ``fd_interval=20`` /
``fd_timeout=80`` a site silent since *t* is suspected at the first
detector tick after *t + 80*, and the view change lands one fixed-latency
hop later.  The transport is passthrough at ``loss_rate == 0`` (no ARQ),
so a datagram dropped by a partition is lost for good — which is exactly
how the scenarios strand votes on one side of a split.
"""

from repro.analysis.audit import assert_clean
from repro.core.cluster import Cluster, ClusterConfig
from repro.core.transaction import AbortReason, TransactionSpec
from repro.net.latency import LatencyModel
from repro.sim.faults import FaultSchedule


class LinkLatency(LatencyModel):
    """Fixed delay with per-(src, dst) overrides, for lagging-link tests."""

    def __init__(self, default: float = 1.0, slow: dict | None = None):
        self.default = default
        self.slow = dict(slow or {})

    def sample(self, rng, src, dst):
        return self.slow.get((src, dst), self.default)

    def mean(self):
        return self.default


def in_doubt_cluster(**overrides):
    defaults = dict(
        protocol="rbp",
        num_sites=5,
        num_objects=8,
        seed=11,
        enable_failure_detector=True,
        fd_interval=20.0,
        fd_timeout=80.0,
        # No eager relay: a vote stranded on a slow or partitioned link must
        # stay stranded, or the scenarios degenerate into the happy path.
        relay=False,
        trace=True,
        latency=LinkLatency(1.0),
    )
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults))


def update(name, home, key, value):
    return TransactionSpec.make(name, home, read_keys=[key], writes={key: value})


def assert_no_locks(cluster):
    for replica in cluster.replicas:
        if not replica.alive:
            continue
        for key in replica.store.keys():
            holders = replica.locks.holders_of(key)
            assert not holders, f"site {replica.site}: {key} held by {holders}"


def test_home_crash_after_prepare_resolved_by_query_commit():
    """The home crashes after the unanimous vote: one cohort misses a vote
    (slow link) and goes in doubt at the view change; the survivors answer
    its decision query from their logs and it adopts the commit — no
    presumed abort, locks released, no blocked tail for later writers."""
    # Link 3 -> 2 lags 180ms: site 2's tally is missing 3's vote when the
    # home (4) crashes, so only site 2 becomes in-doubt.
    cluster = in_doubt_cluster(latency=LinkLatency(1.0, slow={(3, 2): 180.0}))
    FaultSchedule(cluster).crash(4, at=110.0)
    cluster.submit(update("T", 4, "x0", 1), at=100.0)
    # Same-key follow-up homed elsewhere: blocks forever if site 2 leaks
    # the exclusive lock.
    cluster.submit(update("T2", 0, "x0", 2), at=400.0)
    result = cluster.run(max_time=50_000.0, stop_when=cluster.await_specs(2))

    assert result.ok
    assert cluster.spec_status("T").committed  # home answered before crashing
    assert cluster.spec_status("T2").committed  # no blocked-transaction tail
    metrics = cluster.metrics
    assert metrics.rbp_in_doubt == 1
    assert metrics.rbp_decision_queries >= 1
    assert metrics.rbp_resolved_by_query_commit == 1
    assert metrics.rbp_resolved_by_presumption == 0
    assert metrics.rbp_resolved_by_query_abort == 0

    # Every site converged on the commit; the querier adopted it within one
    # query timeout of entering in-doubt.
    in_doubt = cluster.trace.filter("rbp.in_doubt", tx="T#1")
    adopted = cluster.trace.filter("rbp.decision_adopted", tx="T#1", outcome="commit")
    assert len(in_doubt) == 1 and len(adopted) == 1
    assert adopted[0].time - in_doubt[0].time <= cluster.config.rbp_decision_query_timeout
    assert_no_locks(cluster)
    assert_clean(cluster)


def test_home_isolated_in_minority_parks_then_adopts_commit():
    """The home is partitioned into a singleton view with a *prepared*
    transaction (commit request and votes already broadcast).  The majority
    commits from the votes it holds; the home must not contradict that with
    a unilateral NO_QUORUM abort — it parks in doubt and adopts the commit
    at the heal, so the client sees the truth."""
    cluster = in_doubt_cluster()
    # t=100: submit at home 4.  Writes replicate and ack by t=102; the
    # commit request and the home's own vote land everywhere at t=103.  The
    # partition at t=103.5 then strands the cohorts' votes (sent t=103,
    # due t=104) on the majority side: they commit, the home cannot.
    FaultSchedule(cluster).partition([[0, 1, 2, 3], [4]], at=103.5).heal(at=1000.0)
    cluster.submit(update("T", 4, "x0", 1), at=100.0)
    cluster.submit(update("T2", 0, "x0", 2), at=2000.0)
    result = cluster.run(max_time=100_000.0, stop_when=cluster.await_specs(2))

    assert result.ok
    status = cluster.spec_status("T")
    # The regression this guards: the isolated home used to answer the
    # client NO_QUORUM while the majority committed the transaction.
    assert status.committed
    assert status.last_outcome is not AbortReason.NO_QUORUM
    assert cluster.spec_status("T2").committed
    assert cluster.metrics.rbp_in_doubt >= 1
    # The home's query ran against an empty singleton view and parked until
    # the heal delivered a view with members that knew the outcome.
    assert cluster.trace.count("rbp.query_parked") >= 1
    assert cluster.trace.filter("rbp.in_doubt", tx="T#1")
    assert_no_locks(cluster)
    assert_clean(cluster)


def test_query_answered_by_lagging_member_after_retries():
    """Three cohorts go in doubt at once and the only member that knows the
    outcome answers over a 180ms-slow link — slower than the query timeout,
    so retries fire first.  All three must keep re-asking (not presume),
    ignore the straggling votes that arrive mid-query (the query path has
    taken over), and adopt the commit when the slow answer lands."""
    # All of site 3's outbound links to 0, 1, 2 lag; everything else is
    # fast.  The early detector transient (0 suspects 3 until its first
    # slow heartbeat lands at t=200) settles before the workload starts.
    slow = {(3, 0): 180.0, (3, 1): 180.0, (3, 2): 180.0}
    cluster = in_doubt_cluster(latency=LinkLatency(1.0, slow=slow))
    FaultSchedule(cluster).crash(4, at=258.0)
    # t=250: submit at home 4.  Votes cross by t=254 except 3's votes to
    # 0, 1, 2 (due t=433).  The home and site 3 reach the full tally and
    # commit at t=254; the crash at t=258 leaves 0, 1, 2 in doubt.
    cluster.submit(update("T", 4, "x1", 1), at=250.0)
    cluster.submit(update("T2", 0, "x1", 2), at=2000.0)
    result = cluster.run(max_time=100_000.0, stop_when=cluster.await_specs(2))

    assert result.ok
    assert cluster.spec_status("T").committed
    assert cluster.spec_status("T2").committed
    metrics = cluster.metrics
    assert metrics.rbp_in_doubt == 3
    # Site 3's answers (180ms) outlive the first query timeout (60ms):
    # every querier retried at least once before the answer landed.
    assert metrics.rbp_decision_queries >= 6
    assert metrics.rbp_resolved_by_query_commit == 3
    assert metrics.rbp_resolved_by_presumption == 0

    # The straggling votes from site 3 arrived (t=433) while the queries
    # were open; the renounced vote path must not have decided — the
    # resolutions all came through adopted decisions.
    assert len(cluster.trace.filter("rbp.decision_adopted", outcome="commit")) == 3
    for record in cluster.trace.filter("rbp.in_doubt", tx="T#1"):
        adopted = [
            r
            for r in cluster.trace.filter(
                "rbp.decision_adopted", tx="T#1", outcome="commit"
            )
            if r.source == record.source
        ]
        assert adopted, f"{record.source} never adopted the outcome"
        assert (
            adopted[0].time - record.time
            <= 4 * cluster.config.rbp_decision_query_timeout
        )
    assert_no_locks(cluster)
    assert_clean(cluster)


def test_total_home_loss_falls_back_to_presumed_abort():
    """The home crashes undecided inside a transient partition, taking every
    copy of the outcome with it: its commit request reached exactly one
    cohort, whose YES vote reached nobody.  That cohort's decision query
    finds a full quorum of members that never saw the transaction — the
    provable-no-commit case — and only then presumes abort."""
    cluster = in_doubt_cluster()
    # t=100: submit at home 4; writes buffer (and lock) everywhere by
    # t=101.  The partition at t=102.5 lets the commit request + home vote
    # (sent t=102) reach only site 2; site 2's vote (sent t=103) reaches
    # nobody.  The home crashes undecided; the heal at t=115 is shorter
    # than fd_timeout, so only the crash causes a view change.
    FaultSchedule(cluster).partition([[2, 4], [0, 1, 3]], at=102.5).heal(
        at=115.0
    ).crash(4, at=106.0)
    cluster.submit(update("T", 4, "x0", 1), at=100.0)
    # Same key again: with the old silent wait, site 2's exclusive lock
    # would pin this until the orphan watchdog (t>=1101); the query path
    # frees it within a few hops of the view change (~t=203).
    cluster.submit(update("T2", 0, "x0", 2), at=400.0)
    result = cluster.run(max_time=50_000.0, stop_when=cluster.await_specs(2))

    assert result.ok
    status = cluster.spec_status("T")
    assert status.final and not status.committed
    assert status.last_outcome is AbortReason.SITE_FAILURE  # crashed home
    t2 = cluster.spec_status("T2")
    assert t2.committed
    metrics = cluster.metrics
    assert metrics.rbp_in_doubt == 1
    assert metrics.rbp_resolved_by_presumption == 1
    assert metrics.rbp_resolved_by_query_commit == 0
    assert metrics.rbp_resolved_by_query_abort == 0
    # The non-voting majority dropped the orphaned write at the view change.
    assert cluster.trace.count("rbp.drop_orphan") >= 1

    # The presumption freed the lock long before the watchdog would have.
    adopted = cluster.trace.filter("rbp.presume_abort", tx="T#1")
    assert adopted and all(r.time < 1000.0 for r in adopted)
    assert_no_locks(cluster)
    assert_clean(cluster)


def test_all_in_doubt_survivors_park_until_committer_recovers():
    """The only sites that learned the outcome — the home and the one
    cohort whose tally completed — both crash right after committing.  The
    surviving quorum is made entirely of in-doubt YES voters: nobody can
    *prove* no-commit, so presuming abort would contradict the crashed
    committer's history.  The survivors must park instead, and adopt the
    commit from the committer's durable decision log when it rejoins."""
    # Site 3's outbound links to 0, 1, 2 lag 180ms, so 0, 1, 2 never
    # assemble the full tally before the crashes.  The home (4) and site 3
    # both commit at t=254; 4 crashes at t=258, 3 at t=256.
    slow = {(3, 0): 180.0, (3, 1): 180.0, (3, 2): 180.0}
    cluster = in_doubt_cluster(latency=LinkLatency(1.0, slow=slow))
    FaultSchedule(cluster).crash(3, at=256.0).crash(4, at=258.0).recover(3, at=3000.0)
    cluster.submit(update("T", 4, "x1", 1), at=250.0)
    # Same key, submitted after the recovery settles: proves the adopted
    # commit released the exclusive locks.
    cluster.submit(update("T2", 0, "x1", 2), at=4000.0)
    result = cluster.run(max_time=100_000.0, stop_when=cluster.await_specs(2))

    assert result.ok
    assert cluster.spec_status("T").committed  # home answered before crashing
    assert cluster.spec_status("T2").committed
    metrics = cluster.metrics
    assert metrics.rbp_in_doubt == 3
    # The regression this guards: a full quorum of unknown answers used to
    # presume abort even though every answerer was an in-doubt YES voter
    # and the departed committer held the commit — 1SR divergence.
    assert metrics.rbp_resolved_by_presumption == 0
    assert metrics.rbp_resolved_by_query_abort == 0
    assert metrics.rbp_resolved_by_query_commit == 3
    # The queries parked on the all-YES answer set (no provable no-commit)
    # rather than exhausting retries forever.
    assert cluster.trace.filter("rbp.query_parked", reason="in_doubt_quorum")

    # Every resolution waited for the committer's return at t=3000: the
    # answers came from its durable decision log, nothing guessed earlier.
    adopted = cluster.trace.filter("rbp.decision_adopted", tx="T#1", outcome="commit")
    assert len(adopted) == 3
    assert all(r.time > 3000.0 for r in adopted)
    assert_no_locks(cluster)
    assert_clean(cluster)


def test_vote_watchdog_recovers_home_from_transient_vote_loss():
    """A transient partition (healed well inside the detector timeout, so
    no view ever changes) swallows every cohort vote on its way back to the
    home.  The cohorts hold the full tally and commit; the home's tally is
    stalled forever and, before the vote-phase watchdog existed, the client
    was never answered.  The watchdog re-broadcasts the commit request and
    the cohorts' re-sent (decided) votes complete the home's tally."""
    cluster = in_doubt_cluster()
    # t=100: submit at home 4.  Writes ack by t=102; the commit request and
    # the home's vote land everywhere by t=103.  The partition at t=103.5
    # drops the cohorts' votes (sent t=103, due t=104) toward the home;
    # cohorts 0-3 exchange them and commit at t=104.  The heal at t=150
    # keeps every heartbeat gap under fd_timeout: no view change ever.
    FaultSchedule(cluster).partition([[4], [0, 1, 2, 3]], at=103.5).heal(at=150.0)
    cluster.submit(update("T", 4, "x0", 1), at=100.0)
    cluster.submit(update("T2", 0, "x0", 2), at=2000.0)
    result = cluster.run(max_time=50_000.0, stop_when=cluster.await_specs(2))

    assert result.ok
    status = cluster.spec_status("T")
    assert status.committed  # the client was answered
    assert cluster.spec_status("T2").committed
    metrics = cluster.metrics
    assert metrics.rbp_vote_retries >= 1
    assert metrics.rbp_write_timeouts == 0
    # No view change means no in-doubt machinery: the watchdog alone
    # recovered the tally.
    assert metrics.rbp_in_doubt == 0
    assert metrics.rbp_decision_queries == 0
    retries = cluster.trace.filter("rbp.vote_retry", tx="T#1")
    assert retries and retries[0].time > 150.0  # after the heal, by design
    # The home committed within one round-trip of the first retry.
    outcome = next(o for o in metrics.outcomes if o.tx_id == "T#1")
    assert outcome.end_time <= retries[0].time + 10.0
    assert_no_locks(cluster)
    assert_clean(cluster)


def test_slow_write_rounds_are_not_spuriously_timed_out():
    """The write watchdog times out *quiet periods*, not transactions: a
    three-write transaction over uniformly slow links spends ~1.8s in its
    write phase — longer than ``write_grace`` — but acknowledgments keep
    arriving, so it must commit without ever tripping the watchdog (the
    old once-armed check aborted it at T+write_grace flat)."""
    cluster = in_doubt_cluster(
        latency=LinkLatency(300.0),
        # 300ms links starve an 80ms detector; the watchdogs under test
        # must terminate on their own, without any view change.
        enable_failure_detector=False,
    )
    spec = TransactionSpec.make(
        "T", 4, read_keys=["x0"], writes={"x0": 1, "x1": 2, "x2": 3}
    )
    cluster.submit(spec, at=100.0)
    result = cluster.run(max_time=50_000.0, stop_when=cluster.await_specs(1))

    assert result.ok
    assert cluster.spec_status("T").committed
    metrics = cluster.metrics
    assert metrics.rbp_write_timeouts == 0
    assert metrics.rbp_vote_retries == 0
    outcome = next(o for o in metrics.outcomes if o.committed)
    # Three sequential write rounds (~600ms each) plus 2PC: the commit
    # lands far beyond write_grace, proving the watchdog re-armed through
    # the whole phase instead of firing at T+1000 flat.
    assert outcome.latency > 2000.0
    assert_no_locks(cluster)
    assert_clean(cluster)
