"""Soak test: sustained load with faults injected mid-flight.

One long scenario per protocol: a closed-loop workload runs continuously
while a fault schedule crashes a site, partitions the network, heals it
and recovers the site.  At the end every invariant must hold and the
system must have made progress through every phase.
"""

import pytest

from repro.core.cluster import Cluster, ClusterConfig
from repro.sim.faults import FaultSchedule
from repro.workload.generator import WorkloadConfig
from repro.workload.runner import ClosedLoopRunner


@pytest.mark.parametrize("protocol", ["rbp", "cbp"])
def test_soak_with_fault_timeline(protocol):
    cluster = Cluster(
        ClusterConfig(
            protocol=protocol,
            num_sites=5,
            num_objects=48,
            seed=404,
            enable_failure_detector=True,
            fd_interval=20.0,
            fd_timeout=80.0,
            relay=True,
            cbp_heartbeat=20.0,
            max_attempts=60,
            retry_backoff=8.0,
            checkpoint_interval=500.0,
        )
    )
    schedule = FaultSchedule(cluster).crash(4, at=800.0).recover(4, at=2500.0)
    expected_actions = ["crash", "recover"]
    if protocol == "rbp":
        # Partition-with-live-traffic is exercised only for RBP: its
        # reliable layer keeps no ordering state, so a healed partition
        # needs no flush.  CBP/ABP sequence expectations across a healed
        # partition require a view-synchronous flush the simulation only
        # approximates for crash recovery (see DESIGN.md).
        schedule.partition([[0, 1, 2], [3, 4]], at=4500.0).heal(at=6000.0)
        expected_actions += ["partition", "heal"]
    runner = ClosedLoopRunner(
        cluster,
        WorkloadConfig(
            num_objects=48,
            num_sites=5,
            read_ops=2,
            write_ops=2,
            zipf_theta=0.4,
            readonly_fraction=0.2,
        ),
        mpl=4,
        transactions=80,
        think_time=320.0,  # stretch the run across the fault timeline
    )
    runner.start()
    result = cluster.run(
        max_time=2_000_000.0, stop_when=cluster.await_specs(80)
    )

    assert result.serialization.ok, result.serialization.explain()
    assert result.converged
    # Through crash + partition + heal + recovery the vast majority of the
    # workload commits (transactions homed at faulty/minority sites during
    # their windows may exhaust retries).
    assert result.committed_specs >= 70
    assert result.metrics.readonly_abort_count() == 0
    # The schedule really ran every phase.
    assert [
        e.action for e in sorted(schedule.log, key=lambda e: e.time)
    ] == expected_actions
    # Commits happened after the final fault event: the system recovered.
    last_fault = max(e.time for e in schedule.log)
    last_commit = max(o.end_time for o in result.metrics.committed)
    assert last_commit > last_fault
    # Checkpoints kept running through the faults on the surviving sites.
    assert all(r.checkpoints_taken > 0 for r in cluster.replicas if r.alive)


def test_soak_open_loop_abp():
    """ABP under a long open-loop arrival stream (no faults; throughput
    discipline): everything certifies deterministically."""
    from repro.workload.runner import OpenLoopRunner

    cluster = Cluster(
        ClusterConfig(protocol="abp", num_sites=4, num_objects=96, seed=505)
    )
    runner = OpenLoopRunner(
        cluster,
        WorkloadConfig(
            num_objects=96, num_sites=4, read_ops=2, write_ops=2, readonly_fraction=0.3
        ),
        rate=0.05,
        count=150,
    )
    runner.start()
    result = cluster.run(max_time=5_000_000.0)
    assert result.ok
    assert result.committed_specs + result.failed_specs == 150
    assert result.failed_specs == 0
    # Certification decisions were identical at every site.
    commits = {r.certified_commits for r in cluster.replicas}
    aborts = {r.certified_aborts for r in cluster.replicas}
    assert len(commits) == 1 and len(aborts) == 1
