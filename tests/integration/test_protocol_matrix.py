"""Integration: every protocol x workload combination upholds the paper's
invariants — one-copy serializability, replica convergence, and the
read-only guarantees."""

import pytest

from repro.core.cluster import Cluster, ClusterConfig
from repro.workload import WorkloadConfig
from repro.workload.runner import run_standard_mix

PROTOCOLS = ["rbp", "cbp", "abp", "p2p"]

WORKLOADS = {
    "low_contention": WorkloadConfig(
        num_objects=64, num_sites=4, read_ops=2, write_ops=2, zipf_theta=0.0
    ),
    "hot_spot": WorkloadConfig(
        num_objects=64, num_sites=4, read_ops=2, write_ops=2, zipf_theta=1.1
    ),
    "read_heavy": WorkloadConfig(
        num_objects=64, num_sites=4, read_ops=4, write_ops=1, readonly_fraction=0.6
    ),
    "write_heavy": WorkloadConfig(
        num_objects=64, num_sites=4, read_ops=1, write_ops=4
    ),
}


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_invariants_hold(protocol, workload_name):
    workload = WORKLOADS[workload_name]
    cluster = Cluster(
        ClusterConfig(protocol=protocol, num_sites=4, num_objects=64, seed=101)
    )
    result = run_standard_mix(cluster, workload, transactions=40, mpl=6, max_time=500000)
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged
    assert result.incomplete_specs == 0
    # Paper guarantee: read-only transactions never abort, in any protocol.
    assert result.metrics.readonly_abort_count() == 0


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_final_state_reflects_some_serial_order(protocol):
    """Beyond graph acyclicity: replaying the checker's serial order
    sequentially must land every replica exactly where the cluster did."""
    cluster = Cluster(
        ClusterConfig(protocol=protocol, num_sites=3, num_objects=8, seed=55)
    )
    result = run_standard_mix(
        cluster,
        WorkloadConfig(num_objects=8, num_sites=3, read_ops=1, write_ops=2, zipf_theta=0.5),
        transactions=25,
        mpl=4,
        max_time=500000,
    )
    assert result.ok
    order = cluster.recorder.serial_order()
    assert order is not None
    by_tx = {record.tx: record for record in cluster.recorder.committed}
    replay = {}
    values = {}
    for tx in order:
        record = by_tx[tx]
        for key, version in record.writes:
            replay[key] = replay.get(key, 0) + 1
            assert replay[key] == version, (tx, key, version)
    # Final versions must match every live replica.
    for replica in cluster.replicas:
        for key, version in replay.items():
            assert replica.store.read(key).version == version


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_sequential_transactions_apply_in_submission_order(protocol):
    """With one transaction at a time there is no concurrency: all commit,
    no aborts, and the final value is the last writer's."""
    cluster = Cluster(ClusterConfig(protocol=protocol, num_sites=3, seed=1))
    from repro.core.transaction import TransactionSpec

    for n in range(5):
        cluster.submit(
            TransactionSpec.make(f"t{n}", n % 3, read_keys=["x0"], writes={"x0": n}),
            at=n * 400.0,
        )
    result = cluster.run(max_time=500000)
    assert result.ok
    assert result.committed_specs == 5
    assert not result.metrics.aborted
    for replica in cluster.replicas:
        assert replica.store.read("x0").value == 4
        assert replica.store.read("x0").version == 5


@pytest.mark.parametrize("protocol", ["rbp", "cbp", "abp"])
def test_broadcast_protocols_never_deadlock(protocol):
    """The three paper protocols never leave a waits-for cycle standing;
    checked directly on every lock table after a contended run."""
    cluster = Cluster(
        ClusterConfig(protocol=protocol, num_sites=4, num_objects=6, seed=77)
    )
    result = run_standard_mix(
        cluster,
        WorkloadConfig(num_objects=6, num_sites=4, read_ops=2, write_ops=2, zipf_theta=1.0),
        transactions=40,
        mpl=8,
        max_time=800000,
    )
    assert result.ok
    assert result.metrics.deadlocks_detected == 0
    for replica in cluster.replicas:
        assert replica.locks.find_cycle() is None


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_quiescent_state_audits_clean(protocol):
    """Beyond history correctness: after draining, no site retains lock or
    protocol residue, and every WAL reproduces its store (full audit)."""
    from repro.analysis.audit import assert_clean

    cluster = Cluster(
        ClusterConfig(protocol=protocol, num_sites=4, num_objects=24, seed=303)
    )
    result = run_standard_mix(
        cluster,
        WorkloadConfig(num_objects=24, num_sites=4, read_ops=2, write_ops=2,
                       zipf_theta=0.7, readonly_fraction=0.2),
        transactions=30,
        mpl=6,
        max_time=500000,
    )
    assert result.ok
    cluster.run_for(300.0)
    assert_clean(cluster)
