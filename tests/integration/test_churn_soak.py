"""E13 churn-soak integration cells: pinned counterexamples and the
sweep-layer digest contract.

The three pinned cells are shrunk reproducers from the churn property
test (``tests/properties/test_churn_props.py``).  Each one caught a
distinct protocol bug the first time the soak engine ran, and each stays
pinned so the bug cannot quietly return:

- **cbp / 10 sites / seed 1 — join-eviction race.**  A recovering site's
  JoinRequest admitted it into view N while the coordinator's failure
  detector still suspected it; the next suspicion-driven proposal
  evicted it in view N+1.  Messages multicast during the eviction window
  postdated the state transfer's clock cut — a permanent causal-delivery
  gap (hundreds of messages held back transitively).  Fixed by treating
  the join request as proof of life (``FailureDetector.refresh``).
- **cbp / 20 sites / seed 3 — orphan writer.**  CBP group-commits via
  implicit acknowledgments, so cohorts commit without the initiator; a
  home crashing before ``record_commit`` left installed versions with no
  recorded writer (a 1SR bookkeeping violation).  Fixed by cohort-side
  ``record_commit_provisional`` (ABP and P2P apply paths included).
- **p2p / 20 sites / seed 3 — all-members vote wedge.**  2PC tallies and
  ROWA write rounds waited on *every* view member with no re-evaluation
  on view change, so a voter crashing post-prepare wedged the home
  forever.  Fixed by ``PointToPointReplica.on_view_change``.
"""

from repro.analysis.experiment import run_sweep
from repro.workload.soak import e13_smoke_cell, e13_tiny_cell


def test_cbp_join_eviction_race_cell():
    metrics = e13_smoke_cell("cbp", 10, 1)
    assert metrics["serializable"] == 1.0
    assert metrics["converged"] == 1.0
    assert metrics["unanswered"] == 0.0
    assert metrics["crashes"] == metrics["recoveries"] >= 3.0


def test_cbp_orphan_writer_cell():
    metrics = e13_smoke_cell("cbp", 20, 3)
    assert metrics["serializable"] == 1.0
    assert metrics["converged"] == 1.0
    assert metrics["unanswered"] == 0.0


def test_p2p_vote_wedge_cell():
    metrics = e13_smoke_cell("p2p", 20, 3)
    assert metrics["serializable"] == 1.0
    assert metrics["converged"] == 1.0
    assert metrics["unanswered"] == 0.0


def test_e13_sharded_sweep_digest_matches_serial():
    """The order-canonical merge contract over the churn-soak metric
    shape: ``jobs`` may change wall-clock, never a bit of the digest."""
    kwargs = dict(
        name="e13-digest",
        scenario=e13_tiny_cell,
        parameters=(5, 8),
        protocols=("rbp", "cbp", "abp", "p2p"),
        seeds=(1, 2),
    )
    serial = run_sweep(**kwargs, jobs=1)
    sharded = run_sweep(**kwargs, jobs=4)
    assert sharded.digest() == serial.digest()
    assert sharded.points == serial.points
