"""Integration: the analytical message-cost model (the paper's comparative
claims about acknowledgment elimination) measured exactly.

For one update transaction with w writes on an otherwise idle n-site
cluster (no heartbeats, crash-free, direct dissemination):

- p2p : w writes + w acks + prepare + votes + decision   = (2w+3)(n-1)
- RBP : w writes + w acks + commit request, all (n-1), plus the
        decentralized votes: every site broadcasts to n-1 others = n(n-1)
- CBP : 1 batched write set + 1 commit request            = 2(n-1)
- ABP : 1 commit request + 1 order assignment             = 2(n-1)
"""

import pytest

from repro.core.cluster import Cluster, ClusterConfig
from repro.core.transaction import TransactionSpec


def run_one_update(protocol, num_sites, writes, **overrides):
    config = dict(
        protocol=protocol,
        num_sites=num_sites,
        num_objects=16,
        seed=1,
        cbp_heartbeat=None,
        retry_aborted=False,
    )
    config.update(overrides)
    cluster = Cluster(ClusterConfig(**config))
    spec = TransactionSpec.make(
        "tx", 0, writes={f"x{i}": i for i in range(writes)}
    )
    cluster.submit(spec)
    # Give CBP's implicit acks a nudge: after the update lands, every other
    # site broadcasts one unrelated transaction so echoes exist.
    if protocol == "cbp":
        for site in range(1, num_sites):
            cluster.submit(
                TransactionSpec.make(f"echo{site}", site, writes={f"x{10 + site}": 0}),
                at=200.0 * site,
            )
    result = cluster.run(max_time=500000)
    assert result.serialization.ok
    return cluster, result


@pytest.mark.parametrize("n,w", [(3, 1), (5, 2), (4, 3)])
def test_p2p_message_count(n, w):
    _, result = run_one_update("p2p", n, w)
    assert result.messages_total("p2p.") == (2 * w + 3) * (n - 1)


@pytest.mark.parametrize("n,w", [(3, 1), (5, 2), (4, 3)])
def test_rbp_message_count(n, w):
    _, result = run_one_update("rbp", n, w)
    expected = (2 * w + 1) * (n - 1) + n * (n - 1)
    assert result.messages_total("rbp.") == expected


@pytest.mark.parametrize("n", [3, 5])
def test_cbp_message_count_excluding_echo_traffic(n):
    cluster, result = run_one_update("cbp", n, 2)
    # Count only the first transaction's own messages: one batched write
    # set and one commit request, each to n-1 peers.  The echo helpers add
    # their own 2(n-1) each; subtract them by counting per-kind totals.
    total_updates = 1 + (n - 1)  # tx + one echo per other site
    assert result.messages_by_kind["cbp.write"] == total_updates * (n - 1)
    assert result.messages_by_kind["cbp.commit_request"] == total_updates * (n - 1)
    assert result.messages_by_kind.get("cbp.nack", 0) == 0
    # Zero acknowledgment messages of any sort:
    assert not any("ack" in kind for kind in result.messages_by_kind)


@pytest.mark.parametrize("n", [3, 5])
def test_abp_message_count(n):
    _, result = run_one_update("abp", n, 2)
    assert result.messages_by_kind["abp.commit_request"] == n - 1
    assert result.messages_by_kind["abcast.order"] == n - 1
    assert not any("ack" in kind for kind in result.messages_by_kind)
    assert not any("vote" in kind for kind in result.messages_by_kind)


def test_protocol_ordering_of_total_cost():
    """The paper's qualitative ranking for a single update transaction:
    ABP <= CBP < p2p < RBP (RBP pays the quadratic decentralized votes)."""
    n, w = 5, 2
    totals = {}
    for protocol in ("rbp", "cbp", "abp", "p2p"):
        cluster, result = run_one_update(protocol, n, w)
        if protocol == "cbp":
            # isolate the measured transaction's share (echo helpers ran too)
            updates = 1 + (n - 1)
            totals[protocol] = result.messages_total("cbp.") // updates
        else:
            totals[protocol] = result.messages_total(f"{protocol}.") + (
                result.messages_by_kind.get("abcast.order", 0)
            )
    assert totals["abp"] <= totals["cbp"] < totals["p2p"] < totals["rbp"]


def test_readonly_transactions_send_zero_messages_every_protocol():
    for protocol in ("rbp", "cbp", "abp", "p2p"):
        cluster = Cluster(
            ClusterConfig(
                protocol=protocol, num_sites=4, seed=2, cbp_heartbeat=None
            )
        )
        cluster.submit(TransactionSpec.make("ro", 1, read_keys=["x0", "x1"]))
        result = cluster.run(max_time=1000.0)
        assert cluster.spec_status("ro").committed
        protocol_msgs = {
            k: v
            for k, v in result.messages_by_kind.items()
            if not k.startswith(("fd.", "membership", "abcast.token"))
        }
        assert protocol_msgs == {}, (protocol, protocol_msgs)
