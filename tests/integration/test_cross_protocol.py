"""Cross-protocol equivalence on conflict-free workloads.

When transactions touch disjoint keys there is nothing for the protocols
to disagree about: every protocol must commit everything on the first
attempt and land every replica in the *identical, predictable* final
state.  This pins down the protocols' common semantics (the differences
measured elsewhere are purely about conflict handling and cost).
"""

import pytest

from repro.core.cluster import Cluster, ClusterConfig
from repro.core.transaction import TransactionSpec

PROTOCOLS = ["rbp", "cbp", "abp", "p2p"]


def disjoint_workload(num_txs=24, sites=4):
    """Each transaction owns its own pair of keys: zero conflicts."""
    specs = []
    for n in range(num_txs):
        keys = [f"x{2 * n}", f"x{2 * n + 1}"]
        specs.append(
            TransactionSpec.make(
                f"T{n}",
                n % sites,
                read_keys=keys,
                writes={keys[0]: f"v{n}a", keys[1]: f"v{n}b"},
            )
        )
    return specs


def expected_state(specs):
    state = {}
    for spec in specs:
        state.update(spec.writes_dict())
    return state


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_conflict_free_workload_is_abort_free_and_predictable(protocol):
    specs = disjoint_workload()
    cluster = Cluster(
        ClusterConfig(protocol=protocol, num_sites=4, num_objects=48, seed=7)
    )
    for index, spec in enumerate(specs):
        cluster.submit(spec, at=index * 3.0)  # heavy overlap, no conflicts
    result = cluster.run(max_time=1_000_000)
    assert result.ok
    assert result.committed_specs == len(specs)
    assert not result.metrics.aborted  # zero conflicts => zero aborts
    final = expected_state(specs)
    for replica in cluster.replicas:
        for key, value in final.items():
            assert replica.store.read(key).value == value
            assert replica.store.read(key).version == 1


def test_all_protocols_agree_on_final_state():
    specs = disjoint_workload()
    final_states = {}
    for protocol in PROTOCOLS:
        cluster = Cluster(
            ClusterConfig(protocol=protocol, num_sites=4, num_objects=48, seed=7)
        )
        for index, spec in enumerate(specs):
            cluster.submit(spec, at=index * 3.0)
        result = cluster.run(max_time=1_000_000)
        assert result.ok
        final_states[protocol] = cluster.replicas[0].store.digest()
    assert len(set(final_states.values())) == 1


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_serial_single_key_counter(protocol):
    """A strictly sequential read-increment-write chain yields an exact
    counter value under every protocol — the no-lost-updates sanity core."""
    cluster = Cluster(ClusterConfig(protocol=protocol, num_sites=3, seed=8))
    increments = 10

    def submit_increment(n, at):
        def build():
            current = cluster.replicas[n % 3].store.read("x0").value
            cluster.submit(
                TransactionSpec.make(
                    f"inc{n}", n % 3, read_keys=["x0"], writes={"x0": current + 1}
                ),
                at=cluster.engine.now,
            )

        cluster.engine.schedule_at(at, build)

    for n in range(increments):
        submit_increment(n, at=n * 400.0)
    result = cluster.run(
        max_time=1_000_000, stop_when=cluster.await_specs(increments)
    )
    assert result.ok
    assert result.committed_specs == increments
    for replica in cluster.replicas:
        assert replica.store.read("x0").value == increments
