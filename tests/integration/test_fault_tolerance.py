"""Integration: crashes, partitions, views and recovery (experiment E9's
assertions as tests)."""

import pytest

from repro.core.cluster import Cluster, ClusterConfig
from repro.core.transaction import AbortReason, TransactionSpec


def fault_config(protocol, num_sites=5, **overrides):
    defaults = dict(
        protocol=protocol,
        num_sites=num_sites,
        num_objects=16,
        seed=13,
        enable_failure_detector=True,
        fd_interval=20.0,
        fd_timeout=80.0,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def spec(name, home, key, value=None):
    if value is None:
        return TransactionSpec.make(name, home, read_keys=[key])
    return TransactionSpec.make(name, home, read_keys=[key], writes={key: value})


@pytest.mark.parametrize("protocol", ["rbp", "cbp"])
def test_majority_continues_after_crash(protocol):
    cluster = Cluster(fault_config(protocol))
    cluster.crash_site(4, at=50.0)
    for n in range(8):
        cluster.submit(spec(f"t{n}", n % 4, f"x{n}", n), at=500.0 + n * 50.0)
    result = cluster.run(max_time=100000)
    assert result.ok
    assert result.committed_specs == 8


def test_abp_survives_non_sequencer_crash():
    cluster = Cluster(fault_config("abp"))
    cluster.crash_site(3, at=50.0)  # site 0 (the sequencer) stays up
    for n in range(6):
        cluster.submit(spec(f"t{n}", n % 3, f"x{n}", n), at=500.0 + n * 50.0)
    result = cluster.run(max_time=100000)
    assert result.ok
    assert result.committed_specs == 6


@pytest.mark.parametrize("protocol", ["rbp", "cbp"])
def test_crash_mid_transaction_does_not_corrupt(protocol):
    """Crashing the initiator while its transaction is in flight must leave
    the survivors consistent: the transaction either committed everywhere
    (among survivors) or nowhere."""
    cluster = Cluster(fault_config(protocol, retry_aborted=False))
    cluster.submit(spec("inflight", 4, "x0", "risky"), at=100.0)
    cluster.crash_site(4, at=100.4)  # mid-protocol
    for n in range(4):
        cluster.submit(spec(f"after{n}", n, f"x{n + 1}", n), at=1000.0 + n * 50.0)
    result = cluster.run(max_time=100000)
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged
    survivors = [r for r in cluster.replicas if r.alive]
    values = {r.store.read("x0").value for r in survivors}
    assert len(values) == 1  # all-or-nothing among survivors


def test_minority_partition_blocks_updates_but_not_reads():
    cluster = Cluster(fault_config("rbp", retry_aborted=False))
    cluster.engine.schedule_at(10.0, cluster.partition, [[0, 1, 2], [3, 4]])
    cluster.submit(spec("maj_upd", 0, "x0", 1), at=500.0)
    cluster.submit(spec("min_upd", 3, "x1", 2), at=500.0)
    cluster.submit(spec("min_read", 4, "x2"), at=500.0)
    result = cluster.run(max_time=50000)
    assert cluster.spec_status("maj_upd").committed
    assert cluster.spec_status("min_upd").last_outcome is AbortReason.NO_QUORUM
    assert cluster.spec_status("min_read").committed


def test_heal_rejoins_and_state_transfers():
    cluster = Cluster(fault_config("rbp", retry_aborted=False))
    cluster.engine.schedule_at(10.0, cluster.partition, [[0, 1, 2], [3, 4]])
    cluster.submit(spec("while_split", 1, "x0", "majority-write"), at=500.0)
    cluster.run(max_time=20000)
    cluster.heal_partition()
    cluster.submit(spec("after_heal", 3, "x1", "rejoined"), at=cluster.engine.now + 1000.0)
    result = cluster.run(max_time=100000)
    assert result.ok
    assert cluster.spec_status("after_heal").committed
    for replica in cluster.replicas:
        assert replica.store.read("x0").value == "majority-write"


def test_crash_recover_cycle_converges():
    cluster = Cluster(fault_config("rbp"))
    cluster.crash_site(2, at=50.0)
    cluster.submit(spec("during", 0, "x0", "v1"), at=500.0)
    cluster.run(max_time=20000)
    cluster.recover_site(2)
    cluster.submit(spec("post", 2, "x1", "v2"), at=cluster.engine.now + 1000.0)
    result = cluster.run(max_time=100000)
    assert result.ok
    assert result.committed_specs == 2
    assert cluster.replicas[2].store.read("x0").value == "v1"


def test_wal_replay_matches_store_after_run():
    """Every replica's WAL, replayed from scratch, reproduces its store —
    even after faults (the recovery fidelity check)."""
    from repro.db.storage import VersionedStore

    cluster = Cluster(fault_config("rbp"))
    for n in range(6):
        cluster.submit(spec(f"t{n}", n % 5, f"x{n}", n), at=100.0 + n * 100.0)
    result = cluster.run(max_time=100000)
    assert result.ok
    for replica in cluster.replicas:
        fresh = VersionedStore()
        fresh.initialize(cluster.keys)
        replica.wal.replay(fresh)
        assert fresh.digest() == replica.store.digest()


def test_abp_sequencer_takeover_when_quiesced():
    """Crashing the sequencer between transactions: the next-lowest site
    takes over the ordering role and later commits proceed (the takeover
    is best-effort under in-flight traffic — see DESIGN.md — but must be
    seamless when the order is quiescent)."""
    cluster = Cluster(
        fault_config("abp", num_sites=4, relay=True, fd_interval=15.0, fd_timeout=60.0)
    )
    cluster.submit(spec("pre", 1, "x0", "before"), at=100.0)
    cluster.run(max_time=2000)
    cluster.crash_site(0)  # the sequencer
    cluster.submit(
        spec("post", 2, "x1", "after"), at=cluster.engine.now + 500.0
    )
    result = cluster.run(max_time=100000, stop_when=cluster.await_specs(2))
    assert result.ok
    assert cluster.spec_status("post").committed
    # The new sequencer is the lowest surviving member.
    survivors = [t for t in cluster.totals if cluster.replicas[t.site].alive]
    assert any(t.is_sequencer and t.site == 1 for t in survivors)
