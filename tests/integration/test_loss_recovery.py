"""Integration: the ARQ transport keeps every protocol correct through
packet loss combined with crashes, recovery, and partition flaps.

These are the tier-1 counterparts of the E12 loss-sweep benchmark: every
client gets an answer (no silent FIFO stalls), histories stay 1SR, and
replicas converge — with the transport, not protocol-level retries, doing
the repair work."""

import pytest

from repro.core.cluster import Cluster, ClusterConfig
from repro.core.transaction import TransactionSpec
from repro.sim.faults import FaultSchedule

PROTOCOLS = ["rbp", "cbp", "abp", "p2p"]


def lossy_config(protocol, **overrides):
    defaults = dict(
        protocol=protocol,
        num_sites=5,
        num_objects=32,
        seed=17,
        loss_rate=0.05,
        enable_failure_detector=True,
        fd_interval=20.0,
        fd_timeout=150.0,
        relay=True,
        max_attempts=40,
        retry_backoff=5.0,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def batch(cluster, tag, count, homes, start, spacing=40.0):
    for n in range(count):
        key = f"x{(n * 5) % 32}"
        cluster.submit(
            TransactionSpec.make(
                f"{tag}{n}", homes[n % len(homes)], read_keys=[key],
                writes={key: f"{tag}{n}"},
            ),
            at=start + n * spacing,
        )


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_crash_recovery_under_loss(protocol):
    """Crash + recover a site while every link drops 5% of datagrams: all
    four protocols answer every client and converge."""
    cluster = Cluster(lossy_config(protocol))
    batch(cluster, "before", 8, [0, 1, 2, 3, 4], start=100.0)
    cluster.crash_site(4, at=700.0)
    batch(cluster, "during", 8, [0, 1, 2, 3], start=1400.0)
    cluster.recover_site(4, at=3000.0)
    batch(cluster, "after", 8, [0, 1, 2, 3, 4], start=4200.0)
    result = cluster.run(max_time=500_000.0, stop_when=cluster.await_specs(24))
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged
    assert result.incomplete_specs == 0  # zero unanswered clients
    assert result.network_stats["retransmissions"] > 0  # ARQ did repair work


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_partition_flaps_under_loss(protocol):
    """Short partition flaps (below the detector timeout, so no view ever
    changes) drop datagrams that the transport must repair after each heal;
    without ARQ these stalls were retired by the write-grace watchdog."""
    cluster = Cluster(lossy_config(protocol, loss_rate=0.02))
    FaultSchedule(cluster).flap(
        [[0, 1, 2], [3, 4]], at=400.0, hold=50.0, gap=400.0, cycles=3
    )
    batch(cluster, "t", 12, [0, 1, 2, 3, 4], start=100.0, spacing=120.0)
    result = cluster.run(max_time=500_000.0, stop_when=cluster.await_specs(12))
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged
    assert result.incomplete_specs == 0
    assert result.committed_specs == 12  # flaps never surfaced to clients
    if protocol == "rbp":
        # The repaired links finish write rounds instead of timing them out.
        assert result.metrics.rbp_write_timeouts == 0


def test_lossy_faulty_run_is_deterministic():
    """Loss, retransmission, backoff and recovery all draw from injected
    streams and simulated timers only: identical builds replay identically."""

    def run_once():
        cluster = Cluster(lossy_config("rbp"))
        cluster.crash_site(4, at=500.0)
        cluster.recover_site(4, at=2000.0)
        batch(cluster, "t", 8, [0, 1, 2, 3], start=100.0)
        result = cluster.run(max_time=500_000.0, stop_when=cluster.await_specs(8))
        return (
            result.committed_specs,
            result.network_stats["retransmissions"],
            cluster.network.stats.sent,
            cluster.replicas[0].store.digest(),
            cluster.engine.now,
        )

    assert run_once() == run_once()
