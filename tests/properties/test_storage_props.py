"""Property-based tests for the multiversioned store."""

from hypothesis import given, settings, strategies as st

from repro.db.storage import VersionedStore

KEYS = ("a", "b", "c")

operations = st.lists(
    st.tuples(st.sampled_from(KEYS), st.integers(-1000, 1000)),
    min_size=0,
    max_size=30,
)


def build(ops, history_limit=16):
    store = VersionedStore(history_limit=history_limit)
    store.initialize(KEYS, value=0)
    for index, (key, value) in enumerate(ops):
        store.install(key, value, f"T{index}")
    return store


@settings(max_examples=200, deadline=None)
@given(operations)
def test_versions_dense_and_latest_wins(ops):
    store = build(ops)
    per_key_writes = {key: [v for k, v in ops if k == key] for key in KEYS}
    for key in KEYS:
        latest = store.read(key)
        assert latest.version == len(per_key_writes[key])
        expected = per_key_writes[key][-1] if per_key_writes[key] else 0
        assert latest.value == expected


@settings(max_examples=200, deadline=None)
@given(operations)
def test_retained_versions_readable_in_order(ops):
    store = build(ops, history_limit=8)
    for key in KEYS:
        latest = store.read(key).version
        lowest_retained = max(0, latest - 7)
        values = [
            store.read_version(key, v).version
            for v in range(lowest_retained, latest + 1)
        ]
        assert values == list(range(lowest_retained, latest + 1))


@settings(max_examples=100, deadline=None)
@given(operations)
def test_snapshot_roundtrip_preserves_digest(ops):
    store = build(ops)
    copy = VersionedStore()
    copy.load_snapshot(store.export_snapshot())
    assert copy.digest() == store.digest()


@settings(max_examples=100, deadline=None)
@given(operations, operations)
def test_clone_then_diverge(ops_a, ops_b):
    store = build(ops_a)
    clone = VersionedStore()
    clone.clone_from(store)
    assert clone.digest() == store.digest()
    for index, (key, value) in enumerate(ops_b):
        clone.install(key, value, f"X{index}")
    # The original never changes underneath the clone.
    assert store.digest() == build(ops_a).digest()


@settings(max_examples=100, deadline=None)
@given(operations)
def test_read_at_or_before_is_floor(ops):
    store = build(ops, history_limit=64)
    for key in KEYS:
        latest = store.read(key).version
        for probe in range(latest + 2):
            got = store.read_at_or_before(key, probe).version
            assert got <= probe
            assert got <= latest
            if probe <= latest:
                assert got == probe
