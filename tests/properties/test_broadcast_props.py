"""Property-based tests for the broadcast stack's ordering guarantees.

Hypothesis generates random broadcast schedules (who sends when, and
which deliveries trigger reply broadcasts); the tests then verify the
layer's contract over the *observed* happens-before relation:

- reliable: every correct site delivers every message exactly once;
- causal: if site s broadcast m2 after delivering m1, every site
  delivers m1 before m2 (and per-sender FIFO);
- total: all sites deliver ordered messages in one identical sequence
  that also respects the causal relation above.
"""

from dataclasses import dataclass

from hypothesis import HealthCheck, given, settings, strategies as st

from tests.conftest import BroadcastHarness

NUM_SITES = 3


@dataclass(frozen=True)
class Msg:
    uid: int
    sender: int
    kind: str = "msg"


schedule_strategy = st.lists(
    st.tuples(
        st.integers(0, NUM_SITES - 1),  # sender
        st.floats(min_value=0.0, max_value=50.0),  # send time
        st.booleans(),  # triggers a reply from the receiver site (sender+1)
    ),
    min_size=1,
    max_size=15,
)

SETTINGS = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def run_schedule(stack, schedule, seed=0):
    h = BroadcastHarness(num_sites=NUM_SITES, stack=stack, seed=seed)
    uid_counter = [1000]
    #: causal_pairs[(a, b)] means message a happened-before message b.
    causal_pairs = []
    delivery_log = [[] for _ in range(NUM_SITES)]

    def instrument(site):
        def deliver(*args):
            if stack == "causal":
                message, envelope = args
                payload = envelope.payload
            elif stack == "total":
                payload, envelope, idx = args
                if idx is None and payload is None:
                    return
            else:
                message = args[0]
                payload = message.payload
            delivery_log[site].append(payload.uid)
            if payload.uid in reply_on.get(site, set()):
                reply = Msg(uid_counter[0], site)
                uid_counter[0] += 1
                causal_pairs.append((payload.uid, reply.uid))
                broadcast(site, reply)

        return deliver

    sent_order: dict[int, list[int]] = {site: [] for site in range(NUM_SITES)}

    def broadcast(site, payload):
        sent_order[site].append(payload.uid)
        h.layers[site].broadcast(payload)

    reply_on: dict[int, set[int]] = {}
    for site in range(NUM_SITES):
        h.layers[site].set_deliver(instrument(site))

    for index, (sender, at, wants_reply) in enumerate(schedule):
        payload = Msg(index, sender)
        if wants_reply:
            replier = (sender + 1) % NUM_SITES
            reply_on.setdefault(replier, set()).add(index)
        h.engine.schedule_at(max(at, h.engine.now), broadcast, sender, payload)

    h.run(until=10000.0)
    return delivery_log, causal_pairs, sent_order


@SETTINGS
@given(schedule=schedule_strategy)
def test_reliable_delivers_everything_exactly_once(schedule):
    logs, _, _ = run_schedule("reliable", schedule)
    expected = len(schedule)  # replies only exist in instrumented stacks
    for log in logs:
        originals = [uid for uid in log if uid < 1000]
        assert sorted(originals) == sorted(range(expected))
        assert len(log) == len(set(log))


@SETTINGS
@given(schedule=schedule_strategy)
def test_causal_order_respected(schedule):
    logs, causal_pairs, sent_order = run_schedule("causal", schedule)
    # Every site delivered everything...
    sizes = {len(log) for log in logs}
    assert len(sizes) == 1
    for log in logs:
        assert len(log) == len(set(log))
        # ...with every observed happens-before pair in order.
        position = {uid: i for i, uid in enumerate(log)}
        for before, after in causal_pairs:
            assert position[before] < position[after], (before, after, log)
    # Per-sender FIFO: each site's delivery order of one sender's
    # messages matches the order that sender actually broadcast them.
    for log in logs:
        for sender in range(NUM_SITES):
            own = set(sent_order[sender])
            delivered = [uid for uid in log if uid in own]
            assert delivered == sent_order[sender]


@SETTINGS
@given(schedule=schedule_strategy)
def test_total_order_identical_and_causal(schedule):
    logs, causal_pairs, _ = run_schedule("total", schedule)
    assert all(log == logs[0] for log in logs)
    position = {uid: i for i, uid in enumerate(logs[0])}
    for before, after in causal_pairs:
        assert position[before] < position[after]


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(schedule=schedule_strategy)
def test_total_order_survives_lossy_links(schedule):
    """The ordering guarantee is unchanged when the ARQ transport has to
    recover from 20% message loss underneath."""
    logs, causal_pairs, _ = run_schedule("total", schedule, seed=9)
    lossy_logs, lossy_pairs, _ = run_schedule_lossy("total", schedule)
    assert all(log == lossy_logs[0] for log in lossy_logs)
    position = {uid: i for i, uid in enumerate(lossy_logs[0])}
    for before, after in lossy_pairs:
        assert position[before] < position[after]


def run_schedule_lossy(stack, schedule):
    import tests.properties.test_broadcast_props as me

    # Same harness with loss enabled; reuse run_schedule's machinery by
    # temporarily swapping the harness factory parameters.
    from tests.conftest import BroadcastHarness

    original = me.BroadcastHarness

    def lossy_factory(**kwargs):
        kwargs["loss_rate"] = 0.2
        return original(**kwargs)

    me.BroadcastHarness = lossy_factory
    try:
        return run_schedule(stack, schedule, seed=9)
    finally:
        me.BroadcastHarness = original
