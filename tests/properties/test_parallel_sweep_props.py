"""Property-based parallel-sweep determinism: for any seed set, sharding a
sweep across worker processes must produce the byte-identical measurement
digest the serial runner produces — for every protocol.

This is the contract the whole order-canonical merge layer exists for
(sorted-by-seed folds, ``math.fsum``, mergeable quantile/Welford partials):
``jobs`` may only change wall-clock, never a single bit of output.
Examples are kept small — each one runs real simulated clusters for all
four protocols, twice (serial and sharded).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.experiment import run_sweep
from repro.core.cluster import PROTOCOLS, Cluster, ClusterConfig
from repro.workload import WorkloadConfig
from repro.workload.runner import run_standard_mix


def _tiny_cell(protocol, parameter, seed):
    """One small but real simulation per cell; module-level so the
    process-pool path can pickle it."""
    cluster = Cluster(
        ClusterConfig(protocol=protocol, num_sites=parameter, num_objects=8, seed=seed)
    )
    result = run_standard_mix(
        cluster,
        WorkloadConfig(num_objects=8, num_sites=parameter, read_ops=1, write_ops=1),
        transactions=6,
        mpl=2,
    )
    assert result.ok
    return {
        "commits": float(result.committed_specs),
        "messages": float(result.network_stats["sent"]),
        "p50 latency (ms)": result.metrics.commit_latency(read_only=False).p50,
    }


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seeds=st.lists(st.integers(0, 30), min_size=1, max_size=3, unique=True),
)
def test_sharded_sweep_digest_matches_serial_for_every_protocol(seeds):
    kwargs = dict(
        name="prop",
        scenario=_tiny_cell,
        parameters=(2,),
        protocols=PROTOCOLS,
        seeds=tuple(seeds),
    )
    serial = run_sweep(**kwargs, jobs=1)
    sharded = run_sweep(**kwargs, jobs=4)
    assert sharded.digest() == serial.digest()
    assert sharded.points == serial.points
