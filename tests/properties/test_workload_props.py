"""Property-based tests for workload generation invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.workload.generator import WorkloadConfig, WorkloadGenerator

configs = st.builds(
    WorkloadConfig,
    num_objects=st.integers(min_value=8, max_value=128),
    num_sites=st.integers(min_value=1, max_value=8),
    read_ops=st.integers(min_value=0, max_value=4),
    write_ops=st.integers(min_value=1, max_value=4),
    readonly_fraction=st.floats(min_value=0.0, max_value=1.0),
    zipf_theta=st.floats(min_value=0.0, max_value=1.5),
    rmw=st.booleans(),
)


@settings(max_examples=150, deadline=None)
@given(configs, st.integers(0, 2**32))
def test_specs_always_well_formed(config, seed):
    generator = WorkloadGenerator(config, random.Random(seed))
    for spec in generator.stream(20):
        # Keys exist in the database.
        for key in list(spec.read_keys) + list(spec.write_keys):
            assert 0 <= int(key[1:]) < config.num_objects
        # Homes are valid sites.
        assert 0 <= spec.home < config.num_sites
        # No duplicate keys within a set.
        assert len(set(spec.read_keys)) == len(spec.read_keys)
        assert len(set(spec.write_keys)) == len(spec.write_keys)
        if not spec.read_only:
            assert len(spec.write_keys) == config.write_ops
            if config.rmw:
                assert set(spec.write_keys) <= set(spec.read_keys)


@settings(max_examples=50, deadline=None)
@given(configs, st.integers(0, 2**32))
def test_generation_deterministic_per_seed(config, seed):
    a = WorkloadGenerator(config, random.Random(seed))
    b = WorkloadGenerator(config, random.Random(seed))
    assert list(a.stream(15)) == list(b.stream(15))


@settings(max_examples=50, deadline=None)
@given(configs, st.integers(0, 2**32))
def test_names_unique_and_sequential(config, seed):
    generator = WorkloadGenerator(config, random.Random(seed))
    names = [spec.name for spec in generator.stream(25)]
    assert names == [f"T{i}" for i in range(1, 26)]


@settings(max_examples=50, deadline=None)
@given(configs, st.integers(0, 2**32))
def test_write_values_globally_unique(config, seed):
    """Distinct write values make lost updates detectable by value."""
    generator = WorkloadGenerator(config, random.Random(seed))
    values = [
        value
        for spec in generator.stream(25)
        for value in spec.writes_dict().values()
    ]
    assert len(values) == len(set(values))
