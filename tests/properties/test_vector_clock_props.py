"""Property-based tests for vector clocks."""

from hypothesis import given, strategies as st

from repro.broadcast.vector_clock import VectorClock

clock_entries = st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=8)


def paired_clocks(size=4):
    entries = st.integers(min_value=0, max_value=50)
    return st.tuples(
        st.lists(entries, min_size=size, max_size=size),
        st.lists(entries, min_size=size, max_size=size),
    )


@given(clock_entries)
def test_le_reflexive(entries):
    vc = VectorClock(entries)
    assert vc <= vc
    assert not vc < vc


@given(paired_clocks())
def test_exactly_one_relation_holds(pair):
    a, b = VectorClock(pair[0]), VectorClock(pair[1])
    relations = [a < b, b < a, a == b, a.concurrent_with(b)]
    assert relations.count(True) == 1


@given(paired_clocks())
def test_merge_is_upper_bound(pair):
    a, b = VectorClock(pair[0]), VectorClock(pair[1])
    m = a.merge(b)
    assert a <= m and b <= m


@given(paired_clocks())
def test_merge_commutative(pair):
    a, b = VectorClock(pair[0]), VectorClock(pair[1])
    assert a.merge(b) == b.merge(a)


@given(paired_clocks(), st.lists(st.integers(0, 50), min_size=4, max_size=4))
def test_merge_is_least_upper_bound(pair, other):
    a, b = VectorClock(pair[0]), VectorClock(pair[1])
    c = VectorClock(other)
    if a <= c and b <= c:
        assert a.merge(b) <= c


@given(clock_entries, st.data())
def test_increment_strictly_advances(entries, data):
    vc = VectorClock(entries)
    site = data.draw(st.integers(0, len(entries) - 1))
    assert vc < vc.increment(site)


@given(paired_clocks(), st.lists(st.integers(0, 50), min_size=4, max_size=4))
def test_happens_before_transitive(pair, third):
    a, b = VectorClock(pair[0]), VectorClock(pair[1])
    c = VectorClock(third)
    if a < b and b < c:
        assert a < c


@given(paired_clocks())
def test_concurrency_symmetric(pair):
    a, b = VectorClock(pair[0]), VectorClock(pair[1])
    assert a.concurrent_with(b) == b.concurrent_with(a)


@given(clock_entries, st.data())
def test_dominates_entry_consistent_with_indexing(entries, data):
    vc = VectorClock(entries)
    site = data.draw(st.integers(0, len(entries) - 1))
    value = data.draw(st.integers(0, 60))
    assert vc.dominates_entry(site, value) == (vc[site] >= value)
