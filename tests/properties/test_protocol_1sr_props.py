"""The flagship property: randomly generated concurrent workloads, run
through each of the paper's protocols, always produce one-copy serializable
histories and convergent replicas.

This is the executable form of the paper's correctness theorems.  Each
hypothesis example generates a full workload (shapes, homes, submission
times) and runs the complete simulated cluster.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.audit import assert_clean
from repro.core.cluster import Cluster, ClusterConfig
from repro.core.transaction import TransactionSpec
from repro.sim.faults import FaultSchedule

KEYS = [f"x{i}" for i in range(6)]

tx_strategy = st.tuples(
    st.sets(st.sampled_from(KEYS), max_size=3),  # read keys
    st.sets(st.sampled_from(KEYS), max_size=2),  # write keys
    st.integers(min_value=0, max_value=2),  # home site
    st.floats(min_value=0.0, max_value=30.0),  # submit time
)

workload_strategy = st.lists(tx_strategy, min_size=1, max_size=10)

COMMON = dict(
    num_sites=3,
    num_objects=len(KEYS),
    seed=5,
    retry_aborted=True,
    max_attempts=10,
    retry_backoff=5.0,
    # Keep the baseline's presumed-deadlock machinery fast so hypothesis
    # examples stay cheap.
    p2p_write_timeout=120.0,
    p2p_deadlock_interval=5.0,
)

PROTOCOL_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_workload(protocol, workload, **overrides):
    cluster = Cluster(ClusterConfig(protocol=protocol, **{**COMMON, **overrides}))
    for index, (reads, writes, home, at) in enumerate(workload):
        spec = TransactionSpec.make(
            f"T{index}",
            home,
            read_keys=sorted(reads | writes),
            writes={key: f"T{index}v" for key in sorted(writes)},
        )
        cluster.submit(spec, at=at)
    return cluster, cluster.run(max_time=1_000_000.0)


@pytest.mark.parametrize("protocol", ["rbp", "cbp", "abp", "p2p"])
@PROTOCOL_SETTINGS
@given(workload=workload_strategy)
def test_random_workloads_are_one_copy_serializable(protocol, workload):
    cluster, result = run_workload(protocol, workload)
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged
    assert result.incomplete_specs == 0


@PROTOCOL_SETTINGS
@given(workload=workload_strategy)
def test_cbp_per_op_mode_is_one_copy_serializable(workload):
    cluster, result = run_workload("cbp", workload, cbp_per_op=True)
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged


@PROTOCOL_SETTINGS
@given(workload=workload_strategy)
def test_abp_shipped_variant_is_one_copy_serializable(workload):
    cluster, result = run_workload("abp", workload, abp_variant="shipped")
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged


@PROTOCOL_SETTINGS
@given(workload=workload_strategy)
def test_abp_locked_variant_is_one_copy_serializable(workload):
    cluster, result = run_workload("abp", workload, abp_variant="locked")
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged
    assert result.incomplete_specs == 0


# One fault, injected at a random moment spanning every 2PC stage of the
# random workload (pre-write, mid-write-round, between the commit request
# and the votes, post-decision), and always repaired — so termination is
# checkable, not just safety.
fault_strategy = st.tuples(
    st.sampled_from(["crash", "partition"]),
    st.integers(min_value=0, max_value=3),  # victim site
    st.floats(min_value=0.0, max_value=120.0),  # injection time
    st.floats(min_value=200.0, max_value=1000.0),  # outage duration
)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workload=workload_strategy, fault=fault_strategy)
def test_faults_at_random_2pc_stages_preserve_1sr_and_terminate(workload, fault):
    """Crashing or isolating a random site at a random 2PC stage must leave
    the history one-copy serializable, every client answered, and — after
    the repair plus the decision-query machinery settles — no cohort stuck
    on a transaction it cannot terminate (no held locks, no open tallies or
    queries on any live replica)."""
    kind, victim, at, duration = fault
    cluster = Cluster(
        ClusterConfig(
            protocol="rbp",
            num_sites=4,
            num_objects=len(KEYS),
            seed=5,
            retry_aborted=True,
            max_attempts=10,
            retry_backoff=5.0,
            enable_failure_detector=True,
            fd_interval=20.0,
            fd_timeout=80.0,
            relay=True,
        )
    )
    schedule = FaultSchedule(cluster)
    if kind == "crash":
        schedule.crash(victim, at=at).recover(victim, at=at + duration)
    else:
        others = [site for site in range(4) if site != victim]
        schedule.partition([[victim], others], at=at).heal(at=at + duration)
    for index, (reads, writes, home, submit_at) in enumerate(workload):
        spec = TransactionSpec.make(
            f"T{index}",
            home,
            read_keys=sorted(reads | writes),
            writes={key: f"T{index}v" for key in sorted(writes)},
        )
        cluster.submit(spec, at=submit_at)
    result = cluster.run(
        max_time=1_000_000.0, stop_when=cluster.await_specs(len(workload))
    )
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged
    assert result.incomplete_specs == 0
    # Let the repair and the slowest cleanup paths (orphan watchdog, its
    # in-doubt escalation, a parked query restarted by the heal view) run
    # to quiescence, then audit for stuck cohorts.
    cluster.run_for(3000.0)
    result = cluster.result()
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged
    assert_clean(cluster)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workload=workload_strategy)
def test_lossy_network_preserves_1sr(workload):
    """Message loss (with ARQ recovery underneath) must not break the
    protocols' correctness, only their latency."""
    cluster, result = run_workload("rbp", workload, loss_rate=0.1)
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged
    assert result.incomplete_specs == 0
