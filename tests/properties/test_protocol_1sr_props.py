"""The flagship property: randomly generated concurrent workloads, run
through each of the paper's protocols, always produce one-copy serializable
histories and convergent replicas.

This is the executable form of the paper's correctness theorems.  Each
hypothesis example generates a full workload (shapes, homes, submission
times) and runs the complete simulated cluster.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.cluster import Cluster, ClusterConfig
from repro.core.transaction import TransactionSpec

KEYS = [f"x{i}" for i in range(6)]

tx_strategy = st.tuples(
    st.sets(st.sampled_from(KEYS), max_size=3),  # read keys
    st.sets(st.sampled_from(KEYS), max_size=2),  # write keys
    st.integers(min_value=0, max_value=2),  # home site
    st.floats(min_value=0.0, max_value=30.0),  # submit time
)

workload_strategy = st.lists(tx_strategy, min_size=1, max_size=10)

COMMON = dict(
    num_sites=3,
    num_objects=len(KEYS),
    seed=5,
    retry_aborted=True,
    max_attempts=10,
    retry_backoff=5.0,
    # Keep the baseline's presumed-deadlock machinery fast so hypothesis
    # examples stay cheap.
    p2p_write_timeout=120.0,
    p2p_deadlock_interval=5.0,
)

PROTOCOL_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_workload(protocol, workload, **overrides):
    cluster = Cluster(ClusterConfig(protocol=protocol, **{**COMMON, **overrides}))
    for index, (reads, writes, home, at) in enumerate(workload):
        spec = TransactionSpec.make(
            f"T{index}",
            home,
            read_keys=sorted(reads | writes),
            writes={key: f"T{index}v" for key in sorted(writes)},
        )
        cluster.submit(spec, at=at)
    return cluster, cluster.run(max_time=1_000_000.0)


@pytest.mark.parametrize("protocol", ["rbp", "cbp", "abp", "p2p"])
@PROTOCOL_SETTINGS
@given(workload=workload_strategy)
def test_random_workloads_are_one_copy_serializable(protocol, workload):
    cluster, result = run_workload(protocol, workload)
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged
    assert result.incomplete_specs == 0


@PROTOCOL_SETTINGS
@given(workload=workload_strategy)
def test_cbp_per_op_mode_is_one_copy_serializable(workload):
    cluster, result = run_workload("cbp", workload, cbp_per_op=True)
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged


@PROTOCOL_SETTINGS
@given(workload=workload_strategy)
def test_abp_shipped_variant_is_one_copy_serializable(workload):
    cluster, result = run_workload("abp", workload, abp_variant="shipped")
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged


@PROTOCOL_SETTINGS
@given(workload=workload_strategy)
def test_abp_locked_variant_is_one_copy_serializable(workload):
    cluster, result = run_workload("abp", workload, abp_variant="locked")
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged
    assert result.incomplete_specs == 0


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workload=workload_strategy)
def test_lossy_network_preserves_1sr(workload):
    """Message loss (with ARQ recovery underneath) must not break the
    protocols' correctness, only their latency."""
    cluster, result = run_workload("rbp", workload, loss_rate=0.1)
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged
    assert result.incomplete_specs == 0
