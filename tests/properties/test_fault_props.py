"""Property-based fault injection: random crash/recovery timings never
violate the correctness invariants.

Hypothesis picks which site crashes, when, when it recovers, and a small
workload around the fault window; RBP (the protocol whose fault story is
fully mechanized, including live traffic through partitions) must keep
every invariant.  Examples are kept small — each runs a full simulated
cluster with failure detection.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.cluster import Cluster, ClusterConfig
from repro.core.transaction import TransactionSpec

NUM_SITES = 4

fault_plan = st.tuples(
    st.integers(1, NUM_SITES - 1),  # crash victim (spare site 0: coordinator)
    st.floats(min_value=50.0, max_value=1500.0),  # crash time
    st.floats(min_value=500.0, max_value=2500.0),  # recovery delay
)

workload_plan = st.lists(
    st.tuples(
        st.integers(0, NUM_SITES - 1),  # home
        st.integers(0, 11),  # key index
        st.floats(min_value=0.0, max_value=3000.0),  # submit time
    ),
    min_size=1,
    max_size=8,
)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(fault=fault_plan, workload=workload_plan)
def test_random_crash_recovery_preserves_invariants(fault, workload):
    victim, crash_at, recovery_delay = fault
    cluster = Cluster(
        ClusterConfig(
            protocol="rbp",
            num_sites=NUM_SITES,
            num_objects=12,
            seed=3,
            enable_failure_detector=True,
            fd_interval=20.0,
            fd_timeout=80.0,
            relay=True,
            max_attempts=30,
            retry_backoff=10.0,
        )
    )
    cluster.crash_site(victim, at=crash_at)
    cluster.recover_site(victim, at=crash_at + recovery_delay)
    for index, (home, key, at) in enumerate(workload):
        cluster.submit(
            TransactionSpec.make(
                f"T{index}", home, read_keys=[f"x{key}"], writes={f"x{key}": index}
            ),
            at=at,
        )
    result = cluster.run(
        max_time=300_000.0, stop_when=cluster.await_specs(len(workload))
    )
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged
    # Transactions homed at live sites when submitted must reach a final
    # outcome; SITE_FAILURE/NO_QUORUM finals are acceptable for the rest.
    assert result.incomplete_specs == 0


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    split_point=st.integers(1, NUM_SITES - 1),
    partition_at=st.floats(min_value=50.0, max_value=800.0),
    heal_delay=st.floats(min_value=400.0, max_value=1500.0),
    workload=workload_plan,
)
def test_random_partition_heal_preserves_invariants(
    split_point, partition_at, heal_delay, workload
):
    cluster = Cluster(
        ClusterConfig(
            protocol="rbp",
            num_sites=NUM_SITES,
            num_objects=12,
            seed=5,
            enable_failure_detector=True,
            fd_interval=20.0,
            fd_timeout=80.0,
            relay=True,
            max_attempts=30,
            retry_backoff=10.0,
        )
    )
    groups = [list(range(split_point)), list(range(split_point, NUM_SITES))]
    cluster.engine.schedule_at(partition_at, cluster.partition, groups)
    cluster.engine.schedule_at(partition_at + heal_delay, cluster.heal_partition)
    for index, (home, key, at) in enumerate(workload):
        cluster.submit(
            TransactionSpec.make(
                f"T{index}", home, read_keys=[f"x{key}"], writes={f"x{key}": index}
            ),
            at=at,
        )
    result = cluster.run(
        max_time=300_000.0, stop_when=cluster.await_specs(len(workload))
    )
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged
    assert result.incomplete_specs == 0
