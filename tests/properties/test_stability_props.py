"""Property-based tests for matrix-clock stability."""

from hypothesis import given, settings, strategies as st

from repro.broadcast.stability import StabilityTracker
from repro.broadcast.vector_clock import VectorClock

NUM_SITES = 3

observations = st.lists(
    st.tuples(
        st.integers(0, NUM_SITES - 1),
        st.lists(st.integers(0, 40), min_size=NUM_SITES, max_size=NUM_SITES),
    ),
    min_size=0,
    max_size=30,
)


@settings(max_examples=200, deadline=None)
@given(observations)
def test_stable_vector_never_exceeds_any_row(obs):
    tracker = StabilityTracker(NUM_SITES, site=0)
    for sender, entries in obs:
        tracker.observe(sender, VectorClock(entries))
    stable = tracker.stable_vector()
    for sender in range(NUM_SITES):
        assert stable <= tracker.row(sender)


@settings(max_examples=200, deadline=None)
@given(observations)
def test_stability_is_monotone(obs):
    tracker = StabilityTracker(NUM_SITES, site=0)
    previous = tracker.stable_vector()
    for sender, entries in obs:
        tracker.observe(sender, VectorClock(entries))
        current = tracker.stable_vector()
        assert previous <= current
        previous = current


@settings(max_examples=200, deadline=None)
@given(observations)
def test_is_stable_consistent_with_vector(obs):
    tracker = StabilityTracker(NUM_SITES, site=0)
    for sender, entries in obs:
        tracker.observe(sender, VectorClock(entries))
    stable = tracker.stable_vector()
    for origin in range(NUM_SITES):
        assert tracker.is_stable(origin, stable[origin])
        assert not tracker.is_stable(origin, stable[origin] + 1)


@settings(max_examples=100, deadline=None)
@given(observations, st.sets(st.integers(0, NUM_SITES - 1), min_size=1))
def test_restrict_to_never_lowers_stability(obs, members_set):
    members = sorted(members_set | {0})  # site 0 always stays
    tracker = StabilityTracker(NUM_SITES, site=0)
    for sender, entries in obs:
        tracker.observe(sender, VectorClock(entries))
    before = tracker.stable_vector()
    tracker.restrict_to(members)
    assert before <= tracker.stable_vector()


@settings(max_examples=100, deadline=None)
@given(observations)
def test_listener_fires_exactly_on_advances(obs):
    tracker = StabilityTracker(NUM_SITES, site=0)
    advances = []
    tracker.on_advance(lambda vec: advances.append(list(vec)))
    previous = list(tracker.stable_vector())
    expected = 0
    for sender, entries in obs:
        tracker.observe(sender, VectorClock(entries))
        current = list(tracker.stable_vector())
        if current != previous:
            expected += 1
            previous = current
    assert len(advances) == expected
