"""Property-based tests for the simulation engine's core guarantees."""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import SimulationEngine

delays = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=40
)


@settings(max_examples=200, deadline=None)
@given(delays)
def test_events_fire_in_nondecreasing_time_order(delay_list):
    engine = SimulationEngine()
    fired_times = []
    for delay in delay_list:
        engine.schedule(delay, lambda: fired_times.append(engine.now))
    engine.run()
    assert fired_times == sorted(fired_times)
    assert len(fired_times) == len(delay_list)


@settings(max_examples=200, deadline=None)
@given(delays)
def test_equal_times_preserve_scheduling_order(delay_list):
    engine = SimulationEngine()
    fired = []
    for index, delay in enumerate(delay_list):
        rounded = round(delay, 0)  # force collisions
        engine.schedule(rounded, fired.append, (rounded, index))
    engine.run()
    # Among events at the same time, scheduling index must be increasing.
    for i in range(1, len(fired)):
        if fired[i][0] == fired[i - 1][0]:
            assert fired[i][1] > fired[i - 1][1]


@settings(max_examples=100, deadline=None)
@given(delays, st.integers(0, 39))
def test_cancellation_removes_exactly_that_event(delay_list, victim_index):
    engine = SimulationEngine()
    fired = []
    handles = [
        engine.schedule(delay, fired.append, index)
        for index, delay in enumerate(delay_list)
    ]
    victim = victim_index % len(handles)
    handles[victim].cancel()
    engine.run()
    assert victim not in fired
    assert sorted(fired) == [i for i in range(len(delay_list)) if i != victim]


@settings(max_examples=100, deadline=None)
@given(delays)
def test_run_is_deterministic(delay_list):
    def execute():
        engine = SimulationEngine()
        fired = []
        for index, delay in enumerate(delay_list):
            engine.schedule(delay, fired.append, (index, engine.now))
        engine.run()
        return fired, engine.now

    assert execute() == execute()


@settings(max_examples=100, deadline=None)
@given(delays, st.floats(min_value=0.0, max_value=100.0))
def test_run_until_never_overshoots(delay_list, horizon):
    engine = SimulationEngine()
    fired_times = []
    for delay in delay_list:
        engine.schedule(delay, lambda: fired_times.append(engine.now))
    engine.run(until=horizon)
    assert all(t <= horizon for t in fired_times)
    assert engine.now <= max(horizon, max(delay_list))


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0.01, max_value=50.0), min_size=1, max_size=10))
def test_nested_scheduling_respects_time(delay_list):
    """Events scheduled from inside callbacks still fire in time order."""
    engine = SimulationEngine()
    fired_times = []

    def chain(remaining):
        fired_times.append(engine.now)
        if remaining:
            engine.schedule(remaining[0], chain, remaining[1:])

    engine.schedule(delay_list[0], chain, delay_list[1:])
    engine.run()
    assert fired_times == sorted(fired_times)
    assert len(fired_times) == len(delay_list)
