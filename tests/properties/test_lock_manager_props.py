"""Property-based tests for the lock manager's invariants."""

from hypothesis import given, settings, strategies as st

from repro.db.locks import LockManager, LockMode, compatible

KEYS = ["a", "b", "c"]
TXS = ["T1", "T2", "T3", "T4"]


class Action:
    pass


actions = st.one_of(
    st.tuples(
        st.just("try"), st.sampled_from(TXS), st.sampled_from(KEYS),
        st.sampled_from([LockMode.SHARED, LockMode.EXCLUSIVE]),
    ),
    st.tuples(
        st.just("acquire"), st.sampled_from(TXS), st.sampled_from(KEYS),
        st.sampled_from([LockMode.SHARED, LockMode.EXCLUSIVE]),
    ),
    st.tuples(st.just("release"), st.sampled_from(TXS)),
)


def holders_compatible(lm: LockManager) -> bool:
    """No two holders of one key may conflict."""
    for key in KEYS:
        holders = list(lm.holders_of(key).items())
        for i, (tx_a, mode_a) in enumerate(holders):
            for tx_b, mode_b in holders[i + 1:]:
                if not compatible(mode_a, mode_b):
                    return False
    return True


@settings(max_examples=200, deadline=None)
@given(st.lists(actions, max_size=40))
def test_holders_never_conflict(script):
    lm = LockManager()
    queued = set()
    for action in script:
        if action[0] == "try":
            _, tx, key, mode = action
            lm.try_acquire(tx, key, mode)
        elif action[0] == "acquire":
            _, tx, key, mode = action
            if (tx, key) in queued or lm.holds(tx, key) is not None:
                continue  # double-queue is a usage error by contract
            if not lm.acquire(tx, key, mode):
                queued.add((tx, key))
        else:
            _, tx = action
            lm.release_all(tx)
            queued = {(t, k) for (t, k) in queued if t != tx}
        assert holders_compatible(lm)


@settings(max_examples=200, deadline=None)
@given(st.lists(actions, max_size=40))
def test_release_all_leaves_no_residue(script):
    lm = LockManager()
    queued = set()
    for action in script:
        if action[0] == "try":
            _, tx, key, mode = action
            lm.try_acquire(tx, key, mode)
        elif action[0] == "acquire":
            _, tx, key, mode = action
            if (tx, key) in queued or lm.holds(tx, key) is not None:
                continue
            if not lm.acquire(tx, key, mode):
                queued.add((tx, key))
        else:
            _, tx = action
            lm.release_all(tx)
            queued = {(t, k) for (t, k) in queued if t != tx}
    for tx in TXS:
        lm.release_all(tx)
    for key in KEYS:
        assert lm.holders_of(key) == {}
        assert lm.queued(key) == []


@settings(max_examples=150, deadline=None)
@given(st.lists(actions, max_size=40))
def test_waiters_eventually_granted_when_everyone_releases(script):
    """Liveness: releasing every holder grants every (non-withdrawn)
    queued request, FIFO permitting."""
    lm = LockManager()
    grants: list = []
    queued = set()
    for action in script:
        if action[0] == "acquire":
            _, tx, key, mode = action
            if (tx, key) in queued or lm.holds(tx, key) is not None:
                continue
            if not lm.acquire(tx, key, mode, lambda t, k: grants.append((t, k))):
                queued.add((tx, key))
        elif action[0] == "try":
            _, tx, key, mode = action
            lm.try_acquire(tx, key, mode)
        else:
            _, tx = action
            lm.release_all(tx)
            queued = {(t, k) for (t, k) in queued if t != tx}
    # Now drain: repeatedly release everything until quiescent.
    for _ in range(len(TXS) * 3):
        for tx in TXS:
            lm.release_all(tx)
    for key in KEYS:
        assert lm.queued(key) == []


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(TXS), st.sampled_from(KEYS)),
        min_size=1,
        max_size=12,
    )
)
def test_group_requests_are_all_or_nothing(pairs):
    lm = LockManager()
    # Pre-hold one key exclusively so some groups must wait.
    lm.try_acquire("HOLDER", "b", LockMode.EXCLUSIVE)
    seen = set()
    for tx, key in pairs:
        if tx in seen or tx == "HOLDER":
            continue
        seen.add(tx)
        needs = {key: LockMode.SHARED, "b": LockMode.SHARED}
        granted = lm.acquire_group(tx, needs)
        held = [k for k in needs if lm.holds(tx, k) is not None]
        if granted:
            assert sorted(held) == sorted(needs)
        else:
            assert held == []  # no hold-and-wait
