"""Property-based churn soaking: any seeded churn plan, at any size in
the small-to-mid range, preserves the paper's invariants for all four
protocols.

Each example runs a complete (short) churn soak — rolling restarts with
state transfer, a cascade when quorum allows — with the continuous
oracles armed: :func:`repro.workload.soak.run_churn_soak` itself raises
:class:`repro.sim.oracles.OracleViolation` on a liveness stall or
in-doubt wedge, and asserts convergence / 1SR / zero-unanswered at the
end.  The assertions below on the returned metrics are belt-and-braces.

Counterexamples found here get shrunk and pinned as deterministic cells
in ``tests/integration/test_churn_soak.py`` (three protocol bugs were
found exactly that way; see that module's docstring).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.workload.soak import SoakConfig, run_churn_soak

CHURN_SETTINGS = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@CHURN_SETTINGS
@given(
    protocol=st.sampled_from(["rbp", "cbp", "abp", "p2p"]),
    sites=st.sampled_from([10, 12, 16, 24, 50]),
    seed=st.integers(min_value=0, max_value=2**16),
    duration=st.sampled_from([8_000.0, 11_000.0, 14_000.0]),
)
def test_random_churn_preserves_invariants(protocol, sites, seed, duration):
    metrics = run_churn_soak(
        protocol,
        SoakConfig(sites=sites, duration=duration, trace=True, trace_capacity=2_000),
        seed,
    )
    assert metrics["serializable"] == 1.0
    assert metrics["converged"] == 1.0
    assert metrics["unanswered"] == 0.0
    # The plan actually churned, and every crash was paired with a recovery.
    assert metrics["crashes"] >= 1.0
    assert metrics["crashes"] == metrics["recoveries"]
    assert metrics["committed"] > 0.0
