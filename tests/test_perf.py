"""Tests for the perf-regression harness (analysis.perf + bench_report)."""


from repro.analysis import perf


def test_quick_suite_runs_and_round_trips(tmp_path):
    results = perf.run_suite(quick=True, jobs=2)
    assert [r.name for r in results] == [
        "engine_churn",
        "vector_clock_compare",
        "e1_message_cost_cbp",
        "e5_throughput_abp",
        "e9_failover_rbp",
        "e12_loss_sweep",
        "e13_churn_soak",
        "e14_batching",
        "sweep_scaling_rbp",
    ]
    for result in results:
        assert result.ops > 0
        assert result.wall_s > 0
        assert result.ops_per_sec > 0
    report = perf.to_report(results, quick=True)
    assert report["schema"] == perf.SCHEMA_VERSION
    assert report["quick"] is True
    path = tmp_path / "BENCH_1.json"
    perf.write_report(path, report)
    assert perf.load_report(path) == report
    rendered = perf.render_results(results)
    assert "engine_churn" in rendered and "e5_throughput_abp" in rendered


def test_engine_churn_reports_compaction_metrics():
    result = perf.bench_engine_churn(timers=2_000)
    assert result.unit == "events"
    assert result.metrics["compactions"] >= 1
    assert result.metrics["final_heap"] <= result.metrics["timers_armed"]


def test_macro_benchmarks_are_deterministic():
    a = perf.bench_e5_representative(quick=True)
    b = perf.bench_e5_representative(quick=True)
    assert a.ops == b.ops  # same seed, same event count — only wall_s varies


def test_failover_bench_is_deterministic_and_unblocked():
    a = perf.bench_e9_representative(quick=True)
    b = perf.bench_e9_representative(quick=True)
    assert a.ops == b.ops
    assert a.metrics["committed"] == b.metrics["committed"]
    # The bench itself asserts incomplete_specs == 0 (no blocked tail);
    # the counters must round-trip so regressions show in the trajectory.
    for key in ("rbp_in_doubt", "rbp_decision_queries", "rbp_write_timeouts"):
        assert a.metrics[key] == b.metrics[key]
    assert a.metrics["committed"] == b.metrics["committed"]
    assert a.metrics["messages"] == b.metrics["messages"]


def test_batching_bench_is_deterministic_and_meets_floor():
    a = perf.bench_e14_batching(quick=True)
    b = perf.bench_e14_batching(quick=True)
    assert a.ops == b.ops
    assert a.metrics == b.metrics
    # The bench asserts outcome equivalence internally; the headline
    # metrics must show batching actually helping on the lossy cells.
    assert a.metrics["e5_speedup_x"] > 1.0
    assert a.metrics["e5_datagrams_batched"] < a.metrics["e5_datagrams_passthrough"]
    assert a.metrics["e1_bytes_drop_frac"] > 0.0


def test_sweep_scaling_bench_reports_digest_checked_speedup():
    """The scaling bench's digest assertion ran (it returns at all) and the
    report carries both walls so the trajectory can show scaling."""
    result = perf.bench_sweep_scaling(jobs=2, quick=True)
    assert result.unit == "events"
    assert result.metrics["jobs"] == 2.0
    assert result.metrics["serial_wall_s"] > 0
    assert result.metrics["parallel_wall_s"] > 0
    assert result.metrics["speedup"] > 0
    assert result.metrics["latency_p95_ms"] > 0


def _report(quick, ops_per_sec):
    return {
        "schema": perf.SCHEMA_VERSION,
        "quick": quick,
        "benchmarks": {
            "x": {"ops_per_sec": ops_per_sec, "unit": "events"},
        },
    }


def test_compare_reports_flags_only_out_of_tolerance_drops():
    base = _report(False, 1000.0)
    assert perf.compare_reports(base, _report(False, 700.0), tolerance=0.35) == []
    assert perf.compare_reports(base, _report(False, 650.0), tolerance=0.35) == []
    regressions = perf.compare_reports(base, _report(False, 600.0), tolerance=0.35)
    assert len(regressions) == 1 and "x" in regressions[0]
    # Improvements and new benchmarks never flag.
    assert perf.compare_reports(base, _report(False, 5000.0)) == []
    assert perf.compare_reports(_report(False, 0.0), _report(False, 1.0)) == []


def test_compare_reports_skips_mode_mismatch():
    assert perf.compare_reports(_report(True, 1e9), _report(False, 1.0)) == []


def test_bench_path_sequencing(tmp_path):
    assert perf.bench_paths(tmp_path) == []
    assert perf.next_bench_path(tmp_path).name == "BENCH_1.json"
    for n in (1, 3, 10):
        (tmp_path / f"BENCH_{n}.json").write_text("{}")
    (tmp_path / "BENCH_notes.txt").write_text("ignored")
    assert [p.name for p in perf.bench_paths(tmp_path)] == [
        "BENCH_1.json",
        "BENCH_3.json",
        "BENCH_10.json",
    ]
    assert perf.next_bench_path(tmp_path).name == "BENCH_11.json"


def test_macro_benchmark_asserts_invariants():
    """The macro timings double as invariant checks: a run that commits
    nothing would produce a meaningless ops number."""
    result = perf.bench_e1_representative(quick=True)
    assert result.metrics["committed"] > 0
    assert "latency_p50_ms" in result.metrics
    assert result.metrics["latency_p50_ms"] <= result.metrics["latency_p95_ms"]
