"""Tests for the declarative fault scheduler."""

import pytest

from repro.core.cluster import Cluster, ClusterConfig
from repro.core.transaction import AbortReason, TransactionSpec
from repro.sim.faults import FaultSchedule


def fault_cluster(**overrides):
    defaults = dict(
        protocol="rbp",
        num_sites=5,
        num_objects=16,
        seed=29,
        enable_failure_detector=True,
        fd_interval=20.0,
        fd_timeout=80.0,
        relay=True,
    )
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults))


def spec(name, home, key, value=None):
    if value is None:
        return TransactionSpec.make(name, home, read_keys=[key])
    return TransactionSpec.make(name, home, read_keys=[key], writes={key: value})


def test_crash_and_recover_schedule():
    cluster = fault_cluster()
    schedule = FaultSchedule(cluster).crash(4, at=100.0).recover(4, at=2000.0)
    cluster.submit(spec("during", 0, "x0", 1), at=500.0)
    cluster.submit(spec("after", 4, "x1", 2), at=4500.0)
    result = cluster.run(max_time=100000, stop_when=cluster.await_specs(2))
    assert result.ok
    assert result.committed_specs == 2
    assert [e.action for e in sorted(schedule.log, key=lambda e: e.time)] == [
        "crash",
        "recover",
    ]


def test_partition_heal_schedule():
    cluster = fault_cluster(retry_aborted=False)
    schedule = (
        FaultSchedule(cluster)
        .partition([[0, 1, 2], [3, 4]], at=50.0)
        .heal(at=3000.0)
    )
    cluster.submit(spec("minority", 3, "x0", 1), at=800.0)
    cluster.submit(spec("late", 3, "x1", 2), at=5000.0)
    result = cluster.run(max_time=100000, stop_when=cluster.await_specs(2))
    assert cluster.spec_status("minority").last_outcome is AbortReason.NO_QUORUM
    assert cluster.spec_status("late").committed
    assert len(schedule.events("partition")) == 1
    assert len(schedule.events("heal")) == 1


def test_stranded_home_cannot_commit_in_singleton_view():
    """Regression: a partition that isolates a transaction's home site used
    to let it finish 2PC alone once its failure detector installed the
    singleton view {home} — a quorumless "commit" the post-heal state
    transfer silently undid, while the write it had buffered at the majority
    sites pinned an exclusive lock forever (blocking every later conflicting
    transaction).  Now the minority home aborts with NO_QUORUM and the
    majority sites presume-abort the orphaned buffered write."""
    cluster = fault_cluster(
        num_sites=4, seed=5, max_attempts=30, retry_backoff=10.0
    )
    FaultSchedule(cluster).partition([[0], [1, 2, 3]], at=50.0).heal(at=450.0)
    # Both transactions write the same key; T0's home (site 0) is stranded
    # alone mid-write-round, T1 waits on the lock T0's write buffered.
    cluster.submit(spec("T0", 0, "x0", 0), at=48.0)
    cluster.submit(spec("T1", 1, "x0", 1), at=49.0)
    result = cluster.run(max_time=300_000.0, stop_when=cluster.await_specs(2))
    assert result.serialization.ok
    assert result.converged
    assert result.incomplete_specs == 0
    t0 = cluster.spec_status("T0")
    assert t0.final and not t0.committed
    assert t0.last_outcome is AbortReason.NO_QUORUM
    t1 = cluster.spec_status("T1")
    assert t1.final and t1.committed


def test_flaky_links_require_arq():
    cluster = fault_cluster(loss_rate=0.0, enable_failure_detector=False)
    with pytest.raises(ValueError):
        FaultSchedule(cluster).flaky_links(0.3, at=10.0)


def test_flaky_links_window():
    cluster = fault_cluster(
        loss_rate=0.01, enable_failure_detector=False, protocol="rbp"
    )
    FaultSchedule(cluster).flaky_links(0.4, at=0.0, until=2000.0)
    for n in range(5):
        cluster.submit(spec(f"t{n}", n % 5, f"x{n}", n), at=100.0 + n * 100.0)
    result = cluster.run(max_time=500000)
    assert result.ok
    assert result.committed_specs == 5
    if cluster.engine.now < 2000.0:
        cluster.run_for(2500.0)  # let the restore event fire
    assert cluster.network.loss_rate == 0.01  # restored
    assert cluster.network.stats.dropped_loss > 0


def arq_cluster(**overrides):
    return fault_cluster(
        loss_rate=0.01, enable_failure_detector=False, **overrides
    )


def test_flaky_links_open_ended_window_stays_open():
    """Regression: ``until=None`` used to leak — the raised rate was never
    restored and a later bounded window clobbered it back to base."""
    cluster = arq_cluster()
    schedule = FaultSchedule(cluster).flaky_links(0.5, at=10.0)
    cluster.run_for(100.0)
    assert cluster.network.loss_rate == 0.5  # still open
    schedule.restore_links(at=200.0)
    cluster.run_for(150.0)
    assert cluster.network.loss_rate == 0.01  # back to base


def test_flaky_links_nested_window_restores_to_outer():
    cluster = arq_cluster()
    schedule = FaultSchedule(cluster)
    schedule.flaky_links(0.3, at=10.0, until=100.0)  # outer
    schedule.flaky_links(0.6, at=30.0, until=60.0)  # inner
    cluster.run_for(40.0)
    assert cluster.network.loss_rate == 0.6  # inner in effect
    cluster.run_for(30.0)  # t=70: inner closed
    assert cluster.network.loss_rate == 0.3  # restores to outer, not base
    cluster.run_for(50.0)  # t=120: outer closed
    assert cluster.network.loss_rate == 0.01


def test_flaky_links_abutting_windows_order_independent():
    """Two windows sharing a boundary timestamp give the same loss
    timeline whichever declaration order the equal-time events fire in
    (the ordering contract in the module docstring)."""
    rates = {}
    for order in ("first-then-second", "second-then-first"):
        cluster = arq_cluster()
        schedule = FaultSchedule(cluster)
        if order == "first-then-second":
            schedule.flaky_links(0.3, at=10.0, until=30.0)
            schedule.flaky_links(0.7, at=30.0, until=50.0)
        else:
            schedule.flaky_links(0.7, at=30.0, until=50.0)
            schedule.flaky_links(0.3, at=10.0, until=30.0)
        observed = []
        for step in (20.0, 20.0, 20.0):  # t=20, 40, 60
            cluster.run_for(step)
            observed.append(cluster.network.loss_rate)
        rates[order] = observed
    assert rates["first-then-second"] == rates["second-then-first"] == [0.3, 0.7, 0.01]


def test_equal_timestamp_events_fire_in_declaration_order():
    """The schedule's documented contract: same-time fault events follow
    declaration order (the engine's same-time FIFO)."""
    healed_last = fault_cluster(seed=31)
    FaultSchedule(healed_last).partition([[0, 1, 2], [3, 4]], at=50.0).heal(at=50.0)
    healed_last.run_for(60.0)
    assert healed_last.network.partitions.group_of(0) == healed_last.network.partitions.group_of(3)

    split_last = fault_cluster(seed=31)
    FaultSchedule(split_last).heal(at=50.0).partition([[0, 1, 2], [3, 4]], at=50.0)
    split_last.run_for(60.0)
    assert split_last.network.partitions.group_of(0) != split_last.network.partitions.group_of(3)


def test_flaky_links_rejects_empty_window():
    cluster = arq_cluster()
    with pytest.raises(ValueError):
        FaultSchedule(cluster).flaky_links(0.3, at=50.0, until=50.0)


def test_describe_renders_timeline():
    cluster = fault_cluster()
    schedule = FaultSchedule(cluster).crash(1, at=5.0).heal(at=10.0)
    cluster.run_for(20.0)
    text = schedule.describe()
    assert "crash" in text and "heal" in text
    assert text.index("crash") < text.index("heal")
