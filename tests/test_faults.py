"""Tests for the declarative fault scheduler."""

import pytest

from repro.core.cluster import Cluster, ClusterConfig
from repro.core.transaction import AbortReason, TransactionSpec
from repro.sim.faults import FaultSchedule


def fault_cluster(**overrides):
    defaults = dict(
        protocol="rbp",
        num_sites=5,
        num_objects=16,
        seed=29,
        enable_failure_detector=True,
        fd_interval=20.0,
        fd_timeout=80.0,
        relay=True,
    )
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults))


def spec(name, home, key, value=None):
    if value is None:
        return TransactionSpec.make(name, home, read_keys=[key])
    return TransactionSpec.make(name, home, read_keys=[key], writes={key: value})


def test_crash_and_recover_schedule():
    cluster = fault_cluster()
    schedule = FaultSchedule(cluster).crash(4, at=100.0).recover(4, at=2000.0)
    cluster.submit(spec("during", 0, "x0", 1), at=500.0)
    cluster.submit(spec("after", 4, "x1", 2), at=4500.0)
    result = cluster.run(max_time=100000, stop_when=cluster.await_specs(2))
    assert result.ok
    assert result.committed_specs == 2
    assert [e.action for e in sorted(schedule.log, key=lambda e: e.time)] == [
        "crash",
        "recover",
    ]


def test_partition_heal_schedule():
    cluster = fault_cluster(retry_aborted=False)
    schedule = (
        FaultSchedule(cluster)
        .partition([[0, 1, 2], [3, 4]], at=50.0)
        .heal(at=3000.0)
    )
    cluster.submit(spec("minority", 3, "x0", 1), at=800.0)
    cluster.submit(spec("late", 3, "x1", 2), at=5000.0)
    result = cluster.run(max_time=100000, stop_when=cluster.await_specs(2))
    assert cluster.spec_status("minority").last_outcome is AbortReason.NO_QUORUM
    assert cluster.spec_status("late").committed
    assert len(schedule.events("partition")) == 1
    assert len(schedule.events("heal")) == 1


def test_stranded_home_cannot_commit_in_singleton_view():
    """Regression: a partition that isolates a transaction's home site used
    to let it finish 2PC alone once its failure detector installed the
    singleton view {home} — a quorumless "commit" the post-heal state
    transfer silently undid, while the write it had buffered at the majority
    sites pinned an exclusive lock forever (blocking every later conflicting
    transaction).  Now the minority home aborts with NO_QUORUM and the
    majority sites presume-abort the orphaned buffered write."""
    cluster = fault_cluster(
        num_sites=4, seed=5, max_attempts=30, retry_backoff=10.0
    )
    FaultSchedule(cluster).partition([[0], [1, 2, 3]], at=50.0).heal(at=450.0)
    # Both transactions write the same key; T0's home (site 0) is stranded
    # alone mid-write-round, T1 waits on the lock T0's write buffered.
    cluster.submit(spec("T0", 0, "x0", 0), at=48.0)
    cluster.submit(spec("T1", 1, "x0", 1), at=49.0)
    result = cluster.run(max_time=300_000.0, stop_when=cluster.await_specs(2))
    assert result.serialization.ok
    assert result.converged
    assert result.incomplete_specs == 0
    t0 = cluster.spec_status("T0")
    assert t0.final and not t0.committed
    assert t0.last_outcome is AbortReason.NO_QUORUM
    t1 = cluster.spec_status("T1")
    assert t1.final and t1.committed


def test_flaky_links_require_arq():
    cluster = fault_cluster(loss_rate=0.0, enable_failure_detector=False)
    with pytest.raises(ValueError):
        FaultSchedule(cluster).flaky_links(0.3, at=10.0)


def test_flaky_links_window():
    cluster = fault_cluster(
        loss_rate=0.01, enable_failure_detector=False, protocol="rbp"
    )
    FaultSchedule(cluster).flaky_links(0.4, at=0.0, until=2000.0)
    for n in range(5):
        cluster.submit(spec(f"t{n}", n % 5, f"x{n}", n), at=100.0 + n * 100.0)
    result = cluster.run(max_time=500000)
    assert result.ok
    assert result.committed_specs == 5
    if cluster.engine.now < 2000.0:
        cluster.run_for(2500.0)  # let the restore event fire
    assert cluster.network.loss_rate == 0.01  # restored
    assert cluster.network.stats.dropped_loss > 0


def test_describe_renders_timeline():
    cluster = fault_cluster()
    schedule = FaultSchedule(cluster).crash(1, at=5.0).heal(at=10.0)
    cluster.run_for(20.0)
    text = schedule.describe()
    assert "crash" in text and "heal" in text
    assert text.index("crash") < text.index("heal")
