"""Tests for the statistics helpers."""

import pytest

from repro.analysis.stats import (
    Summary,
    confidence_interval,
    mean,
    percentile,
    stddev,
    summarize,
)


def test_percentile_endpoints():
    data = [1.0, 2.0, 3.0, 4.0]
    assert percentile(data, 0.0) == 1.0
    assert percentile(data, 1.0) == 4.0


def test_percentile_interpolates():
    assert percentile([0.0, 10.0], 0.5) == 5.0
    assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0


def test_percentile_unsorted_input():
    assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


def test_percentile_single_value():
    assert percentile([7.0], 0.99) == 7.0


def test_mean_and_stddev():
    assert mean([2.0, 4.0]) == 3.0
    assert stddev([2.0, 4.0]) == pytest.approx(1.4142, rel=1e-3)
    assert stddev([5.0]) == 0.0
    with pytest.raises(ValueError):
        mean([])


def test_confidence_interval_contains_mean():
    data = [1.0, 2.0, 3.0, 4.0, 5.0]
    low, high = confidence_interval(data)
    assert low < 3.0 < high


def test_confidence_interval_tightens_with_samples():
    narrow = confidence_interval([3.0] * 100 + [3.1] * 100)
    wide = confidence_interval([1.0, 5.0])
    assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])


def test_summarize():
    summary = summarize([5.0, 1.0, 3.0, 2.0, 4.0])
    assert summary.count == 5
    assert summary.mean == 3.0
    assert summary.p50 == 3.0
    assert summary.minimum == 1.0
    assert summary.maximum == 5.0
    assert "n=5" in str(summary)


def test_summarize_empty():
    summary = summarize([])
    assert summary == Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
