"""Tests for the message-based state-transfer recovery protocol."""

import pytest

from repro.core.cluster import Cluster, ClusterConfig
from repro.core.transaction import AbortReason, TransactionSpec


def fault_cluster(protocol="rbp", **overrides):
    defaults = dict(
        protocol=protocol,
        num_sites=4,
        num_objects=16,
        seed=17,
        enable_failure_detector=True,
        fd_interval=20.0,
        fd_timeout=80.0,
        relay=True,  # agreement despite sender crash (DESIGN.md)
    )
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults))


def spec(name, home, key, value):
    return TransactionSpec.make(name, home, read_keys=[key], writes={key: value})


def test_state_transfer_is_message_based():
    cluster = fault_cluster()
    cluster.crash_site(3, at=10.0)
    cluster.submit(spec("while_down", 0, "x0", "fresh"), at=500.0)
    cluster.run(max_time=10000)
    cluster.recover_site(3)
    result = cluster.run(max_time=60000)
    assert result.ok
    # The snapshot travelled as actual messages.
    assert result.messages_by_kind.get("recovery.request", 0) >= 1
    assert result.messages_by_kind.get("recovery.reply", 0) >= 1
    assert cluster.recovery_agents[3].transfers_completed == 1
    assert cluster.replicas[3].store.read("x0").value == "fresh"


def test_recovering_site_refuses_transactions():
    cluster = fault_cluster(retry_aborted=False)
    cluster.crash_site(3, at=10.0)
    cluster.run(max_time=1000)
    # Start recovery but submit before the transfer reply can possibly
    # arrive (same instant).
    cluster.recover_site(3)
    cluster.submit(spec("too_soon", 3, "x0", 1), at=cluster.engine.now)
    result = cluster.run(max_time=60000)
    assert cluster.spec_status("too_soon").last_outcome is AbortReason.SITE_FAILURE


def test_recovered_site_participates_again():
    cluster = fault_cluster()
    cluster.crash_site(2, at=10.0)
    cluster.run_for(2000)
    cluster.recover_site(2)
    cluster.run_for(2000)  # view rejoin + settle window + transfer
    assert not cluster.replicas[2].recovering
    cluster.submit(spec("post", 2, "x1", "back"), at=cluster.engine.now + 500.0)
    result = cluster.run(max_time=60000)
    assert result.ok
    assert cluster.spec_status("post").committed
    for replica in cluster.replicas:
        assert replica.store.read("x1").value == "back"


@pytest.mark.parametrize("protocol", ["cbp", "abp"])
def test_broadcast_stack_fast_forward(protocol):
    """After recovery the causal/total layers resume cleanly: new updates
    from and to the recovered site commit and replicas converge."""
    cluster = fault_cluster(protocol=protocol, cbp_heartbeat=20.0)
    cluster.submit(spec("before", 0, "x0", "v0"), at=100.0)
    cluster.run(max_time=3000)
    cluster.crash_site(3)
    cluster.submit(spec("during", 1, "x1", "v1"), at=cluster.engine.now + 500.0)
    cluster.run(max_time=30000)
    cluster.recover_site(3)
    cluster.run(max_time=30000)
    cluster.submit(spec("after", 3, "x2", "v2"), at=cluster.engine.now + 500.0)
    cluster.submit(spec("toward", 0, "x3", "v3"), at=cluster.engine.now + 600.0)
    result = cluster.run(max_time=120000)
    assert result.ok, result.serialization.explain()
    assert cluster.spec_status("after").committed
    assert cluster.spec_status("toward").committed
    assert cluster.replicas[3].store.read("x1").value == "v1"


def test_donor_must_be_in_primary_component():
    """A recovering site never clones from another recovering/minority
    site: the donor chosen is a primary-component member."""
    cluster = fault_cluster()
    cluster.crash_site(3, at=10.0)
    cluster.run_for(1000)
    cluster.recover_site(3)
    cluster.run_for(3000)
    served = [agent.transfers_served for agent in cluster.recovery_agents]
    assert sum(served) == 1
    donor_site = served.index(1)
    assert cluster.replicas[donor_site].has_quorum


def test_recovery_preserves_1sr_with_traffic_after_rejoin():
    cluster = fault_cluster(protocol="cbp", cbp_heartbeat=15.0)
    for n in range(4):
        cluster.submit(spec(f"pre{n}", n, f"x{n}", n), at=100.0 + n * 50.0)
    cluster.crash_site(1, at=600.0)
    for n in range(4):
        cluster.submit(
            spec(f"mid{n}", [0, 2, 3][n % 3], f"x{4 + n}", n), at=1500.0 + n * 50.0
        )
    cluster.recover_site(1, at=4000.0)
    for n in range(4):
        cluster.submit(spec(f"post{n}", n, f"x{8 + n}", n), at=6000.0 + n * 50.0)
    result = cluster.run(max_time=300000, stop_when=cluster.await_specs(12))
    assert result.ok, result.serialization.explain()
    assert result.committed_specs == 12


def test_live_write_during_state_transfer_survives_snapshot_install():
    """Regression (found by the fault property test): a write committing in
    the window between the donor exporting its snapshot and the rejoiner
    installing it must not be rolled back by the install.

    With fault=(victim=1, crash_at=281, recovery_delay=1127) and a single
    write homed at site 0 submitted at t=1508, site 1 used to apply T0
    live mid-transfer and then clobber it with the (older) snapshot,
    leaving its store one version behind forever.  RBP now defers
    broadcast deliveries while ``recovering`` and replays them after the
    install (see ``ReliableBroadcastReplica.on_recovery_complete``).
    """
    cluster = Cluster(
        ClusterConfig(
            protocol="rbp",
            num_sites=4,
            num_objects=12,
            seed=3,
            enable_failure_detector=True,
            fd_interval=20.0,
            fd_timeout=80.0,
            relay=True,
            max_attempts=30,
            retry_backoff=10.0,
            trace=True,
        )
    )
    cluster.crash_site(1, at=281.0)
    cluster.recover_site(1, at=281.0 + 1127.0)
    cluster.submit(
        TransactionSpec.make("T0", 0, read_keys=["x0"], writes={"x0": 0}), at=1508.0
    )
    result = cluster.run(max_time=300_000.0, stop_when=cluster.await_specs(1))
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged
    assert result.incomplete_specs == 0
    assert cluster.spec_status("T0").committed
    # The deferral actually engaged: site 1 replayed a non-empty backlog.
    replays = [
        record
        for record in cluster.trace.records
        if record.kind == "rbp.recovery_replay"
    ]
    assert replays, "expected site 1 to defer deliveries during its transfer"
