"""Unit tests for the multiversioned store."""

import pytest

from repro.db.storage import StorageError, VersionedStore


@pytest.fixture
def store():
    s = VersionedStore()
    s.initialize(["x", "y"], value=0)
    return s


def test_initial_version_zero(store):
    versioned = store.read("x")
    assert versioned.version == 0
    assert versioned.value == 0
    assert versioned.writer is None


def test_install_bumps_version(store):
    assert store.install("x", 10, "T1") == 1
    assert store.install("x", 20, "T2") == 2
    latest = store.read("x")
    assert (latest.version, latest.value, latest.writer) == (2, 20, "T2")


def test_initialize_is_idempotent(store):
    store.install("x", 5, "T1")
    store.initialize(["x"])  # must not reset
    assert store.read("x").value == 5


def test_read_unknown_key_raises(store):
    with pytest.raises(StorageError):
        store.read("nope")


def test_install_unknown_key_raises(store):
    with pytest.raises(StorageError):
        store.install("nope", 1, "T1")


def test_read_specific_version(store):
    store.install("x", 10, "T1")
    store.install("x", 20, "T2")
    assert store.read_version("x", 1).value == 10
    assert store.read_version("x", 0).value == 0
    with pytest.raises(StorageError):
        store.read_version("x", 9)


def test_read_at_or_before(store):
    store.install("x", 10, "T1")
    store.install("x", 20, "T2")
    assert store.read_at_or_before("x", 1).value == 10
    assert store.read_at_or_before("x", 99).value == 20


def test_history_limit_prunes_old_versions():
    store = VersionedStore(history_limit=3)
    store.initialize(["x"])
    for n in range(10):
        store.install("x", n, f"T{n}")
    assert store.read("x").version == 10
    with pytest.raises(StorageError):
        store.read_version("x", 0)
    assert store.read_version("x", 10).value == 9


def test_digest_equality_tracks_content():
    a = VersionedStore()
    b = VersionedStore()
    for s in (a, b):
        s.initialize(["x", "y"])
    assert a.digest() == b.digest()
    a.install("x", 1, "T1")
    assert a.digest() != b.digest()
    b.install("x", 1, "T1")
    assert a.digest() == b.digest()


def test_clone_from_copies_state(store):
    store.install("x", 42, "T1")
    other = VersionedStore()
    other.clone_from(store)
    assert other.digest() == store.digest()
    other.install("x", 43, "T2")
    assert store.read("x").value == 42  # deep enough copy


def test_force_version_for_state_transfer():
    store = VersionedStore()
    store.force_version("x", 5, "hello", "T9")
    assert store.read("x").version == 5
    with pytest.raises(StorageError):
        store.force_version("x", 5, "again", "T10")


def test_latest_snapshot_and_len(store):
    store.install("y", 7, "T1")
    snapshot = store.latest_snapshot()
    assert snapshot["y"].value == 7
    assert len(store) == 2
    assert store.keys() == ["x", "y"]


def test_install_count(store):
    store.install("x", 1, "T1")
    store.install("y", 2, "T1")
    assert store.install_count == 2
