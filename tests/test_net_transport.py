"""Unit tests for the ARQ transport: reliability and FIFO over loss,
crashes (incarnation epochs), windowing, backoff and suspicion parking."""

from dataclasses import dataclass

import pytest

from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.net.transport import ReliableTransport
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog


@dataclass
class Msg:
    n: int
    kind: str = "msg"


def build(loss_rate=0.0, num_sites=2, seed=3, **transport_kwargs):
    engine = SimulationEngine()
    network = Network(
        engine,
        num_sites,
        latency=UniformLatency(0.5, 1.5),
        rng=RngRegistry(seed),
        loss_rate=loss_rate,
    )
    transports = []
    inboxes = [[] for _ in range(num_sites)]
    for site in range(num_sites):
        transport = ReliableTransport(engine, network, site, **transport_kwargs)
        transport.set_receiver(lambda src, p, site=site: inboxes[site].append((src, p)))
        transports.append(transport)
    return engine, network, transports, inboxes


def test_passthrough_mode_on_lossless_network():
    engine, network, transports, inboxes = build(loss_rate=0.0)
    assert transports[0].passthrough
    transports[0].send(1, Msg(1))
    engine.run()
    assert [p.n for _, p in inboxes[1]] == [1]
    # No framing overhead: exactly one wire message.
    assert network.stats.sent == 1


def test_arq_mode_on_lossy_network():
    engine, network, transports, inboxes = build(loss_rate=0.25)
    assert not transports[0].passthrough
    for n in range(100):
        transports[0].send(1, Msg(n))
    engine.run(until=100000)
    received = [p.n for _, p in inboxes[1]]
    assert received == list(range(100))  # all delivered, in FIFO order
    assert network.stats.dropped_loss > 0  # losses actually happened


def test_arq_no_duplicates():
    engine, network, transports, inboxes = build(loss_rate=0.4, seed=8)
    for n in range(50):
        transports[0].send(1, Msg(n))
    engine.run(until=100000)
    received = [p.n for _, p in inboxes[1]]
    assert received == sorted(set(received)) == list(range(50))


def test_bidirectional_traffic_under_loss():
    engine, network, transports, inboxes = build(loss_rate=0.2, seed=4)
    for n in range(30):
        transports[0].send(1, Msg(n))
        transports[1].send(0, Msg(100 + n))
    engine.run(until=100000)
    assert [p.n for _, p in inboxes[1]] == list(range(30))
    assert [p.n for _, p in inboxes[0]] == [100 + n for n in range(30)]


def test_loopback_bypasses_arq():
    engine, network, transports, inboxes = build(loss_rate=0.5)
    transports[0].send(0, Msg(1))
    engine.run()
    assert [p.n for _, p in inboxes[0]] == [1]


def test_ack_and_retransmit_traffic_labelled_separately():
    engine, network, transports, inboxes = build(loss_rate=0.1, seed=6)
    for n in range(20):
        transports[0].send(1, Msg(n))
    engine.run(until=100000)
    assert network.stats.by_kind["transport.ack"] > 0
    # First transmissions keep the payload kind; repairs get their own
    # label so protocol message counts stay comparable to the paper's
    # analytical cost model (E1).
    assert network.stats.by_kind["msg"] == 20
    assert network.stats.by_kind["transport.retransmit"] > 0
    assert network.stats.retransmissions == network.stats.by_kind["transport.retransmit"]
    assert "retransmissions" in network.stats.snapshot()


def test_duplicate_suppression_across_retransmits():
    engine, network, transports, inboxes = build(loss_rate=0.3, seed=11)
    for n in range(40):
        transports[0].send(1, Msg(n))
    engine.run(until=100000)
    assert network.stats.retransmissions > 0  # repairs actually happened
    assert [p.n for _, p in inboxes[1]] == list(range(40))  # exactly once, in order


def test_reset_clears_link_state():
    engine, network, transports, inboxes = build(loss_rate=0.2, seed=9)
    for n in range(10):
        transports[0].send(1, Msg(n))
    engine.run(until=100000)
    transports[0].reset()
    transports[1].reset()
    # After reset both sides restart from sequence 0 and still communicate.
    transports[0].send(1, Msg(999))
    engine.run(until=200000)
    assert inboxes[1][-1][1].n == 999


def test_one_sided_reset_resyncs_via_epochs():
    """The crash/recover regression the epochs exist for: only the
    *recovered* side resets, and the link must still come back.

    Previously the peer kept its old sequence state, so every
    post-recovery frame arrived with ``seq > next_expected == 0`` on one
    side and acked sequences meant nothing on the other — a silent FIFO
    stall with both ends buffering forever."""
    engine, network, transports, inboxes = build(loss_rate=0.0, reliable=True)
    transports[0].send(1, Msg(1))
    engine.run(until=100)
    assert [p.n for _, p in inboxes[1]] == [1]

    network.set_site_up(1, False)  # crash site 1
    transports[0].send(1, Msg(2))  # dropped at the crashed destination
    engine.run(until=200)
    network.set_site_up(1, True)  # recover: only site 1 resets
    transports[1].reset()
    assert transports[1].epoch == 1

    transports[0].send(1, Msg(3))
    transports[1].send(0, Msg(4))
    engine.run(until=10000)
    # Site 0 re-framed its outstanding traffic for the new incarnation:
    # the in-flight loss (2) was repaired and FIFO order held.
    assert [p.n for _, p in inboxes[1]] == [1, 2, 3]
    assert [p.n for _, p in inboxes[0]] == [4]
    assert network.stats.retransmissions > 0


def test_stale_incarnation_frames_are_discarded():
    engine, network, transports, inboxes = build(loss_rate=0.0, reliable=True)
    transports[0].send(1, Msg(1))
    engine.run(until=100)
    transports[1].reset()
    transports[1].reset()  # two quick recoveries: epoch 2
    transports[0].send(1, Msg(2))
    engine.run(until=10000)
    assert [p.n for _, p in inboxes[1]] == [1, 2]
    assert transports[0]._peer_epoch[1] == 2


def test_window_bounds_in_flight_frames():
    engine, network, transports, inboxes = build(loss_rate=0.0, reliable=True, window=4)
    for n in range(20):
        transports[0].send(1, Msg(n))
    state = transports[0]._send_state[1]
    assert len(state.unacked) == 4  # window admitted
    assert len(state.pending) == 16  # the rest queue for slots
    engine.run(until=10000)
    assert [p.n for _, p in inboxes[1]] == list(range(20))
    assert not state.unacked and not state.pending


def test_backoff_bounds_retransmissions_to_down_peer():
    engine, network, transports, inboxes = build(loss_rate=0.0, reliable=True)
    network.set_site_up(1, False)
    transports[0].send(1, Msg(1))
    engine.run(until=10000)
    # Base interval 4.0 with cap 64x: a fixed-interval resend loop would
    # fire ~2500 times by t=10000; exponential backoff decays to a trickle.
    assert 1 <= network.stats.retransmissions <= 60
    # The peer still gets the frame once it comes back.
    network.set_site_up(1, True)
    engine.run(until=20000)
    assert [p.n for _, p in inboxes[1]] == [1]


def test_suspicion_parks_and_resumes_retransmission():
    engine, network, transports, inboxes = build(loss_rate=0.0, reliable=True)
    network.set_site_up(1, False)
    transports[0].send(1, Msg(7))
    transports[0].set_suspected({1})  # failure detector says: down
    engine.run(until=5000)
    assert network.stats.retransmissions == 0  # parked, no churn
    network.set_site_up(1, True)
    transports[0].set_suspected(set())  # suspicion cleared: resume
    engine.run(until=10000)
    assert [p.n for _, p in inboxes[1]] == [7]
    assert network.stats.retransmissions >= 1


def test_mixed_passthrough_arq_is_an_error():
    engine = SimulationEngine()
    network = Network(engine, 2, latency=UniformLatency(0.5, 1.5), rng=RngRegistry(3))
    trace = TraceLog()
    sender = ReliableTransport(engine, network, 0, reliable=False)  # passthrough
    receiver = ReliableTransport(engine, network, 1, reliable=True, trace=trace)
    sender.set_receiver(lambda src, p: None)
    receiver.set_receiver(lambda src, p: None)
    sender.send(1, Msg(1))
    with pytest.raises(RuntimeError, match="mixed passthrough/ARQ"):
        engine.run()
    assert trace.counts["transport.unframed"] == 1


def test_passthrough_on_lossy_network_rejected():
    engine = SimulationEngine()
    network = Network(
        engine, 2, latency=UniformLatency(0.5, 1.5), rng=RngRegistry(3), loss_rate=0.1
    )
    with pytest.raises(ValueError, match="reliable"):
        ReliableTransport(engine, network, 0, reliable=False)


def test_forced_arq_on_lossless_network():
    engine, network, transports, inboxes = build(loss_rate=0.0, reliable=True)
    assert not transports[0].passthrough
    transports[0].send(1, Msg(1))
    engine.run()
    assert [p.n for _, p in inboxes[1]] == [1]
    assert network.stats.by_kind["transport.ack"] == 1  # framed + acked
