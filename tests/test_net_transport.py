"""Unit tests for the ARQ transport: reliability and FIFO over loss."""

from dataclasses import dataclass

from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.net.transport import ReliableTransport
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RngRegistry


@dataclass
class Msg:
    n: int
    kind: str = "msg"


def build(loss_rate=0.0, num_sites=2, seed=3):
    engine = SimulationEngine()
    network = Network(
        engine,
        num_sites,
        latency=UniformLatency(0.5, 1.5),
        rng=RngRegistry(seed),
        loss_rate=loss_rate,
    )
    transports = []
    inboxes = [[] for _ in range(num_sites)]
    for site in range(num_sites):
        transport = ReliableTransport(engine, network, site)
        transport.set_receiver(lambda src, p, site=site: inboxes[site].append((src, p)))
        transports.append(transport)
    return engine, network, transports, inboxes


def test_passthrough_mode_on_lossless_network():
    engine, network, transports, inboxes = build(loss_rate=0.0)
    assert transports[0].passthrough
    transports[0].send(1, Msg(1))
    engine.run()
    assert [p.n for _, p in inboxes[1]] == [1]
    # No framing overhead: exactly one wire message.
    assert network.stats.sent == 1


def test_arq_mode_on_lossy_network():
    engine, network, transports, inboxes = build(loss_rate=0.25)
    assert not transports[0].passthrough
    for n in range(100):
        transports[0].send(1, Msg(n))
    engine.run(until=100000)
    received = [p.n for _, p in inboxes[1]]
    assert received == list(range(100))  # all delivered, in FIFO order
    assert network.stats.dropped_loss > 0  # losses actually happened


def test_arq_no_duplicates():
    engine, network, transports, inboxes = build(loss_rate=0.4, seed=8)
    for n in range(50):
        transports[0].send(1, Msg(n))
    engine.run(until=100000)
    received = [p.n for _, p in inboxes[1]]
    assert received == sorted(set(received)) == list(range(50))


def test_bidirectional_traffic_under_loss():
    engine, network, transports, inboxes = build(loss_rate=0.2, seed=4)
    for n in range(30):
        transports[0].send(1, Msg(n))
        transports[1].send(0, Msg(100 + n))
    engine.run(until=100000)
    assert [p.n for _, p in inboxes[1]] == list(range(30))
    assert [p.n for _, p in inboxes[0]] == [100 + n for n in range(30)]


def test_loopback_bypasses_arq():
    engine, network, transports, inboxes = build(loss_rate=0.5)
    transports[0].send(0, Msg(1))
    engine.run()
    assert [p.n for _, p in inboxes[0]] == [1]


def test_ack_traffic_labelled_separately():
    engine, network, transports, inboxes = build(loss_rate=0.1, seed=6)
    for n in range(20):
        transports[0].send(1, Msg(n))
    engine.run(until=100000)
    assert network.stats.by_kind["transport.ack"] > 0
    assert network.stats.by_kind["msg"] >= 20  # originals + retransmissions


def test_reset_clears_link_state():
    engine, network, transports, inboxes = build(loss_rate=0.2, seed=9)
    for n in range(10):
        transports[0].send(1, Msg(n))
    engine.run(until=100000)
    transports[0].reset()
    transports[1].reset()
    # After reset both sides restart from sequence 0 and still communicate.
    transports[0].send(1, Msg(999))
    engine.run(until=200000)
    assert inboxes[1][-1][1].n == 999
