"""Tests for the metrics collector."""

from repro.analysis.metrics import MetricsCollector
from repro.core.transaction import AbortReason, Transaction, TransactionSpec


def make_tx(name, home=0, attempt=1, at=0.0, writes=None):
    spec = TransactionSpec.make(name, home, writes=writes or {"x": 1})
    return Transaction(spec, attempt, submit_time=at, first_submit_time=at)


def make_ro(name, home=0, at=0.0):
    spec = TransactionSpec.make(name, home, read_keys=["x"])
    return Transaction(spec, 1, submit_time=at, first_submit_time=at)


def test_commit_latency_from_outcomes():
    metrics = MetricsCollector()
    metrics.tx_committed(make_tx("T1", at=10.0), end_time=25.0)
    metrics.tx_committed(make_tx("T2", at=10.0), end_time=15.0)
    summary = metrics.commit_latency()
    assert summary.count == 2
    assert summary.mean == 10.0


def test_abort_taxonomy():
    metrics = MetricsCollector()
    metrics.tx_aborted(make_tx("T1"), AbortReason.DEADLOCK, 1.0)
    metrics.tx_aborted(make_tx("T2"), AbortReason.DEADLOCK, 2.0)
    metrics.tx_aborted(make_tx("T3"), AbortReason.CERTIFICATION, 3.0)
    assert metrics.aborts_by_reason[AbortReason.DEADLOCK] == 2
    assert metrics.aborts_by_reason[AbortReason.CERTIFICATION] == 1
    assert metrics.abort_rate() == 1.0


def test_update_vs_readonly_separation():
    metrics = MetricsCollector()
    metrics.tx_committed(make_tx("W1"), 1.0)
    metrics.tx_committed(make_ro("R1"), 1.0)
    metrics.tx_aborted(make_tx("W2"), AbortReason.WRITE_CONFLICT, 2.0)
    assert metrics.committed_update_count() == 1
    assert metrics.committed_readonly_count() == 1
    assert metrics.update_abort_rate() == 0.5
    assert metrics.readonly_abort_count() == 0


def test_latency_filter_by_readonly():
    metrics = MetricsCollector()
    metrics.tx_committed(make_tx("W1", at=0.0), end_time=10.0)
    metrics.tx_committed(make_ro("R1", at=0.0), end_time=2.0)
    assert metrics.commit_latency(read_only=True).mean == 2.0
    assert metrics.commit_latency(read_only=False).mean == 10.0


def test_throughput():
    metrics = MetricsCollector()
    for n in range(10):
        metrics.tx_committed(make_tx(f"T{n}"), float(n))
    assert metrics.throughput(100.0) == 0.1
    assert metrics.throughput(0.0) == 0.0


def test_attempts_per_commit():
    metrics = MetricsCollector()
    metrics.tx_aborted(make_tx("T1", attempt=1), AbortReason.WRITE_CONFLICT, 1.0)
    metrics.tx_aborted(make_tx("T1", attempt=2), AbortReason.WRITE_CONFLICT, 2.0)
    metrics.tx_committed(make_tx("T1", attempt=3), 3.0)
    metrics.tx_committed(make_tx("T2"), 1.0)
    assert metrics.attempts_per_commit() == 2.0  # (3 + 1) / 2


def test_empty_collector_defaults():
    metrics = MetricsCollector()
    assert metrics.abort_rate() == 0.0
    assert metrics.update_abort_rate() == 0.0
    assert metrics.attempts_per_commit() == 0.0
    assert metrics.commit_latency().count == 0
