"""Tests for the metrics collector."""

from repro.analysis.metrics import MetricsCollector
from repro.core.transaction import AbortReason, Transaction, TransactionSpec


def make_tx(name, home=0, attempt=1, at=0.0, writes=None):
    spec = TransactionSpec.make(name, home, writes=writes or {"x": 1})
    return Transaction(spec, attempt, submit_time=at, first_submit_time=at)


def make_ro(name, home=0, at=0.0):
    spec = TransactionSpec.make(name, home, read_keys=["x"])
    return Transaction(spec, 1, submit_time=at, first_submit_time=at)


def test_commit_latency_from_outcomes():
    metrics = MetricsCollector()
    metrics.tx_committed(make_tx("T1", at=10.0), end_time=25.0)
    metrics.tx_committed(make_tx("T2", at=10.0), end_time=15.0)
    summary = metrics.commit_latency()
    assert summary.count == 2
    assert summary.mean == 10.0


def test_abort_taxonomy():
    metrics = MetricsCollector()
    metrics.tx_aborted(make_tx("T1"), AbortReason.DEADLOCK, 1.0)
    metrics.tx_aborted(make_tx("T2"), AbortReason.DEADLOCK, 2.0)
    metrics.tx_aborted(make_tx("T3"), AbortReason.CERTIFICATION, 3.0)
    assert metrics.aborts_by_reason[AbortReason.DEADLOCK] == 2
    assert metrics.aborts_by_reason[AbortReason.CERTIFICATION] == 1
    assert metrics.abort_rate() == 1.0


def test_update_vs_readonly_separation():
    metrics = MetricsCollector()
    metrics.tx_committed(make_tx("W1"), 1.0)
    metrics.tx_committed(make_ro("R1"), 1.0)
    metrics.tx_aborted(make_tx("W2"), AbortReason.WRITE_CONFLICT, 2.0)
    assert metrics.committed_update_count() == 1
    assert metrics.committed_readonly_count() == 1
    assert metrics.update_abort_rate() == 0.5
    assert metrics.readonly_abort_count() == 0


def test_latency_filter_by_readonly():
    metrics = MetricsCollector()
    metrics.tx_committed(make_tx("W1", at=0.0), end_time=10.0)
    metrics.tx_committed(make_ro("R1", at=0.0), end_time=2.0)
    assert metrics.commit_latency(read_only=True).mean == 2.0
    assert metrics.commit_latency(read_only=False).mean == 10.0


def test_throughput():
    metrics = MetricsCollector()
    for n in range(10):
        metrics.tx_committed(make_tx(f"T{n}"), float(n))
    assert metrics.throughput(100.0) == 0.1
    assert metrics.throughput(0.0) == 0.0


def test_attempts_per_commit():
    metrics = MetricsCollector()
    metrics.tx_aborted(make_tx("T1", attempt=1), AbortReason.WRITE_CONFLICT, 1.0)
    metrics.tx_aborted(make_tx("T1", attempt=2), AbortReason.WRITE_CONFLICT, 2.0)
    metrics.tx_committed(make_tx("T1", attempt=3), 3.0)
    metrics.tx_committed(make_tx("T2"), 1.0)
    assert metrics.attempts_per_commit() == 2.0  # (3 + 1) / 2


def test_empty_collector_defaults():
    metrics = MetricsCollector()
    assert metrics.abort_rate() == 0.0
    assert metrics.update_abort_rate() == 0.0
    assert metrics.attempts_per_commit() == 0.0
    assert metrics.commit_latency().count == 0


# -- order-canonical merge accumulators ---------------------------------------

def _digest_of(acc):
    """Bit-exact fingerprint of everything an accumulator can report."""
    from repro.analysis.metrics import QuantileAccumulator

    if isinstance(acc, QuantileAccumulator):
        reads = [acc.mean, acc.quantile(0.5), acc.quantile(0.95), acc.quantile(0.99)]
    else:
        reads = [acc.mean, acc.variance, acc.stddev]
    return (acc.count, tuple(float(v).hex() for v in reads))


def _quantile_parts():
    from repro.analysis.metrics import QuantileAccumulator

    parts = []
    for source in range(4):
        acc = QuantileAccumulator()
        for i in range(5):
            acc.observe(0.1 * (source + 1) * (i + 1) + 1 / 3, source=source)
        parts.append(acc)
    return parts


def _welford_parts():
    from repro.analysis.metrics import WelfordAccumulator

    parts = []
    for source in range(4):
        acc = WelfordAccumulator()
        for i in range(5):
            acc.observe(0.7 * (source + 1) + i / 7, source=source)
        parts.append(acc)
    return parts


def test_quantile_accumulator_merge_is_associative_and_order_free():
    import itertools

    a, b, c, d = _quantile_parts()
    reference = _digest_of(a.merge(b).merge(c).merge(d))
    assert _digest_of(a.merge(b.merge(c.merge(d)))) == reference  # associativity
    for order in itertools.permutations((a, b, c, d)):
        merged = order[0]
        for part in order[1:]:
            merged = merged.merge(part)
        assert _digest_of(merged) == reference  # permutation invariance


def test_welford_accumulator_merge_is_associative_and_order_free():
    import itertools

    a, b, c, d = _welford_parts()
    reference = _digest_of(a.merge(b).merge(c).merge(d))
    assert _digest_of(a.merge(b.merge(c.merge(d)))) == reference
    for order in itertools.permutations((a, b, c, d)):
        merged = order[0]
        for part in order[1:]:
            merged = merged.merge(part)
        assert _digest_of(merged) == reference


def test_merged_accumulators_match_single_stream():
    """Sharded observation reduces to exactly the one-stream result."""
    import math

    from repro.analysis.metrics import QuantileAccumulator, WelfordAccumulator
    from repro.analysis.stats import percentile

    values = [0.3 * i + 1 / 3 for i in range(20)]
    whole_q = QuantileAccumulator()
    for v in values:
        whole_q.observe(v)
    sharded = [QuantileAccumulator() for _ in range(4)]
    for i, v in enumerate(values):
        sharded[i % 4].observe(v, source=i % 4)
    merged = sharded[0].merge(sharded[1]).merge(sharded[2]).merge(sharded[3])
    assert merged.quantile(0.95) == percentile(values, 0.95)
    assert merged.mean == math.fsum(values) / len(values)
    assert merged.count == whole_q.count

    whole_w = WelfordAccumulator()
    for v in values:
        whole_w.observe(v)
    shards_w = [WelfordAccumulator() for _ in range(4)]
    for i, v in enumerate(values):
        shards_w[i % 4].observe(v, source=i % 4)
    merged_w = shards_w[0].merge(shards_w[1]).merge(shards_w[2]).merge(shards_w[3])
    assert merged_w.count == whole_w.count
    assert abs(merged_w.mean - whole_w.mean) < 1e-12
    assert abs(merged_w.variance - whole_w.variance) < 1e-12


def test_accumulator_merge_rejects_overlapping_sources():
    import pytest

    from repro.analysis.metrics import QuantileAccumulator, WelfordAccumulator

    a = QuantileAccumulator()
    a.observe(1.0, source="s")
    b = QuantileAccumulator()
    b.observe(2.0, source="s")
    with pytest.raises(ValueError):
        a.merge(b)

    c = WelfordAccumulator()
    c.observe(1.0, source=3)
    d = WelfordAccumulator()
    d.observe(2.0, source=3)
    with pytest.raises(ValueError):
        c.merge(d)
