"""Tests for the repository tooling scripts."""

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def run_script(name, *args, timeout=180):
    return subprocess.run(
        [sys.executable, str(ROOT / "scripts" / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=ROOT,
    )


def test_api_index_is_current():
    """docs/API.md must match the live docstrings (regen if this fails)."""
    proc = run_script("gen_api_index.py", "--check")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_run_experiments_rejects_unknown():
    proc = run_script("run_experiments.py", "e99")
    assert proc.returncode == 2
    assert "unknown experiments" in proc.stdout


def test_bench_report_quick_smoke():
    """CI smoke: quick perf suite runs, prints the table, writes nothing."""
    proc = run_script("bench_report.py", "--quick", "--no-write", timeout=300)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "perf suite" in proc.stdout
    assert "engine_churn" in proc.stdout


def test_run_experiments_single_experiment():
    """Run the fastest experiment end to end through the script."""
    proc = run_script("run_experiments.py", "e1", timeout=400)
    assert proc.returncode == 0, proc.stdout[-2000:] + proc.stderr[-2000:]
    assert "E1" in proc.stdout
    assert "PASS" in proc.stdout
