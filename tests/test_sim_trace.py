"""Unit tests for the trace log."""

from repro.sim.trace import TraceLog


def test_emit_and_filter():
    log = TraceLog()
    log.emit(1.0, "site0", "tx.commit", tx="T1")
    log.emit(2.0, "site1", "tx.abort", tx="T2")
    log.emit(3.0, "site0", "tx.commit", tx="T3")
    assert len(log) == 3
    assert [r.detail["tx"] for r in log.filter(kind="tx.commit")] == ["T1", "T3"]
    assert [r.detail["tx"] for r in log.filter(source="site1")] == ["T2"]
    assert log.filter(kind="tx.commit", tx="T3")[0].time == 3.0


def test_disabled_log_still_counts():
    log = TraceLog(enabled=False)
    log.emit(1.0, "s", "event.a")
    log.emit(2.0, "s", "event.a")
    assert len(log) == 0
    assert log.count("event.a") == 2


def test_capacity_bound():
    log = TraceLog(capacity=2)
    for i in range(5):
        log.emit(float(i), "s", "k")
    assert len(log) == 2
    assert log.count("k") == 5


def test_capacity_drops_are_counted():
    log = TraceLog(capacity=2)
    assert not log.truncated
    for i in range(5):
        log.emit(float(i), "s", "k")
    assert log.dropped == 3
    assert log.truncated
    assert len(log) == 2
    assert log.count("k") == 5  # counters keep going past the cap


def test_disabled_log_drops_nothing():
    log = TraceLog(enabled=False, capacity=1)
    for i in range(3):
        log.emit(float(i), "s", "k")
    assert log.dropped == 0
    assert not log.truncated


def test_dump_renders_every_record():
    log = TraceLog()
    log.emit(1.0, "site0", "tx.commit", tx="T1")
    text = log.dump()
    assert "site0" in text and "tx.commit" in text and "tx=T1" in text


def test_clear():
    log = TraceLog(capacity=1)
    log.emit(1.0, "s", "k")
    log.emit(2.0, "s", "k")
    assert log.truncated
    log.clear()
    assert len(log) == 0
    assert log.count("k") == 0
    assert log.dropped == 0 and not log.truncated


# -- ring mode (E13 soaks) -------------------------------------------------------


def test_ring_keeps_newest_records():
    log = TraceLog(capacity=3, mode="ring")
    for i in range(8):
        log.emit(float(i), "s", "k", i=i)
    assert len(log) == 3
    assert [r.detail["i"] for r in log.records] == [5, 6, 7]


def test_ring_records_are_chronological_across_wraparound():
    log = TraceLog(capacity=4, mode="ring")
    for i in range(11):  # wraps twice, ends mid-buffer
        log.emit(float(i), "s", "k")
    times = [r.time for r in log.records]
    assert times == sorted(times) == [7.0, 8.0, 9.0, 10.0]


def test_ring_dropped_is_exact():
    log = TraceLog(capacity=5, mode="ring")
    for i in range(17):
        log.emit(float(i), "s", "k")
    assert log.dropped == 12  # overwritten, not refused
    assert log.truncated
    assert log.count("k") == 17  # counters keep going past the cap


def test_ring_below_capacity_matches_unbounded():
    ring = TraceLog(capacity=10, mode="ring")
    plain = TraceLog()
    for i in range(6):
        ring.emit(float(i), "s", "k", i=i)
        plain.emit(float(i), "s", "k", i=i)
    assert [(r.time, r.detail) for r in ring.records] == [
        (r.time, r.detail) for r in plain.records
    ]
    assert not ring.truncated


def test_head_mode_unchanged_by_mode_parameter():
    head = TraceLog(capacity=2, mode="head")
    legacy = TraceLog(capacity=2)
    for i in range(5):
        head.emit(float(i), "s", "k")
        legacy.emit(float(i), "s", "k")
    assert [r.time for r in head.records] == [r.time for r in legacy.records] == [0.0, 1.0]
    assert head.dropped == legacy.dropped == 3


def test_ring_filter_sees_rotated_order():
    log = TraceLog(capacity=3, mode="ring")
    for i in range(5):
        log.emit(float(i), "s", "a" if i % 2 else "b")
    assert [r.time for r in log.filter(kind="a")] == [3.0]
    assert [r.time for r in log.filter(kind="b")] == [2.0, 4.0]


def test_ring_clear_resets_head():
    log = TraceLog(capacity=2, mode="ring")
    for i in range(5):
        log.emit(float(i), "s", "k")
    log.clear()
    for i in range(3):
        log.emit(float(10 + i), "s", "k")
    assert [r.time for r in log.records] == [11.0, 12.0]


def test_ring_requires_capacity():
    import pytest

    with pytest.raises(ValueError):
        TraceLog(mode="ring")
    with pytest.raises(ValueError):
        TraceLog(capacity=0, mode="ring")
    with pytest.raises(ValueError):
        TraceLog(capacity=5, mode="sideways")
