"""Unit tests for the trace log."""

from repro.sim.trace import TraceLog


def test_emit_and_filter():
    log = TraceLog()
    log.emit(1.0, "site0", "tx.commit", tx="T1")
    log.emit(2.0, "site1", "tx.abort", tx="T2")
    log.emit(3.0, "site0", "tx.commit", tx="T3")
    assert len(log) == 3
    assert [r.detail["tx"] for r in log.filter(kind="tx.commit")] == ["T1", "T3"]
    assert [r.detail["tx"] for r in log.filter(source="site1")] == ["T2"]
    assert log.filter(kind="tx.commit", tx="T3")[0].time == 3.0


def test_disabled_log_still_counts():
    log = TraceLog(enabled=False)
    log.emit(1.0, "s", "event.a")
    log.emit(2.0, "s", "event.a")
    assert len(log) == 0
    assert log.count("event.a") == 2


def test_capacity_bound():
    log = TraceLog(capacity=2)
    for i in range(5):
        log.emit(float(i), "s", "k")
    assert len(log) == 2
    assert log.count("k") == 5


def test_capacity_drops_are_counted():
    log = TraceLog(capacity=2)
    assert not log.truncated
    for i in range(5):
        log.emit(float(i), "s", "k")
    assert log.dropped == 3
    assert log.truncated
    assert len(log) == 2
    assert log.count("k") == 5  # counters keep going past the cap


def test_disabled_log_drops_nothing():
    log = TraceLog(enabled=False, capacity=1)
    for i in range(3):
        log.emit(float(i), "s", "k")
    assert log.dropped == 0
    assert not log.truncated


def test_dump_renders_every_record():
    log = TraceLog()
    log.emit(1.0, "site0", "tx.commit", tx="T1")
    text = log.dump()
    assert "site0" in text and "tx.commit" in text and "tx=T1" in text


def test_clear():
    log = TraceLog(capacity=1)
    log.emit(1.0, "s", "k")
    log.emit(2.0, "s", "k")
    assert log.truncated
    log.clear()
    assert len(log) == 0
    assert log.count("k") == 0
    assert log.dropped == 0 and not log.truncated
