"""Tests for the experiment sweep helper."""

import pytest

from repro.analysis.experiment import ExperimentSweep, cross_product


def scenario(protocol, parameter, seed):
    return {
        "metric_a": float(parameter) * (1 if protocol == "p1" else 2) + seed,
        "metric_b": 100.0 - parameter,
    }


def make_sweep(**overrides):
    defaults = dict(
        name="demo",
        scenario=scenario,
        parameters=(1, 2, 4),
        protocols=("p1", "p2"),
        seeds=(0,),
    )
    defaults.update(overrides)
    return ExperimentSweep(**defaults)


def test_run_collects_all_points():
    sweep = make_sweep().run()
    assert len(sweep.points) == 6
    assert sweep.value(2, "p2", "metric_a") == 4.0


def test_series_follows_parameter_axis():
    sweep = make_sweep().run()
    assert sweep.series("p1", "metric_a") == [1.0, 2.0, 4.0]
    assert sweep.series("p2", "metric_a") == [2.0, 4.0, 8.0]


def test_seed_replication_averages():
    sweep = make_sweep(seeds=(0, 10)).run()
    assert sweep.value(1, "p1", "metric_a") == pytest.approx(6.0)  # (1 + 11)/2


def test_table_rendering():
    sweep = make_sweep().run()
    text = sweep.table("metric_a", parameter_label="x").render()
    assert "demo: metric_a" in text
    assert "p1" in text and "p2" in text
    assert "4.00" in text


def test_render_all_covers_every_metric():
    sweep = make_sweep().run()
    text = sweep.render_all()
    assert "metric_a" in text and "metric_b" in text


def test_unknown_lookup_raises():
    sweep = make_sweep().run()
    with pytest.raises(KeyError):
        sweep.value(99, "p1", "metric_a")


def test_progress_callback():
    lines = []
    make_sweep().run(progress=lines.append)
    assert len(lines) == 6
    assert any("p2 @ 4" in line for line in lines)


def _cluster_scenario(protocol, parameter, seed):
    """A real (tiny) cluster run per cell; module-level so it pickles for
    the process-pool path."""
    from repro.core.cluster import Cluster, ClusterConfig
    from repro.workload import WorkloadConfig
    from repro.workload.runner import run_standard_mix

    cluster = Cluster(
        ClusterConfig(protocol=protocol, num_sites=parameter, num_objects=12, seed=seed)
    )
    result = run_standard_mix(
        cluster,
        WorkloadConfig(num_objects=12, num_sites=parameter, read_ops=1, write_ops=1),
        transactions=8,
        mpl=2,
    )
    assert result.ok
    return {
        "commits": float(result.committed_specs),
        "messages": float(result.network_stats["sent"]),
        "p50 latency (ms)": result.metrics.commit_latency(read_only=False).p50,
    }


def test_parallel_run_is_bit_identical_to_serial():
    serial = make_sweep(seeds=(0, 10)).run(jobs=1)
    parallel = make_sweep(seeds=(0, 10)).run(jobs=2)
    assert parallel.points == serial.points


def test_parallel_cluster_sweep_matches_serial():
    """Full-stack bit-identity: real simulations fanned across processes
    must aggregate to exactly the serial result, point for point."""
    kwargs = dict(
        name="mini",
        scenario=_cluster_scenario,
        parameters=(2, 3),
        protocols=("rbp", "abp"),
        seeds=(0,),
    )
    serial = ExperimentSweep(**kwargs).run()
    parallel = ExperimentSweep(**kwargs).run(jobs=2)
    assert parallel.points == serial.points


def test_parallel_progress_reports_every_cell():
    lines = []
    make_sweep().run(progress=lines.append, jobs=2)
    assert len(lines) == 6


def test_cross_product():
    combos = cross_product(a=(1, 2), b=("x", "y"))
    assert len(combos) == 4
    assert {"a": 1, "b": "y"} in combos
    assert cross_product() == [{}]
