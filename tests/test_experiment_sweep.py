"""Tests for the experiment sweep helper."""

import pytest

from repro.analysis.experiment import ExperimentSweep, cross_product


def scenario(protocol, parameter, seed):
    return {
        "metric_a": float(parameter) * (1 if protocol == "p1" else 2) + seed,
        "metric_b": 100.0 - parameter,
    }


def make_sweep(**overrides):
    defaults = dict(
        name="demo",
        scenario=scenario,
        parameters=(1, 2, 4),
        protocols=("p1", "p2"),
        seeds=(0,),
    )
    defaults.update(overrides)
    return ExperimentSweep(**defaults)


def test_run_collects_all_points():
    sweep = make_sweep().run()
    assert len(sweep.points) == 6
    assert sweep.value(2, "p2", "metric_a") == 4.0


def test_series_follows_parameter_axis():
    sweep = make_sweep().run()
    assert sweep.series("p1", "metric_a") == [1.0, 2.0, 4.0]
    assert sweep.series("p2", "metric_a") == [2.0, 4.0, 8.0]


def test_seed_replication_averages():
    sweep = make_sweep(seeds=(0, 10)).run()
    assert sweep.value(1, "p1", "metric_a") == pytest.approx(6.0)  # (1 + 11)/2


def test_table_rendering():
    sweep = make_sweep().run()
    text = sweep.table("metric_a", parameter_label="x").render()
    assert "demo: metric_a" in text
    assert "p1" in text and "p2" in text
    assert "4.00" in text


def test_render_all_covers_every_metric():
    sweep = make_sweep().run()
    text = sweep.render_all()
    assert "metric_a" in text and "metric_b" in text


def test_unknown_lookup_raises():
    sweep = make_sweep().run()
    with pytest.raises(KeyError):
        sweep.value(99, "p1", "metric_a")


def test_progress_callback():
    lines = []
    make_sweep().run(progress=lines.append)
    assert len(lines) == 6
    assert any("p2 @ 4" in line for line in lines)


def test_cross_product():
    combos = cross_product(a=(1, 2), b=("x", "y"))
    assert len(combos) == 4
    assert {"a": 1, "b": "y"} in combos
    assert cross_product() == [{}]
