"""Unit tests for the flush-window broadcast batcher."""

from dataclasses import dataclass

import pytest

from repro.broadcast.batching import (
    BATCH_KIND,
    BatchEnvelope,
    BatchingConfig,
    BroadcastBatcher,
)
from repro.net.network import Network
from repro.net.router import ChannelRouter
from repro.net.sizes import OBJECT_OVERHEAD, estimate_size
from repro.net.transport import ReliableTransport
from repro.sim.engine import SimulationEngine


@dataclass(slots=True)
class Note:
    text: str
    kind: str = "note"


def build(num_sites=3, flush_window=0.0):
    engine = SimulationEngine()
    network = Network(engine, num_sites)
    routers, batchers = [], []
    for site in range(num_sites):
        transport = ReliableTransport(engine, network, site)
        batcher = BroadcastBatcher(engine, transport, flush_window=flush_window)
        routers.append(ChannelRouter(transport, batcher=batcher))
        batchers.append(batcher)
    return engine, network, routers, batchers


def test_config_rejects_negative_window():
    with pytest.raises(ValueError):
        BatchingConfig(flush_window=-1.0)
    with pytest.raises(ValueError):
        BroadcastBatcher(SimulationEngine(), None, flush_window=-0.5)


def test_same_window_payloads_share_one_envelope():
    engine, network, routers, batchers = build()
    got = []
    routers[1].register("c", lambda src, p: got.append((src, p.text)))
    routers[0].send(1, "c", Note("first"))
    routers[0].send(1, "c", Note("second"))
    engine.run()
    # One physical datagram carried both payloads, in issue order.
    assert got == [(0, "first"), (0, "second")]
    assert batchers[0].batches_sent == 1
    assert batchers[0].payloads_batched == 2
    assert network.stats.sent == 1
    assert network.stats.by_kind["note"] == 2
    assert network.stats.by_kind[BATCH_KIND] == 1


def test_single_payload_window_is_sent_unwrapped():
    engine, network, routers, batchers = build()
    got = []
    routers[1].register("c", lambda src, p: got.append(p.text))
    routers[0].send(1, "c", Note("solo"))
    engine.run()
    assert got == ["solo"]
    assert batchers[0].singles_sent == 1
    assert batchers[0].batches_sent == 0
    assert BATCH_KIND not in network.stats.by_kind


def test_destinations_get_separate_envelopes():
    engine, network, routers, batchers = build()
    boxes = {1: [], 2: []}
    routers[1].register("c", lambda src, p: boxes[1].append(p.text))
    routers[2].register("c", lambda src, p: boxes[2].append(p.text))
    routers[0].multicast([0, 1, 2], "c", Note("a"))
    routers[0].multicast([0, 1, 2], "c", Note("b"))
    engine.run()
    assert boxes[1] == ["a", "b"] and boxes[2] == ["a", "b"]
    assert batchers[0].batches_sent == 2  # one per destination
    assert network.stats.sent == 2


def test_flush_window_delays_delivery():
    engine, network, routers, batchers = build(flush_window=2.0)
    seen_at = []
    routers[1].register("c", lambda src, p: seen_at.append(engine.now))
    routers[0].send(1, "c", Note("x"))
    assert batchers[0].pending_count() == 1
    engine.run()
    assert batchers[0].pending_count() == 0
    # Window (2.0) + link latency (1.0 fixed default).
    assert seen_at == [3.0]


def test_windows_close_and_reopen():
    engine, network, routers, batchers = build()
    got = []
    routers[1].register("c", lambda src, p: got.append(p.text))
    routers[0].send(1, "c", Note("w1-a"))
    routers[0].send(1, "c", Note("w1-b"))
    engine.run()
    routers[0].send(1, "c", Note("w2-a"))
    routers[0].send(1, "c", Note("w2-b"))
    engine.run()
    assert got == ["w1-a", "w1-b", "w2-a", "w2-b"]
    assert batchers[0].batches_sent == 2
    # Batch sequence numbers advance across windows.
    assert batchers[0]._next_seq == 2


def test_empty_flush_after_reset_is_a_noop():
    engine, network, routers, batchers = build()
    routers[1].register("c", lambda src, p: pytest.fail("window was dropped"))
    routers[0].send(1, "c", Note("doomed"))
    batchers[0].reset()  # fail-stop crash: the open window is lost
    engine.run()
    assert batchers[0].empty_flushes == 1
    assert network.stats.sent == 0


def test_flush_now_drains_synchronously():
    engine, network, routers, batchers = build()
    routers[1].register("c", lambda src, p: None)
    routers[0].send(1, "c", Note("x"))
    routers[0].send(1, "c", Note("y"))
    batchers[0].flush_now()
    assert batchers[0].pending_count() == 0
    assert batchers[0].batches_sent == 1
    engine.run()  # the armed timer fires as an empty flush
    assert batchers[0].empty_flushes == 1


def test_envelope_wire_size_matches_field_traversal():
    envelope = BatchEnvelope(3, (Note("ab"), Note("cdef")))
    expected = (
        OBJECT_OVERHEAD
        + 8  # seq
        + estimate_size(envelope.items)
        + estimate_size(envelope.kind)
    )
    assert envelope.__wire_size__() == expected
    assert envelope.__wire_size__() == expected  # memoized path agrees
    assert len(envelope) == 2


def test_batch_bytes_attributed_to_constituent_kinds():
    engine, network, routers, batchers = build()
    routers[1].register("c", lambda src, p: None)
    routers[0].send(1, "c", Note("aa"))
    routers[0].send(1, "c", Note("bbbb"))
    engine.run()
    stats = network.stats
    # Physical accounting: one datagram; logical accounting: two notes plus
    # the envelope's framing residual.  Byte totals reconcile exactly.
    assert stats.sent == 1
    assert stats.by_kind["note"] == 2
    assert sum(stats.bytes_by_kind.values()) == stats.bytes_sent
    assert stats.bytes_by_kind[BATCH_KIND] > 0
