"""Tests for WAL checkpointing and local rebuild fidelity."""

import pytest

from repro.core.cluster import Cluster, ClusterConfig
from repro.core.transaction import TransactionSpec
from repro.workload import WorkloadConfig
from repro.workload.runner import run_standard_mix


def test_checkpoint_truncates_wal_and_preserves_rebuild():
    cluster = Cluster(ClusterConfig(protocol="rbp", num_sites=3, seed=5))
    for n in range(4):
        cluster.submit(
            TransactionSpec.make(f"t{n}", n % 3, writes={f"x{n}": n}),
            at=n * 100.0,
        )
    cluster.run()
    replica = cluster.replicas[0]
    wal_before = len(replica.wal)
    assert wal_before > 0
    replica.checkpoint()
    assert len(replica.wal) == 0
    # More traffic after the checkpoint...
    cluster.submit(
        TransactionSpec.make("post", 0, writes={"x7": "late"}),
        at=cluster.engine.now + 100.0,
    )
    cluster.run()
    # ...and the rebuild (checkpoint + WAL tail) matches the live store.
    assert replica.rebuild_from_local_log().digest() == replica.store.digest()


def test_rebuild_without_any_checkpoint():
    cluster = Cluster(ClusterConfig(protocol="abp", num_sites=3, seed=6))
    cluster.submit(TransactionSpec.make("t", 1, writes={"x0": 1}))
    cluster.run()
    for replica in cluster.replicas:
        assert replica.rebuild_from_local_log().digest() == replica.store.digest()


def test_periodic_checkpoints_bound_wal_growth():
    cluster = Cluster(
        ClusterConfig(
            protocol="rbp",
            num_sites=3,
            num_objects=32,
            seed=7,
            checkpoint_interval=100.0,
        )
    )
    result = run_standard_mix(
        cluster,
        WorkloadConfig(num_objects=32, num_sites=3, read_ops=1, write_ops=2),
        transactions=60,
        mpl=3,
    )
    assert result.ok
    for replica in cluster.replicas:
        assert replica.checkpoints_taken >= 2
        # Each committed write costs ~2 records; without checkpoints the
        # log would hold all ~60*2 writes plus begin/commit records.
        assert len(replica.wal) < 120
        assert replica.rebuild_from_local_log().digest() == replica.store.digest()


@pytest.mark.parametrize("protocol", ["rbp", "cbp"])
def test_state_transfer_sets_recovery_point(protocol):
    cluster = Cluster(
        ClusterConfig(
            protocol=protocol,
            num_sites=4,
            seed=8,
            enable_failure_detector=True,
            fd_interval=20.0,
            fd_timeout=80.0,
            relay=True,
        )
    )
    cluster.crash_site(3, at=10.0)
    cluster.submit(TransactionSpec.make("w", 0, writes={"x0": "v"}), at=500.0)
    cluster.run(max_time=10000)
    cluster.recover_site(3)
    cluster.run_for(3000)
    replica = cluster.replicas[3]
    assert not replica.recovering
    # The received snapshot became the local checkpoint: rebuild matches.
    assert replica.rebuild_from_local_log().digest() == replica.store.digest()
    assert replica.checkpoints_taken >= 1
