"""Tests for the transaction timeline renderer."""

from repro.analysis.timeline import TimelineBuilder, render_timeline
from repro.core.cluster import Cluster, ClusterConfig
from repro.core.transaction import TransactionSpec
from repro.sim.trace import TraceLog


def traced_cluster(**overrides):
    defaults = dict(protocol="rbp", num_sites=3, num_objects=8, seed=6, trace=True)
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults))


def test_builder_extracts_lifecycle():
    cluster = traced_cluster()
    cluster.submit(TransactionSpec.make("t1", 0, read_keys=["x0"], writes={"x0": 1}))
    cluster.run()
    builder = TimelineBuilder(cluster.trace)
    timeline = builder.timelines["t1#1"]
    assert timeline.submit == 0.0
    assert timeline.reads_done is not None
    assert timeline.finished
    assert timeline.outcome == "committed"
    assert timeline.site == "site0"


def test_aborted_transaction_marked():
    cluster = traced_cluster(retry_aborted=False)
    cluster.submit(TransactionSpec.make("a", 0, writes={"x0": 1}), at=0.0)
    cluster.submit(TransactionSpec.make("b", 1, writes={"x0": 2}), at=0.1)
    cluster.run()
    builder = TimelineBuilder(cluster.trace)
    outcomes = {t.tx_id: t.outcome for t in builder.ordered()}
    # Concurrent single-key writers under no-wait: at least one (possibly
    # both) draws a negative ack and aborts; all reach a terminal state.
    assert all(o is not None for o in outcomes.values())
    assert any(o and o.startswith("aborted:write_conflict") for o in outcomes.values())


def test_render_shows_bars_and_markers():
    cluster = traced_cluster()
    cluster.submit(TransactionSpec.make("t1", 0, read_keys=["x0"], writes={"x0": 1}))
    cluster.submit(TransactionSpec.make("t2", 1, read_keys=["x1"]), at=2.0)
    cluster.run()
    art = render_timeline(cluster.trace)
    assert "t1#1" in art and "t2#1" in art
    assert "C" in art
    assert "committed" in art


def test_render_empty_trace():
    assert "no transactions" in render_timeline(TraceLog())


def test_ordering_by_submission_time():
    cluster = traced_cluster()
    cluster.submit(TransactionSpec.make("later", 0, writes={"x0": 1}), at=100.0)
    cluster.submit(TransactionSpec.make("early", 1, writes={"x1": 2}), at=1.0)
    cluster.run()
    rows = TimelineBuilder(cluster.trace).ordered()
    names = [t.tx_id for t in rows]
    assert names.index("early#1") < names.index("later#1")


def test_incomplete_transaction_rendered():
    cluster = traced_cluster(protocol="cbp", cbp_heartbeat=None)
    cluster.submit(TransactionSpec.make("stuck", 0, writes={"x0": 1}))
    cluster.run(max_time=500.0)
    art = render_timeline(cluster.trace)
    assert "incomplete" in art
