"""Unit tests for the strict-2PL lock manager."""

import pytest

from repro.db.locks import LockManager, LockMode, LockPolicyError, compatible

S = LockMode.SHARED
X = LockMode.EXCLUSIVE


@pytest.fixture
def lm():
    return LockManager()


def test_compatibility_matrix():
    assert compatible(S, S)
    assert not compatible(S, X)
    assert not compatible(X, S)
    assert not compatible(X, X)


def test_shared_locks_coexist(lm):
    assert lm.try_acquire("T1", "x", S)
    assert lm.try_acquire("T2", "x", S)
    assert lm.holds("T1", "x") is S
    assert lm.holds("T2", "x") is S


def test_exclusive_excludes_everyone(lm):
    assert lm.try_acquire("T1", "x", X)
    assert not lm.try_acquire("T2", "x", S)
    assert not lm.try_acquire("T2", "x", X)
    assert lm.stats.denials == 2


def test_no_wait_failure_has_no_side_effects(lm):
    lm.try_acquire("T1", "x", X)
    lm.try_acquire("T2", "x", X)
    assert lm.holds("T2", "x") is None
    assert not lm.is_waiting("T2")


def test_reacquire_same_mode_is_noop(lm):
    assert lm.try_acquire("T1", "x", S)
    assert lm.try_acquire("T1", "x", S)
    assert lm.holds("T1", "x") is S


def test_upgrade_sole_holder(lm):
    lm.try_acquire("T1", "x", S)
    assert lm.try_acquire("T1", "x", X)
    assert lm.holds("T1", "x") is X


def test_upgrade_blocked_by_other_reader(lm):
    lm.try_acquire("T1", "x", S)
    lm.try_acquire("T2", "x", S)
    assert not lm.try_acquire("T1", "x", X)
    assert lm.holds("T1", "x") is S


def test_queued_acquire_granted_on_release(lm):
    grants = []
    lm.try_acquire("T1", "x", X)
    assert not lm.acquire("T2", "x", X, lambda tx, key: grants.append((tx, key)))
    lm.release_all("T1")
    assert grants == [("T2", "x")]
    assert lm.holds("T2", "x") is X


def test_queue_is_fifo(lm):
    grants = []
    lm.try_acquire("T1", "x", X)
    lm.acquire("T2", "x", X, lambda tx, key: grants.append(tx))
    lm.acquire("T3", "x", X, lambda tx, key: grants.append(tx))
    lm.release_all("T1")
    assert grants == ["T2"]
    lm.release_all("T2")
    assert grants == ["T2", "T3"]


def test_readers_granted_together(lm):
    grants = []
    lm.try_acquire("T1", "x", X)
    lm.acquire("R1", "x", S, lambda tx, key: grants.append(tx))
    lm.acquire("R2", "x", S, lambda tx, key: grants.append(tx))
    lm.release_all("T1")
    assert sorted(grants) == ["R1", "R2"]


def test_writer_not_starved_behind_reader_stream(lm):
    """A new reader must not jump over a queued writer (FIFO fairness)."""
    lm.try_acquire("R1", "x", S)
    lm.acquire("W", "x", X, None)
    assert not lm.acquire("R2", "x", S, None)  # queued behind the writer
    lm.release_all("R1")
    assert lm.holds("W", "x") is X


def test_double_queue_rejected(lm):
    lm.try_acquire("T1", "x", X)
    lm.acquire("T2", "x", X, None)
    with pytest.raises(LockPolicyError):
        lm.acquire("T2", "x", X, None)


def test_group_acquire_all_available(lm):
    assert lm.acquire_group("T1", {"x": S, "y": S})
    assert lm.holds("T1", "x") is S and lm.holds("T1", "y") is S


def test_group_acquire_holds_nothing_while_waiting(lm):
    lm.try_acquire("W", "y", X)
    granted = []
    assert not lm.acquire_group("T1", {"x": S, "y": S}, lambda tx: granted.append(tx))
    assert lm.holds("T1", "x") is None  # no hold-and-wait
    lm.release_all("W")
    assert granted == ["T1"]
    assert lm.holds("T1", "x") is S and lm.holds("T1", "y") is S


def test_group_empty_is_trivially_granted(lm):
    assert lm.acquire_group("T1", {})


def test_double_group_rejected(lm):
    lm.try_acquire("W", "x", X)
    lm.acquire_group("T1", {"x": S}, None)
    with pytest.raises(LockPolicyError):
        lm.acquire_group("T1", {"x": S}, None)


def test_release_all_clears_queues_and_groups(lm):
    lm.try_acquire("W", "x", X)
    lm.acquire("T1", "x", X, None)
    lm.acquire_group("T2", {"x": S}, None)
    lm.release_all("T1")
    lm.release_all("T2")
    assert not lm.is_waiting("T1")
    assert not lm.is_waiting("T2")
    lm.release_all("W")
    assert lm.holders_of("x") == {}


def test_cancel_request(lm):
    lm.try_acquire("W", "x", X)
    lm.acquire("T1", "x", X, None)
    lm.cancel_request("T1", "x")
    lm.release_all("W")
    assert lm.holds("T1", "x") is None


def test_conflicting_holders(lm):
    lm.try_acquire("R1", "x", S)
    lm.try_acquire("R2", "x", S)
    assert sorted(lm.conflicting_holders("T", "x", X)) == ["R1", "R2"]
    assert lm.conflicting_holders("T", "x", S) == []
    assert lm.conflicting_holders("R1", "x", X) == ["R2"]


def test_waits_for_edges_and_cycle_detection(lm):
    # T1 holds x, T2 holds y; each queues on the other's key: a 2-cycle.
    lm.try_acquire("T1", "x", X)
    lm.try_acquire("T2", "y", X)
    lm.acquire("T1", "y", X, None)
    lm.acquire("T2", "x", X, None)
    edges = lm.waits_for_edges()
    assert "T2" in edges["T1"] and "T1" in edges["T2"]
    cycle = lm.find_cycle()
    assert cycle is not None
    assert set(cycle) == {"T1", "T2"}


def test_no_cycle_in_straight_queue(lm):
    lm.try_acquire("T1", "x", X)
    lm.acquire("T2", "x", X, None)
    lm.acquire("T3", "x", X, None)
    assert lm.find_cycle() is None


def test_upgrade_deadlock_detected(lm):
    """Two readers both requesting upgrade: the classic S->X deadlock."""
    lm.try_acquire("T1", "x", S)
    lm.try_acquire("T2", "x", S)
    lm.acquire("T1", "x", X, None)
    lm.acquire("T2", "x", X, None)
    cycle = lm.find_cycle()
    assert cycle is not None and set(cycle) == {"T1", "T2"}


def test_three_party_cycle(lm):
    lm.try_acquire("T1", "x", X)
    lm.try_acquire("T2", "y", X)
    lm.try_acquire("T3", "z", X)
    lm.acquire("T1", "y", X, None)
    lm.acquire("T2", "z", X, None)
    lm.acquire("T3", "x", X, None)
    cycle = lm.find_cycle()
    assert cycle is not None and set(cycle) == {"T1", "T2", "T3"}


def test_held_keys_tracking(lm):
    lm.try_acquire("T1", "x", S)
    lm.try_acquire("T1", "y", X)
    assert lm.held_keys("T1") == {"x", "y"}
    lm.release_all("T1")
    assert lm.held_keys("T1") == set()


def test_grant_callbacks_run_after_state_settles(lm):
    """A grant callback that immediately releases must not corrupt the
    re-evaluation pass that invoked it."""
    order = []

    def grab_and_release(tx, key):
        order.append(tx)
        lm.release_all(tx)

    lm.try_acquire("T1", "x", X)
    lm.acquire("T2", "x", X, grab_and_release)
    lm.acquire("T3", "x", X, lambda tx, key: order.append(tx))
    lm.release_all("T1")
    assert order == ["T2", "T3"]
    assert lm.holds("T3", "x") is X


def test_preempt_displaces_holder_to_queue_front(lm):
    lm.try_acquire("U", "x", X)
    lm.acquire("W1", "x", X, None)  # younger waiter
    losers = lm.preempt("x", "T")
    assert losers == ["U"]
    assert lm.holds("T", "x") is X
    assert lm.holds("U", "x") is None
    # U's claim survives at the FRONT of the queue, ahead of W1.
    assert [r.tx for r in lm.queued("x")] == ["U", "W1"]
    lm.release_all("T")
    assert lm.holds("U", "x") is X


def test_preempt_consumes_winners_queued_claim(lm):
    lm.try_acquire("U", "x", X)
    lm.acquire("T", "x", X, None)  # T queued behind U
    lm.preempt("x", "T")
    assert lm.holds("T", "x") is X
    assert [r.tx for r in lm.queued("x")] == ["U"]
    lm.release_all("T")
    lm.release_all("U")
    assert lm.holders_of("x") == {}
    assert lm.queued("x") == []


def test_preempt_on_free_key_is_plain_grant(lm):
    assert lm.preempt("x", "T") == []
    assert lm.holds("T", "x") is X
