"""Protocol tests for CBP (causal broadcast + implicit acknowledgments)."""


from repro.core.transaction import AbortReason


def test_single_update_commits_everywhere(cluster_factory, make_spec):
    cluster = cluster_factory("cbp")
    cluster.submit(make_spec("t1", 0, reads=["x0"], writes={"x0": 7}))
    result = cluster.run()
    assert result.ok and result.committed_specs == 1
    for replica in cluster.replicas:
        assert replica.store.read("x0").value == 7


def test_no_explicit_acknowledgment_messages(cluster_factory, make_spec):
    """The headline property: no per-write acks and no 2PC votes — only
    write sets, commit requests and (idle-time) null messages."""
    cluster = cluster_factory("cbp", num_sites=3)
    cluster.submit(make_spec("t1", 0, writes={"x0": 1, "x1": 2}))
    result = cluster.run()
    assert result.ok
    kinds = set(result.messages_by_kind)
    assert kinds <= {"cbp.write", "cbp.commit_request", "cbp.null"}
    assert result.messages_by_kind["cbp.write"] == 2  # one batched set, n-1
    assert result.messages_by_kind["cbp.commit_request"] == 2


def test_commit_waits_for_implicit_acks(cluster_factory, make_spec):
    """With heartbeats off and no other traffic, a lone update transaction
    cannot collect implicit acknowledgments and stays uncommitted — the
    drawback the paper calls out."""
    cluster = cluster_factory("cbp", cbp_heartbeat=None)
    cluster.submit(make_spec("t1", 0, writes={"x0": 1}))
    result = cluster.run(max_time=5000.0)
    assert result.incomplete_specs == 1
    assert result.committed_specs == 0


def test_traffic_from_other_sites_serves_as_implicit_ack(cluster_factory, make_spec):
    """Even without heartbeats, ordinary traffic from every site lets the
    transaction commit — acknowledgments are truly implicit."""
    cluster = cluster_factory("cbp", cbp_heartbeat=None, num_sites=3)
    cluster.submit(make_spec("t1", 0, writes={"x0": 1}), at=0.0)
    # Other sites each run their own (non-conflicting) update later, whose
    # messages causally follow t1's commit request.
    cluster.submit(make_spec("t2", 1, writes={"x1": 2}), at=10.0)
    cluster.submit(make_spec("t3", 2, writes={"x2": 3}), at=20.0)
    result = cluster.run(max_time=50000.0)
    # t1 commits thanks to t2/t3's messages; t3 itself gets echoes from the
    # earlier traffic of sites 0 and 1?  No — nothing follows t3, so the
    # last transactions may stall: assert precisely what the paper says.
    assert cluster.spec_status("t1").committed


def test_heartbeats_bound_the_wait(cluster_factory, make_spec):
    cluster = cluster_factory("cbp", cbp_heartbeat=20.0)
    cluster.submit(make_spec("t1", 0, writes={"x0": 1}))
    result = cluster.run()
    assert result.ok and result.committed_specs == 1
    latency = result.metrics.commit_latency().mean
    assert latency < 100.0  # a couple of heartbeat intervals


def test_concurrent_conflicting_writers_resolved_by_nack(cluster_factory, make_spec):
    cluster = cluster_factory("cbp", retry_aborted=False)
    cluster.submit(make_spec("w1", 0, writes={"x0": "a"}), at=0.0)
    cluster.submit(make_spec("w2", 1, writes={"x0": "b"}), at=0.1)
    result = cluster.run()
    assert result.ok
    assert result.failed_specs >= 1
    assert result.metrics.aborts_by_reason[AbortReason.CONCURRENT_NACK] >= 1
    assert result.messages_by_kind.get("cbp.nack", 0) > 0


def test_mutual_concurrent_aborts_recover_via_retry(cluster_factory, make_spec):
    """Concurrent conflicting writers may BOTH be NACKed (each home has
    already endorsed its own transaction, so each NACKs the other's — the
    paper: concurrent conflicting operations "will be aborted").  The
    client retry loop then serializes the reruns causally and both commit."""
    cluster = cluster_factory("cbp", retry_aborted=True, cbp_heartbeat=15.0)
    cluster.submit(make_spec("old", 0, writes={"x0": "a"}), at=0.0)
    cluster.submit(make_spec("young", 1, writes={"x0": "b"}), at=0.05)
    result = cluster.run()
    assert result.ok
    assert result.committed_specs == 2
    assert result.metrics.aborts_by_reason[AbortReason.CONCURRENT_NACK] >= 1


def test_causally_ordered_writers_both_commit(cluster_factory, make_spec):
    """Sequential (causally ordered) writers to the same key never NACK."""
    cluster = cluster_factory("cbp", retry_aborted=False, cbp_heartbeat=10.0)
    cluster.submit(make_spec("w1", 0, writes={"x0": "a"}), at=0.0)
    cluster.submit(make_spec("w2", 1, writes={"x0": "b"}), at=500.0)
    result = cluster.run()
    assert result.ok
    assert result.committed_specs == 2
    assert result.messages_by_kind.get("cbp.nack", 0) == 0
    for replica in cluster.replicas:
        assert replica.store.read("x0").value == "b"


def test_read_only_never_aborts_and_sends_nothing(cluster_factory, make_spec):
    cluster = cluster_factory("cbp", cbp_heartbeat=None)
    cluster.submit(make_spec("r1", 2, reads=["x0", "x3"]))
    result = cluster.run(max_time=1000.0)
    assert cluster.spec_status("r1").committed
    assert result.metrics.readonly_abort_count() == 0
    protocol_msgs = {
        k: v for k, v in result.messages_by_kind.items() if k.startswith("cbp.")
    }
    assert protocol_msgs.get("cbp.write", 0) == 0
    assert protocol_msgs.get("cbp.commit_request", 0) == 0


def test_per_op_mode_commits_and_preserves_1sr(make_spec):
    from tests.conftest import quick_cluster
    from repro.workload import WorkloadConfig
    from repro.workload.runner import run_standard_mix

    cluster = quick_cluster("cbp", cbp_per_op=True, num_objects=8, seed=23)
    result = run_standard_mix(
        cluster,
        WorkloadConfig(num_objects=8, num_sites=3, read_ops=2, write_ops=3, zipf_theta=0.6),
        transactions=25,
        mpl=5,
    )
    assert result.ok
    # Per-op mode sends one cbp.write per operation.
    committed_updates = result.metrics.committed_update_count()
    assert result.messages_by_kind["cbp.write"] >= committed_updates * 3 * 2


def test_nack_never_arrives_for_committed_transaction(cluster_factory):
    """Runs a contended workload; the ProtocolInvariantError inside the
    replica would fire if the endorsement rule were broken."""
    from repro.workload import WorkloadConfig
    from repro.workload.runner import run_standard_mix

    cluster = cluster_factory("cbp", num_objects=6, seed=31)
    result = run_standard_mix(
        cluster,
        WorkloadConfig(num_objects=6, num_sites=3, read_ops=1, write_ops=2, zipf_theta=0.9),
        transactions=40,
        mpl=8,
    )
    assert result.ok


def test_vector_clocks_exposed_to_protocol(cluster_factory, make_spec):
    cluster = cluster_factory("cbp")
    cluster.submit(make_spec("t1", 0, writes={"x0": 1}))
    cluster.run()
    # The causal layer's clock advanced at every site.
    for causal in cluster.causals:
        assert causal.clock[0] >= 2  # write set + commit request


def test_update_takes_longer_than_rbp_without_traffic(make_spec):
    """CBP's commit latency is heartbeat-bound when idle; RBP's is
    round-trip-bound.  Sanity-check the relationship the paper predicts
    for a quiet system."""
    from tests.conftest import quick_cluster

    rbp = quick_cluster("rbp", seed=3)
    rbp.submit(make_spec("t1", 0, writes={"x0": 1}))
    rbp_latency = rbp.run().metrics.commit_latency().mean

    cbp = quick_cluster("cbp", seed=3, cbp_heartbeat=50.0)
    cbp.submit(make_spec("t1", 0, writes={"x0": 1}))
    cbp_latency = cbp.run().metrics.commit_latency().mean
    assert cbp_latency > rbp_latency


def test_protocol_state_round_trips_through_export(cluster_factory, make_spec):
    """The in-flight books a state transfer ships must survive the
    export/adopt round trip wholesale: per-transaction state, finished
    and dead sets, and the lock holders (in the donor's grant order)."""
    cluster = cluster_factory("cbp", num_sites=3)
    cluster.submit(make_spec("T1", 0, writes={"x0": 1, "x1": 2}))
    donor = cluster.replicas[0]
    for _ in range(1000):
        if donor._states:
            break
        cluster.run_for(0.1)
    assert donor._states, "write never went in flight"
    exported = donor.export_protocol_state()
    # Adopt replaces the rejoiner's own (possibly stale) books wholesale.
    rejoiner = cluster.replicas[2]
    rejoiner.adopt_protocol_state(exported)
    assert set(rejoiner._states) == set(donor._states)
    for tx_id, state in donor._states.items():
        adopted = rejoiner._states[tx_id]
        assert adopted.writes == state.writes
        assert adopted.home == state.home
        assert adopted.priority == tuple(state.priority)
        assert adopted.granted == state.granted
        assert adopted.echoes == state.echoes
        assert adopted.cr_entry == state.cr_entry
    assert rejoiner._finished == donor._finished
    assert rejoiner._dead == donor._dead


def test_adopt_reaps_states_whose_home_left_the_view(cluster_factory, make_spec):
    """The export races the next view change: a state whose home was
    evicted between export and adopt was killed at every surviving site
    by the view change the rejoiner never saw.  Adoption must reap it,
    or its locks wedge the keys forever (a churn-soak liveness bug)."""
    cluster = cluster_factory("cbp", num_sites=3)
    cluster.submit(make_spec("T1", 1, writes={"x0": 1}))
    donor = cluster.replicas[0]
    for _ in range(1000):
        if donor._states:
            break
        cluster.run_for(0.1)
    exported = donor.export_protocol_state()
    rejoiner = cluster.replicas[2]
    rejoiner.view_members = [0, 2]  # home site 1 evicted meanwhile
    rejoiner.adopt_protocol_state(exported)
    assert "T1" not in rejoiner._states
    assert not rejoiner.locks.queued("x0")
