"""Tests for the cluster harness: retries, fault injection, determinism."""

import pytest

from repro.core.cluster import Cluster, ClusterConfig
from repro.core.transaction import AbortReason


def test_unknown_protocol_rejected():
    with pytest.raises(ValueError):
        ClusterConfig(protocol="carrier-pigeon")


def test_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(num_sites=0)
    with pytest.raises(ValueError):
        ClusterConfig(num_objects=0)


def test_duplicate_spec_rejected(cluster_factory, make_spec):
    cluster = cluster_factory("rbp")
    cluster.submit(make_spec("t1", 0, writes={"x0": 1}))
    with pytest.raises(ValueError):
        cluster.submit(make_spec("t1", 0, writes={"x0": 2}))


def test_deterministic_given_seed(make_spec):
    """Two identical clusters produce byte-identical outcomes."""
    from repro.workload import WorkloadConfig
    from repro.workload.runner import run_standard_mix

    results = []
    for _ in range(2):
        cluster = Cluster(ClusterConfig(protocol="cbp", num_sites=3, num_objects=8, seed=77))
        result = run_standard_mix(
            cluster,
            WorkloadConfig(num_objects=8, num_sites=3, zipf_theta=0.6),
            transactions=20,
            mpl=4,
        )
        results.append(
            (
                result.duration,
                result.committed_specs,
                sorted(result.messages_by_kind.items()),
                [(o.tx_id, o.committed, o.end_time) for o in result.metrics.outcomes],
            )
        )
    assert results[0] == results[1]


def test_different_seeds_differ(make_spec):
    from repro.workload import WorkloadConfig
    from repro.workload.runner import run_standard_mix

    durations = set()
    for seed in (1, 2, 3):
        cluster = Cluster(ClusterConfig(protocol="rbp", num_sites=3, num_objects=8, seed=seed))
        result = run_standard_mix(
            cluster, WorkloadConfig(num_objects=8, num_sites=3), transactions=10, mpl=3
        )
        durations.add(result.duration)
    assert len(durations) > 1


def test_retry_respects_max_attempts(cluster_factory, make_spec):
    cluster = cluster_factory("rbp", max_attempts=2, retry_backoff=1.0)
    # Perpetual conflict is hard to arrange; instead verify the accounting
    # path: a transaction that conflicts once retries and then commits.
    cluster.submit(make_spec("a", 0, writes={"x0": 1}), at=0.0)
    cluster.submit(make_spec("b", 1, writes={"x0": 2}), at=0.1)
    result = cluster.run()
    for name in ("a", "b"):
        assert cluster.spec_status(name).attempts <= 2


def test_crash_site_aborts_its_local_transactions(cluster_factory, make_spec):
    cluster = cluster_factory("rbp", retry_aborted=False)
    cluster.submit(make_spec("doomed", 1, writes={"x0": 1}), at=0.0)
    cluster.crash_site(1, at=0.05)  # before any ack can arrive
    result = cluster.run(max_time=5000)
    status = cluster.spec_status("doomed")
    assert not status.committed
    assert status.last_outcome is AbortReason.SITE_FAILURE


def test_crashed_site_excluded_from_convergence_check(cluster_factory, make_spec):
    cluster = cluster_factory("rbp", num_sites=3, enable_failure_detector=True)
    cluster.crash_site(2, at=0.0)
    cluster.submit(make_spec("t1", 0, writes={"x0": 9}), at=500.0)
    result = cluster.run(max_time=100000)
    assert cluster.spec_status("t1").committed
    assert result.ok  # only live replicas must agree


def test_minority_view_refuses_updates_allows_reads(make_spec):
    cluster = Cluster(
        ClusterConfig(
            protocol="rbp",
            num_sites=5,
            seed=3,
            enable_failure_detector=True,
            fd_interval=20,
            fd_timeout=80,
            retry_aborted=False,
        )
    )
    cluster.engine.schedule_at(10.0, cluster.partition, [[0, 1, 2], [3, 4]])
    cluster.submit(make_spec("upd", 3, writes={"x0": 1}), at=500.0)
    cluster.submit(make_spec("ro", 4, reads=["x0"]), at=500.0)
    cluster.run(max_time=10000)
    assert cluster.spec_status("upd").last_outcome is AbortReason.NO_QUORUM
    assert cluster.spec_status("ro").committed


def test_recovery_rejoins_and_catches_up(make_spec):
    cluster = Cluster(
        ClusterConfig(
            protocol="rbp",
            num_sites=3,
            seed=3,
            enable_failure_detector=True,
            fd_interval=20,
            fd_timeout=80,
        )
    )
    cluster.crash_site(2, at=10.0)
    cluster.submit(make_spec("while_down", 0, writes={"x0": 42}), at=500.0)
    cluster.run(max_time=5000)
    cluster.recover_site(2)
    result = cluster.run(max_time=50000)
    assert result.ok
    assert cluster.replicas[2].store.read("x0").value == 42


def test_result_message_prefix_totals(cluster_factory, make_spec):
    cluster = cluster_factory("rbp", num_sites=3)
    cluster.submit(make_spec("t1", 0, writes={"x0": 1}))
    result = cluster.run()
    assert result.messages_total("rbp.") == result.network_stats["sent"]
    assert result.messages_total("rbp.write") > 0


def test_run_for_advances_time(cluster_factory):
    cluster = cluster_factory("rbp")
    cluster.run_for(123.0)
    assert cluster.engine.now == pytest.approx(123.0)
