"""Unit tests for reliable broadcast: validity, agreement, integrity."""

from dataclasses import dataclass


@dataclass
class Word:
    text: str
    kind: str = "word"


def test_validity_all_sites_deliver(harness_factory):
    h = harness_factory(num_sites=4, stack="reliable")
    h.layers[0].broadcast(Word("hello"))
    h.run()
    for site in range(4):
        assert [p.text for p in h.payloads(site)] == ["hello"]


def test_sender_delivers_its_own_message(harness_factory):
    h = harness_factory(num_sites=3, stack="reliable")
    h.layers[2].broadcast(Word("self"))
    h.run()
    assert [p.text for p in h.payloads(2)] == ["self"]


def test_integrity_no_duplicates_with_relay(harness_factory):
    h = harness_factory(num_sites=5, stack="reliable", relay=True)
    h.layers[0].broadcast(Word("once"))
    h.run()
    for site in range(5):
        assert len(h.payloads(site)) == 1


def test_relay_costs_more_messages(harness_factory):
    direct = harness_factory(num_sites=5, stack="reliable", relay=False)
    direct.layers[0].broadcast(Word("m"))
    direct.run()
    relayed = harness_factory(num_sites=5, stack="reliable", relay=True)
    relayed.layers[0].broadcast(Word("m"))
    relayed.run()
    assert relayed.network.stats.sent > direct.network.stats.sent
    assert direct.network.stats.sent == 4  # n-1 unicasts


def test_agreement_with_relay_despite_sender_crash_midway(harness_factory):
    """Relay mode: if any correct site received m, all correct sites get it
    even though the sender dies immediately after reaching one site."""
    h = harness_factory(num_sites=4, stack="reliable", relay=True)
    # Partition the sender away from sites 2,3 so only site 1 hears it.
    h.network.partitions.split([[0, 1], [2, 3]])
    h.layers[0].broadcast(Word("urgent"))
    h.run(until=10.0)
    assert [p.text for p in h.payloads(1)] == ["urgent"]
    assert h.payloads(2) == []
    # Sender crashes; partition heals; site 1's relay reaches the rest...
    h.network.set_site_up(0, False)
    h.network.partitions.heal()
    # ...once site 1 gets a reason to relay: in eager flooding the relay
    # happened at first receipt, which the partition swallowed.  Re-send
    # from site 1's buffer is modelled by a fresh broadcast in real
    # systems' stability protocols; here we assert the direct behaviour:
    h.layers[1].broadcast(Word("urgent-relay"))
    h.run(until=30.0)
    assert "urgent-relay" in [p.text for p in h.payloads(2)]


def test_group_restriction(harness_factory):
    h = harness_factory(num_sites=4, stack="reliable")
    h.layers[0].set_group([0, 1, 2])
    h.layers[0].broadcast(Word("members-only"))
    h.run()
    assert h.payloads(1) and h.payloads(2)
    assert h.payloads(3) == []


def test_group_must_include_self(harness_factory):
    import pytest

    h = harness_factory(num_sites=3, stack="reliable")
    with pytest.raises(ValueError):
        h.layers[0].set_group([1, 2])


def test_many_senders_all_messages_delivered_everywhere(harness_factory):
    h = harness_factory(num_sites=3, stack="reliable")
    for site in range(3):
        for n in range(10):
            h.layers[site].broadcast(Word(f"s{site}m{n}"))
    h.run()
    expected = {f"s{s}m{n}" for s in range(3) for n in range(10)}
    for site in range(3):
        assert {p.text for p in h.payloads(site)} == expected


def test_reliable_broadcast_over_lossy_links(harness_factory):
    """The ARQ transport restores the reliable-links assumption."""
    h = harness_factory(num_sites=3, stack="reliable", loss_rate=0.3, seed=21)
    for n in range(20):
        h.layers[0].broadcast(Word(f"m{n}"))
    h.run(until=100000.0)
    for site in range(3):
        assert len(h.payloads(site)) == 20
