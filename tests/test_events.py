"""Tests for the protocol wire-event definitions."""

import dataclasses


from repro.core.events import (
    AbpCommitRequest,
    AbpWriteSet,
    CbpCommitRequest,
    CbpNack,
    CbpNull,
    CbpWriteSet,
    P2pDecision,
    P2pPrepare,
    P2pVote,
    P2pWrite,
    P2pWriteAck,
    RbpAbort,
    RbpCommitRequest,
    RbpVote,
    RbpWrite,
    RbpWriteAck,
    priority_of,
)

ALL_EVENTS = [
    RbpWrite("T#1", 0, "x", 1, (0.0, 0, "T")),
    RbpWriteAck("T#1", "x", 1, True),
    RbpCommitRequest("T#1", 0),
    RbpVote("T#1", 1, True),
    RbpAbort("T#1"),
    CbpWriteSet("T#1", 0, (("x", 1),), (0.0, 0, "T"), True),
    CbpCommitRequest("T#1", 0),
    CbpNack("T#1", 1, "conflict"),
    CbpNull(0),
    AbpCommitRequest("T#1", 0, (("x", 0),), (("x", 1),), ("x",)),
    AbpWriteSet("T#1", 0, (("x", 1),)),
    P2pWrite("T#1", "x", 1, (0.0, 0, "T")),
    P2pWriteAck("T#1", "x", 1, True),
    P2pPrepare("T#1"),
    P2pVote("T#1", 1, True),
    P2pDecision("T#1", True),
]


def test_every_event_has_namespaced_kind():
    for event in ALL_EVENTS:
        assert "." in event.kind, event
        prefix = event.kind.split(".")[0]
        assert prefix in ("rbp", "cbp", "abp", "p2p"), event


def test_kinds_are_unique_per_type():
    kinds = [event.kind for event in ALL_EVENTS]
    assert len(kinds) == len(set(kinds))


def test_kind_prefix_matches_protocol_class_name():
    for event in ALL_EVENTS:
        class_prefix = type(event).__name__[:3].lower()
        assert event.kind.startswith(class_prefix)


def test_all_events_are_dataclasses():
    for event in ALL_EVENTS:
        assert dataclasses.is_dataclass(event)


def test_priority_of():
    write = RbpWrite("T#1", 0, "x", 1, (1.0, 2, "T"))
    assert priority_of(write) == (1.0, 2, "T")
    assert priority_of(P2pPrepare("T#1")) is None


def test_payloads_carry_enough_to_route():
    """Every broadcast payload that the home must collect replies for
    carries the home site id."""
    assert RbpWrite("T#1", 3, "x", 1, ()).home == 3
    assert RbpCommitRequest("T#1", 3).home == 3
    assert CbpWriteSet("T#1", 3, (), (), True).home == 3
    assert CbpCommitRequest("T#1", 3).home == 3
    assert AbpCommitRequest("T#1", 3, (), (), ()).home == 3
