"""Unit tests for the channel router."""

from dataclasses import dataclass

import pytest

from repro.net.network import Network
from repro.net.router import ChannelRouter
from repro.net.transport import ReliableTransport
from repro.sim.engine import SimulationEngine


@dataclass
class Note:
    text: str
    kind: str = "note"


def build(num_sites=2):
    engine = SimulationEngine()
    network = Network(engine, num_sites)
    routers = []
    for site in range(num_sites):
        transport = ReliableTransport(engine, network, site)
        routers.append(ChannelRouter(transport))
    return engine, network, routers


def test_dispatch_by_channel():
    engine, network, routers = build()
    got_a, got_b = [], []
    routers[1].register("a", lambda src, p: got_a.append((src, p.text)))
    routers[1].register("b", lambda src, p: got_b.append((src, p.text)))
    routers[0].send(1, "a", Note("to-a"))
    routers[0].send(1, "b", Note("to-b"))
    engine.run()
    assert got_a == [(0, "to-a")]
    assert got_b == [(0, "to-b")]


def test_unregistered_channel_raises():
    engine, network, routers = build()
    routers[0].send(1, "ghost", Note("boo"))
    with pytest.raises(RuntimeError, match="no handler"):
        engine.run()


def test_duplicate_registration_rejected():
    engine, network, routers = build()
    routers[0].register("x", lambda s, p: None)
    with pytest.raises(ValueError):
        routers[0].register("x", lambda s, p: None)


def test_multicast_skips_self_by_default():
    engine, network, routers = build(3)
    boxes = [[] for _ in range(3)]
    for site in range(3):
        routers[site].register("c", lambda src, p, site=site: boxes[site].append(p.text))
    routers[0].multicast([0, 1, 2], "c", Note("hello"))
    engine.run()
    assert boxes[0] == [] and boxes[1] == ["hello"] and boxes[2] == ["hello"]


def test_message_kind_accounting_flows_through():
    engine, network, routers = build()
    routers[1].register("c", lambda src, p: None)
    routers[0].send(1, "c", Note("x"))
    engine.run()
    assert network.stats.by_kind["note"] == 1
