"""Unit tests for the churn-soak oracles (E13)."""

from types import SimpleNamespace

import pytest

from repro.core.cluster import Cluster, ClusterConfig
from repro.core.transaction import TransactionSpec
from repro.sim.engine import SimulationEngine
from repro.sim.oracles import OracleConfig, OracleViolation, SoakOracles


def test_config_validation():
    with pytest.raises(ValueError):
        OracleConfig(liveness_window=0.0)
    with pytest.raises(ValueError):
        OracleConfig(check_interval=0.0)
    with pytest.raises(ValueError):
        OracleConfig(in_doubt_limit=-1.0)
    OracleConfig(in_doubt_limit=None)  # disabling the residency check is fine


def build_cluster(**overrides):
    defaults = dict(
        protocol="rbp",
        num_sites=3,
        num_objects=8,
        seed=7,
        relay=True,
    )
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults))


def test_liveness_violation_on_a_genuine_stall():
    """Without a failure detector a crashed cohort stalls RBP's write
    round forever — exactly the condition the liveness oracle must turn
    into a loud failure instead of a silently burning simulation."""
    cluster = build_cluster(retry_aborted=False)
    oracles = SoakOracles(
        cluster, OracleConfig(liveness_window=500.0, check_interval=50.0)
    )
    oracles.arm()
    cluster.crash_site(2, at=10.0)
    cluster.submit(
        TransactionSpec.make("T1", 0, read_keys=["x0"], writes={"x0": 1}), at=20.0
    )
    with pytest.raises(OracleViolation, match="liveness"):
        cluster.run(max_time=10_000.0)
    assert oracles.max_stall >= 500.0


def test_quiet_stretch_is_not_a_stall():
    cluster = build_cluster()
    oracles = SoakOracles(
        cluster, OracleConfig(liveness_window=300.0, check_interval=50.0)
    )
    oracles.arm()
    cluster.run_for(5_000.0)  # no work submitted at all
    oracles.disarm()
    assert oracles.finals_observed == 0


def test_late_submission_gets_a_fresh_window():
    """A long idle prefix must not count against the first transaction."""
    cluster = build_cluster()
    oracles = SoakOracles(
        cluster, OracleConfig(liveness_window=400.0, check_interval=50.0)
    )
    oracles.arm()
    cluster.submit(
        TransactionSpec.make("T1", 0, read_keys=["x0"], writes={"x0": 1}),
        at=3_000.0,  # far beyond the window after arming
    )
    result = cluster.run(max_time=10_000.0)
    oracles.disarm()
    assert result.committed_specs == 1
    assert oracles.finals_observed == 1


def test_disarm_stops_the_periodic_check():
    cluster = build_cluster(retry_aborted=False)
    oracles = SoakOracles(
        cluster, OracleConfig(liveness_window=500.0, check_interval=50.0)
    )
    oracles.arm()
    oracles.disarm()
    cluster.crash_site(2, at=10.0)
    cluster.submit(
        TransactionSpec.make("T1", 0, read_keys=["x0"], writes={"x0": 1}), at=20.0
    )
    cluster.run(max_time=3_000.0, stop_when=lambda: False)  # no violation raised


class _FakeReplica:
    def __init__(self, site, in_doubt):
        self.site = site
        self.alive = True
        self.recovering = False
        self._in_doubt = in_doubt

    def in_doubt_transactions(self):
        return tuple(self._in_doubt)


def _fake_cluster(engine, replicas):
    return SimpleNamespace(
        engine=engine,
        replicas=replicas,
        add_spec_listener=lambda fn: None,
        work_started_and_unfinished=lambda: False,  # keep the liveness check quiet
    )


def test_in_doubt_residency_violation():
    engine = SimulationEngine()
    replica = _FakeReplica(0, in_doubt=["T9"])
    cluster = _fake_cluster(engine, [replica])
    oracles = SoakOracles(
        cluster,
        OracleConfig(liveness_window=10_000.0, in_doubt_limit=300.0, check_interval=100.0),
    )
    oracles.arm()
    with pytest.raises(OracleViolation, match="in-doubt"):
        engine.run(until=1_000.0)


def test_in_doubt_residency_clears_when_resolved():
    engine = SimulationEngine()
    replica = _FakeReplica(0, in_doubt=["T9"])
    cluster = _fake_cluster(engine, [replica])
    oracles = SoakOracles(
        cluster,
        OracleConfig(liveness_window=10_000.0, in_doubt_limit=500.0, check_interval=100.0),
    )
    oracles.arm()
    engine.schedule_at(250.0, lambda: replica._in_doubt.clear())
    engine.run(until=2_000.0)
    oracles.disarm()
    stats = oracles.stats()
    assert 100.0 <= stats["max_in_doubt_residency_ms"] <= 300.0


def test_dead_replicas_are_not_sampled():
    engine = SimulationEngine()
    replica = _FakeReplica(0, in_doubt=["T9"])
    replica.alive = False
    cluster = _fake_cluster(engine, [replica])
    oracles = SoakOracles(
        cluster,
        OracleConfig(liveness_window=10_000.0, in_doubt_limit=100.0, check_interval=50.0),
    )
    oracles.arm()
    engine.run(until=1_000.0)  # no violation: dead sites hold no residency
    assert oracles.stats()["max_in_doubt_residency_ms"] == 0.0


def _result(ok=True, converged=True, incomplete=0):
    return SimpleNamespace(
        serialization=SimpleNamespace(ok=ok, explain=lambda: "cycle: T1 -> T2"),
        converged=converged,
        incomplete_specs=incomplete,
        duration=1_000.0,
    )


def test_check_final_passes_a_clean_result():
    engine = SimulationEngine()
    oracles = SoakOracles(_fake_cluster(engine, []))
    oracles.check_final(_result())


def test_check_final_raises_on_each_end_oracle():
    engine = SimulationEngine()
    oracles = SoakOracles(_fake_cluster(engine, []))
    with pytest.raises(OracleViolation, match="1SR"):
        oracles.check_final(_result(ok=False))
    with pytest.raises(OracleViolation, match="convergence"):
        oracles.check_final(_result(converged=False))
    with pytest.raises(OracleViolation, match="unanswered"):
        oracles.check_final(_result(incomplete=2))
