"""Tests for the post-run cluster auditor."""

import pytest

from repro.analysis.audit import assert_clean, audit_cluster
from repro.core.cluster import Cluster, ClusterConfig
from repro.core.transaction import TransactionSpec
from repro.db.locks import LockMode
from repro.workload import WorkloadConfig
from repro.workload.runner import run_standard_mix


def run_clean_cluster(protocol, **overrides):
    cluster = Cluster(
        ClusterConfig(
            **{
                **dict(protocol=protocol, num_sites=3, num_objects=16, seed=61),
                **overrides,
            }
        )
    )
    result = run_standard_mix(
        cluster,
        WorkloadConfig(num_objects=16, num_sites=3, read_ops=2, write_ops=2),
        transactions=20,
        mpl=4,
    )
    assert result.ok
    cluster.run_for(200.0)  # drain in-flight cleanup traffic
    return cluster


@pytest.mark.parametrize("protocol", ["rbp", "cbp", "abp", "p2p"])
def test_clean_run_audits_clean(protocol):
    cluster = run_clean_cluster(protocol)
    findings = audit_cluster(cluster)
    assert findings == [], "\n".join(map(str, findings))
    assert_clean(cluster)  # no raise


def test_audit_detects_lock_leak():
    cluster = run_clean_cluster("rbp")
    cluster.replicas[1].locks.try_acquire("ghost", "x0", LockMode.EXCLUSIVE)
    findings = audit_cluster(cluster)
    assert any(f.category == "lock-leak" for f in findings)
    with pytest.raises(AssertionError, match="lock-leak"):
        assert_clean(cluster)


def test_audit_detects_protocol_leak():
    cluster = run_clean_cluster("rbp")
    cluster.replicas[0]._buffered["ghost#1"] = {"x0": 1}
    findings = audit_cluster(cluster)
    assert any(f.category == "protocol-leak" for f in findings)


def test_audit_detects_wal_mismatch():
    cluster = run_clean_cluster("rbp")
    replica = cluster.replicas[2]
    replica.store.install("x0", "phantom", "ghost")  # store diverges from WAL
    findings = audit_cluster(cluster)
    assert any(f.category in ("wal-mismatch", "convergence") for f in findings)


def test_audit_detects_divergence():
    cluster = run_clean_cluster("abp")
    cluster.replicas[0].store.install("x1", "rogue", "ghost")
    findings = audit_cluster(cluster, strict_wal=False)
    assert any(f.category == "convergence" for f in findings)


def test_audit_flags_truncated_trace():
    cluster = run_clean_cluster("rbp", trace=True)
    assert not cluster.trace.truncated
    assert audit_cluster(cluster) == []
    cluster.trace.capacity = len(cluster.trace)
    cluster.trace.emit(0.0, "auditor-test", "overflow")
    findings = audit_cluster(cluster)
    assert any(f.category == "trace-truncated" for f in findings)
    with pytest.raises(AssertionError, match="trace-truncated"):
        assert_clean(cluster)


def test_audit_flags_nonterminal_locals():
    from repro.core.transaction import Transaction

    cluster = run_clean_cluster("cbp")
    spec = TransactionSpec.make("zombie", 0, writes={"x0": 1})
    cluster.replicas[0].local["zombie#1"] = Transaction(spec, 1, 0.0, 0.0)
    findings = audit_cluster(cluster)
    assert any("zombie" in f.detail for f in findings)


def test_findings_render_readably():
    cluster = run_clean_cluster("rbp")
    cluster.replicas[1].locks.try_acquire("ghost", "x0", LockMode.EXCLUSIVE)
    finding = audit_cluster(cluster)[0]
    assert "site 1" in str(finding)
    assert "x0" in str(finding)
