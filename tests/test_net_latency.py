"""Unit tests for the latency models."""

import random

import pytest

from repro.net.latency import (
    FixedLatency,
    LanLatency,
    LognormalLatency,
    UniformLatency,
    WanLatency,
)


@pytest.fixture
def rng():
    return random.Random(99)


def test_fixed_latency_constant(rng):
    model = FixedLatency(2.5)
    assert all(model.sample(rng, 0, 1) == 2.5 for _ in range(10))
    assert model.mean() == 2.5


def test_fixed_latency_rejects_negative():
    with pytest.raises(ValueError):
        FixedLatency(-1.0)


def test_uniform_latency_within_bounds(rng):
    model = UniformLatency(1.0, 3.0)
    samples = [model.sample(rng, 0, 1) for _ in range(200)]
    assert all(1.0 <= s <= 3.0 for s in samples)
    assert model.mean() == 2.0


def test_uniform_latency_validates_bounds():
    with pytest.raises(ValueError):
        UniformLatency(3.0, 1.0)
    with pytest.raises(ValueError):
        UniformLatency(-1.0, 2.0)


def test_lognormal_respects_cap(rng):
    model = LognormalLatency(median=1.0, sigma=2.0, cap=5.0)
    samples = [model.sample(rng, 0, 1) for _ in range(500)]
    assert max(samples) <= 5.0
    assert min(samples) > 0


def test_lognormal_median_roughly_centred(rng):
    model = LognormalLatency(median=2.0, sigma=0.3)
    samples = sorted(model.sample(rng, 0, 1) for _ in range(2000))
    median = samples[len(samples) // 2]
    assert 1.7 < median < 2.3


def test_lan_preset_is_fast(rng):
    model = LanLatency()
    assert model.mean() < 5.0


def test_wan_latency_grows_with_distance(rng):
    model = WanLatency(base=10.0, per_hop=5.0, jitter=0.0)
    near = model.sample(rng, 0, 1)
    far = model.sample(rng, 0, 7)
    assert far > near
    assert near == pytest.approx(15.0)
    assert far == pytest.approx(45.0)


def test_wan_validates_params():
    with pytest.raises(ValueError):
        WanLatency(jitter=1.5)
