"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_run_single_protocol(capsys):
    code, out = run_cli(
        capsys, "run", "rbp", "--transactions", "6", "--mpl", "2", "--sites", "3"
    )
    assert code == 0
    assert "rbp" in out
    assert "1SR OK" in out
    assert "commits" in out


def test_run_reports_message_count(capsys):
    code, out = run_cli(
        capsys, "run", "abp", "--transactions", "4", "--mpl", "1", "--sites", "3"
    )
    assert code == 0
    lines = [l for l in out.splitlines() if l.strip().startswith("abp")]
    assert lines, out


def test_compare_lists_all_protocols(capsys):
    code, out = run_cli(
        capsys, "compare", "--transactions", "5", "--mpl", "2", "--sites", "3"
    )
    assert code == 0
    for protocol in ("rbp", "cbp", "abp", "p2p"):
        assert protocol in out


def test_sweep_axis(capsys):
    code, out = run_cli(
        capsys,
        "sweep",
        "mpl",
        "--values",
        "1,2",
        "--protocols",
        "abp",
        "--transactions",
        "4",
        "--sites",
        "3",
    )
    assert code == 0
    assert "sweep mpl" in out
    assert "p50 latency (ms)" in out


def test_sweep_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        main(["sweep", "mpl", "--protocols", "teleport"])


def test_parser_rejects_unknown_protocol():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "warp"])


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_deterministic_output(capsys):
    _, first = run_cli(
        capsys, "run", "cbp", "--transactions", "5", "--mpl", "2", "--seed", "9"
    )
    _, second = run_cli(
        capsys, "run", "cbp", "--transactions", "5", "--mpl", "2", "--seed", "9"
    )
    assert first == second


def test_module_entry_point():
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro", "run", "abp", "--transactions", "3", "--mpl", "1"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "1SR OK" in proc.stdout


def test_run_timeline_flag(capsys):
    code, out = run_cli(
        capsys,
        "run", "rbp", "--transactions", "3", "--mpl", "1", "--sites", "3",
        "--timeline",
    )
    assert code == 0
    assert "committed @" in out  # the gantt suffix


def test_run_sequence_flag(capsys):
    code, out = run_cli(
        capsys,
        "run", "rbp", "--transactions", "2", "--mpl", "1", "--sites", "3",
        "--sequence", "6",
    )
    assert code == 0
    assert "rbp.write" in out
    assert "──" in out  # the arrow art


def test_sweep_chart_flag(capsys):
    code, out = run_cli(
        capsys,
        "sweep", "mpl", "--values", "1,2", "--protocols", "abp",
        "--transactions", "4", "--sites", "3", "--chart",
    )
    assert code == 0
    assert "o=abp" in out
    assert "+----" in out  # the x axis


def test_anatomy_subcommand(capsys):
    code, out = run_cli(capsys, "anatomy", "abp", "--sites", "3")
    assert code == 0
    assert "wire sequence" in out
    assert "abp.commit_request" in out
    assert "lifecycle timeline" in out
