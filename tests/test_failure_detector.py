"""Unit tests for the heartbeat failure detector."""

import pytest

from repro.broadcast.failure_detector import FailureDetector
from repro.net.network import Network
from repro.net.router import ChannelRouter
from repro.net.transport import ReliableTransport
from repro.sim.engine import SimulationEngine


def build(num_sites=3, interval=10.0, timeout=35.0):
    engine = SimulationEngine()
    network = Network(engine, num_sites)
    detectors = []
    for site in range(num_sites):
        transport = ReliableTransport(engine, network, site)
        router = ChannelRouter(transport)
        detectors.append(
            FailureDetector(engine, router, site, num_sites, interval=interval, timeout=timeout)
        )
    return engine, network, detectors


def test_no_suspicions_in_healthy_run():
    engine, network, detectors = build()
    engine.run(until=500.0)
    assert all(not d.suspected for d in detectors)


def test_crashed_site_becomes_suspected():
    engine, network, detectors = build()
    engine.schedule(100.0, network.set_site_up, 1, False)
    engine.schedule(100.0, detectors[1].crash)
    engine.run(until=300.0)
    assert 1 in detectors[0].suspected
    assert 1 in detectors[2].suspected


def test_suspicion_change_callback_fires():
    engine, network, detectors = build()
    changes = []
    detectors[0].on_change = changes.append
    engine.schedule(50.0, network.set_site_up, 2, False)
    engine.schedule(50.0, detectors[2].crash)
    engine.run(until=300.0)
    assert changes and changes[-1] == {2}


def test_recovered_site_unsuspected():
    engine, network, detectors = build()
    engine.schedule(50.0, network.set_site_up, 1, False)
    engine.schedule(50.0, detectors[1].crash)
    engine.schedule(200.0, network.set_site_up, 1, True)
    engine.schedule(200.0, detectors[1].recover)
    engine.run(until=500.0)
    assert 1 not in detectors[0].suspected


def test_partitioned_peer_suspected_then_cleared_on_heal():
    engine, network, detectors = build()
    engine.schedule(50.0, network.partitions.split, [[0], [1, 2]])
    engine.run(until=300.0)
    assert detectors[0].suspected == {1, 2}
    assert detectors[1].suspected == {0}
    network.partitions.heal()
    engine.run(until=600.0)
    assert not detectors[0].suspected


def test_timeout_must_exceed_interval():
    engine = SimulationEngine()
    network = Network(engine, 2)
    transport = ReliableTransport(engine, network, 0)
    router = ChannelRouter(transport)
    with pytest.raises(ValueError):
        FailureDetector(engine, router, 0, 2, interval=50.0, timeout=40.0)


def test_refresh_clears_suspicion_like_a_heartbeat():
    """Regression: a JoinRequest (delivered out-of-band of the heartbeat
    channel) must count as proof of life, or the joiner gets re-evicted on
    the next tick before its own heartbeats resume."""
    engine, network, detectors = build()
    engine.schedule(50.0, network.set_site_up, 1, False)
    engine.schedule(50.0, detectors[1].crash)
    engine.run(until=200.0)
    assert 1 in detectors[0].suspected
    changes = []
    detectors[0].on_change = changes.append
    detectors[0].refresh(1)
    assert 1 not in detectors[0].suspected
    assert changes == [set()]  # listener saw the un-suspicion immediately
    # The refresh also resets the silence clock: no re-suspicion within
    # a full timeout even though the peer stays quiet.
    engine.run(until=engine.now + 30.0)  # < timeout (35ms)
    assert 1 not in detectors[0].suspected
    engine.run(until=engine.now + 50.0)  # past the timeout: silence wins again
    assert 1 in detectors[0].suspected


def test_refresh_ignores_self_and_unknown_peers():
    engine, network, detectors = build()
    detectors[0].refresh(0)
    detectors[0].refresh(99)
    assert not detectors[0].suspected


def test_disabled_detector_sends_nothing_until_started():
    engine = SimulationEngine()
    network = Network(engine, 2)
    detectors = []
    for site in range(2):
        transport = ReliableTransport(engine, network, site)
        router = ChannelRouter(transport)
        detectors.append(
            FailureDetector(engine, router, site, 2, interval=10.0, timeout=35.0, enabled=False)
        )
    engine.run(until=100.0)
    assert network.stats.by_kind.get("fd.heartbeat", 0) == 0
    detectors[0].start()
    detectors[1].start()
    engine.run(until=200.0)
    assert network.stats.by_kind["fd.heartbeat"] > 0
