"""Unit tests for the transaction model."""

from repro.core.transaction import (
    AbortReason,
    Transaction,
    TransactionSpec,
    TxPhase,
    older,
)


def test_spec_make_sorts_writes():
    spec = TransactionSpec.make("T1", 0, read_keys=["b"], writes={"z": 1, "a": 2})
    assert spec.write_keys == ("a", "z")
    assert spec.writes_dict() == {"a": 2, "z": 1}


def test_read_only_detection():
    ro = TransactionSpec.make("R", 0, read_keys=["x"])
    rw = TransactionSpec.make("W", 0, read_keys=["x"], writes={"x": 1})
    assert ro.read_only
    assert not rw.read_only


def test_tx_id_encodes_attempt():
    spec = TransactionSpec.make("T7", 2, writes={"x": 1})
    tx = Transaction(spec, attempt=3, submit_time=10.0, first_submit_time=1.0)
    assert tx.tx_id == "T7#3"
    assert tx.home == 2


def test_priority_uses_first_submission():
    spec = TransactionSpec.make("T1", 0, writes={"x": 1})
    first = Transaction(spec, 1, submit_time=1.0, first_submit_time=1.0)
    retry = Transaction(spec, 2, submit_time=50.0, first_submit_time=1.0)
    assert first.priority == retry.priority


def test_older_comparison():
    spec_a = TransactionSpec.make("A", 0, writes={"x": 1})
    spec_b = TransactionSpec.make("B", 1, writes={"x": 1})
    a = Transaction(spec_a, 1, 1.0, 1.0)
    b = Transaction(spec_b, 1, 2.0, 2.0)
    assert older(a.priority, b.priority)
    assert not older(b.priority, a.priority)


def test_priority_tiebreak_by_site_then_name():
    a = Transaction(TransactionSpec.make("A", 0, writes={"x": 1}), 1, 1.0, 1.0)
    b = Transaction(TransactionSpec.make("B", 1, writes={"x": 1}), 1, 1.0, 1.0)
    assert older(a.priority, b.priority)


def test_phase_lifecycle_and_terminal():
    spec = TransactionSpec.make("T1", 0, writes={"x": 1})
    tx = Transaction(spec, 1, 0.0, 0.0)
    assert tx.phase is TxPhase.PENDING
    assert not tx.terminal
    tx.phase = TxPhase.COMMITTED
    assert tx.terminal
    tx.phase = TxPhase.ABORTED
    assert tx.terminal


def test_observed_accessors():
    spec = TransactionSpec.make("T1", 0, read_keys=["x", "y"], writes={"x": 1})
    tx = Transaction(spec, 1, 0.0, 0.0)
    tx.reads_observed = {"x": (10, 2), "y": (20, 0)}
    assert tx.observed_versions() == {"x": 2, "y": 0}
    assert tx.observed_values() == {"x": 10, "y": 20}


def test_abort_reasons_have_distinct_values():
    values = [reason.value for reason in AbortReason]
    assert len(values) == len(set(values))


def test_str_forms():
    spec = TransactionSpec.make("T1", 3, writes={"x": 1})
    assert str(spec) == "T1@s3"
    tx = Transaction(spec, 2, 0.0, 0.0)
    assert str(tx) == "T1#2"
