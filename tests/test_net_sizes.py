"""Tests for wire-size estimation and byte accounting."""

import pytest

from repro.net.sizes import HEADER_BYTES, estimate_size, wire_size


def test_primitive_sizes():
    assert estimate_size(True) == 1
    assert estimate_size(42) == 8
    assert estimate_size(3.14) == 8
    assert estimate_size(None) == 0


def test_string_and_bytes_by_length():
    assert estimate_size("abcd") == 4
    assert estimate_size(b"abcd") == 4
    assert estimate_size("") == 0


def test_containers_sum_recursively():
    flat = estimate_size((1, 2, 3))
    assert flat == 8 + 3 * 8  # overhead + three ints
    nested = estimate_size(((1,), (2,)))
    assert nested > flat - 8


def test_dict_counts_keys_and_values():
    assert estimate_size({"k": 1}) == 8 + 1 + 8


def test_dataclass_payloads():
    from repro.core.events import CbpWriteSet, RbpVote

    vote = RbpVote("T1#1", 2, True)
    write = CbpWriteSet("T1#1", 0, (("x0", "v" * 100),), (1.0, 0, "T1"), True)
    assert estimate_size(write) > estimate_size(vote) + 90


def test_wire_size_adds_header():
    assert wire_size(1) == HEADER_BYTES + 8


def test_deterministic():
    payload = {"a": (1, "two", [3.0]), "b": None}
    assert estimate_size(payload) == estimate_size(payload)


def test_depth_bound_terminates():
    deep: list = []
    cursor = deep
    for _ in range(50):
        inner: list = []
        cursor.append(inner)
        cursor = inner
    assert estimate_size(deep) > 0  # no recursion blowup


def test_network_byte_accounting():
    from repro import Cluster, ClusterConfig, TransactionSpec

    cluster = Cluster(ClusterConfig(protocol="rbp", num_sites=3, seed=1))
    cluster.submit(TransactionSpec.make("t", 0, writes={"x0": "payload-value"}))
    result = cluster.run()
    assert result.ok
    stats = cluster.network.stats
    assert stats.bytes_sent > 0
    # Per message, a value-carrying write is bigger than a boolean vote.
    write_avg = stats.bytes_by_kind["rbp.write"] / stats.by_kind["rbp.write"]
    vote_avg = stats.bytes_by_kind["rbp.vote"] / stats.by_kind["rbp.vote"]
    assert write_avg > vote_avg
    assert sum(stats.bytes_by_kind.values()) == stats.bytes_sent


def test_bandwidth_adds_transmission_delay():
    from repro import Cluster, ClusterConfig, TransactionSpec

    fast = Cluster(ClusterConfig(protocol="rbp", num_sites=3, seed=1))
    slow = Cluster(
        ClusterConfig(protocol="rbp", num_sites=3, seed=1, bandwidth=50.0)
    )
    for cluster in (fast, slow):
        cluster.submit(
            TransactionSpec.make("t", 0, writes={"x0": "v" * 400})
        )
    fast_latency = fast.run().metrics.commit_latency().mean
    slow_latency = slow.run().metrics.commit_latency().mean
    assert slow_latency > fast_latency + 5.0  # ~500B / 50B-per-ms ~ 10ms/hop


def test_bandwidth_validation():
    from repro.net.network import Network
    from repro.sim.engine import SimulationEngine

    with pytest.raises(ValueError):
        Network(SimulationEngine(), 2, bandwidth=0.0)
