"""Unit tests for the churn scenario engine (E13)."""

import pytest

from repro.core.cluster import Cluster, ClusterConfig
from repro.sim.churn import ChurnSchedule


def churn_cluster(num_sites=7, seed=11, **overrides):
    defaults = dict(
        protocol="rbp",
        num_sites=num_sites,
        num_objects=16,
        seed=seed,
        enable_failure_detector=True,
        fd_interval=20.0,
        fd_timeout=80.0,
        relay=True,
    )
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults))


def test_requires_failure_detector():
    cluster = churn_cluster(enable_failure_detector=False)
    with pytest.raises(ValueError, match="failure detector"):
        ChurnSchedule(cluster)


def test_default_victims_spare_the_coordinator():
    churn = ChurnSchedule(churn_cluster(num_sites=5))
    assert churn.default_victims() == [1, 2, 3, 4]


def test_max_concurrent_down_preserves_quorum():
    assert ChurnSchedule(churn_cluster(num_sites=5)).max_concurrent_down == 2
    assert ChurnSchedule(churn_cluster(num_sites=6)).max_concurrent_down == 2
    assert ChurnSchedule(churn_cluster(num_sites=7)).max_concurrent_down == 3


def test_rolling_restart_declares_paired_events():
    churn = ChurnSchedule(churn_cluster())
    end = churn.rolling_restart(start=1_000.0, victims=(1, 2, 3))
    crashes = [e for e in churn.plan if e[1] == "crash"]
    recoveries = [e for e in churn.plan if e[1] == "recover"]
    assert [site for _, _, site in crashes] == [1, 2, 3]
    assert [site for _, _, site in recoveries] == [1, 2, 3]
    for (crash_at, _, site), (recover_at, _, rsite) in zip(crashes, recoveries):
        assert site == rsite
        assert recover_at > crash_at
        # Detectability contract: downtime comfortably above fd_timeout.
        assert recover_at - crash_at >= 2.0 * 80.0
    assert end >= recoveries[-1][0]


def test_rolling_restart_is_sequential():
    """At most one site down at a time: each recovery precedes the next
    crash."""
    churn = ChurnSchedule(churn_cluster())
    churn.rolling_restart(start=500.0, victims=(1, 2, 3, 4))
    events = sorted(churn.plan)
    down = set()
    for _, action, site in events:
        if action == "crash":
            down.add(site)
        elif action == "recover":
            down.discard(site)
        assert len(down) <= 1


def test_cascade_respects_quorum_cap():
    churn = ChurnSchedule(churn_cluster(num_sites=5))  # max 2 down
    with pytest.raises(ValueError, match="quorum"):
        churn.cascade(at=1_000.0, victims=(1, 2, 3))


def test_cascade_recovers_in_crash_order():
    churn = ChurnSchedule(churn_cluster(num_sites=9))
    end = churn.cascade(at=2_000.0, victims=(3, 5, 7))
    crashes = [(t, s) for t, a, s in churn.plan if a == "crash"]
    recoveries = [(t, s) for t, a, s in churn.plan if a == "recover"]
    assert [s for _, s in crashes] == [3, 5, 7]
    assert [s for _, s in recoveries] == [3, 5, 7]
    assert [t for t, _ in recoveries] == sorted(t for t, _ in recoveries)
    assert end == max(t for t, _ in recoveries)


def test_overlapping_crash_rejected_at_declaration():
    churn = ChurnSchedule(churn_cluster())
    churn.rolling_restart(start=1_000.0, victims=(1,))
    crash_at, _, _ = churn.plan[0]
    with pytest.raises(ValueError, match="already down"):
        churn._crash(1, crash_at + 1.0)


def test_concurrent_crashes_beyond_quorum_rejected():
    churn = ChurnSchedule(churn_cluster(num_sites=5))  # max 2 down
    churn._crash(1, 100.0)
    churn._crash(2, 110.0)
    with pytest.raises(ValueError, match="quorum"):
        churn._crash(3, 120.0)


def test_recover_without_crash_rejected():
    churn = ChurnSchedule(churn_cluster())
    with pytest.raises(ValueError, match="preceding crash"):
        churn._recover(1, 500.0)


def test_plan_is_a_pure_function_of_the_seed():
    plans = []
    for _ in range(2):
        churn = ChurnSchedule(churn_cluster(seed=77))
        churn.rolling_restart(start=1_000.0, victims=(1, 2, 3))
        churn.cascade(at=6_000.0, victims=(4, 5))
        churn.link_flaps  # attribute exists; flaps need ARQ so not drawn here
        plans.append(list(churn.plan))
    assert plans[0] == plans[1]


def test_different_seeds_draw_different_plans():
    def plan_for(seed):
        churn = ChurnSchedule(churn_cluster(seed=seed))
        churn.rolling_restart(start=1_000.0, victims=(1, 2, 3))
        return list(churn.plan)

    assert plan_for(1) != plan_for(2)


def test_mixed_phase_chains_and_describes():
    churn = ChurnSchedule(churn_cluster(num_sites=9))
    end = churn.mixed(start=1_000.0, duration=20_000.0)
    assert end > 1_000.0
    text = churn.describe()
    assert "crash" in text and "recover" in text
    # Declared plan is available before anything fires.
    assert churn.faults.events() == []


def test_churn_plan_actually_drives_the_cluster():
    cluster = churn_cluster(num_sites=5, seed=13)
    churn = ChurnSchedule(cluster)
    churn.rolling_restart(start=200.0, victims=(4,), downtime=(300.0, 300.0))
    cluster.run_for(2_000.0)
    assert [e.action for e in churn.faults.events()] == ["crash", "recover"]
    assert all(r.alive for r in cluster.replicas)
