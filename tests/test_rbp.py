"""Protocol tests for RBP (reliable broadcast + decentralized 2PC)."""

from repro.core.transaction import AbortReason


def test_single_update_commits_everywhere(cluster_factory, make_spec):
    cluster = cluster_factory("rbp")
    cluster.submit(make_spec("t1", 0, reads=["x0"], writes={"x0": 7}))
    result = cluster.run()
    assert result.ok
    assert result.committed_specs == 1
    for replica in cluster.replicas:
        assert replica.store.read("x0").value == 7


def test_read_only_commits_without_messages(cluster_factory, make_spec):
    cluster = cluster_factory("rbp")
    cluster.submit(make_spec("r1", 1, reads=["x0", "x1"]))
    result = cluster.run()
    assert result.ok and result.committed_specs == 1
    assert result.network_stats["sent"] == 0


def test_message_pattern_per_write(cluster_factory, make_spec):
    """One write, N=3 sites: N-1 write broadcasts + N-1 point-to-point acks
    + N-1 commit-request + N*(N-1) decentralized votes."""
    cluster = cluster_factory("rbp", num_sites=3, retry_aborted=False)
    cluster.submit(make_spec("t1", 0, writes={"x0": 1}))
    result = cluster.run()
    kinds = result.messages_by_kind
    assert kinds["rbp.write"] == 2
    assert kinds["rbp.write_ack"] == 2
    assert kinds["rbp.commit_request"] == 2
    assert kinds["rbp.vote"] == 3 * 2


def test_writes_are_sequential_rounds(cluster_factory, make_spec):
    cluster = cluster_factory("rbp", num_sites=3)
    cluster.submit(make_spec("t1", 0, writes={"x0": 1, "x1": 2, "x2": 3}))
    result = cluster.run()
    assert result.ok
    assert result.messages_by_kind["rbp.write"] == 3 * 2


def test_conflicting_concurrent_writers_one_aborts(cluster_factory, make_spec):
    cluster = cluster_factory("rbp", retry_aborted=False)
    cluster.submit(make_spec("w1", 0, writes={"x0": "a"}), at=0.0)
    cluster.submit(make_spec("w2", 1, writes={"x0": "b"}), at=0.1)
    result = cluster.run()
    assert result.ok
    assert result.committed_specs + result.failed_specs == 2
    assert result.failed_specs >= 1
    assert result.metrics.aborts_by_reason[AbortReason.WRITE_CONFLICT] >= 1


def test_aborted_writer_retries_to_commit(cluster_factory, make_spec):
    cluster = cluster_factory("rbp", retry_aborted=True)
    cluster.submit(make_spec("w1", 0, writes={"x0": "a"}), at=0.0)
    cluster.submit(make_spec("w2", 1, writes={"x0": "b"}), at=0.1)
    result = cluster.run()
    assert result.ok
    assert result.committed_specs == 2
    assert result.metrics.attempts_per_commit() > 1.0


def test_remote_write_vs_local_reader_aborts_writer(cluster_factory, make_spec):
    """No-wait: a broadcast write hitting a read lock draws a negative ack."""
    cluster = cluster_factory("rbp", retry_aborted=False, num_sites=3)
    # r holds a read lock on x0 at site 1 while w's write arrives there:
    # make r an update transaction so it stays in EXECUTING (holding S)
    # while its own write x9 round-trips.
    cluster.submit(make_spec("r", 1, reads=["x0"], writes={"x9": 1}), at=0.0)
    cluster.submit(make_spec("w", 0, writes={"x0": 2}), at=0.2)
    result = cluster.run()
    assert result.ok
    status_w = cluster.spec_status("w")
    status_r = cluster.spec_status("r")
    assert status_r.committed
    assert not status_w.committed
    assert status_w.last_outcome is AbortReason.WRITE_CONFLICT


def test_wound_local_readers_option_spares_the_writer(make_spec):
    from tests.conftest import quick_cluster

    cluster = quick_cluster(
        "rbp", retry_aborted=False, rbp_wound_local_readers=True, num_sites=3
    )
    cluster.submit(make_spec("r", 1, reads=["x0"], writes={"x9": 1}), at=0.0)
    cluster.submit(make_spec("w", 0, writes={"x0": 2}), at=0.2)
    result = cluster.run()
    assert result.ok
    # With wounding, the reader (not yet public) is preempted instead...
    status_w = cluster.spec_status("w")
    assert status_w.committed or cluster.spec_status("r").committed
    # ...and at least one of the two aborted with the reader-preempted tag
    # or the conflict resolved by timing; the key claim: the writer is not
    # doomed by a mere read lock.
    assert result.metrics.local_reader_preemptions >= 0


def test_no_deadlocks_ever(cluster_factory, make_spec):
    """RBP is deadlock-free: no waits-for cycle can exist at any site."""
    cluster = cluster_factory("rbp", num_objects=4, retry_aborted=True)
    from repro.workload import WorkloadConfig
    from repro.workload.runner import run_standard_mix

    result = run_standard_mix(
        cluster,
        WorkloadConfig(num_objects=4, num_sites=3, read_ops=2, write_ops=2, zipf_theta=0.9),
        transactions=30,
        mpl=6,
    )
    assert result.ok
    assert result.metrics.deadlocks_detected == 0
    for replica in cluster.replicas:
        assert replica.locks.find_cycle() is None


def test_decentralized_votes_reach_all_sites(cluster_factory, make_spec):
    cluster = cluster_factory("rbp", num_sites=4, trace=True)
    cluster.submit(make_spec("t1", 2, writes={"x1": 5}))
    result = cluster.run()
    assert result.ok
    applied = cluster.trace.filter(kind="rbp.applied")
    assert len(applied) == 4  # every site applied independently


def test_all_replicas_converge_after_mixed_load(cluster_factory):
    from repro.workload import WorkloadConfig
    from repro.workload.runner import run_standard_mix

    cluster = cluster_factory("rbp", num_sites=4, num_objects=12, seed=5)
    result = run_standard_mix(
        cluster,
        WorkloadConfig(
            num_objects=12, num_sites=4, read_ops=2, write_ops=2, readonly_fraction=0.3
        ),
        transactions=40,
        mpl=5,
    )
    assert result.ok
    assert result.metrics.readonly_abort_count() == 0


def test_pipelined_writes_cut_latency_not_messages(make_spec):
    """Ablation: broadcasting all writes at once removes the paper's
    one-blocked-round-per-write latency at unchanged message cost."""
    from tests.conftest import quick_cluster

    latencies = {}
    messages = {}
    for pipeline in (False, True):
        cluster = quick_cluster(
            "rbp", num_sites=3, seed=4, rbp_pipeline_writes=pipeline
        )
        cluster.submit(
            make_spec("t1", 0, writes={f"x{i}": i for i in range(6)})
        )
        result = cluster.run()
        assert result.ok
        latencies[pipeline] = result.metrics.commit_latency().mean
        messages[pipeline] = result.messages_total("rbp.")
    assert latencies[True] < latencies[False] / 2
    assert messages[True] == messages[False]


def test_pipelined_conflict_still_aborts_cleanly(make_spec):
    from tests.conftest import quick_cluster

    cluster = quick_cluster("rbp", rbp_pipeline_writes=True, retry_aborted=True)
    cluster.submit(make_spec("w1", 0, writes={"x0": "a", "x1": "a"}), at=0.0)
    cluster.submit(make_spec("w2", 1, writes={"x1": "b", "x0": "b"}), at=0.1)
    result = cluster.run()
    assert result.ok
    assert result.committed_specs == 2
