"""Tests for workload generation and the load drivers."""

import random

import pytest

from repro.core.cluster import Cluster, ClusterConfig
from repro.workload.generator import WorkloadConfig, WorkloadGenerator
from repro.workload.runner import ClosedLoopRunner, OpenLoopRunner


def make_generator(**overrides):
    config = WorkloadConfig(
        **{**dict(num_objects=32, num_sites=4, read_ops=2, write_ops=2), **overrides}
    )
    return WorkloadGenerator(config, random.Random(5))


def test_specs_have_unique_names():
    gen = make_generator()
    names = [spec.name for spec in gen.stream(50)]
    assert len(set(names)) == 50


def test_reads_before_writes_model():
    """Update transactions read their write set (rmw) and possibly more."""
    gen = make_generator(rmw=True, read_ops=3, write_ops=2)
    for spec in gen.stream(30):
        if not spec.read_only:
            assert set(spec.write_keys) <= set(spec.read_keys)


def test_non_rmw_disjoint_footprints():
    gen = make_generator(rmw=False, read_ops=2, write_ops=2)
    for spec in gen.stream(30):
        if not spec.read_only:
            assert not set(spec.write_keys) & set(spec.read_keys)


def test_readonly_fraction_respected():
    gen = make_generator(readonly_fraction=0.5)
    specs = list(gen.stream(400))
    readonly = sum(1 for s in specs if s.read_only)
    assert 140 < readonly < 260


def test_round_robin_homes():
    gen = make_generator(home_policy="round_robin")
    homes = [spec.home for spec in gen.stream(8)]
    assert homes == [0, 1, 2, 3, 0, 1, 2, 3]


def test_explicit_home_override():
    gen = make_generator()
    assert gen.next_spec(home=2).home == 2


def test_keys_within_database():
    gen = make_generator(num_objects=10)
    for spec in gen.stream(50):
        for key in list(spec.read_keys) + list(spec.write_keys):
            assert key.startswith("x")
            assert 0 <= int(key[1:]) < 10


def test_zipf_skew_concentrates_access():
    gen = make_generator(zipf_theta=1.2, num_objects=64)
    counts = {}
    for spec in gen.stream(300):
        for key in spec.write_keys:
            counts[key] = counts.get(key, 0) + 1
    hottest = max(counts.values())
    assert hottest > 300 * 2 * 0.1  # top key gets a big share


def test_footprint_validation():
    with pytest.raises(ValueError):
        WorkloadConfig(num_objects=3, read_ops=2, write_ops=2)
    with pytest.raises(ValueError):
        WorkloadConfig(readonly_fraction=1.5)
    with pytest.raises(ValueError):
        WorkloadConfig(home_policy="nearest")


def test_open_loop_schedules_poisson_arrivals():
    cluster = Cluster(ClusterConfig(protocol="abp", num_sites=3, num_objects=16, seed=9))
    runner = OpenLoopRunner(
        cluster, WorkloadConfig(num_objects=16, num_sites=3), rate=0.05, count=20
    )
    runner.start()
    result = cluster.run(max_time=500000)
    assert result.ok
    assert result.committed_specs + result.failed_specs == 20


def test_open_loop_validates_params():
    cluster = Cluster(ClusterConfig(num_sites=2, seed=1))
    with pytest.raises(ValueError):
        OpenLoopRunner(cluster, WorkloadConfig(num_sites=2), rate=0.0, count=5)
    with pytest.raises(ValueError):
        OpenLoopRunner(cluster, WorkloadConfig(num_sites=2), rate=1.0, count=0)


def test_closed_loop_keeps_mpl_bounded():
    cluster = Cluster(ClusterConfig(protocol="abp", num_sites=3, num_objects=16, seed=9))
    runner = ClosedLoopRunner(
        cluster, WorkloadConfig(num_objects=16, num_sites=3), mpl=3, transactions=15
    )
    in_flight_high_water = 0
    original_submit = cluster.submit

    def counting_submit(spec, at=0.0):
        nonlocal in_flight_high_water
        in_flight_high_water = max(in_flight_high_water, len(runner._outstanding))
        original_submit(spec, at)

    cluster.submit = counting_submit
    runner.start()
    result = cluster.run(max_time=500000)
    assert result.ok
    assert runner.done
    assert in_flight_high_water <= 3
    assert result.committed_specs == 15


def test_closed_loop_validates_params():
    cluster = Cluster(ClusterConfig(num_sites=2, seed=1))
    with pytest.raises(ValueError):
        ClosedLoopRunner(cluster, WorkloadConfig(num_sites=2), mpl=0, transactions=5)
    with pytest.raises(ValueError):
        ClosedLoopRunner(cluster, WorkloadConfig(num_sites=2), mpl=5, transactions=3)
