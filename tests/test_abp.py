"""Protocol tests for ABP (atomic broadcast + certification, no acks)."""

import pytest

from repro.core.transaction import AbortReason


@pytest.mark.parametrize("variant", ["bundled", "shipped"])
def test_single_update_commits_everywhere(make_spec, variant):
    from tests.conftest import quick_cluster

    cluster = quick_cluster("abp", abp_variant=variant)
    cluster.submit(make_spec("t1", 0, reads=["x0"], writes={"x0": 7}))
    result = cluster.run()
    assert result.ok and result.committed_specs == 1
    for replica in cluster.replicas:
        assert replica.store.read("x0").value == 7


def test_no_acknowledgment_messages_at_all(make_spec):
    """The paper's headline: commit requests + ordering traffic only."""
    from tests.conftest import quick_cluster

    cluster = quick_cluster("abp", num_sites=3)
    cluster.submit(make_spec("t1", 0, writes={"x0": 1, "x1": 2}))
    result = cluster.run()
    assert result.ok
    kinds = set(result.messages_by_kind)
    assert kinds == {"abp.commit_request", "abcast.order"}
    assert result.messages_by_kind["abp.commit_request"] == 2  # n-1


def test_shipped_variant_sends_writes_causally(make_spec):
    from tests.conftest import quick_cluster

    cluster = quick_cluster("abp", abp_variant="shipped", num_sites=3)
    cluster.submit(make_spec("t1", 0, writes={"x0": 1}))
    result = cluster.run()
    assert result.ok
    assert result.messages_by_kind["abp.write"] == 2
    assert result.messages_by_kind["abp.commit_request"] == 2


def test_certification_aborts_stale_reader(make_spec):
    """T2 reads x0, then T1's write to x0 certifies first: T2 must fail
    certification (its read version is stale) — deterministically at every
    site, with no votes."""
    from tests.conftest import quick_cluster

    cluster = quick_cluster("abp", retry_aborted=False, num_sites=3)
    cluster.submit(make_spec("t1", 0, reads=["x0"], writes={"x0": "new"}), at=0.0)
    cluster.submit(make_spec("t2", 1, reads=["x0"], writes={"x1": "stale"}), at=0.1)
    result = cluster.run()
    assert result.ok
    statuses = [cluster.spec_status(n).committed for n in ("t1", "t2")]
    assert statuses.count(True) == 1
    assert result.metrics.aborts_by_reason[AbortReason.CERTIFICATION] == 1
    # Certification decisions are identical at every site.
    aborts = {r.certified_aborts for r in cluster.replicas}
    commits = {r.certified_commits for r in cluster.replicas}
    assert len(aborts) == 1 and len(commits) == 1


def test_write_skew_prevented(make_spec):
    """T1 reads x0 writes x1; T2 reads x1 writes x0 — certification must
    abort one of them (the 1SR cycle the paper's proofs exclude)."""
    from tests.conftest import quick_cluster

    cluster = quick_cluster("abp", retry_aborted=False)
    cluster.submit(make_spec("t1", 0, reads=["x0"], writes={"x1": "a"}), at=0.0)
    cluster.submit(make_spec("t2", 1, reads=["x1"], writes={"x0": "b"}), at=0.1)
    result = cluster.run()
    assert result.ok
    committed = [cluster.spec_status(n).committed for n in ("t1", "t2")]
    assert committed.count(True) == 1


def test_blind_concurrent_writers_both_commit_in_order(make_spec):
    """Writers that read nothing never fail certification; the total order
    resolves their conflict and every replica installs in that order."""
    from tests.conftest import quick_cluster

    cluster = quick_cluster("abp", retry_aborted=False)
    cluster.submit(make_spec("w1", 0, writes={"x0": "a"}), at=0.0)
    cluster.submit(make_spec("w2", 1, writes={"x0": "b"}), at=0.1)
    result = cluster.run()
    assert result.ok
    assert result.committed_specs == 2
    finals = {r.store.read("x0").value for r in cluster.replicas}
    assert len(finals) == 1  # same winner everywhere


@pytest.mark.parametrize("mode", ["sequencer", "token"])
def test_total_order_modes_agree_on_outcome(make_spec, mode):
    from tests.conftest import quick_cluster
    from repro.workload import WorkloadConfig
    from repro.workload.runner import run_standard_mix

    cluster = quick_cluster("abp", abp_order_mode=mode, num_objects=8, seed=19)
    result = run_standard_mix(
        cluster,
        WorkloadConfig(num_objects=8, num_sites=3, read_ops=2, write_ops=2, zipf_theta=0.7),
        transactions=30,
        mpl=6,
    )
    assert result.ok
    assert result.committed_specs == 30


def test_read_only_commits_locally(make_spec):
    from tests.conftest import quick_cluster

    cluster = quick_cluster("abp")
    cluster.submit(make_spec("r1", 1, reads=["x0", "x1"]))
    result = cluster.run(max_time=1000.0)
    assert cluster.spec_status("r1").committed
    assert result.messages_by_kind.get("abp.commit_request", 0) == 0


def test_retry_after_certification_abort_succeeds(make_spec):
    from tests.conftest import quick_cluster

    cluster = quick_cluster("abp", retry_aborted=True)
    cluster.submit(make_spec("t1", 0, reads=["x0"], writes={"x0": "a"}), at=0.0)
    cluster.submit(make_spec("t2", 1, reads=["x0"], writes={"x0": "b"}), at=0.1)
    result = cluster.run()
    assert result.ok
    assert result.committed_specs == 2


def test_order_indexes_contiguous_across_sites(make_spec):
    from tests.conftest import quick_cluster

    cluster = quick_cluster("abp", num_sites=4)
    for n in range(6):
        cluster.submit(make_spec(f"t{n}", n % 4, writes={f"x{n}": n}), at=float(n))
    result = cluster.run()
    assert result.ok
    assert {r._expected_index for r in cluster.replicas} == {6}


def test_invalid_variant_rejected():
    from tests.conftest import quick_cluster

    with pytest.raises(ValueError):
        quick_cluster("abp", abp_variant="telepathic")


def test_locked_variant_gates_readers(make_spec):
    """In the locked variant a pre-shipped write blocks local readers
    until certification, so a reader that would have read stale data under
    'bundled' reads the committed value instead."""
    from tests.conftest import quick_cluster

    cluster = quick_cluster("abp", abp_variant="locked", num_sites=3)
    cluster.submit(make_spec("w", 0, writes={"x0": "fresh"}), at=0.0)
    # A read-only transaction at another site lands while the write set is
    # delivered but not yet certified there.
    cluster.submit(make_spec("r", 1, reads=["x0"]), at=1.2)
    result = cluster.run()
    assert result.ok
    record = next(r for r in cluster.recorder.committed if r.tx.startswith("r"))
    # Whichever way the race went, the read is a committed version; under
    # the locked variant the typical outcome is the fresh one.
    assert dict(record.reads)["x0"] in (0, 1)


def test_locked_variant_reduces_certification_aborts():
    from tests.conftest import quick_cluster
    from repro.workload import WorkloadConfig
    from repro.workload.runner import run_standard_mix

    aborts = {}
    for variant in ("bundled", "locked"):
        cluster = quick_cluster(
            "abp", abp_variant=variant, num_objects=16, seed=13, max_attempts=60
        )
        result = run_standard_mix(
            cluster,
            WorkloadConfig(
                num_objects=16, num_sites=3, read_ops=2, write_ops=2, zipf_theta=0.9
            ),
            transactions=50,
            mpl=8,
            max_time=1_000_000,
        )
        assert result.ok
        aborts[variant] = len(result.metrics.aborted)
    assert aborts["locked"] <= aborts["bundled"]


def test_locked_variant_leaves_no_lock_residue(make_spec):
    from tests.conftest import quick_cluster
    from repro.analysis.audit import assert_clean

    cluster = quick_cluster("abp", abp_variant="locked", retry_aborted=True)
    cluster.submit(make_spec("a", 0, reads=["x0"], writes={"x0": 1}), at=0.0)
    cluster.submit(make_spec("b", 1, reads=["x0"], writes={"x0": 2}), at=0.1)
    result = cluster.run()
    assert result.ok
    cluster.run_for(200.0)
    assert_clean(cluster, strict_wal=False)


def test_shipped_variant_exports_preshipped_write_sets():
    """A write set delivered causally before the export, whose commit
    request orders after it, is unreachable for a rejoiner (the causal
    fast-forward skips it) — it must travel with the protocol state."""
    from tests.conftest import quick_cluster

    cluster = quick_cluster("abp", abp_variant="shipped")
    donor = cluster.replicas[0]
    donor._shipped["T9"] = {"x0": 5}
    state = donor.export_protocol_state()
    assert state == {"shipped": (("T9", (("x0", 5),)),)}
    rejoiner = cluster.replicas[1]
    rejoiner.adopt_protocol_state(state)
    assert rejoiner._shipped["T9"] == {"x0": 5}
    # Adoption never clobbers a write set already delivered locally.
    other = cluster.replicas[2]
    other._shipped["T9"] = {"x0": 7}
    other.adopt_protocol_state(state)
    assert other._shipped["T9"] == {"x0": 7}


def test_bundled_variant_ships_no_protocol_state():
    from tests.conftest import quick_cluster

    cluster = quick_cluster("abp", abp_variant="bundled")
    assert cluster.replicas[0].export_protocol_state() is None
