"""Tests for message capture and sequence diagrams."""

from repro.analysis.sequence import (
    MessageCapture,
    attach_capture,
    message_matrix,
    render_sequence,
)
from repro.core.cluster import Cluster, ClusterConfig
from repro.core.transaction import TransactionSpec


def captured_run(protocol="rbp", **overrides):
    cluster = Cluster(
        ClusterConfig(**{**dict(protocol=protocol, num_sites=3, seed=44), **overrides})
    )
    capture = attach_capture(cluster.network)
    cluster.submit(
        TransactionSpec.make("t1", 0, read_keys=["x0"], writes={"x0": 1})
    )
    result = cluster.run()
    assert result.ok
    return cluster, capture


def test_capture_records_delivered_messages():
    cluster, capture = captured_run()
    assert len(capture) == cluster.network.stats.delivered
    kinds = {m.kind for m in capture.messages}
    assert "rbp.write" in kinds and "rbp.vote" in kinds


def test_filter_by_kind_and_window():
    cluster, capture = captured_run()
    writes = capture.filtered(kind_prefix="rbp.write")
    assert writes and all(m.kind.startswith("rbp.write") for m in writes)
    early = capture.filtered(end=0.5)
    assert all(m.time <= 0.5 for m in early)


def test_render_sequence_shows_flow():
    cluster, capture = captured_run()
    art = render_sequence(capture.messages)
    assert "rbp.write" in art
    assert "s0 ──" in art
    assert "─▶ s1" in art or "─▶ s2" in art


def test_render_sequence_empty():
    assert "no messages" in render_sequence([])


def test_render_elides_beyond_max_lines():
    cluster, capture = captured_run(num_sites=4)
    art = render_sequence(capture.messages, max_lines=3)
    assert "more messages elided" in art


def test_message_matrix_counts():
    cluster, capture = captured_run()
    matrix = message_matrix(capture.messages, 3)
    # The home (site 0) broadcast writes/commit to both peers.
    assert matrix[0][1] > 0 and matrix[0][2] > 0
    # Votes flow between the peers too (decentralized 2PC!).
    assert matrix[1][2] > 0 and matrix[2][1] > 0
    assert matrix[0][0] + matrix[1][1] + matrix[2][2] >= 0  # loopbacks counted


def test_capture_capacity_bound():
    capture = MessageCapture(capacity=2)
    from repro.net.network import Datagram

    for n in range(5):
        capture.record(Datagram(0, 1, None, "k", float(n), float(n)))
    assert len(capture) == 2


def test_sequence_matches_round_structure():
    """The captured first round is write -> acks -> commit -> votes."""
    cluster, capture = captured_run()
    kinds_in_order = [m.kind for m in sorted(capture.messages, key=lambda m: m.time)]
    protocol_kinds = [k for k in kinds_in_order if k.startswith("rbp.")]
    assert protocol_kinds.index("rbp.write") < protocol_kinds.index("rbp.write_ack")
    assert protocol_kinds.index("rbp.write_ack") < protocol_kinds.index(
        "rbp.commit_request"
    )
    assert protocol_kinds.index("rbp.commit_request") < len(protocol_kinds) - 1
