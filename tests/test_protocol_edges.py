"""Edge-case tests across the protocol implementations."""

from repro.core.cluster import Cluster, ClusterConfig
from repro.core.transaction import TransactionSpec
from tests.conftest import quick_cluster, spec


def all_lock_tables_empty(cluster):
    for replica in cluster.replicas:
        for key in cluster.keys:
            if replica.locks.holders_of(key):
                return False
    return True


def test_rbp_abort_releases_locks_everywhere(make_spec):
    cluster = quick_cluster("rbp", retry_aborted=False)
    cluster.submit(make_spec("a", 0, writes={"x0": 1, "x1": 1}), at=0.0)
    cluster.submit(make_spec("b", 1, writes={"x0": 2, "x1": 2}), at=0.1)
    result = cluster.run()
    assert result.ok
    cluster.run_for(100.0)  # let the final abort broadcast reach everyone
    assert all_lock_tables_empty(cluster)


def test_cbp_abort_releases_locks_everywhere(make_spec):
    cluster = quick_cluster("cbp", retry_aborted=False)
    cluster.submit(make_spec("a", 0, writes={"x0": 1}), at=0.0)
    cluster.submit(make_spec("b", 1, writes={"x0": 2}), at=0.1)
    result = cluster.run()
    assert result.ok
    cluster.run_for(100.0)
    assert all_lock_tables_empty(cluster)


def test_abp_certification_abort_leaves_no_residue(make_spec):
    cluster = quick_cluster("abp", retry_aborted=False)
    cluster.submit(make_spec("a", 0, reads=["x0"], writes={"x0": 1}), at=0.0)
    cluster.submit(make_spec("b", 1, reads=["x0"], writes={"x0": 2}), at=0.1)
    result = cluster.run()
    assert result.ok
    cluster.run_for(100.0)
    assert all_lock_tables_empty(cluster)
    for replica in cluster.replicas:
        assert replica._shipped == {}


def test_cbp_duplicate_nacks_cause_single_abort(make_spec):
    """Several sites may NACK the same victim; the client sees exactly one
    abort per attempt."""
    cluster = quick_cluster("cbp", num_sites=5, retry_aborted=False, seed=8)
    cluster.submit(make_spec("a", 0, writes={"x0": "a"}), at=0.0)
    cluster.submit(make_spec("b", 2, writes={"x0": "b"}), at=0.1)
    result = cluster.run()
    assert result.ok
    attempts = [o for o in result.metrics.outcomes]
    # One outcome record per attempt, despite multiple NACK broadcasts.
    assert len(attempts) == len({o.tx_id for o in attempts})


def test_cbp_heartbeats_suppressed_under_traffic():
    """A busy site does not send null messages: its real traffic carries
    the implicit acknowledgments."""
    cluster = quick_cluster("cbp", num_sites=3, cbp_heartbeat=30.0, seed=9)
    # A steady stream of updates from every site, denser than the
    # heartbeat interval.
    for n in range(30):
        cluster.submit(
            spec(f"t{n}", n % 3, writes={f"x{n % 8}": n}), at=n * 10.0
        )
    result = cluster.run(max_time=100000, stop_when=cluster.await_specs(30))
    nulls = result.messages_by_kind.get("cbp.null", 0)
    writes = result.messages_by_kind.get("cbp.write", 0)
    assert nulls < writes  # suppression worked; mostly real traffic


def test_preempted_reader_retries_and_commits(make_spec):
    """A local reader displaced by a remote write is retried by the client
    and eventually commits."""
    cluster = Cluster(
        ClusterConfig(
            protocol="cbp", num_sites=3, num_objects=8, seed=31, retry_backoff=5.0
        )
    )
    # Stream of remote writers against x0 from site 0...
    for n in range(6):
        cluster.submit(
            spec(f"w{n}", 0, writes={"x0": f"w{n}"}), at=n * 60.0
        )
    # ...while site 1 keeps trying to read x0 and write x1.
    cluster.submit(
        TransactionSpec.make("reader", 1, read_keys=["x0"], writes={"x1": "r"}),
        at=30.0,
    )
    result = cluster.run(max_time=200000, stop_when=cluster.await_specs(7))
    assert result.ok
    assert cluster.spec_status("reader").committed


def test_p2p_prepare_for_unknown_tx_votes_no():
    from repro.core.events import P2pPrepare

    cluster = quick_cluster("p2p")
    replica = cluster.replicas[1]
    replica._on_prepare(0, P2pPrepare("ghost#1"))
    cluster.run_for(10.0)
    # The vote was sent and is negative.
    assert cluster.network.stats.by_kind.get("p2p.vote", 0) == 1


def test_rbp_view_change_mid_round_completes(make_spec):
    """A write round blocked on a crashed site completes when the view
    change removes that site from the acknowledgment set."""
    cluster = Cluster(
        ClusterConfig(
            protocol="rbp",
            num_sites=4,
            num_objects=8,
            seed=12,
            enable_failure_detector=True,
            fd_interval=15.0,
            fd_timeout=60.0,
        )
    )
    # Crash site 3 just before the transaction's write broadcast reaches it.
    cluster.crash_site(3, at=0.2)
    cluster.submit(make_spec("t", 0, writes={"x0": 1}), at=0.0)
    result = cluster.run(max_time=50000)
    assert result.ok
    assert cluster.spec_status("t").committed
    # The commit had to wait for the failure detector + view change.
    outcome = result.metrics.committed[0]
    assert outcome.latency > 50.0


def test_same_key_read_and_write_single_tx(make_spec):
    """Read-modify-write on one key: the X-at-read-time discipline."""
    for protocol in ("rbp", "cbp", "abp", "p2p"):
        cluster = quick_cluster(protocol)
        cluster.submit(make_spec("t", 0, reads=["x0"], writes={"x0": "new"}))
        result = cluster.run()
        assert result.ok, protocol
        record = cluster.recorder.committed[0]
        assert dict(record.reads) == {"x0": 0}
        assert dict(record.writes) == {"x0": 1}


def test_many_keys_transaction(make_spec):
    """A wide transaction (16 keys) exercises batching paths."""
    writes = {f"x{i}": i for i in range(16)}
    for protocol in ("rbp", "cbp", "abp"):
        cluster = quick_cluster(protocol, num_objects=16)
        cluster.submit(make_spec("wide", 0, reads=list(writes), writes=writes))
        result = cluster.run()
        assert result.ok, protocol
        for replica in cluster.replicas:
            assert replica.store.read("x15").value == 15


def test_single_site_cluster_degenerates_gracefully(make_spec):
    """n=1: every broadcast is a self-delivery; all protocols still work."""
    for protocol in ("rbp", "cbp", "abp", "p2p"):
        cluster = quick_cluster(protocol, num_sites=1, cbp_heartbeat=5.0)
        cluster.submit(make_spec("t", 0, reads=["x0"], writes={"x0": 1}))
        result = cluster.run(max_time=10000)
        assert result.ok, protocol
        assert result.committed_specs == 1
        assert result.network_stats["sent"] == 0 or protocol == "cbp"
