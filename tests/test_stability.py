"""Tests for matrix-clock stability tracking and uniform atomic delivery."""

from dataclasses import dataclass

from repro.broadcast.stability import StabilityTracker
from repro.broadcast.vector_clock import VectorClock


@dataclass
class Op:
    label: str
    kind: str = "op"


def test_stable_vector_is_min_of_rows():
    tracker = StabilityTracker(3, site=0)
    tracker.observe(0, VectorClock([5, 2, 0]))
    tracker.observe(1, VectorClock([3, 4, 1]))
    tracker.observe(2, VectorClock([4, 3, 2]))
    assert list(tracker.stable_vector()) == [3, 2, 0]


def test_rows_merge_monotonically():
    tracker = StabilityTracker(2, site=0)
    tracker.observe(1, VectorClock([3, 1]))
    tracker.observe(1, VectorClock([2, 5]))  # older in one entry
    assert list(tracker.row(1)) == [3, 5]


def test_is_stable():
    tracker = StabilityTracker(2, site=0)
    tracker.observe(0, VectorClock([4, 0]))
    tracker.observe(1, VectorClock([2, 0]))
    assert tracker.is_stable(0, 2)
    assert not tracker.is_stable(0, 3)


def test_advance_listener_fires_on_change_only():
    tracker = StabilityTracker(2, site=0)
    advances = []
    tracker.on_advance(lambda vec: advances.append(list(vec)))
    tracker.observe(0, VectorClock([1, 0]))
    assert advances == []  # row 1 still zero: min unchanged
    tracker.observe(1, VectorClock([1, 0]))
    assert advances == [[1, 0]]
    tracker.observe(1, VectorClock([1, 0]))  # no change
    assert advances == [[1, 0]]


def test_restrict_to_drops_departed_members():
    tracker = StabilityTracker(3, site=0)
    tracker.observe(0, VectorClock([5, 5, 5]))
    tracker.observe(1, VectorClock([5, 5, 5]))
    # Site 2 is silent and holds stability at zero...
    assert list(tracker.stable_vector()) == [0, 0, 0]
    # ...until a view change removes it.
    tracker.restrict_to([0, 1])
    assert list(tracker.stable_vector()) == [5, 5, 5]


def test_uniform_total_order_waits_for_stability(harness_factory):
    """In uniform mode a lone ordered message is not delivered until every
    site's clock confirms receipt (carried by stability null messages)."""
    h = harness_factory(num_sites=3, stack="total")
    for layer in h.layers:
        layer.uniform = True
        tracker = layer.causal.enable_stability()
        tracker.on_advance(lambda stable, layer=layer: layer._drain())
        layer._last_own_broadcast = 0.0
        layer.engine = h.engine
        h.engine.schedule(5.0, layer._stability_tick)
    h.layers[0].broadcast(Op("solo"))
    # Shortly after the broadcast nothing is delivered anywhere (the data
    # needs one hop, the confirming clocks another).
    h.run(until=1.0)
    assert all(not h.delivered[site] for site in range(3))
    h.run(until=200.0)
    for site in range(3):
        ordered = [p.label for p, idx in h.delivered[site] if idx is not None]
        assert ordered == ["solo"]


def test_uniform_cluster_end_to_end():
    from repro.core.cluster import Cluster, ClusterConfig
    from repro.workload import WorkloadConfig
    from repro.workload.runner import run_standard_mix

    plain = Cluster(ClusterConfig(protocol="abp", num_sites=4, seed=9))
    uniform = Cluster(ClusterConfig(protocol="abp", num_sites=4, seed=9, abp_uniform=True))
    results = {}
    for name, cluster in (("plain", plain), ("uniform", uniform)):
        results[name] = run_standard_mix(
            cluster, WorkloadConfig(num_sites=4), transactions=20, mpl=4
        )
        assert results[name].ok
        assert results[name].committed_specs == 20
    # Uniform delivery costs latency: it waits for global receipt.
    assert (
        results["uniform"].metrics.commit_latency(read_only=False).mean
        > results["plain"].metrics.commit_latency(read_only=False).mean
    )


def test_gc_bounds_dedup_state(harness_factory):
    """With stability-driven GC the reliable layer's dedup set stays
    bounded on a long-running system instead of growing forever."""
    h = harness_factory(num_sites=3, stack="causal")
    for layer in h.layers:
        layer.enable_stability(gc=True)
    # A long chatter: 600 broadcasts round-robin.
    for n in range(600):
        h.layers[n % 3].broadcast(Op(f"m{n}"))
        if n % 50 == 49:
            h.run(until=h.engine.now + 50.0)
    h.run(until=h.engine.now + 200.0)
    for layer in h.layers:
        assert layer.reliable.gc_reclaimed > 0
        # 600 messages seen in total; far fewer retained (roughly the
        # lag=128 margin per origin plus the un-stabilized tail).
        assert len(layer.reliable._seen) <= 3 * 160


def test_gc_never_breaks_integrity(harness_factory):
    """Messages are still delivered exactly once with GC active, even in
    relay mode where duplicates abound."""
    h = harness_factory(num_sites=3, stack="causal", relay=True)
    for layer in h.layers:
        layer.enable_stability(gc=True)
    for n in range(300):
        h.layers[n % 3].broadcast(Op(f"m{n}"))
        if n % 30 == 29:
            h.run(until=h.engine.now + 30.0)
    h.run(until=h.engine.now + 300.0)
    for site in range(3):
        labels = [p.label for p, _ in h.delivered[site]]
        assert len(labels) == 300
        assert len(set(labels)) == 300
