"""Tests for the Zipf sampler."""

import random
from collections import Counter

import pytest

from repro.workload.zipf import ZipfSampler


@pytest.fixture
def rng():
    return random.Random(77)


def test_uniform_when_theta_zero(rng):
    sampler = ZipfSampler(10, theta=0.0)
    counts = Counter(sampler.sample(rng) for _ in range(10000))
    assert set(counts) == set(range(10))
    assert max(counts.values()) < 2 * min(counts.values())


def test_skew_orders_frequencies(rng):
    sampler = ZipfSampler(20, theta=1.0)
    counts = Counter(sampler.sample(rng) for _ in range(20000))
    assert counts[0] > counts[5] > counts[15]


def test_samples_in_range(rng):
    sampler = ZipfSampler(7, theta=0.9)
    assert all(0 <= sampler.sample(rng) < 7 for _ in range(1000))


def test_sample_distinct_no_duplicates(rng):
    sampler = ZipfSampler(30, theta=0.8)
    for _ in range(100):
        picks = sampler.sample_distinct(rng, 5)
        assert len(picks) == len(set(picks)) == 5


def test_sample_distinct_full_coverage(rng):
    sampler = ZipfSampler(6, theta=0.5)
    picks = sampler.sample_distinct(rng, 6)
    assert sorted(picks) == list(range(6))


def test_sample_distinct_too_many_rejected(rng):
    sampler = ZipfSampler(3)
    with pytest.raises(ValueError):
        sampler.sample_distinct(rng, 4)


def test_sample_distinct_sampled_order_on_rejection_path():
    """count * 3 < n takes rejection sampling: ranks must come back in the
    order they were first drawn (regression: this path used to sort them)."""
    sampler = ZipfSampler(30, theta=0.8)
    picks = sampler.sample_distinct(random.Random(123), 5)
    replay = random.Random(123)
    expected, seen = [], set()
    while len(expected) < 5:
        rank = sampler.sample(replay)
        if rank not in seen:
            seen.add(rank)
            expected.append(rank)
    assert picks == expected


def test_sample_distinct_sampled_order_on_shuffle_path():
    """count * 3 >= n takes the shuffle fallback: shuffle order, unsorted."""
    sampler = ZipfSampler(10, theta=0.8)
    picks = sampler.sample_distinct(random.Random(123), 4)
    replay = random.Random(123)
    ranks = list(range(10))
    replay.shuffle(ranks)
    assert picks == ranks[:4]


def test_sample_distinct_is_not_sorted():
    """The historical bug returned sorted ranks from the rejection path,
    silently reordering write sets (and thus lock acquisition order)."""
    sampler = ZipfSampler(40, theta=1.0)
    assert any(
        (picks := sampler.sample_distinct(random.Random(seed), 6)) != sorted(picks)
        for seed in range(20)
    )


def test_invalid_params_rejected():
    with pytest.raises(ValueError):
        ZipfSampler(0)
    with pytest.raises(ValueError):
        ZipfSampler(5, theta=-1.0)
