"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so that
environments without the ``wheel`` package (where PEP 660 editable installs
fail) can still do ``python setup.py develop`` / ``pip install -e .``.
"""

from setuptools import setup

setup()
