#!/usr/bin/env python3
"""Run the perf suite, write the next BENCH_N.json, flag regressions.

The BENCH_*.json files at the repository root are the perf trajectory: one
snapshot per optimisation PR.  Each run compares itself against the latest
existing snapshot of the same mode (quick vs full) and exits non-zero when a
benchmark's ops/sec fell beyond the tolerance, so a kernel slowdown cannot
land silently.

Usage:
    python scripts/bench_report.py                  # full suite, write next BENCH_N.json
    python scripts/bench_report.py --quick          # CI smoke: small configs, no write
    python scripts/bench_report.py --quick --write  # write a quick snapshot anyway
    python scripts/bench_report.py --out PATH       # explicit output path
    python scripts/bench_report.py --tolerance 0.5  # looser regression gate
"""

from __future__ import annotations

import argparse
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis import perf  # noqa: E402  (path bootstrap above)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small configs (CI smoke); implies --no-write unless --write",
    )
    parser.add_argument("--write", action="store_true", help="force writing a snapshot")
    parser.add_argument(
        "--no-write", action="store_true", help="run and compare without writing"
    )
    parser.add_argument("--out", type=pathlib.Path, default=None, help="output path")
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=None,
        help="explicit baseline report (default: latest BENCH_N.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.35,
        help="allowed fractional ops/sec drop before failing (default 0.35)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="worker processes for the sweep-scaling benchmark (default 4)",
    )
    args = parser.parse_args(argv)

    results = perf.run_suite(quick=args.quick, jobs=args.jobs)
    print(perf.render_results(results))
    report = perf.to_report(results, quick=args.quick)

    existing = perf.bench_paths(ROOT)
    baseline_path = args.baseline if args.baseline is not None else (
        existing[-1] if existing else None
    )
    exit_code = 0
    if baseline_path is not None and baseline_path.exists():
        baseline = perf.load_report(baseline_path)
        if baseline.get("quick") != report.get("quick"):
            print(
                f"\nbaseline {baseline_path.name} is a "
                f"{'quick' if baseline.get('quick') else 'full'} report; "
                "skipping comparison (modes differ)"
            )
        else:
            regressions = perf.compare_reports(baseline, report, args.tolerance)
            if regressions:
                print(f"\nREGRESSIONS vs {baseline_path.name}:")
                for line in regressions:
                    print(f"  {line}")
                exit_code = 1
            else:
                print(f"\nno regressions vs {baseline_path.name} "
                      f"(tolerance -{args.tolerance:.0%})")
    else:
        print("\nno baseline BENCH_*.json found; writing the first snapshot")

    write = args.write or (not args.quick and not args.no_write)
    if write:
        out = args.out if args.out is not None else perf.next_bench_path(ROOT)
        perf.write_report(out, report)
        print(f"wrote {out}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
