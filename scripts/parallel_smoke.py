#!/usr/bin/env python3
"""CI smoke: a sharded sweep must be byte-identical to the serial run.

Runs one tiny but real sweep (all four protocols, a handful of seeds)
twice — ``jobs=1`` and ``jobs=N`` — and diffs the measurement digests.
Any divergence (a completion-order fold, a non-fsum accumulation, a
worker-dependent code path) exits non-zero with both digests printed.

Usage:
    python scripts/parallel_smoke.py            # jobs=4
    python scripts/parallel_smoke.py --jobs 8
"""

from __future__ import annotations

import argparse
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis.experiment import run_sweep  # noqa: E402  (path bootstrap)


def _cell(protocol: str, parameter: int, seed: int) -> dict:
    from repro.analysis.metrics import QuantileAccumulator
    from repro.core.cluster import Cluster, ClusterConfig
    from repro.workload import WorkloadConfig
    from repro.workload.runner import run_standard_mix

    cluster = Cluster(
        ClusterConfig(protocol=protocol, num_sites=parameter, num_objects=12, seed=seed)
    )
    result = run_standard_mix(
        cluster,
        WorkloadConfig(num_objects=12, num_sites=parameter, read_ops=1, write_ops=1),
        transactions=10,
        mpl=2,
    )
    assert result.ok, f"{protocol} seed {seed} failed its invariants"
    latency = QuantileAccumulator()
    for outcome in result.metrics.committed:
        if not outcome.read_only:
            latency.observe(outcome.latency)
    return {
        "commits": float(result.committed_specs),
        "messages": float(result.network_stats["sent"]),
        "latency (ms)": latency,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4, help="worker count (default 4)")
    args = parser.parse_args(argv)

    kwargs = dict(
        name="parallel_smoke",
        scenario=_cell,
        parameters=(3,),
        protocols=("rbp", "cbp", "abp", "p2p"),
        seeds=(0, 1, 2, 3, 4, 5),
    )
    serial = run_sweep(**kwargs, jobs=1)
    sharded = run_sweep(**kwargs, jobs=args.jobs)
    print(f"serial  digest: {serial.digest()}")
    print(f"jobs={args.jobs} digest: {sharded.digest()}")
    if sharded.digest() != serial.digest():
        print("FAIL: sharded sweep diverged from the serial run")
        return 1
    print(f"OK: byte-identical across {len(serial.points)} points")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
