#!/usr/bin/env python3
"""Run detcheck (the determinism & protocol-invariant linter) from a checkout.

Thin wrapper over ``python -m repro.analysis.staticcheck`` that bootstraps
``src/`` onto the path and defaults to the full checked tree and the
repo-root baseline, so CI and `make lint` need no PYTHONPATH setup.

Usage:
    python scripts/detcheck.py                      # src scripts benchmarks
    python scripts/detcheck.py --list-rules
    python scripts/detcheck.py --write-baseline     # regenerate grandfather list
    python scripts/detcheck.py src/repro/core       # narrow to a subtree
"""

from __future__ import annotations

import os
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis.staticcheck.cli import main  # noqa: E402  (path bootstrap above)

if __name__ == "__main__":
    os.chdir(ROOT)  # findings and baseline paths are repo-relative
    argv = sys.argv[1:]
    if not any(not arg.startswith("-") for arg in argv):
        argv = argv + ["src", "scripts", "benchmarks"]
    sys.exit(main(argv))
