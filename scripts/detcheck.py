#!/usr/bin/env python3
"""Run detcheck (the determinism & protocol-invariant linter) from a checkout.

Thin wrapper over ``python -m repro.analysis.staticcheck`` that bootstraps
``src/`` onto the path and defaults to the full checked tree and the
repo-root baseline, so CI and `make lint` need no PYTHONPATH setup.

Usage:
    python scripts/detcheck.py                      # src scripts benchmarks
    python scripts/detcheck.py --list-rules
    python scripts/detcheck.py --write-baseline     # regenerate grandfather list
    python scripts/detcheck.py src/repro/core       # narrow to a subtree
"""

from __future__ import annotations

import os
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis.staticcheck.cli import main  # noqa: E402  (path bootstrap above)

#: Options that consume the next token, so their values are not paths.
_VALUE_OPTIONS = {"--select", "--ignore", "--format", "--baseline", "--changed-ref"}


def _has_path_arg(argv: list[str]) -> bool:
    expect_value = False
    for arg in argv:
        if expect_value:
            expect_value = False
            continue
        if arg in _VALUE_OPTIONS:
            expect_value = True
            continue
        if not arg.startswith("-"):
            return True
    return False


if __name__ == "__main__":
    os.chdir(ROOT)  # findings and baseline paths are repo-relative
    argv = sys.argv[1:]
    if not _has_path_arg(argv):
        argv = argv + ["src", "scripts", "benchmarks"]
    sys.exit(main(argv))
