#!/usr/bin/env python3
"""Regenerate every experiment table (E1..E13) in one run.

This is the reproduction entry point referenced by EXPERIMENTS.md: it
invokes the benchmark suite with output capture disabled so all result
tables print, and summarizes pass/fail per experiment at the end.

Usage:
    python scripts/run_experiments.py                # everything, serially
    python scripts/run_experiments.py e1 e3          # a subset
    python scripts/run_experiments.py --jobs 4       # fan experiments across cores
    python scripts/run_experiments.py --sweep-jobs 4 # fan seeds *within* sweeps

Each experiment is one independent deterministic pytest process, so
``--jobs`` changes wall-clock only — tables and pass/fail outcomes are
identical to a serial run.  With ``--jobs > 1`` output is captured per
experiment and printed in experiment order once complete.

``--sweep-jobs`` reaches *inside* each experiment process: it is exported
as ``REPRO_SWEEP_JOBS``, which any ``run_sweep``/``ExperimentSweep`` call
without an explicit ``jobs=`` picks up, sharding each cell's seed list
across the sweep worker pool.  The order-canonical merge layer keeps the
output byte-identical to a serial sweep, so this too changes wall-clock
only.  The two flags multiply (``--jobs 2 --sweep-jobs 4`` can run 8
processes); prefer ``--sweep-jobs`` when running a single seed-heavy
experiment and ``--jobs`` when running the full set.
"""

# detcheck: file-ignore[D102] — wall-clock reads time the reproduction run
# itself (progress reporting); they never reach the simulation.

from __future__ import annotations

import argparse
import os
import pathlib
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"

EXPERIMENTS = {
    "e1": "test_e1_message_cost.py",
    "e2": "test_e2_latency_scaling.py",
    "e3": "test_e3_implicit_ack_wait.py",
    "e4": "test_e4_contention_aborts.py",
    "e5": "test_e5_throughput.py",
    "e6": "test_e6_deadlocks.py",
    "e7": "test_e7_readonly.py",
    "e8": "test_e8_write_ratio.py",
    "e9": "test_e9_fault_tolerance.py",
    "e10": "test_e10_ablations.py",
    "e11": "test_e11_bytes.py",
    "e12": "test_e12_loss_sweep.py",
    "e13": "test_e13_churn_soak.py",
    "e14": "test_e14_batching_sweep.py",
}


def _pytest_command(experiment: str) -> list[str]:
    return [
        sys.executable,
        "-m",
        "pytest",
        str(BENCH_DIR / EXPERIMENTS[experiment]),
        "--benchmark-only",
        "--benchmark-disable-gc",
        "-q",
        "-s",
    ]


def _experiment_env(sweep_jobs: int) -> dict[str, str]:
    """Subprocess environment; exports the intra-sweep fan-out knob."""
    env = dict(os.environ)
    if sweep_jobs > 1:
        env["REPRO_SWEEP_JOBS"] = str(sweep_jobs)
    return env


def _run_captured(experiment: str, sweep_jobs: int) -> tuple[bool, float, str]:
    started = time.time()
    proc = subprocess.run(
        _pytest_command(experiment),
        cwd=BENCH_DIR.parent,
        capture_output=True,
        text=True,
        env=_experiment_env(sweep_jobs),
    )
    output = proc.stdout + (("\n" + proc.stderr) if proc.stderr else "")
    return proc.returncode == 0, time.time() - started, output


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("experiments", nargs="*", help="subset, e.g. e1 e3")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="experiments to run concurrently (results are order/outcome identical)",
    )
    parser.add_argument(
        "--sweep-jobs",
        type=int,
        default=1,
        help="seed-shard sweeps inside each experiment (exported as "
        "REPRO_SWEEP_JOBS; byte-identical to serial)",
    )
    args = parser.parse_args(argv)

    requested = [a.lower() for a in args.experiments] or sorted(EXPERIMENTS)
    unknown = [e for e in requested if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; pick from {sorted(EXPERIMENTS)}")
        return 2

    outcomes: dict[str, tuple[bool, float]] = {}
    if args.jobs > 1 and len(requested) > 1:
        # Each experiment is its own subprocess; threads only babysit them.
        with ThreadPoolExecutor(max_workers=min(args.jobs, len(requested))) as pool:
            futures = {
                e: pool.submit(_run_captured, e, args.sweep_jobs) for e in requested
            }
        for experiment in requested:
            ok, elapsed, output = futures[experiment].result()
            target = BENCH_DIR / EXPERIMENTS[experiment]
            print(f"\n{'=' * 72}\n{experiment.upper()}: {target.name}\n{'=' * 72}")
            print(output, end="")
            outcomes[experiment] = (ok, elapsed)
    else:
        for experiment in requested:
            target = BENCH_DIR / EXPERIMENTS[experiment]
            print(f"\n{'=' * 72}\n{experiment.upper()}: {target.name}\n{'=' * 72}")
            started = time.time()
            proc = subprocess.run(
                _pytest_command(experiment),
                cwd=BENCH_DIR.parent,
                env=_experiment_env(args.sweep_jobs),
            )
            outcomes[experiment] = (proc.returncode == 0, time.time() - started)

    print(f"\n{'=' * 72}\nSummary\n{'=' * 72}")
    failed = 0
    for experiment in requested:
        ok, elapsed = outcomes[experiment]
        status = "PASS" if ok else "FAIL"
        if not ok:
            failed += 1
        print(f"  {experiment.upper():5s} {status}   ({elapsed:6.1f}s)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
