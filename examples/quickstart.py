#!/usr/bin/env python3
"""Quickstart: run one replicated transaction under each protocol.

Builds a four-site replicated database, submits a read-modify-write
transaction plus a read-only one, and prints what each protocol cost in
messages and time.  This is the 60-second tour of the library.

Run:  python examples/quickstart.py
"""

from repro import Cluster, ClusterConfig, Table, TransactionSpec


def run_protocol(protocol: str) -> dict:
    cluster = Cluster(ClusterConfig(protocol=protocol, num_sites=4, seed=7))

    # A read-modify-write "bank transfer": read both balances, write both.
    cluster.submit(
        TransactionSpec.make(
            "transfer",
            home=0,
            read_keys=["x0", "x1"],
            writes={"x0": 900, "x1": 1100},
        )
    )
    # A read-only audit at another site: commits locally, never aborts,
    # sends zero messages (the paper's guarantee in all three protocols).
    cluster.submit(
        TransactionSpec.make("audit", home=2, read_keys=["x0", "x1"]),
        at=300.0,
    )

    result = cluster.run()
    assert result.ok, "one-copy serializability or convergence violated!"
    assert result.committed_specs == 2

    # Separate per-transaction protocol messages from amortized background
    # traffic (CBP null messages / heartbeats exist regardless of load).
    background = {"cbp.null", "fd.heartbeat", "abcast.token"}
    protocol_msgs = sum(
        count
        for kind, count in result.messages_by_kind.items()
        if kind not in background
    )
    return {
        "protocol": protocol,
        "messages": protocol_msgs,
        "background": result.network_stats["sent"] - protocol_msgs,
        "update_latency": result.metrics.commit_latency(read_only=False).mean,
        "readonly_latency": result.metrics.commit_latency(read_only=True).mean,
    }


def main() -> None:
    table = Table(
        [
            "protocol",
            "protocol msgs",
            "background msgs",
            "update latency (ms)",
            "read-only latency (ms)",
        ],
        title="Quickstart: one transfer + one audit, 4 sites",
    )
    for protocol in ("p2p", "rbp", "cbp", "abp"):
        row = run_protocol(protocol)
        table.add_row(
            row["protocol"],
            row["messages"],
            row["background"],
            row["update_latency"],
            row["readonly_latency"],
        )
    print(table)
    print()
    print("p2p = point-to-point ROWA + centralized 2PC (baseline)")
    print("rbp = reliable broadcast + explicit acks + decentralized 2PC (paper S3)")
    print("cbp = causal broadcast + implicit acknowledgments (paper S4)")
    print("abp = atomic broadcast + certification, no acknowledgments (paper S5)")


if __name__ == "__main__":
    main()
