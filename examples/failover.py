#!/usr/bin/env python3
"""Failover walk-through: crashes, partitions, majority views, recovery.

A narrated tour of the fault-tolerance machinery the paper delegates to
the group-communication layer [Bv94, SS94]: the view is restructured as
sites fail and recover, and the system stays available while a majority
view exists.

Timeline (5 sites, RBP):

  t=0      normal operation, updates from every site
  t=1000   site 4 crashes            -> view {0,1,2,3}, work continues
  t=3000   partition {0,1} | {2,3}   -> NO majority anywhere: updates block
  t=5000   partition heals           -> view reforms, updates resume
  t=7000   site 4 recovers           -> state transfer, full membership

Run:  python examples/failover.py
"""

from repro import Cluster, ClusterConfig, TransactionSpec
from repro.core.transaction import AbortReason

NUM_SITES = 5


def main() -> None:
    cluster = Cluster(
        ClusterConfig(
            protocol="rbp",
            num_sites=NUM_SITES,
            num_objects=32,
            seed=99,
            enable_failure_detector=True,
            fd_interval=20.0,
            fd_timeout=80.0,
            retry_aborted=False,
        )
    )
    counter = [0]

    def submit_round(label, homes, at):
        for home in homes:
            counter[0] += 1
            cluster.submit(
                TransactionSpec.make(
                    f"{label}{counter[0]}",
                    home=home,
                    read_keys=[f"x{counter[0] % 32}"],
                    writes={f"x{counter[0] % 32}": f"{label}-{counter[0]}"},
                ),
                at=at,
            )

    print("t=0     submitting updates from all 5 sites (normal operation)")
    submit_round("normal", range(NUM_SITES), at=100.0)

    print("t=1000  crashing site 4")
    cluster.crash_site(4, at=1000.0)
    print("t=1500  submitting updates from surviving sites {0,1,2,3}")
    submit_round("afterCrash", range(4), at=1500.0)

    print("t=3000  partitioning {0,1} | {2,3}: no side has 3 of 5 sites")
    cluster.engine.schedule_at(3000.0, cluster.partition, [[0, 1], [2, 3]])
    print("t=3800  submitting updates on both sides (expected: refused)")
    submit_round("splitA", [0], at=3800.0)
    submit_round("splitB", [2], at=3800.0)

    print("t=5000  healing the partition")
    cluster.engine.schedule_at(5000.0, cluster.heal_partition)
    print("t=6000  submitting updates again (expected: committed)")
    submit_round("healed", range(4), at=6000.0)

    cluster.run(max_time=7000.0, stop_when=lambda: False, drain=False)

    print("t=7000  recovering site 4 (state transfer + rejoin)")
    cluster.recover_site(4)
    submit_round("recovered", range(NUM_SITES), at=8500.0)
    result = cluster.run(max_time=100000.0)

    print()
    print("outcomes:")
    refused = committed = 0
    for name in sorted(cluster._specs):
        status = cluster.spec_status(name)
        if status.committed:
            committed += 1
        elif status.last_outcome is AbortReason.NO_QUORUM:
            refused += 1
            print(f"  {name:14s} refused: submitted in a minority view")
    print(f"  {committed} committed, {refused} refused by quorum check")

    views = sorted({(m.view.view_id, tuple(m.view.members)) for m in cluster.memberships})
    print()
    print("view history (final state at each site):")
    for view_id, members in views:
        print(f"  view#{view_id}: members={list(members)}")

    assert result.serialization.ok, result.serialization.explain()
    assert result.converged
    print()
    print(result.serialization.explain())
    print("replicas converged:", result.converged)
    assert refused == 2, "both minority-side updates should have been refused"


if __name__ == "__main__":
    main()
