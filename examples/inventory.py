#!/usr/bin/env python3
"""Inventory/reservation workload: hot-spot contention and protocol choice.

An online store replicates its inventory across regional sites.  Orders
decrement stock for a handful of *hot* products (a Zipfian 80/20 pattern),
so concurrent transactions collide constantly — the regime in which the
paper's three protocols behave most differently:

- RBP aborts the conflicting writer on the spot (no-wait negative acks);
- CBP NACKs concurrent conflicting writers (often both) and relies on
  client retries;
- ABP certifies in total order: the first requester wins, the stale one
  aborts and retries.

The example runs the same order stream under all three (plus the baseline)
and prints commits, retry overhead, abort taxonomy and latency — the
practical "which protocol should my store use" table.  An application
invariant is checked too: stock never goes negative and every unit sold is
accounted for at every replica.

Run:  python examples/inventory.py
"""

from repro import Cluster, ClusterConfig, Table, TransactionSpec
from repro.workload.zipf import ZipfSampler

NUM_SITES = 4
NUM_PRODUCTS = 12
INITIAL_STOCK = 500
ORDERS = 60
HOT_SKEW = 1.2


def product(i: int) -> str:
    return f"x{i}"


def run(protocol: str) -> dict:
    cluster = Cluster(
        ClusterConfig(
            protocol=protocol,
            num_sites=NUM_SITES,
            num_objects=NUM_PRODUCTS,
            seed=777,
            retry_backoff=8.0,
            max_attempts=40,
        )
    )
    cluster.submit(
        TransactionSpec.make(
            "restock",
            home=0,
            writes={product(i): INITIAL_STOCK for i in range(NUM_PRODUCTS)},
        )
    )
    cluster.run(max_time=100000)

    sampler = ZipfSampler(NUM_PRODUCTS, HOT_SKEW)
    rng = cluster.rng.stream("orders")
    # Precompute the order stream (deterministic per seed); quantities are
    # small so stock never runs out — the contention is the point, not
    # out-of-stock handling.
    stream = [
        (n, sampler.sample(rng), rng.randrange(1, 4), rng.uniform(0, 600.0))
        for n in range(ORDERS)
    ]

    def submit_order(n, item, quantity, at):
        def build():
            store = cluster.replicas[n % NUM_SITES].store
            stock = store.read(product(item)).value
            cluster.submit(
                TransactionSpec.make(
                    f"order{n}",
                    home=n % NUM_SITES,
                    read_keys=[product(item)],
                    writes={product(item): stock - quantity},
                ),
                at=cluster.engine.now,
            )

        cluster.engine.schedule_at(at, build)

    start = cluster.engine.now
    for n, item, quantity, offset in stream:
        submit_order(n, item, quantity, start + offset)

    result = cluster.run(
        max_time=5_000_000, stop_when=cluster.await_specs(1 + ORDERS)
    )
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged

    # Application invariants: non-negative stock, and replicas agree on the
    # exact remaining stock of every product.
    remaining = {}
    for replica in cluster.replicas:
        for i in range(NUM_PRODUCTS):
            value = replica.store.read(product(i)).value
            assert value >= 0, f"negative stock for {product(i)}!"
            remaining.setdefault(i, set()).add(value)
    assert all(len(values) == 1 for values in remaining.values())

    committed_orders = sum(
        1
        for name in (f"order{n}" for n in range(ORDERS))
        if cluster.spec_status(name).committed
    )
    sold = ORDERS and sum(
        INITIAL_STOCK - next(iter(remaining[i])) for i in range(NUM_PRODUCTS)
    )
    metrics = result.metrics
    return {
        "protocol": protocol,
        "orders": committed_orders,
        "units_sold": sold,
        "attempts_per_commit": metrics.attempts_per_commit(),
        "aborts": dict(
            (reason.value, count) for reason, count in metrics.aborts_by_reason.items()
        ),
        "p99_latency": metrics.commit_latency(read_only=False).p99,
    }


def main() -> None:
    table = Table(
        ["protocol", "orders ok", "attempts/commit", "p99 latency (ms)", "aborts"],
        title=f"Inventory: {ORDERS} Zipf({HOT_SKEW}) orders on {NUM_PRODUCTS} products",
    )
    for protocol in ("p2p", "rbp", "cbp", "abp"):
        row = run(protocol)
        aborts = ", ".join(f"{k}:{v}" for k, v in sorted(row["aborts"].items())) or "-"
        table.add_row(
            row["protocol"],
            row["orders"],
            row["attempts_per_commit"],
            row["p99_latency"],
            aborts,
        )
    print(table)


if __name__ == "__main__":
    main()
