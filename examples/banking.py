#!/usr/bin/env python3
"""Banking workload: concurrent transfers over a replicated account table.

The motivating scenario for replicated databases: a bank with branches
(sites) that each accept transfers against fully replicated accounts.
Every transfer reads two balances and writes two balances — the canonical
read-modify-write conflict pattern — while auditors run large read-only
sweeps that must never abort or block the tellers for long.

The example checks an end-to-end *application* invariant on top of the
library's 1SR checker: money is conserved — the sum of all balances after
every committed transfer equals the initial total.

Run:  python examples/banking.py [protocol]   (default: cbp)
"""

import sys

from repro import Cluster, ClusterConfig, Table, TransactionSpec

NUM_SITES = 4
NUM_ACCOUNTS = 20
INITIAL_BALANCE = 1000
TRANSFERS = 40


def account(i: int) -> str:
    return f"x{i}"


def main() -> None:
    protocol = sys.argv[1] if len(sys.argv) > 1 else "cbp"
    cluster = Cluster(
        ClusterConfig(
            protocol=protocol,
            num_sites=NUM_SITES,
            num_objects=NUM_ACCOUNTS,
            seed=2024,
        )
    )
    # Fund the accounts with a setup transaction.
    cluster.submit(
        TransactionSpec.make(
            "setup",
            home=0,
            writes={account(i): INITIAL_BALANCE for i in range(NUM_ACCOUNTS)},
        )
    )
    cluster.run(max_time=100000)

    # Tellers at every branch issue transfers concurrently.  Amounts are
    # deterministic functions of the transfer id so reruns are identical.
    rng = cluster.rng.stream("transfers")
    plans = []
    for n in range(TRANSFERS):
        src, dst = rng.sample(range(NUM_ACCOUNTS), 2)
        amount = rng.randrange(1, 50)
        plans.append((n, src, dst, amount))

    # A transfer must be expressed as read-then-write with values computed
    # from the read; our specs carry static values, so we model each
    # transfer as a retried closure: the client reads current balances via
    # a read-only probe and submits the update with computed values.  For
    # the example we instead serialize value computation through the
    # library's retry loop: each attempt re-reads at submission.  The
    # simplest faithful pattern is submit-time computation:
    def submit_transfer(n, src, dst, amount, at):
        def build_and_submit():
            store = cluster.replicas[n % NUM_SITES].store
            src_balance = store.read(account(src)).value
            dst_balance = store.read(account(dst)).value
            cluster.submit(
                TransactionSpec.make(
                    f"transfer{n}",
                    home=n % NUM_SITES,
                    read_keys=[account(src), account(dst)],
                    writes={
                        account(src): src_balance - amount,
                        account(dst): dst_balance + amount,
                    },
                ),
                at=cluster.engine.now,
            )

        cluster.engine.schedule_at(at, build_and_submit)

    # Stagger transfers so most are sequential (bank traffic), with some
    # overlap for realism.  Overlapping transfers computed from stale reads
    # are exactly what the protocols must abort (lost updates!): the
    # certification/NACK/negative-ack machinery protects the invariant.
    at = cluster.engine.now + 10.0
    for n, src, dst, amount in plans:
        submit_transfer(n, src, dst, amount, at)
        at += 40.0

    # Auditors run read-only sweeps concurrently at every site.
    for a in range(NUM_SITES):
        cluster.submit(
            TransactionSpec.make(
                f"audit{a}",
                home=a,
                read_keys=[account(i) for i in range(NUM_ACCOUNTS)],
            ),
            at=cluster.engine.now + 200.0 + a * 300.0,
        )

    expected_specs = 1 + TRANSFERS + NUM_SITES  # setup + transfers + audits
    result = cluster.run(
        max_time=2_000_000, stop_when=cluster.await_specs(expected_specs)
    )
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged, "replicas diverged!"

    # Application invariant: money conserved at every replica.
    expected_total = NUM_ACCOUNTS * INITIAL_BALANCE
    for replica in cluster.replicas:
        total = sum(
            replica.store.read(account(i)).value for i in range(NUM_ACCOUNTS)
        )
        assert total == expected_total, (
            f"site {replica.site}: {total} != {expected_total} — money leaked!"
        )

    # Auditors never aborted (the paper's read-only guarantee).
    assert result.metrics.readonly_abort_count() == 0

    table = Table(["metric", "value"], title=f"Banking on {protocol} ({NUM_SITES} sites)")
    metrics = result.metrics
    table.add_row("committed transfers", metrics.committed_update_count() - 1)
    table.add_row("audits (read-only)", metrics.committed_readonly_count())
    table.add_row("aborted attempts (retried)", len(metrics.aborted))
    table.add_row("attempts per commit", metrics.attempts_per_commit())
    table.add_row("update latency p50 (ms)", metrics.commit_latency(read_only=False).p50)
    table.add_row("update latency p99 (ms)", metrics.commit_latency(read_only=False).p99)
    table.add_row("total messages", result.network_stats["sent"])
    table.add_row("money conserved", f"yes ({expected_total})")
    print(table)
    print()
    print(result.serialization.explain())


if __name__ == "__main__":
    main()
