#!/usr/bin/env python3
"""Using the broadcast stack directly (without the database layer).

The group-communication substrate is a standalone library.  This example
drives the layers one by one on a 4-site simulated network and prints what
each ordering guarantee does and does not promise:

1. reliable broadcast delivers everywhere, in no particular order;
2. causal broadcast never shows an answer before its question;
3. atomic broadcast gives a single agreed order — the same at every site.

Run:  python examples/broadcast_playground.py
"""

from dataclasses import dataclass

from repro.broadcast.causal import CausalBroadcast
from repro.broadcast.reliable import ReliableBroadcast
from repro.broadcast.total import TotalOrderBroadcast
from repro.net.latency import LognormalLatency
from repro.net.network import Network
from repro.net.router import ChannelRouter
from repro.net.transport import ReliableTransport
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RngRegistry

NUM_SITES = 4


@dataclass
class Chat:
    author: int
    text: str
    kind: str = "chat"


def build_stack(stack: str, seed: int = 7):
    engine = SimulationEngine()
    network = Network(
        engine,
        NUM_SITES,
        latency=LognormalLatency(median=2.0, sigma=0.6),
        rng=RngRegistry(seed),
    )
    layers, logs = [], [[] for _ in range(NUM_SITES)]
    for site in range(NUM_SITES):
        transport = ReliableTransport(engine, network, site)
        router = ChannelRouter(transport)
        reliable = ReliableBroadcast(engine, router, site, NUM_SITES)
        if stack == "reliable":
            reliable.set_deliver(
                lambda m, site=site: logs[site].append(m.payload.text)
            )
            layers.append(reliable)
        elif stack == "causal":
            causal = CausalBroadcast(reliable)
            causal.set_deliver(
                lambda m, env, site=site: logs[site].append(env.payload.text)
            )
            layers.append(causal)
        else:
            causal = CausalBroadcast(reliable)
            total = TotalOrderBroadcast(engine, causal)
            total.set_deliver(
                lambda payload, env, idx, site=site: logs[site].append(payload.text)
            )
            layers.append(total)
    return engine, layers, logs


def show(title, logs):
    print(f"\n--- {title} ---")
    for site, log in enumerate(logs):
        print(f"  site {site}: {log}")


def main() -> None:
    # 1. Reliable: everyone gets everything, order varies by site.
    engine, layers, logs = build_stack("reliable")
    for n in range(3):
        layers[n % NUM_SITES].broadcast(Chat(n, f"msg{n}"))
    engine.run(until=100)
    show("reliable broadcast (delivery order may differ per site)", logs)
    assert all(sorted(log) == ["msg0", "msg1", "msg2"] for log in logs)

    # 2. Causal: a reply can never be seen before its question.
    engine, layers, logs = build_stack("causal")

    original = layers[1]._deliver

    def reply_bot(message, envelope):
        original(message, envelope)
        if envelope.payload.text == "anyone here?":
            layers[1].broadcast(Chat(1, "yes, me!"))

    layers[1].set_deliver(reply_bot)
    layers[0].broadcast(Chat(0, "anyone here?"))
    engine.run(until=100)
    show("causal broadcast (question always precedes its answer)", logs)
    for log in logs:
        assert log.index("anyone here?") < log.index("yes, me!")

    # 3. Atomic: one agreed order, identical at every site.
    engine, layers, logs = build_stack("total")
    for n in range(6):
        layers[n % NUM_SITES].broadcast(Chat(n, f"bid{n}"))
    engine.run(until=200)
    show("atomic broadcast (identical order everywhere)", logs)
    assert all(log == logs[0] for log in logs)
    print("\nall ordering guarantees held.")


if __name__ == "__main__":
    main()
