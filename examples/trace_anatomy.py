#!/usr/bin/env python3
"""Anatomy of a commit: sequence diagrams and timelines per protocol.

Runs ONE update transaction under each protocol and prints exactly what
crossed the wire, in order — the fastest way to *see* the difference
between explicit acknowledgments (RBP), implicit acknowledgments (CBP)
and acknowledgment-free certification (ABP):

- the message sequence diagram (who sent what to whom, when);
- the per-site message matrix;
- the transaction's lifecycle timeline.

Run:  python examples/trace_anatomy.py [protocol ...]
"""

import sys

from repro.analysis.sequence import attach_capture, message_matrix, render_sequence
from repro.analysis.timeline import render_timeline
from repro.core.cluster import Cluster, ClusterConfig
from repro.core.transaction import TransactionSpec

NUM_SITES = 3

EXPLANATIONS = {
    "p2p": "point-to-point writes+acks, then centralized prepare/vote/decision",
    "rbp": "broadcast writes, explicit acks back to the home, then the\n"
    "         decentralized 2PC vote storm (every site to every site)",
    "cbp": "ONE write set + ONE commit request; the echo transactions from\n"
    "         other sites double as implicit acknowledgments — no acks exist",
    "abp": "ONE commit request + the sequencer's order assignment; every\n"
    "         site certifies alone, nothing flows back",
}


def anatomize(protocol: str) -> None:
    cluster = Cluster(
        ClusterConfig(
            protocol=protocol,
            num_sites=NUM_SITES,
            seed=99,
            trace=True,
            cbp_heartbeat=None,  # keep the trace clean of null messages
        )
    )
    capture = attach_capture(cluster.network)
    cluster.submit(
        TransactionSpec.make(
            "anatomy", 0, read_keys=["x0", "x1"], writes={"x0": 1, "x1": 2}
        )
    )
    if protocol == "cbp":
        # Without heartbeats, CBP needs real traffic for its implicit
        # acknowledgments: one tiny unrelated update per other site.
        for site in range(1, NUM_SITES):
            cluster.submit(
                TransactionSpec.make(f"echo{site}", site, writes={f"x{5 + site}": 0}),
                at=50.0 * site,
            )
    result = cluster.run(max_time=100000)
    assert result.ok, result.serialization.explain()

    print(f"\n{'=' * 68}\n{protocol.upper()}  —  {EXPLANATIONS[protocol]}\n{'=' * 68}")
    print("\nwire sequence:")
    print(render_sequence(capture.messages, max_lines=40))
    print("\nmessage matrix (row=sender, column=receiver):")
    matrix = message_matrix(capture.messages, NUM_SITES)
    header = "      " + "".join(f"s{dst:<5}" for dst in range(NUM_SITES))
    print(header)
    for src, row in enumerate(matrix):
        print(f"  s{src}  " + "".join(f"{count:<6}" for count in row))
    print("\ntransaction timeline:")
    print(render_timeline(cluster.trace, width=48))


def main() -> None:
    protocols = sys.argv[1:] or ["p2p", "rbp", "cbp", "abp"]
    for protocol in protocols:
        anatomize(protocol)


if __name__ == "__main__":
    main()
