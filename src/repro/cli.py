"""Command-line interface: ``python -m repro <command> ...``.

Commands:

- ``run``      run a closed-loop workload on one protocol and print the
               outcome summary (commits, aborts, latency, messages);
- ``compare``  run the same workload under all four protocols side by side;
- ``sweep``    sweep one parameter (sites | mpl | theta | writes) for one
               or more protocols and print the paper-style table.

Every invocation is deterministic given ``--seed`` and always verifies the
one-copy-serializability and convergence invariants before printing.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Optional, Sequence

from repro.analysis.experiment import ExperimentSweep
from repro.analysis.report import Table
from repro.core.cluster import Cluster, ClusterConfig, ClusterResult
from repro.workload.generator import WorkloadConfig
from repro.workload.runner import ClosedLoopRunner
from repro.workload.scenarios import get_scenario, scenario_names

PROTOCOL_CHOICES = ("rbp", "cbp", "abp", "p2p")

SWEEPABLE = {
    "sites": (2, 4, 8, 12),
    "mpl": (1, 2, 4, 8),
    "theta": (0.0, 0.5, 0.9, 1.2),
    "writes": (1, 2, 4, 8),
}


def build_parser() -> argparse.ArgumentParser:
    """The repro argument parser (exposed for tests and docs tooling)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Using Broadcast Primitives in Replicated "
            "Databases' (Stanoi, Agrawal, El Abbadi, ICDCS 1998)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--sites", type=int, default=4, help="number of replicas")
        p.add_argument("--objects", type=int, default=64, help="database size")
        p.add_argument("--transactions", type=int, default=60)
        p.add_argument("--mpl", type=int, default=6, help="concurrent clients")
        p.add_argument("--reads", type=int, default=2, help="read ops per txn")
        p.add_argument("--writes", type=int, default=2, help="write ops per txn")
        p.add_argument("--readonly", type=float, default=0.0, help="read-only fraction")
        p.add_argument("--theta", type=float, default=0.0, help="Zipf skew")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--heartbeat", type=float, default=25.0, help="CBP null-message interval (ms)")
        p.add_argument("--loss", type=float, default=0.0, help="network loss rate")
        p.add_argument(
            "--scenario",
            choices=scenario_names(),
            default=None,
            help="named workload shape (overrides reads/writes/theta/readonly)",
        )

    run_p = sub.add_parser("run", help="run one protocol")
    run_p.add_argument("protocol", choices=PROTOCOL_CHOICES)
    run_p.add_argument(
        "--timeline",
        action="store_true",
        help="print the per-transaction lifecycle gantt after the run",
    )
    run_p.add_argument(
        "--sequence",
        type=int,
        default=0,
        metavar="N",
        help="print the first N wire messages as a sequence diagram",
    )
    common(run_p)

    compare_p = sub.add_parser("compare", help="all four protocols side by side")
    common(compare_p)

    sweep_p = sub.add_parser("sweep", help="sweep one parameter")
    sweep_p.add_argument("axis", choices=sorted(SWEEPABLE))
    sweep_p.add_argument(
        "--protocols",
        default="rbp,cbp,abp,p2p",
        help="comma-separated protocol list",
    )
    sweep_p.add_argument("--values", default=None, help="comma-separated axis values")
    sweep_p.add_argument(
        "--chart", action="store_true", help="also render ASCII charts per metric"
    )
    sweep_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for the sweep grid (each cell is an independent "
            "deterministic simulation; results are identical to --jobs 1)"
        ),
    )
    common(sweep_p)

    anatomy_p = sub.add_parser(
        "anatomy",
        help="trace one commit: wire sequence diagram + lifecycle timeline",
    )
    anatomy_p.add_argument("protocol", choices=PROTOCOL_CHOICES)
    anatomy_p.add_argument("--sites", type=int, default=3)
    anatomy_p.add_argument("--seed", type=int, default=0)

    return parser


def _run_once(
    protocol: str,
    args: argparse.Namespace,
    _return_cluster: bool = False,
    **overrides: Any,
):
    params: dict[str, Any] = dict(
        protocol=protocol,
        num_sites=args.sites,
        num_objects=args.objects,
        seed=args.seed,
        cbp_heartbeat=args.heartbeat,
        loss_rate=args.loss,
    )
    if getattr(args, "scenario", None):
        scenario = get_scenario(args.scenario)
        base = scenario.for_sites(args.sites)
        workload_params: dict[str, Any] = dict(
            num_objects=base.num_objects,
            num_sites=base.num_sites,
            read_ops=base.read_ops,
            write_ops=base.write_ops,
            readonly_fraction=base.readonly_fraction,
            readonly_read_ops=base.readonly_read_ops,
            zipf_theta=base.zipf_theta,
        )
        params["num_objects"] = base.num_objects
    else:
        workload_params = dict(
            num_objects=args.objects,
            num_sites=args.sites,
            read_ops=args.reads,
            write_ops=args.writes,
            readonly_fraction=args.readonly,
            zipf_theta=args.theta,
        )
    mpl = overrides.pop("mpl", args.mpl)
    for key, value in overrides.items():
        if key in params:
            params[key] = value
        if key in workload_params:
            workload_params[key] = value
    params["num_objects"] = max(
        params["num_objects"],
        workload_params["read_ops"] + workload_params["write_ops"],
    )
    workload_params["num_objects"] = params["num_objects"]
    if overrides.pop("trace", False):
        params["trace"] = True
    cluster = Cluster(ClusterConfig(**params))
    if getattr(args, "sequence", 0):
        from repro.analysis.sequence import attach_capture

        cluster._cli_capture = attach_capture(cluster.network)
    runner = ClosedLoopRunner(
        cluster,
        WorkloadConfig(**workload_params),
        mpl=min(mpl, args.transactions),
        transactions=args.transactions,
    )
    runner.start()
    result = cluster.run(max_time=10_000_000.0)
    if not result.serialization.ok:
        raise SystemExit(f"INVARIANT VIOLATION: {result.serialization.explain()}")
    if not result.converged:
        raise SystemExit("INVARIANT VIOLATION: replicas diverged")
    if _return_cluster:
        return result, cluster
    return result


def _summary_row(protocol: str, result: ClusterResult) -> list[Any]:
    metrics = result.metrics
    return [
        protocol,
        result.committed_specs,
        len(metrics.aborted),
        metrics.attempts_per_commit(),
        metrics.commit_latency(read_only=False).p50,
        metrics.commit_latency(read_only=False).p99,
        result.network_stats["sent"],
    ]


SUMMARY_COLUMNS = [
    "protocol",
    "commits",
    "aborted attempts",
    "attempts/commit",
    "p50 lat (ms)",
    "p99 lat (ms)",
    "messages",
]


def cmd_run(args: argparse.Namespace) -> int:
    """``repro run <protocol>``: one workload, one protocol, full summary."""
    extras = {}
    if args.timeline:
        extras["trace"] = True
    capture_n = args.sequence
    result, cluster = _run_once(args.protocol, args, _return_cluster=True, **extras)
    table = Table(SUMMARY_COLUMNS, title=f"repro run: {args.protocol}")
    table.add_row(*_summary_row(args.protocol, result))
    print(table)
    print()
    print(result.serialization.explain())
    if args.timeline:
        from repro.analysis.timeline import render_timeline

        print()
        print(render_timeline(cluster.trace))
    if capture_n:
        from repro.analysis.sequence import render_sequence

        print()
        print(render_sequence(cluster._cli_capture.messages, max_lines=capture_n))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """``repro compare``: the same workload under all four protocols."""
    table = Table(SUMMARY_COLUMNS, title="repro compare")
    for protocol in PROTOCOL_CHOICES:
        result = _run_once(protocol, args)
        table.add_row(*_summary_row(protocol, result))
    print(table)
    return 0


class _SweepScenario:
    """Picklable sweep cell runner (``--jobs`` sends it to worker processes,
    so it must be a module-level class, not a closure)."""

    def __init__(self, args: argparse.Namespace, axis_override: str):
        self.args = args
        self.axis_override = axis_override

    def __call__(self, protocol: str, parameter: Any, seed: int) -> dict[str, float]:
        result = _run_once(protocol, self.args, **{self.axis_override: parameter})
        return {
            "p50 latency (ms)": result.metrics.commit_latency(read_only=False).p50,
            "messages/commit": (
                result.network_stats["sent"] / max(result.committed_specs, 1)
            ),
            "attempts/commit": result.metrics.attempts_per_commit(),
        }


def cmd_sweep(args: argparse.Namespace) -> int:
    """``repro sweep <axis>``: paper-style tables over one parameter."""
    protocols = [p.strip() for p in args.protocols.split(",") if p.strip()]
    unknown = [p for p in protocols if p not in PROTOCOL_CHOICES]
    if unknown:
        raise SystemExit(f"unknown protocols: {unknown}")
    if args.values:
        raw = [v.strip() for v in args.values.split(",")]
        cast = int if args.axis in ("sites", "mpl", "writes") else float
        values: Sequence[Any] = [cast(v) for v in raw]
    else:
        values = SWEEPABLE[args.axis]

    axis_override = {
        "sites": "num_sites",
        "mpl": "mpl",
        "theta": "zipf_theta",
        "writes": "write_ops",
    }[args.axis]

    sweep = ExperimentSweep(
        name=f"sweep {args.axis}",
        scenario=_SweepScenario(args, axis_override),
        parameters=values,
        protocols=protocols,
        seeds=(args.seed,),
    ).run(
        progress=lambda line: print(f"  {line}", file=sys.stderr),
        jobs=getattr(args, "jobs", 1),
    )
    print(sweep.render_all(parameter_label=args.axis))
    if args.chart:
        from repro.analysis.charts import chart_sweep

        for metric in sweep.metrics():
            print()
            print(chart_sweep(sweep, metric))
    return 0


def cmd_anatomy(args: argparse.Namespace) -> int:
    """``repro anatomy <protocol>``: one traced commit, fully dissected."""
    from repro.analysis.sequence import attach_capture, render_sequence
    from repro.analysis.timeline import render_timeline
    from repro.core.transaction import TransactionSpec

    cluster = Cluster(
        ClusterConfig(
            protocol=args.protocol,
            num_sites=args.sites,
            seed=args.seed,
            trace=True,
            cbp_heartbeat=None,
        )
    )
    capture = attach_capture(cluster.network)
    cluster.submit(
        TransactionSpec.make(
            "anatomy", 0, read_keys=["x0", "x1"], writes={"x0": 1, "x1": 2}
        )
    )
    if args.protocol == "cbp":
        for site in range(1, args.sites):
            cluster.submit(
                TransactionSpec.make(f"echo{site}", site, writes={f"x{5 + site}": 0}),
                at=50.0 * site,
            )
    result = cluster.run(max_time=100_000.0)
    if not result.ok:
        raise SystemExit(f"INVARIANT VIOLATION: {result.serialization.explain()}")
    print(f"{args.protocol.upper()} — wire sequence:")
    print(render_sequence(capture.messages, max_lines=40))
    print()
    print("lifecycle timeline:")
    print(render_timeline(cluster.trace, width=48))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": cmd_run,
        "compare": cmd_compare,
        "sweep": cmd_sweep,
        "anatomy": cmd_anatomy,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
