"""ASCII line charts for sweep results.

Terminal-friendly rendering of the paper-style series (latency vs sites,
throughput vs mpl, ...): one glyph per protocol, log-friendly scaling and
axis labels, no plotting dependencies.

    chart = AsciiChart(title="latency vs sites", width=48, height=12)
    chart.add_series("rbp", xs, rbp_values)
    chart.add_series("abp", xs, abp_values)
    print(chart.render())
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

GLYPHS = "ox+*#@%&"


@dataclass
class _Series:
    name: str
    xs: list[float]
    ys: list[float]
    glyph: str


@dataclass
class AsciiChart:
    """A scatter/line chart rendered with terminal characters."""

    title: str = ""
    width: int = 56
    height: int = 14
    log_y: bool = False
    series: list[_Series] = field(default_factory=list)

    def add_series(
        self, name: str, xs: Sequence[float], ys: Sequence[float]
    ) -> "AsciiChart":
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal length")
        if not xs:
            raise ValueError("series must not be empty")
        glyph = GLYPHS[len(self.series) % len(GLYPHS)]
        self.series.append(_Series(name, list(xs), list(ys), glyph))
        return self

    # -- rendering ---------------------------------------------------------------

    def render(self) -> str:
        if not self.series:
            return "(empty chart)"
        xs_all = [x for s in self.series for x in s.xs]
        ys_all = [self._transform(y) for s in self.series for y in s.ys]
        x_low, x_high = min(xs_all), max(xs_all)
        y_low, y_high = min(ys_all), max(ys_all)
        x_span = (x_high - x_low) or 1.0
        y_span = (y_high - y_low) or 1.0

        grid = [[" "] * self.width for _ in range(self.height)]
        for s in self.series:
            for x, y in zip(s.xs, s.ys):
                column = round((x - x_low) / x_span * (self.width - 1))
                row = round(
                    (self.height - 1)
                    - (self._transform(y) - y_low) / y_span * (self.height - 1)
                )
                grid[row][column] = s.glyph

        top_label = self._format(self._untransform(y_high))
        bottom_label = self._format(self._untransform(y_low))
        label_width = max(len(top_label), len(bottom_label))
        lines = []
        if self.title:
            lines.append(self.title)
        for index, row in enumerate(grid):
            if index == 0:
                label = top_label.rjust(label_width)
            elif index == self.height - 1:
                label = bottom_label.rjust(label_width)
            else:
                label = " " * label_width
            lines.append(f"{label} |{''.join(row)}|")
        x_axis = (
            " " * label_width
            + " +"
            + "-" * self.width
            + "+"
        )
        lines.append(x_axis)
        x_labels = (
            " " * label_width
            + "  "
            + self._format(x_low).ljust(self.width - len(self._format(x_high)))
            + self._format(x_high)
        )
        lines.append(x_labels)
        legend = "   ".join(f"{s.glyph}={s.name}" for s in self.series)
        lines.append(" " * label_width + "  " + legend)
        return "\n".join(lines)

    # -- internals ----------------------------------------------------------------

    def _transform(self, y: float) -> float:
        if self.log_y:
            return math.log10(max(y, 1e-12))
        return y

    def _untransform(self, y: float) -> float:
        if self.log_y:
            return 10**y
        return y

    @staticmethod
    def _format(value: float) -> str:
        if value == int(value) and abs(value) < 10_000:
            return str(int(value))
        if abs(value) >= 100:
            return f"{value:.0f}"
        return f"{value:.2f}"


def chart_sweep(sweep, metric: str, log_y: bool = False, **chart_kwargs) -> str:
    """Render one metric of an :class:`~repro.analysis.experiment.ExperimentSweep`."""
    chart = AsciiChart(title=f"{sweep.name}: {metric}", log_y=log_y, **chart_kwargs)
    xs: list[float] = [float(p) for p in sweep.parameters]
    for protocol in sweep.protocols:
        chart.add_series(protocol, xs, sweep.series(protocol, metric))
    return chart.render()
