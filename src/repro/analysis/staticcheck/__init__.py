"""detcheck: AST-based determinism & protocol-invariant linter.

The simulation's comparative claims (message cost, ack elimination, abort
behaviour of RBP/CBP/ABP) rest on runs being bit-identical across repeats
and across ``run_sweep(jobs=N)`` workers.  That property is carried by
conventions — injected ``repro.sim.rng`` streams, sorted iteration before
protocol decisions, epoch-tokened timers, slotted and size-registered wire
payloads — and this package is the machine check for them.

Usage::

    python -m repro.analysis.staticcheck src scripts benchmarks
    python -m repro.analysis.staticcheck --list-rules
    python -m repro.analysis.staticcheck --select D --format json src

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue.
"""

from repro.analysis.staticcheck.callgraph import CallGraph, build_callgraph
from repro.analysis.staticcheck.checker import check_paths, parse_suppressions
from repro.analysis.staticcheck.cli import main
from repro.analysis.staticcheck.dataflow import FunctionFlow
from repro.analysis.staticcheck.findings import Baseline, Finding, Rule
from repro.analysis.staticcheck.rules import ALL_RULE_IDS, RULES, check_module

__all__ = [
    "ALL_RULE_IDS",
    "Baseline",
    "CallGraph",
    "Finding",
    "FunctionFlow",
    "RULES",
    "Rule",
    "build_callgraph",
    "check_module",
    "check_paths",
    "main",
    "parse_suppressions",
]
