"""Command-line interface: ``python -m repro.analysis.staticcheck``.

Exit codes: 0 clean (only suppressed/baselined findings), 1 new findings,
2 bad usage or unparseable checked file.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
from typing import Optional, Sequence

from repro.analysis.staticcheck.checker import check_paths
from repro.analysis.staticcheck.findings import Baseline
from repro.analysis.staticcheck.rules import ALL_RULE_IDS, RULES

DEFAULT_BASELINE = "detcheck-baseline.json"


def _expand_rule_spec(spec: str) -> set[str]:
    """``"D103,P"`` -> {"D103", every P rule}."""
    selected: set[str] = set()
    for token in spec.split(","):
        token = token.strip().upper()
        if not token:
            continue
        if token in RULES:
            selected.add(token)
        elif token in ("D", "P", "S", "H"):
            selected |= {r for r in ALL_RULE_IDS if r.startswith(token)}
        else:
            raise ValueError(f"unknown rule or family: {token!r}")
    return selected


def _git_lines(*argv: str) -> list[str]:
    out = subprocess.run(
        ["git", *argv], check=True, capture_output=True, text=True
    ).stdout
    return [line for line in out.splitlines() if line.strip()]


def _resolve_ref(ref: str) -> str:
    """``ref`` if it resolves, else ``main``, else ``HEAD``.

    The fallbacks keep ``--changed`` useful in clones without an ``origin``
    remote (the default ref) and in CI shallow checkouts.
    """
    for candidate in (ref, "main", "HEAD"):
        probe = subprocess.run(
            ["git", "rev-parse", "--verify", "--quiet", f"{candidate}^{{commit}}"],
            capture_output=True,
            text=True,
        )
        if probe.returncode == 0:
            return candidate
    raise subprocess.CalledProcessError(1, ["git", "rev-parse", ref])


def _changed_files(
    paths: Sequence[pathlib.Path], ref: str
) -> list[pathlib.Path]:
    """Python files changed vs ``ref`` (plus untracked), under ``paths``."""
    resolved = _resolve_ref(ref)
    names = _git_lines(
        "diff", "--name-only", "--diff-filter=d", resolved, "--", "*.py"
    )
    names += _git_lines(
        "ls-files", "--others", "--exclude-standard", "--", "*.py"
    )
    roots = [p.resolve() for p in paths]
    selected: list[pathlib.Path] = []
    for name in sorted(set(names)):
        candidate = pathlib.Path(name)
        if not candidate.exists():
            continue
        resolved_path = candidate.resolve()
        for root in roots:
            if resolved_path == root or root in resolved_path.parents:
                selected.append(candidate)
                break
    return selected


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="detcheck",
        description="AST-based determinism & protocol-invariant linter",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    parser.add_argument(
        "--select", help="comma-separated rule ids or families (D, P, S, H)"
    )
    parser.add_argument("--ignore", help="comma-separated rule ids or families to skip")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore any baseline file"
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather every current finding into the baseline and exit 0",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only python files changed vs a git ref (plus untracked "
        "ones), restricted to the given paths",
    )
    parser.add_argument(
        "--changed-ref",
        default="origin/main",
        metavar="REF",
        help="git ref --changed diffs against (default: origin/main, falling "
        "back to main, then HEAD, when the ref does not resolve)",
    )
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="also print suppressed findings"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in ALL_RULE_IDS:
            rule = RULES[rule_id]
            print(f"{rule.id}  {rule.name:<22} {rule.summary}")
        return 0

    enabled = set(ALL_RULE_IDS)
    try:
        if args.select:
            enabled = _expand_rule_spec(args.select)
        if args.ignore:
            enabled -= _expand_rule_spec(args.ignore)
    except ValueError as exc:
        parser.error(str(exc))
    enabled.add("E001")  # parse errors always fire

    paths = [pathlib.Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(map(str, missing))}")

    if args.changed:
        try:
            paths = _changed_files(paths, args.changed_ref)
        except (OSError, subprocess.CalledProcessError) as exc:
            print(f"detcheck: --changed requires a git checkout: {exc}")
            return 2
        if not paths:
            print("detcheck: no changed python files under the given paths")
            return 0

    baseline: Optional[Baseline] = None
    baseline_path = args.baseline
    if not args.no_baseline and not args.write_baseline:
        if baseline_path is None:
            candidate = pathlib.Path(DEFAULT_BASELINE)
            baseline_path = candidate if candidate.exists() else None
        if baseline_path is not None:
            try:
                baseline = Baseline.load(baseline_path)
            except (OSError, ValueError, KeyError) as exc:
                print(f"detcheck: cannot read baseline {baseline_path}: {exc}")
                return 2

    findings = check_paths(paths, enabled=enabled, baseline=baseline)

    if args.write_baseline:
        target = args.baseline or pathlib.Path(DEFAULT_BASELINE)
        count = Baseline.write(target, findings)
        print(f"detcheck: wrote {count} grandfathered finding(s) to {target}")
        return 0

    parse_errors = [f for f in findings if f.rule.id == "E001"]
    new = [f for f in findings if f.is_new]
    shown = findings if args.verbose else new

    if args.fmt == "json":
        print(
            json.dumps(
                {
                    "findings": [f.to_json() for f in shown],
                    "counts": {
                        "total": len(findings),
                        "new": len(new),
                        "suppressed": sum(1 for f in findings if f.suppressed),
                        "baselined": sum(1 for f in findings if f.baselined),
                    },
                    "stale_baseline": baseline.stale_entries() if baseline else [],
                },
                indent=2,
            )
        )
    else:
        for finding in shown:
            print(finding.render())
        if baseline is not None:
            for entry in baseline.stale_entries():
                print(
                    f"detcheck: stale baseline entry {entry['rule']} "
                    f"{entry['path']} ({entry['fingerprint']}) — finding fixed; "
                    "regenerate with --write-baseline"
                )
        summary = (
            f"detcheck: {len(findings)} finding(s): {len(new)} new, "
            f"{sum(1 for f in findings if f.suppressed)} suppressed, "
            f"{sum(1 for f in findings if f.baselined)} baselined"
        )
        print(summary)

    if parse_errors:
        return 2
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
