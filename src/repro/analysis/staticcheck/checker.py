"""File discovery, inline suppressions, and check orchestration.

Suppression syntax (in comments):

- ``# detcheck: ignore[D103]`` — suppress the listed rules on this line
  (or on the line directly below, when the comment stands alone);
- ``# detcheck: ignore[D103,P201] -- justification`` — same, with a note;
- ``# detcheck: ignore`` — suppress every rule on this line;
- ``# detcheck: file-ignore[D102]`` — suppress the listed rules for the
  whole file (used by the perf harness, whose entire point is wall-clock).

A suppressed finding still appears in ``--verbose`` output but never fails
the run and is never written to a baseline.
"""

from __future__ import annotations

import pathlib
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from typing import Iterable, Optional, Sequence

from repro.analysis.staticcheck.findings import (
    Baseline,
    Finding,
    fingerprint_findings,
)
from repro.analysis.staticcheck.rules import ALL_RULE_IDS, RULES, check_module

_PRAGMA = re.compile(
    r"#\s*detcheck:\s*(?P<scope>file-ignore|ignore)"
    r"(?:\[(?P<rules>[A-Z]\d+(?:\s*,\s*[A-Z]\d+)*)\])?"
)

#: Directories whose modules form the protocol layer (P204's scope).
_PROTOCOL_LAYER = ("repro/core/", "repro/baselines/")

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "fixtures"}


@dataclass
class Suppressions:
    """Per-file suppression table extracted from comments."""

    by_line: dict[int, Optional[set[str]]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)
    #: Lines holding a comment and nothing else; their pragmas also cover
    #: the statement below, so a pragma can sit anywhere in the block of
    #: comment lines (typically justification prose) above a long statement.
    standalone: set[int] = field(default_factory=set)
    #: Every comment-only line (pragma or not), for walking comment blocks.
    comment_only: set[int] = field(default_factory=set)

    def _line_covers(self, candidate: int, rule_id: str) -> bool:
        rules = self.by_line.get(candidate, _MISSING)
        if rules is _MISSING:
            return False
        return rules is None or rule_id in rules

    def covers(self, line: int, rule_id: str) -> bool:
        if rule_id in self.file_wide:
            return True
        if self._line_covers(line, rule_id):  # trailing comment
            return True
        candidate = line - 1
        while candidate in self.comment_only:
            if candidate in self.standalone and self._line_covers(candidate, rule_id):
                return True
            candidate -= 1
        return False


_MISSING: object = object()


def parse_suppressions(source: str) -> Suppressions:
    table = Suppressions()
    code_lines: set[int] = set()
    comment_lines: set[int] = set()
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return table
    for token in tokens:
        if token.type == tokenize.COMMENT:
            comment_lines.add(token.start[0])
            match = _PRAGMA.search(token.string)
            if not match:
                continue
            rules = match.group("rules")
            rule_set = (
                {r.strip() for r in rules.split(",")} if rules else None
            )
            if match.group("scope") == "file-ignore":
                table.file_wide |= rule_set if rule_set else set(RULES)
            else:
                line = token.start[0]
                existing = table.by_line.get(line, _MISSING)
                if existing is _MISSING:
                    table.by_line[line] = rule_set
                elif existing is None or rule_set is None:
                    table.by_line[line] = None
                else:
                    table.by_line[line] = existing | rule_set
        elif token.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            code_lines.add(token.start[0])
    table.standalone = set(table.by_line) - code_lines
    table.comment_only = comment_lines - code_lines
    return table


def iter_python_files(paths: Sequence[pathlib.Path]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.append(path)
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    files.append(sub)
    return sorted(set(files))


def relative_posix(path: pathlib.Path, root: pathlib.Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def check_paths(
    paths: Sequence[pathlib.Path],
    enabled: Optional[Iterable[str]] = None,
    root: Optional[pathlib.Path] = None,
    baseline: Optional[Baseline] = None,
) -> list[Finding]:
    """Check every python file under ``paths``; returns all findings.

    Suppression and baseline state is already applied: callers decide pass
    or fail from ``Finding.is_new``.
    """
    root = root or pathlib.Path.cwd()
    enabled_set = set(enabled) if enabled is not None else set(ALL_RULE_IDS)
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        rel = relative_posix(file_path, root)
        source = file_path.read_text(encoding="utf-8")
        protocol_layer = any(marker in rel for marker in _PROTOCOL_LAYER)
        file_findings = check_module(source, rel, enabled_set, protocol_layer)
        suppressions = parse_suppressions(source)
        for finding in file_findings:
            if suppressions.covers(finding.line, finding.rule.id):
                finding.suppressed = True
        findings.extend(file_findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule.id))
    fingerprint_findings(findings)
    if baseline is not None:
        baseline.apply(findings)
    return findings
