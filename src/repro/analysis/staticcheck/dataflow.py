"""Intraprocedural data-flow pass for membership-derived values.

The scaling rules care about one thing: which expressions in a handler body
are *n-proportional* — they grow with cluster membership.  This pass tracks
taint from the membership sources the tree actually uses:

- ``self.view_members`` / ``view.members`` / ``self.group`` /
  ``self.active_sites`` — the view-derived collections,
- ``self.other_members()`` — the fan-out helper,
- ``range(... num_sites ...)`` — index-space iteration over all sites,
- plus anything flowing out of those through materializers
  (``set``/``sorted``/``list``/``tuple``/``frozenset``), comprehensions,
  set algebra, and simple local assignment.

The pass is flow-insensitive within a function (two fixpoint sweeps handle
forward chains like ``a = members; b = set(a)``), which over-approximates:
a local once bound to a membership value stays tainted.  That is the right
bias for scaling rules — re-binding a tainted name to something small is
rare in handler bodies, and a false "n-proportional" is a reviewable
finding while a false "constant" is a silent O(n) regression.

Loop *targets* are deliberately not tainted: ``for m in self.view_members``
binds one member, not a collection.
"""

from __future__ import annotations

import ast

#: Attribute names that denote membership/view-derived collections wherever
#: they appear (``self.view_members``, ``view.members``, ``self.group``).
MEMBERSHIP_ATTRS = {
    "view_members",
    "members",
    "group",
    "active_sites",
}
#: Method calls returning membership-derived collections.
MEMBERSHIP_CALLS = {"other_members"}
#: Names whose presence inside a ``range(...)`` call makes the range
#: n-proportional (``range(self.num_sites)``).
SIZE_NAMES = {"num_sites", "n_sites", "cluster_size"}

MATERIALIZERS = {"set", "sorted", "list", "tuple", "frozenset", "dict"}


def is_membership_source(node: ast.AST) -> bool:
    """True for an expression that *directly* denotes a membership collection."""
    if isinstance(node, ast.Attribute) and node.attr in MEMBERSHIP_ATTRS:
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MEMBERSHIP_CALLS:
            return True
        if isinstance(func, ast.Name) and func.id == "range":
            for sub in ast.walk(node):
                if isinstance(sub, ast.Attribute) and sub.attr in SIZE_NAMES:
                    return True
                if isinstance(sub, ast.Name) and sub.id in SIZE_NAMES:
                    return True
    return False


class FunctionFlow:
    """Membership taint for the locals of a single function."""

    def __init__(self, funcdef: ast.FunctionDef):
        self.funcdef = funcdef
        self.tainted: set[str] = set()
        self._loop_targets: set[str] = set()
        self._collect_loop_targets()
        # Two sweeps reach a fixpoint for forward assignment chains; handler
        # bodies are short and straight-line enough that deeper chains do
        # not occur in practice.
        for _ in range(2):
            self._sweep()

    def _collect_loop_targets(self) -> None:
        for node in ast.walk(self.funcdef):
            targets: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                targets.append(node.target)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                targets.extend(gen.target for gen in node.generators)
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        self._loop_targets.add(sub.id)

    def _sweep(self) -> None:
        for node in ast.walk(self.funcdef):
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            elif isinstance(node, ast.AugAssign):
                value, targets = node.value, [node.target]
            else:
                continue
            if not self.is_n_proportional(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    self.tainted.add(target.id)

    # -- queries -------------------------------------------------------------

    def is_tainted_name(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Name)
            and node.id in self.tainted
            # A name that is also a member-loop target binds single members
            # at its use sites more often than not; keep the safe side.
            and node.id not in self._loop_targets
        )

    def is_n_proportional(self, node: ast.AST) -> bool:
        """Does ``node`` evaluate to a membership-proportional collection?"""
        if is_membership_source(node):
            return True
        if self.is_tainted_name(node):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in MATERIALIZERS and node.args:
                return self.is_n_proportional(node.args[0])
            if isinstance(func, ast.Attribute) and func.attr in (
                "union", "intersection", "difference", "copy"
            ):
                return self.is_n_proportional(func.value)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_n_proportional(node.left) or self.is_n_proportional(node.right)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            return any(self.is_n_proportional(gen.iter) for gen in node.generators)
        return False

    def is_derived(self, node: ast.AST) -> bool:
        """n-proportional via a *tainted local*, not via a direct source.

        This is the S301/S304 split: materializing ``self.view_members``
        itself is S301; allocating yet another temporary from an already
        materialized local is S304.
        """
        return self.is_n_proportional(node) and not mentions_source(node)


def mentions_source(node: ast.AST) -> bool:
    """Does any subexpression of ``node`` directly denote a membership source?"""
    return any(is_membership_source(sub) for sub in ast.walk(node))
