"""H-series rules: handler-safety hazards (H401–H403).

These are flow-sensitive checks over the handler entry points the call graph
discovers — the bug classes behind PR 2's stale-query-timer fix and PR 4's
recovery-window clobber, generalized from their one-off fixes:

- **H401** — a timer callback must establish that its firing is still
  relevant *before* mutating protocol state.  P203 only asks whether a
  guard exists somewhere near the top; H401 orders every mutation against
  the first guard and flags state writes that precede it (or callbacks
  with mutations and no guard at all).  Metric counters
  (``self.x += 1``-style constant increments) are exempt: a stale count
  bump is observability noise, not protocol damage.
- **H402** — under synchronous local delivery (a handler calling a peer
  handler directly, or zero-delay self-dispatch) a send can re-enter the
  sender's own class before the next statement runs.  A handler that reads
  state, sends, and *then* mutates that same state has a re-entrancy
  window where the re-entrant handler observes the pre-mutation value.
  Complete the transition first, send last.
- **H403** — the PR 4 bug class: state installed while a recovery/state
  transfer is in flight gets clobbered by the stale snapshot.  Any message
  entry point whose reachable call set performs a durable install
  (``install_writes``/``install_snapshot``/``adopt_protocol_state``/
  ``store.install``) must show deferral evidence somewhere on that path —
  a ``recovering`` check or a backlog queue — as ReliableBroadcastProtocol
  does.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.staticcheck.callgraph import MESSAGE, TIMER, CallGraph
from repro.analysis.staticcheck.scaling_rules import _own_nodes

#: Collection mutator methods that count as state writes on their receiver.
_MUTATOR_METHODS = {
    "append",
    "appendleft",
    "add",
    "discard",
    "remove",
    "pop",
    "popleft",
    "clear",
    "update",
    "extend",
    "insert",
    "setdefault",
}
_SEND_CALLS = {"send", "multicast", "broadcast", "broadcast_causal"}
_DURABLE_INSTALLERS = {"install_writes", "install_snapshot", "adopt_protocol_state"}


def _self_attr_root(node: ast.expr) -> Optional[str]:
    """For ``self.x``, ``self.x.y``, ``self.x[k]`` return ``"x"``."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        owner = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(owner, ast.Name)
            and owner.id == "self"
        ):
            return node.attr
        node = owner
    return None


def _is_counter_bump(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.AugAssign)
        and isinstance(node.op, (ast.Add, ast.Sub))
        and isinstance(node.value, ast.Constant)
        and isinstance(node.value.value, (int, float))
    )


def _mutations(funcdef: ast.FunctionDef) -> list[tuple[int, str, ast.AST]]:
    """(lineno, attr, node) for every protocol-state write in ``funcdef``."""
    found: list[tuple[int, str, ast.AST]] = []
    for node in _own_nodes(funcdef):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            if _is_counter_bump(node):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                attr = _self_attr_root(target)
                if attr is not None:
                    found.append((node.lineno, attr, node))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _self_attr_root(target)
                if attr is not None:
                    found.append((node.lineno, attr, node))
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
        ):
            attr = _self_attr_root(node.func.value)
            if attr is not None:
                found.append((node.lineno, attr, node))
    return sorted(found, key=lambda item: item[0])


class HandlerChecker:
    """Emit H401–H403 through the host ModuleChecker's finding machinery."""

    def __init__(self, checker, graph: CallGraph):
        self.checker = checker
        self.graph = graph

    def run(self) -> None:
        for funcdef in self.graph.entries(TIMER):
            self._check_timer_guard_order(funcdef)
        for funcdef in self.graph.functions.values():
            if self.graph.is_message_hot(funcdef):
                self._check_send_then_mutate(funcdef)
        for funcdef in self.graph.entries(MESSAGE):
            self._check_recovery_window(funcdef)

    # -- H401: mutation ordered against the staleness guard --------------------

    def _check_timer_guard_order(self, funcdef: ast.FunctionDef) -> None:
        guard_line, guard_ifs = self._find_guards(funcdef)
        guarded_nodes = {
            id(sub) for guard in guard_ifs for sub in ast.walk(guard)
        }
        for lineno, attr, node in _mutations(funcdef):
            if id(node) in guarded_nodes:
                continue  # cleanup inside the staleness check itself
            if guard_line is not None and lineno > guard_line:
                continue
            self.checker._emit(
                "H401",
                node,
                f"timer callback {funcdef.name}() mutates self.{attr} "
                + (
                    "before its staleness guard"
                    if guard_line is not None
                    else "and has no staleness guard at all"
                )
                + "; a stale firing corrupts live state",
            )
            return  # first offending mutation is enough per callback

    def _find_guards(
        self, funcdef: ast.FunctionDef
    ) -> tuple[Optional[int], list[ast.If]]:
        """First guard line + the guard ``If`` statements themselves.

        Guards are (a) any ``If`` whose subtree returns/raises — the
        re-check-then-bail shape — and (b) any comparison involving an
        epoch/attempt/token parameter (the PR 2 idiom).
        """
        from repro.analysis.staticcheck.rules import _TOKEN_PARAM

        guard_ifs: list[ast.If] = []
        candidates: list[int] = []
        for node in _own_nodes(funcdef):
            if isinstance(node, ast.If) and any(
                isinstance(sub, (ast.Return, ast.Raise)) for sub in ast.walk(node)
            ):
                guard_ifs.append(node)
                candidates.append(node.lineno)
        token_params = {
            arg.arg
            for arg in list(funcdef.args.args) + list(funcdef.args.kwonlyargs)
            if _TOKEN_PARAM.search(arg.arg)
        }
        if token_params:
            for node in _own_nodes(funcdef):
                if isinstance(node, ast.Compare) and any(
                    isinstance(sub, ast.Name) and sub.id in token_params
                    for sub in ast.walk(node)
                ):
                    candidates.append(node.lineno)
        return (min(candidates) if candidates else None), guard_ifs

    # -- H402: read -> send -> mutate re-entrancy window ------------------------

    def _check_send_then_mutate(self, funcdef: ast.FunctionDef) -> None:
        reads: list[tuple[int, str]] = []
        sends: list[int] = []
        for node in _own_nodes(funcdef):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                reads.append((node.lineno, node.attr))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SEND_CALLS
                and _self_attr_root(node.func.value) is not None
            ):
                sends.append(node.lineno)
        if not sends:
            return
        for lineno, attr, node in _mutations(funcdef):
            # Strict ordering: some send line between the read and the
            # mutation, and the read is not part of the mutation itself.
            for send_line in sends:
                if send_line >= lineno:
                    continue
                if any(
                    read_line < send_line
                    for read_line, read_attr in reads
                    if read_attr == attr
                ):
                    self.checker._emit(
                        "H402",
                        node,
                        f"handler {funcdef.name}() mutates self.{attr} after a "
                        "send that follows a read of the same state; synchronous "
                        "local delivery can re-enter between them",
                    )
                    return

    # -- H403: durable installs inside the recovery window ----------------------

    def _check_recovery_window(self, funcdef: ast.FunctionDef) -> None:
        reachable = self.graph.reachable_from(funcdef)
        install_site: Optional[tuple[str, str]] = None  # (function, call text)
        for func in reachable:
            for node in _own_nodes(func):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                ):
                    continue
                attr = node.func.attr
                owner = node.func.value
                if attr in _DURABLE_INSTALLERS or (
                    attr == "install"
                    and isinstance(owner, ast.Attribute)
                    and owner.attr == "store"
                ):
                    install_site = (func.name, attr)
                    break
            if install_site:
                break
        if install_site is None:
            return
        for func in reachable:
            for node in ast.walk(func):
                if isinstance(node, ast.Attribute) and node.attr == "recovering":
                    return
                if isinstance(node, (ast.Attribute, ast.Name)):
                    name = node.attr if isinstance(node, ast.Attribute) else node.id
                    if "backlog" in name:
                        return
        self.checker._emit(
            "H403",
            funcdef,
            f"message handler {funcdef.name}() reaches a durable install "
            f"({install_site[0]}() calls {install_site[1]}) with no recovery-"
            "window deferral on the path (the PR 4 stale-snapshot clobber class)",
        )


def run_handler_rules(checker, graph: CallGraph) -> None:
    HandlerChecker(checker, graph).run()
