"""Entry point for ``python -m repro.analysis.staticcheck``."""

import sys

from repro.analysis.staticcheck.cli import main

if __name__ == "__main__":
    sys.exit(main())
