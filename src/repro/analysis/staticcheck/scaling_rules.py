"""S-series rules: hot-path scaling hazards (S301–S304).

These rules combine the module call graph (entry points -> reachability) with
the membership data-flow pass: an O(n) member-set build is fine at view
install time and a scaling bug inside a per-message handler.  They encode the
PR 6 manual audit — commit tallies rebuilding ``set(self.view_members)`` per
ack, per-destination envelope re-sizing, per-send ``estimate_size`` on tiny
payloads — as permanent checks.

The O(1) *length-guard* idiom that audit introduced is recognised and
exempted, in both shapes the tree uses::

    # (a) short-circuit guard: the set build only runs on the final ack
    if len(round_.acks) >= len(self.view_members) and \
            round_.acks >= set(self.view_members):

    # (b) early-return guard: the handler bails before materializing
    if len(tally) < len(self.view_members):
        return
    members = set(self.view_members)

Dissemination fan-out loops (``for dst in members: router.send(...)``) are
inherently O(n) — the message must reach every member — and are exempt when
the loop body contains a send.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.staticcheck.callgraph import CallGraph
from repro.analysis.staticcheck.dataflow import (
    MATERIALIZERS,
    FunctionFlow,
    mentions_source,
)

#: Calls that make a fan-out loop a legitimate dissemination loop.
_SEND_CALLS = {"send", "multicast", "broadcast", "broadcast_causal"}
#: sorted()/list() are the rebuild-per-call shapes S303 looks for.
_REBUILDERS = {"sorted", "list"}


def _call_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _own_nodes(funcdef: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk ``funcdef`` without descending into nested function defs."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(funcdef))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _len_of_proportional(expr: ast.AST, flow: FunctionFlow) -> bool:
    """Does ``expr`` contain ``len(<n-proportional>)``? (O(1) guard shape.)"""
    for sub in ast.walk(expr):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "len"
            and sub.args
            and flow.is_n_proportional(sub.args[0])
        ):
            return True
    return False


class ScalingChecker:
    """Emit S301–S304 through the host ModuleChecker's finding machinery."""

    def __init__(self, checker, graph: CallGraph):
        self.checker = checker  # duck-typed ModuleChecker: _emit/_parents
        self.graph = graph

    def run(self) -> None:
        for funcdef in self.graph.functions.values():
            if self.graph.is_message_hot(funcdef):
                self._check_hot_function(funcdef)
            if self.graph.is_hot(funcdef):
                self._check_loop_invariant_rebuilds(funcdef)
        self._check_payload_classes()

    # -- S301 / S304: membership materialization in message handlers ----------

    def _check_hot_function(self, funcdef: ast.FunctionDef) -> None:
        flow = FunctionFlow(funcdef)
        for node in _own_nodes(funcdef):
            if isinstance(node, ast.Call):
                name = _call_name(node.func)
                if (
                    isinstance(node.func, ast.Name)
                    and name in MATERIALIZERS
                    and node.args
                    and flow.is_n_proportional(node.args[0])
                ):
                    self._flag_materialization(funcdef, flow, node, node.args[0], name)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if flow.is_n_proportional(generator.iter):
                        self._flag_materialization(
                            funcdef, flow, node, generator.iter, "comprehension"
                        )
                        break
            elif isinstance(node, ast.For):
                self._check_hot_for(funcdef, flow, node)

    def _check_hot_for(
        self, funcdef: ast.FunctionDef, flow: FunctionFlow, node: ast.For
    ) -> None:
        # Only direct-source loops: loops over tainted locals trace back to a
        # materialization that was already flagged at its own line.
        if not (
            flow.is_n_proportional(node.iter) and mentions_source(node.iter)
        ):
            return
        if self._body_sends(node):
            return  # dissemination fan-out: inherently O(n)
        if self._is_guarded(funcdef, flow, node):
            return
        self.checker._emit(
            "S301",
            node.iter,
            f"per-message handler {funcdef.name}() iterates the full member "
            "set per event (the PR 6 commit-tally O(n^2) class)",
        )

    @staticmethod
    def _body_sends(node: ast.For) -> bool:
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call) and _call_name(sub.func) in _SEND_CALLS:
                    return True
        return False

    def _flag_materialization(
        self,
        funcdef: ast.FunctionDef,
        flow: FunctionFlow,
        node: ast.AST,
        source_expr: ast.AST,
        shape: str,
    ) -> None:
        if self._is_guarded(funcdef, flow, node):
            return
        if mentions_source(source_expr):
            self.checker._emit(
                "S301",
                node,
                f"per-message handler {funcdef.name}() materializes a "
                f"membership-derived collection ({shape}) on every event",
            )
        else:
            self.checker._emit(
                "S304",
                node,
                f"per-message handler {funcdef.name}() allocates an "
                "n-proportional temporary from an already-built collection",
            )

    def _is_guarded(
        self, funcdef: ast.FunctionDef, flow: FunctionFlow, node: ast.AST
    ) -> bool:
        """The two O(1) length-guard shapes from the PR 6 audit."""
        # (a) later operand of a short-circuit BoolOp whose earlier operand
        # len()-guards (``and`` for the ack-tally shape, ``or`` for the
        # bail-out shape ``len(a) < len(b) or not set(b) <= a``): the
        # materialization only runs when the O(1) length test passed.
        child: ast.AST = node
        parent = self.checker._parents.get(id(node))
        while parent is not None and not isinstance(
            parent, (ast.stmt, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            if isinstance(parent, ast.BoolOp):
                values = parent.values
                if child in values:
                    for earlier in values[: values.index(child)]:
                        if _len_of_proportional(earlier, flow):
                            return True
            child, parent = parent, self.checker._parents.get(id(parent))
        # (b) an earlier statement is an If that len()-guards and bails out.
        lineno = getattr(node, "lineno", 0)
        for stmt in _own_nodes(funcdef):
            if (
                isinstance(stmt, ast.If)
                and stmt.lineno < lineno
                and _len_of_proportional(stmt.test, flow)
                and any(
                    isinstance(sub, (ast.Return, ast.Continue, ast.Raise))
                    for sub in ast.walk(stmt)
                )
            ):
                return True
        return False

    # -- S302: unmemoized envelope wire sizes ----------------------------------

    def _check_payload_classes(self) -> None:
        for node in ast.walk(self.graph.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            fields = _class_fields(node)
            if "payload" not in fields or "kind" not in fields:
                continue
            has_wire_size = any(
                isinstance(item, ast.FunctionDef) and item.name == "__wire_size__"
                for item in node.body
            )
            if not has_wire_size:
                self.checker._emit(
                    "S302",
                    node,
                    f"envelope {node.name} wraps a payload but has no memoized "
                    "__wire_size__: estimate_size re-traverses it on every send",
                )

    # -- S303: loop-invariant rebuilds -----------------------------------------

    def _check_loop_invariant_rebuilds(self, funcdef: ast.FunctionDef) -> None:
        for node in _own_nodes(funcdef):
            if not isinstance(node, (ast.For, ast.While)):
                continue
            assigned = _names_assigned_in(node)
            body = node.body + node.orelse
            for stmt in body:
                for sub in ast.walk(stmt):
                    if not (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id in _REBUILDERS
                        and sub.args
                    ):
                        continue
                    arg = sub.args[0]
                    if self._is_loop_invariant(arg, assigned):
                        self.checker._emit(
                            "S303",
                            sub,
                            f"{sub.func.id}() rebuilt on every iteration over a "
                            "loop-invariant collection; hoist it out of the loop",
                        )

    @staticmethod
    def _is_loop_invariant(arg: ast.expr, assigned: set[str]) -> bool:
        if isinstance(arg, ast.Name):
            return arg.id not in assigned
        if (
            isinstance(arg, ast.Attribute)
            and isinstance(arg.value, ast.Name)
            and arg.value.id == "self"
        ):
            return arg.attr not in assigned
        return False


def _names_assigned_in(loop: ast.AST) -> set[str]:
    """Names (locals and depth-1 self attrs) written anywhere in the loop."""
    assigned: set[str] = set()
    for node in ast.walk(loop):
        targets: list[ast.expr] = []
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            targets = [node.target]
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            # Mutator method call counts as a write to its receiver.
            targets = [node.func.value]
        for target in targets:
            base = target
            while isinstance(base, (ast.Subscript, ast.Starred)):
                base = base.value
            if isinstance(base, ast.Name):
                assigned.add(base.id)
            elif (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                assigned.add(base.attr)
    return assigned


def _class_fields(node: ast.ClassDef) -> set[str]:
    fields: set[str] = set()
    for item in node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            fields.add(item.target.id)
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    fields.add(target.id)
    return fields


def run_scaling_rules(checker, graph: CallGraph) -> None:
    ScalingChecker(checker, graph).run()
