"""Finding records, fingerprints, and the grandfathering baseline.

A finding is one rule violation at one source location.  Findings are
identified across runs by a *fingerprint* that survives unrelated edits:
the hash covers the rule, the file, the stripped source line text, and a
disambiguating index among identical lines — but **not** the line number,
so inserting code above a grandfathered finding does not resurrect it.

The baseline file is the repo's list of grandfathered fingerprints.  A run
fails only on findings that are not suppressed inline and not in the
baseline; baseline entries that no longer match anything are reported as
stale so the file shrinks as debt is paid down.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Iterable, Optional

BASELINE_VERSION = 1


@dataclass(frozen=True, slots=True)
class Rule:
    """Static description of one detcheck rule."""

    id: str  # e.g. "D103"
    name: str  # short slug, e.g. "set-iteration"
    summary: str  # one-line description for --list-rules
    hint: str  # generic fix hint appended to findings

    @property
    def family(self) -> str:
        return self.id[0]


@dataclass(slots=True)
class Finding:
    """One rule violation at one source location."""

    rule: Rule
    path: str  # repo-relative, forward slashes
    line: int
    col: int
    message: str
    source_line: str = ""
    suppressed: bool = False  # inline ``# detcheck: ignore[...]``
    baselined: bool = False  # matched a baseline fingerprint
    fingerprint: str = field(default="", compare=False)

    @property
    def is_new(self) -> bool:
        return not (self.suppressed or self.baselined)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        tags = []
        if self.suppressed:
            tags.append("suppressed")
        if self.baselined:
            tags.append("baseline")
        tag = f" [{','.join(tags)}]" if tags else ""
        return (
            f"{self.location()}: {self.rule.id} {self.message}{tag}\n"
            f"    hint: {self.rule.hint}"
        )

    def to_json(self) -> dict:
        return {
            "rule": self.rule.id,
            "name": self.rule.name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.rule.hint,
            "fingerprint": self.fingerprint,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "new": self.is_new,
        }


def fingerprint_findings(findings: Iterable[Finding]) -> None:
    """Assign content fingerprints, disambiguating identical lines in order."""
    seen: dict[tuple[str, str, str], int] = {}
    for finding in findings:
        key = (finding.rule.id, finding.path, finding.source_line.strip())
        index = seen.get(key, 0)
        seen[key] = index + 1
        digest = hashlib.sha256(
            f"{key[0]}|{key[1]}|{key[2]}|{index}".encode("utf-8")
        ).hexdigest()
        finding.fingerprint = digest[:12]


class Baseline:
    """The checked-in list of grandfathered findings."""

    def __init__(self, entries: Optional[dict[tuple[str, str, str], dict]] = None):
        #: (rule, path, fingerprint) -> raw entry dict
        self.entries = entries or {}
        self._matched: set[tuple[str, str, str]] = set()

    @classmethod
    def load(cls, path: pathlib.Path) -> "Baseline":
        raw = json.loads(path.read_text(encoding="utf-8"))
        if raw.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {raw.get('version')!r}"
            )
        entries = {}
        for entry in raw.get("findings", []):
            entries[(entry["rule"], entry["path"], entry["fingerprint"])] = entry
        return cls(entries)

    def apply(self, findings: Iterable[Finding]) -> None:
        """Mark findings that match a grandfathered entry."""
        for finding in findings:
            key = (finding.rule.id, finding.path, finding.fingerprint)
            if key in self.entries:
                finding.baselined = True
                self._matched.add(key)

    def stale_entries(self) -> list[dict]:
        """Entries that matched no finding in the last :meth:`apply`."""
        return [
            entry
            for key, entry in sorted(self.entries.items())
            if key not in self._matched
        ]

    @staticmethod
    def write(path: pathlib.Path, findings: Iterable[Finding]) -> int:
        """Write a fresh baseline covering every non-suppressed finding."""
        entries = [
            {
                "rule": f.rule.id,
                "path": f.path,
                "fingerprint": f.fingerprint,
                "line": f.line,
                "note": f.source_line.strip()[:120],
            }
            for f in findings
            if not f.suppressed
        ]
        entries.sort(key=lambda e: (e["path"], e["line"], e["rule"]))
        payload = {"version": BASELINE_VERSION, "findings": entries}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return len(entries)
