"""The detcheck rule set: AST analyses for determinism and protocol invariants.

Two families:

**D-series (determinism).**  The repo's comparative claims rest on the
simulation being bit-identical across runs and across ``run_sweep(jobs=N)``
workers.  These rules ban the ambient-nondeterminism constructs that break
that property — wall clocks, module-level RNGs, ``PYTHONHASHSEED``-dependent
set/hash ordering — and flag unordered iteration feeding ordering-sensitive
constructs.

**P-series (protocol invariants).**  Conventions the broadcast/protocol
layers rely on but nothing else enforces: slotted + size-registered wire
payloads, staleness-guarded timer callbacks, and the router/broadcast
layering of sends.

Every rule is syntactic: no imports are executed, no types are resolved
beyond what single-module inference supports (set literals/calls/
comprehensions, locals and ``self.*`` attributes assigned from them).  That
makes the pass fast and safe to run on any tree, at the cost of needing the
inline-suppression / baseline machinery for the cases it cannot see through.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Optional

from repro.analysis.staticcheck.findings import Finding, Rule

RULES: dict[str, Rule] = {
    rule.id: rule
    for rule in [
        Rule(
            "D101",
            "ambient-rng",
            "module-level RNG (random.*, os.urandom, uuid1/uuid4, secrets)",
            "draw from an injected repro.sim.rng stream (RngRegistry.stream)",
        ),
        Rule(
            "D102",
            "wall-clock",
            "wall-clock reads (time.time, datetime.now, ...) in simulation code",
            "use engine.now (simulated time); wall clocks belong in the perf "
            "harness only, behind a detcheck suppression",
        ),
        Rule(
            "D103",
            "set-iteration",
            "iteration over a set in an order-sensitive position",
            "wrap the iterable in sorted(...); set order depends on "
            "PYTHONHASHSEED for str/tuple elements",
        ),
        Rule(
            "D104",
            "dict-view-order",
            "bare dict view feeding an order-sensitive construct",
            "iterate sorted(d.items()) (or justify insertion-order determinism "
            "with a suppression comment)",
        ),
        Rule(
            "D105",
            "hash-id-order",
            "ordering or derivation via id()/hash()",
            "id() is allocation-dependent and hash() depends on PYTHONHASHSEED; "
            "sort by a value key, derive seeds with hashlib (see repro.sim.rng)",
        ),
        Rule(
            "D106",
            "unordered-float-sum",
            "sum() over an unordered collection (float addition is "
            "order-sensitive)",
            "sum a sorted sequence, or math.fsum, so cross-process metric "
            "merges stay bit-identical",
        ),
        Rule(
            "P201",
            "payload-slots",
            "wire payload class (kind=... field) without __slots__",
            "declare @dataclass(slots=True) (or __slots__); unslotted payloads "
            "are sized via __dict__ and cost attribute-dict churn per message",
        ),
        Rule(
            "P202",
            "payload-wire-size",
            "wire payload class neither registered via "
            "repro.net.sizes.register_payload nor defining __wire_size__",
            "add the class to the module's register_payload(...) call so the "
            "size model validates its shape at import time",
        ),
        Rule(
            "P203",
            "timer-guard",
            "timer callback without a staleness guard",
            "start the callback with an early-return staleness check, or give "
            "it an epoch/attempt token parameter it compares (the PR-2 "
            "stale-query-timer bug class)",
        ),
        Rule(
            "P204",
            "raw-transport-send",
            "protocol-layer call to a raw network/transport send primitive",
            "protocol handlers send through router channels or a broadcast "
            "primitive; raw network sends bypass accounting and ordering",
        ),
        Rule(
            "S301",
            "hot-path-member-scan",
            "per-message handler iterates/materializes a membership-derived "
            "collection on every event",
            "guard with the O(1) length check first (len(tally) >= "
            "len(view) and tally >= set(view)), or hoist the member set out "
            "of the handler (the PR 6 commit-tally O(n^2) class)",
        ),
        Rule(
            "S302",
            "payload-size-memo",
            "envelope class with a payload field but no memoized "
            "__wire_size__ (estimate_size re-traverses it per send)",
            "add a _size slot and a __wire_size__ that computes once and "
            "caches, as BroadcastMessage does",
        ),
        Rule(
            "S303",
            "loop-invariant-rebuild",
            "sorted()/list() rebuilt every iteration over a loop-invariant "
            "collection",
            "hoist the materialization out of the loop",
        ),
        Rule(
            "S304",
            "hot-path-temporaries",
            "per-event allocation of an n-proportional temporary from an "
            "already-materialized collection",
            "reuse the existing collection, or hoist the allocation out of "
            "the per-message path",
        ),
        Rule(
            "H401",
            "unguarded-timer-mutation",
            "timer callback mutates protocol state before any staleness "
            "guard (flow-sensitive P203)",
            "establish the firing is still live (early-return re-check or "
            "epoch token compare) before the first state write; metric "
            "counter bumps are exempt",
        ),
        Rule(
            "H402",
            "send-then-mutate",
            "handler sends, then mutates state it read before the send "
            "(re-entrancy hazard under synchronous local delivery)",
            "finish the state transition before sending; a locally-delivered "
            "message can re-enter the class between send and mutation",
        ),
        Rule(
            "H403",
            "recovery-window-install",
            "message handler reaches a durable state install with no "
            "recovery-window deferral on the path",
            "defer deliveries to a backlog while self.recovering and replay "
            "them after install, as ReliableBroadcastProtocol does (the PR 4 "
            "stale-snapshot clobber class)",
        ),
        Rule(
            "E001",
            "parse-error",
            "file could not be parsed",
            "fix the syntax error",
        ),
    ]
}

D_DEFAULT = ("D101", "D102", "D103", "D104", "D105", "D106")
P_DEFAULT = ("P201", "P202", "P203", "P204")
S_DEFAULT = ("S301", "S302", "S303", "S304")
H_DEFAULT = ("H401", "H402", "H403")
ALL_RULE_IDS = D_DEFAULT + P_DEFAULT + S_DEFAULT + H_DEFAULT

#: Modules whose top-level functions are ambient-nondeterminism sources.
_RNG_MODULES = {"random", "secrets"}
_RNG_ALLOWED_ATTRS = {"Random"}  # random.Random(seed) is the sanctioned use
_WALLCLOCK_TIME_ATTRS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
}
_WALLCLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}
_UUID_BANNED = {"uuid1", "uuid4"}

_DICT_VIEWS = {"keys", "values", "items"}
#: Wrappers that preserve the underlying iteration order.
_TRANSPARENT = {"list", "tuple", "iter", "enumerate", "reversed"}
#: Consumers whose result does not depend on iteration order.  min/max are
#: order-insensitive only without a key= tie-breaker (checked separately);
#: sum() is handled by D106.
_ORDER_INSENSITIVE = {
    "sorted",
    "len",
    "any",
    "all",
    "set",
    "frozenset",
    "dict",
    "Counter",
    "sum",
    "min",
    "max",
}
#: Calls inside a for-body that make the loop order observable.
_ORDER_SENSITIVE_SINKS = {
    "send",
    "multicast",
    "broadcast",
    "broadcast_causal",
    "emit",
    "append",
    "appendleft",
    "extend",
    "insert",
    "schedule",
    "schedule_at",
    "reschedule",
}

_TOKEN_PARAM = re.compile(
    r"epoch|attempt|token|view|round|seq|deadline|generation|version", re.I
)

_SCHEDULE_METHODS = {"schedule", "schedule_at", "reschedule"}


def _call_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_zero(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value in (0, 0.0)


class _SetInference:
    """Syntactic set-typedness: literals, set()/frozenset(), set-typed names.

    Locals are tracked per enclosing function, ``self.x`` attributes per
    class; a name counts as set-typed only if *every* assignment to it in
    scope is set-typed, so a rebinding to a list clears it.
    """

    def __init__(self, tree: ast.Module):
        self._locals: dict[int, dict[str, bool]] = {}  # id(funcdef) -> name -> is_set
        self._attrs: dict[int, dict[str, bool]] = {}  # id(classdef) -> attr -> is_set
        self._collect(tree)

    def _collect(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                table = self._locals.setdefault(id(node), {})
                for arg in (
                    node.args.posonlyargs + node.args.args + node.args.kwonlyargs
                ):
                    if arg.annotation is not None and _annotation_is_set(
                        arg.annotation
                    ):
                        self._note(table, arg.arg, True)
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                        target = sub.targets[0]
                        if isinstance(target, ast.Name):
                            self._note(table, target.id, self.is_set_expr(sub.value))
                    elif isinstance(sub, ast.AnnAssign) and isinstance(
                        sub.target, ast.Name
                    ):
                        self._note(
                            table, sub.target.id, _annotation_is_set(sub.annotation)
                        )
            elif isinstance(node, ast.ClassDef):
                table = self._attrs.setdefault(id(node), {})
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                        target = sub.targets[0]
                        if _is_self_attr(target):
                            self._note(table, target.attr, self.is_set_expr(sub.value))
                    elif isinstance(sub, ast.AnnAssign) and _is_self_attr(sub.target):
                        self._note(
                            table,
                            sub.target.attr,
                            _annotation_is_set(sub.annotation),
                        )

    @staticmethod
    def _note(table: dict[str, bool], name: str, is_set: bool) -> None:
        table[name] = table.get(name, True) and is_set

    def is_set_expr(
        self,
        node: ast.expr,
        funcdef: Optional[ast.AST] = None,
        classdef: Optional[ast.AST] = None,
    ) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _call_name(node.func)
            if name in ("set", "frozenset"):
                return True
            if name in ("union", "intersection", "difference", "symmetric_difference"):
                return self.is_set_expr(node.func.value, funcdef, classdef)  # type: ignore[attr-defined]
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expr(node.left, funcdef, classdef) or self.is_set_expr(
                node.right, funcdef, classdef
            )
        if isinstance(node, ast.Name) and funcdef is not None:
            return self._locals.get(id(funcdef), {}).get(node.id, False)
        if _is_self_attr(node) and classdef is not None:
            return self._attrs.get(id(classdef), {}).get(node.attr, False)  # type: ignore[attr-defined]
        return False


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _annotation_is_set(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    text = ast.unparse(node) if hasattr(ast, "unparse") else ""
    return bool(re.match(r"^(set|frozenset|Set|FrozenSet)\b", text.strip()))


def _unwrap_transparent(node: ast.expr) -> ast.expr:
    """Strip list()/tuple()/iter()/enumerate()/reversed() wrappers."""
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _TRANSPARENT
        and node.args
    ):
        node = node.args[0]
    return node


def _dict_view_call(node: ast.expr) -> Optional[ast.Call]:
    """Return the ``x.keys()/values()/items()`` call under ``node``, if any."""
    node = _unwrap_transparent(node)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _DICT_VIEWS
        and not node.args
    ):
        return node
    return None


class ModuleChecker:
    """Run all enabled rules over one parsed module."""

    def __init__(
        self,
        tree: ast.Module,
        path: str,
        lines: list[str],
        enabled: set[str],
        protocol_layer: bool = False,
    ):
        self.tree = tree
        self.path = path
        self.lines = lines
        self.enabled = enabled
        self.protocol_layer = protocol_layer
        self.findings: list[Finding] = []
        self.sets = _SetInference(tree)
        self._import_aliases: dict[str, str] = {}  # local name -> module
        self._from_imports: dict[str, tuple[str, str]] = {}  # local -> (mod, name)
        self._parents: dict[int, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    # -- plumbing ---------------------------------------------------------------

    def _emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        if rule_id not in self.enabled:
            return
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        text = self.lines[line - 1] if 0 < line <= len(self.lines) else ""
        self.findings.append(
            Finding(RULES[rule_id], self.path, line, col, message, source_line=text)
        )

    def _enclosing(self, node: ast.AST, *types) -> Optional[ast.AST]:
        cursor = self._parents.get(id(node))
        while cursor is not None:
            if isinstance(cursor, types):
                return cursor
            cursor = self._parents.get(id(cursor))
        return None

    def _scope(self, node: ast.AST) -> tuple[Optional[ast.AST], Optional[ast.AST]]:
        return (
            self._enclosing(node, ast.FunctionDef, ast.AsyncFunctionDef),
            self._enclosing(node, ast.ClassDef),
        )

    def _is_unordered(self, node: ast.expr) -> tuple[bool, bool]:
        """(is_set_typed, is_bare_dict_view) for an iterable expression."""
        funcdef, classdef = self._scope(node)
        unwrapped = _unwrap_transparent(node)
        is_set = self.sets.is_set_expr(unwrapped, funcdef, classdef)
        is_view = _dict_view_call(node) is not None
        return is_set, is_view

    # -- entry point ------------------------------------------------------------

    def run(self) -> list[Finding]:
        self._collect_imports()
        registered = self._registered_payloads()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                self._check_call(node)
            elif isinstance(node, ast.For):
                self._check_for(node)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                self._check_comprehension(node)
            elif isinstance(node, ast.ClassDef):
                self._check_payload_class(node, registered)
        return self.findings

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._import_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self._from_imports[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )

    # -- D101 / D102: ambient nondeterminism -----------------------------------

    def _check_call(self, node: ast.Call) -> None:
        self._check_ambient(node)
        self._check_selection(node)
        self._check_hash_order(node)
        self._check_float_sum(node)
        if self.protocol_layer:
            self._check_raw_send(node)
        self._check_timer(node)

    def _resolve_module_attr(self, func: ast.expr) -> Optional[tuple[str, str]]:
        """``mod.attr`` with imports resolved: returns (module, attr)."""
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            module = self._import_aliases.get(func.value.id)
            if module is not None:
                return module, func.attr
            origin = self._from_imports.get(func.value.id)
            if origin is not None:  # e.g. ``from datetime import datetime``
                return f"{origin[0]}.{origin[1]}", func.attr
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Attribute):
            inner = self._resolve_module_attr(func.value)
            if inner is not None:
                return f"{inner[0]}.{inner[1]}", func.attr
        if isinstance(func, ast.Name):
            origin = self._from_imports.get(func.id)
            if origin is not None:
                return origin[0], origin[1]
        return None

    def _check_ambient(self, node: ast.Call) -> None:
        resolved = self._resolve_module_attr(node.func)
        if resolved is None:
            return
        module, attr = resolved
        root = module.split(".")[0]
        if root in _RNG_MODULES and attr not in _RNG_ALLOWED_ATTRS:
            self._emit(
                "D101", node, f"ambient randomness: {module}.{attr}() is unseeded"
            )
        elif module == "os" and attr == "urandom":
            self._emit("D101", node, "ambient randomness: os.urandom()")
        elif module == "uuid" and attr in _UUID_BANNED:
            self._emit("D101", node, f"ambient randomness: uuid.{attr}()")
        elif module == "time" and attr in _WALLCLOCK_TIME_ATTRS:
            self._emit("D102", node, f"wall-clock read: time.{attr}()")
        elif (
            module in ("datetime.datetime", "datetime.date")
            and attr in _WALLCLOCK_DATETIME_ATTRS
        ):
            self._emit("D102", node, f"wall-clock read: {module}.{attr}()")

    # -- D103 / D104: unordered iteration ---------------------------------------

    def _check_for(self, node: ast.For) -> None:
        is_set, is_view = self._is_unordered(node.iter)
        if is_set:
            self._emit(
                "D103",
                node.iter,
                "for-loop over a set: iteration order is PYTHONHASHSEED-dependent",
            )
        elif is_view and self._body_is_order_sensitive(node):
            self._emit(
                "D104",
                node.iter,
                "for-loop over a bare dict view drives sends/timers/"
                "accumulation in view order",
            )

    def _body_is_order_sensitive(self, node: ast.For) -> bool:
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    name = _call_name(sub.func)
                    if name in _ORDER_SENSITIVE_SINKS:
                        return True
                elif isinstance(sub, (ast.Break, ast.Return)):
                    return True
        return False

    def _check_comprehension(self, node: ast.AST) -> None:
        building_unordered = isinstance(node, (ast.SetComp, ast.DictComp))
        for generator in node.generators:  # type: ignore[attr-defined]
            is_set, is_view = self._is_unordered(generator.iter)
            if not (is_set or is_view):
                continue
            if building_unordered:
                continue  # set/dict built from unordered input: order-free
            if isinstance(node, ast.GeneratorExp) and self._consumed_insensitively(
                node
            ):
                continue
            if is_set:
                self._emit(
                    "D103",
                    generator.iter,
                    "comprehension over a set produces "
                    "PYTHONHASHSEED-dependent ordering",
                )
            elif isinstance(node, ast.ListComp):
                self._emit(
                    "D104",
                    generator.iter,
                    "list built from a bare dict view fixes the view's order "
                    "into downstream consumers",
                )

    def _consumed_insensitively(self, node: ast.AST) -> bool:
        parent = self._parents.get(id(node))
        if isinstance(parent, ast.Call) and node in parent.args:
            name = _call_name(parent.func)
            if name in _ORDER_INSENSITIVE and not (
                name in ("min", "max") and _has_key_kwarg(parent)
            ):
                return name != "sum"  # sum() is D106's to judge
        return False

    # -- D103/D104 via selection, D105, D106 ------------------------------------

    def _check_selection(self, node: ast.Call) -> None:
        name = _call_name(node.func)
        if name in ("min", "max") and _has_key_kwarg(node) and node.args:
            is_set, is_view = self._is_unordered(node.args[0])
            if is_set or is_view:
                self._emit(
                    "D103" if is_set else "D104",
                    node,
                    f"{name}(..., key=...) over an unordered collection breaks "
                    "ties by iteration order",
                )
        if (
            name == "next"
            and node.args
            and isinstance(node.args[0], ast.Call)
            and _call_name(node.args[0].func) == "iter"
            and node.args[0].args
        ):
            is_set, is_view = self._is_unordered(node.args[0].args[0])
            if is_set or is_view:
                self._emit(
                    "D103" if is_set else "D104",
                    node,
                    "next(iter(...)) is first-wins selection from an "
                    "unordered collection",
                )

    def _check_hash_order(self, node: ast.Call) -> None:
        name = _call_name(node.func)
        if name == "hash" and isinstance(node.func, ast.Name):
            # Inside __hash__ the builtin is the only way to delegate, and
            # the result never crosses a process boundary by construction.
            funcdef = self._enclosing(node, ast.FunctionDef, ast.AsyncFunctionDef)
            if funcdef is not None and funcdef.name == "__hash__":
                return
            self._emit(
                "D105",
                node,
                "hash() of str/bytes varies with PYTHONHASHSEED across "
                "processes",
            )
            return
        if name in ("sorted", "min", "max", "sort"):
            for kw in node.keywords:
                if kw.arg == "key" and _key_uses_identity(kw.value):
                    self._emit(
                        "D105",
                        node,
                        f"{name}(..., key=...) orders by id()/hash()",
                    )

    def _check_float_sum(self, node: ast.Call) -> None:
        if _call_name(node.func) != "sum" or not node.args:
            return
        arg = node.args[0]
        is_set, is_view = self._is_unordered(arg)
        if not (is_set or is_view) and isinstance(arg, ast.GeneratorExp):
            for generator in arg.generators:
                gen_set, gen_view = self._is_unordered(generator.iter)
                is_set, is_view = is_set or gen_set, is_view or gen_view
        if is_set or is_view:
            self._emit(
                "D106",
                node,
                "sum() over an unordered collection: float addition is "
                "order-sensitive, so merged metrics can differ across workers",
            )

    # -- P201 / P202: wire payload shape ----------------------------------------

    def _registered_payloads(self) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(self.tree):
            if (
                isinstance(node, ast.Call)
                and _call_name(node.func) == "register_payload"
            ):
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        names.add(arg.id)
        return names

    def _check_payload_class(self, node: ast.ClassDef, registered: set[str]) -> None:
        if not _is_payload_class(node):
            return
        if not _has_slots(node):
            self._emit(
                "P201",
                node,
                f"wire payload {node.name} has no __slots__ "
                "(declare @dataclass(slots=True))",
            )
        has_wire_size = any(
            isinstance(item, ast.FunctionDef) and item.name == "__wire_size__"
            for item in node.body
        )
        if not has_wire_size and node.name not in registered:
            self._emit(
                "P202",
                node,
                f"wire payload {node.name} is neither registered via "
                "register_payload(...) nor defines __wire_size__",
            )

    # -- P203: timer staleness guards --------------------------------------------

    def _check_timer(self, node: ast.Call) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        method = node.func.attr
        if method not in _SCHEDULE_METHODS:
            return
        if method == "reschedule":
            if len(node.args) < 3:
                return
            delay, callback = node.args[1], node.args[2]
        else:
            if len(node.args) < 2:
                return
            delay, callback = node.args[0], node.args[1]
        if method == "schedule" and _is_zero(delay):
            return  # zero-delay dispatch, not a timer
        target = self._resolve_callback(node, callback)
        if target is None:
            return  # lambda / non-local callable: out of single-module reach
        if _has_staleness_guard(target):
            return
        self._emit(
            "P203",
            node,
            f"timer callback {target.name}() has no staleness guard: a stale "
            "timer can fire into a superseded attempt/view",
        )

    def _resolve_callback(
        self, site: ast.Call, callback: ast.expr
    ) -> Optional[ast.FunctionDef]:
        if _is_self_attr(callback):
            classdef = self._enclosing(site, ast.ClassDef)
            if classdef is None:
                return None
            for item in classdef.body:  # type: ignore[attr-defined]
                if isinstance(item, ast.FunctionDef) and item.name == callback.attr:  # type: ignore[attr-defined]
                    return item
            return None
        if isinstance(callback, ast.Name):
            funcdef = self._enclosing(site, ast.FunctionDef, ast.AsyncFunctionDef)
            while funcdef is not None:
                for sub in ast.walk(funcdef):
                    if isinstance(sub, ast.FunctionDef) and sub.name == callback.id:
                        return sub
                funcdef = self._enclosing(funcdef, ast.FunctionDef, ast.AsyncFunctionDef)
        return None

    # -- P204: raw transport sends -----------------------------------------------

    def _check_raw_send(self, node: ast.Call) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute) and func.attr in ("send", "multicast")
        ):
            return
        owner = func.value
        if isinstance(owner, ast.Attribute) and owner.attr in ("network", "transport"):
            self._emit(
                "P204",
                node,
                f"protocol layer calls {owner.attr}.{func.attr}() directly; "
                "sends must go through a router channel or broadcast primitive",
            )


def _has_key_kwarg(node: ast.Call) -> bool:
    return any(kw.arg == "key" for kw in node.keywords)


def _key_uses_identity(key: ast.expr) -> bool:
    if isinstance(key, ast.Name) and key.id in ("id", "hash"):
        return True
    if isinstance(key, ast.Lambda):
        for sub in ast.walk(key.body):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id in ("id", "hash")
            ):
                return True
    return False


def _is_payload_class(node: ast.ClassDef) -> bool:
    """A wire payload declares ``kind`` with a string-constant default."""
    for item in node.body:
        if (
            isinstance(item, ast.AnnAssign)
            and isinstance(item.target, ast.Name)
            and item.target.id == "kind"
            and isinstance(item.value, ast.Constant)
            and isinstance(item.value.value, str)
        ):
            return True
        if isinstance(item, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "kind" for t in item.targets
        ):
            if isinstance(item.value, ast.Constant) and isinstance(
                item.value.value, str
            ):
                return True
    return False


def _has_slots(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call) and _call_name(decorator.func) == "dataclass":
            for kw in decorator.keywords:
                if (
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return True
    for item in node.body:
        if isinstance(item, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__slots__" for t in item.targets
        ):
            return True
        if (
            isinstance(item, ast.AnnAssign)
            and isinstance(item.target, ast.Name)
            and item.target.id == "__slots__"
        ):
            return True
    return False


def _has_staleness_guard(func: ast.FunctionDef) -> bool:
    """A timer callback is guarded if it can tell a stale firing from a live one.

    Accepted shapes (the ones the tree actually uses):

    - an ``If`` whose subtree returns/raises, within the first four
      statements (after the docstring): re-fetch state, bail if gone;
    - a token parameter (epoch/attempt/view/...) that the body compares,
      the PR-2 fix idiom for timers that must survive attempt restarts.
    """
    body = list(func.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    for stmt in body[:4]:
        if isinstance(stmt, ast.If):
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.Return, ast.Raise)):
                    return True
    token_params = {
        arg.arg
        for arg in list(func.args.args) + list(func.args.kwonlyargs)
        if _TOKEN_PARAM.search(arg.arg)
    }
    if token_params:
        for sub in ast.walk(func):
            if isinstance(sub, ast.Compare):
                for name_node in ast.walk(sub):
                    if (
                        isinstance(name_node, ast.Name)
                        and name_node.id in token_params
                    ):
                        return True
    return False


def check_module(
    source: str,
    path: str,
    enabled: Iterable[str],
    protocol_layer: bool = False,
) -> list[Finding]:
    """Parse ``source`` and run every enabled rule; E001 on syntax errors."""
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        finding = Finding(
            RULES["E001"],
            path,
            exc.lineno or 1,
            (exc.offset or 1) - 1,
            f"syntax error: {exc.msg}",
            source_line=lines[(exc.lineno or 1) - 1] if lines else "",
        )
        return [finding]
    enabled_set = set(enabled)
    checker = ModuleChecker(tree, path, lines, enabled_set, protocol_layer)
    checker.run()
    if enabled_set & (set(S_DEFAULT) | set(H_DEFAULT)):
        # Deferred imports: the flow-aware modules import helpers from here.
        from repro.analysis.staticcheck.callgraph import build_callgraph
        from repro.analysis.staticcheck.handler_rules import run_handler_rules
        from repro.analysis.staticcheck.scaling_rules import run_scaling_rules

        graph = build_callgraph(tree, lines)
        run_scaling_rules(checker, graph)
        run_handler_rules(checker, graph)
    checker.findings.sort(key=lambda f: (f.line, f.col, f.rule.id))
    return checker.findings
