"""Lightweight per-module call graph rooted at protocol handler entry points.

The S-series (hot-path scaling) and H-series (handler safety) rules need to
know which functions run *per event*: a member-set build is harmless in
``__init__`` and an O(n^2) regression inside a per-message handler.  This
module discovers handler **entry points** from the dispatch registrations the
tree actually uses and computes reachability over intra-module calls.

Entry points carry a *kind*:

- ``"message"`` — runs once per received message/delivery.  Discovered from
  ``router.register(channel, self._handler)``, ``x.set_deliver(self._h)``,
  ``x.set_receiver(self._h)``, ``network.attach(site, self._h)``, and
  zero-delay ``schedule(0, self._h, ...)`` dispatch (the uniform local
  delivery path).  Also any function annotated ``# detcheck: hot-path`` on
  or directly above its ``def`` line, or decorated ``@hot_path``.
- ``"timer"`` — a scheduled callback (``schedule``/``schedule_at``/
  ``reschedule`` with a non-zero delay), resolved like rule P203 does.
- ``"view"`` — view-change and suspicion-change plumbing: methods named
  ``on_view_change``/``on_view``, listeners passed to ``add_listener``, and
  callbacks assigned to an ``on_change``/``on_recovered`` slot.

Edges are intra-module and deliberately over-approximate: any reference to
``self._method`` inside a function body (call *or* callback-passing — lock
grant continuations, scheduled thunks) adds an edge, as does any call of a
module-level function by name.  Over-approximation errs toward treating code
as hot, which is the safe direction for scaling rules; cross-module calls
are out of scope (each module is checked against its own entry points).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Optional

MESSAGE = "message"
TIMER = "timer"
VIEW = "view"

#: ``obj.<attr>(channel, self._h)`` registration methods -> entry kind.
_REGISTER_METHODS = {
    "register": MESSAGE,
    "set_deliver": MESSAGE,
    "set_receiver": MESSAGE,
    "attach": MESSAGE,
    "add_listener": VIEW,
}
#: ``obj.<slot> = self._h`` assignment slots -> entry kind.
_SLOT_ASSIGNS = {
    "on_change": VIEW,
    "on_recovered": VIEW,
}
_VIEW_METHOD_NAMES = {"on_view_change", "on_view"}
_SCHEDULE_METHODS = {"schedule", "schedule_at", "reschedule"}
_HOT_PATH_PRAGMA = re.compile(r"#\s*detcheck:\s*hot-path\b")


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _is_zero(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value in (0, 0.0)


class CallGraph:
    """Entry-point discovery + reachability for one parsed module."""

    def __init__(self, tree: ast.Module, lines: list[str]):
        self.tree = tree
        self.lines = lines
        #: id(FunctionDef) -> the node (all function defs in the module).
        self.functions: dict[int, ast.FunctionDef] = {}
        #: id(FunctionDef) -> entry kinds it is *directly* registered as.
        self.entry_kinds: dict[int, set[str]] = {}
        #: id(FunctionDef) -> ids of functions it references.
        self.edges: dict[int, set[int]] = {}
        #: id(FunctionDef) -> entry kinds of every entry that reaches it.
        self._reaching: dict[int, set[str]] = {}
        self._methods: dict[int, dict[str, ast.FunctionDef]] = {}  # class -> name -> def
        self._module_funcs: dict[str, ast.FunctionDef] = {}
        self._parents: dict[int, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        self._collect_functions()
        self._collect_entries()
        self._collect_edges()
        self._propagate()

    # -- construction --------------------------------------------------------

    def _enclosing(self, node: ast.AST, *types) -> Optional[ast.AST]:
        cursor = self._parents.get(id(node))
        while cursor is not None:
            if isinstance(cursor, types):
                return cursor
            cursor = self._parents.get(id(cursor))
        return None

    def _collect_functions(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            self.functions[id(node)] = node
            classdef = self._enclosing(node, ast.ClassDef)
            if classdef is not None:
                self._methods.setdefault(id(classdef), {})[node.name] = node
            elif isinstance(self._parents.get(id(node)), ast.Module):
                self._module_funcs[node.name] = node

    def _resolve_callback(
        self, site: ast.AST, callback: ast.expr
    ) -> Optional[ast.FunctionDef]:
        """Resolve ``self._method`` / bare-name callbacks, like rule P203."""
        if _is_self_attr(callback):
            classdef = self._enclosing(site, ast.ClassDef)
            if classdef is None:
                return None
            return self._methods.get(id(classdef), {}).get(callback.attr)  # type: ignore[union-attr]
        if isinstance(callback, ast.Name):
            funcdef = self._enclosing(site, ast.FunctionDef, ast.AsyncFunctionDef)
            while funcdef is not None:
                for sub in ast.walk(funcdef):
                    if isinstance(sub, ast.FunctionDef) and sub.name == callback.id:
                        return sub
                funcdef = self._enclosing(funcdef, ast.FunctionDef, ast.AsyncFunctionDef)
            return self._module_funcs.get(callback.id)
        return None

    def _mark(self, target: Optional[ast.FunctionDef], kind: str) -> None:
        if target is not None:
            self.entry_kinds.setdefault(id(target), set()).add(kind)

    def _collect_entries(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                method = node.func.attr
                kind = _REGISTER_METHODS.get(method)
                if kind is not None and node.args:
                    # Callback is the last positional argument in every
                    # registration shape the tree uses.
                    self._mark(self._resolve_callback(node, node.args[-1]), kind)
                elif method in _SCHEDULE_METHODS:
                    self._mark_timer(node, method)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in _SLOT_ASSIGNS
                ):
                    self._mark(
                        self._resolve_callback(node, node.value),
                        _SLOT_ASSIGNS[target.attr],
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name in _VIEW_METHOD_NAMES:
                    self._mark(node, VIEW)
                if self._annotated_hot(node):
                    self._mark(node, MESSAGE)

    def _mark_timer(self, node: ast.Call, method: str) -> None:
        if method == "reschedule":
            if len(node.args) < 3:
                return
            delay, callback = node.args[1], node.args[2]
        else:
            if len(node.args) < 2:
                return
            delay, callback = node.args[0], node.args[1]
        target = self._resolve_callback(node, callback)
        if method == "schedule" and _is_zero(delay):
            # Zero-delay dispatch runs once per triggering event: hot like
            # a message handler, not like a periodic timer.
            self._mark(target, MESSAGE)
        else:
            self._mark(target, TIMER)

    def _annotated_hot(self, node: ast.FunctionDef) -> bool:
        for decorator in node.decorator_list:
            name = decorator.attr if isinstance(decorator, ast.Attribute) else (
                decorator.id if isinstance(decorator, ast.Name) else None
            )
            if name == "hot_path":
                return True
        # ``# detcheck: hot-path`` on the def line or the comment block above.
        first = min(
            [node.lineno] + [d.lineno for d in node.decorator_list]
        )
        for lineno in range(first, max(first - 4, 0), -1):
            if 0 < lineno <= len(self.lines):
                text = self.lines[lineno - 1]
                if lineno < first and not text.lstrip().startswith("#"):
                    break
                if _HOT_PATH_PRAGMA.search(text):
                    return True
        return False

    def _collect_edges(self) -> None:
        for func_id, funcdef in self.functions.items():
            callees = self.edges.setdefault(func_id, set())
            classdef = self._enclosing(funcdef, ast.ClassDef)
            methods = self._methods.get(id(classdef), {}) if classdef else {}
            for sub in ast.walk(funcdef):
                if _is_self_attr(sub):
                    target = methods.get(sub.attr)  # type: ignore[union-attr]
                    if target is not None and target is not funcdef:
                        callees.add(id(target))
                elif (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id in self._module_funcs
                ):
                    target = self._module_funcs[sub.func.id]
                    if target is not funcdef:
                        callees.add(id(target))

    def _propagate(self) -> None:
        # Fixpoint of set unions: the reached-kinds result is independent of
        # the visit order, so dict order cannot leak into findings.
        # detcheck: ignore[D104]
        for func_id, kinds in self.entry_kinds.items():
            for kind in kinds:
                stack = [func_id]
                while stack:
                    current = stack.pop()
                    reached = self._reaching.setdefault(current, set())
                    if kind in reached:
                        continue
                    reached.add(kind)
                    stack.extend(self.edges.get(current, ()))

    # -- queries -------------------------------------------------------------

    def kinds_reaching(self, funcdef: ast.AST) -> set[str]:
        """Entry kinds from which ``funcdef`` is reachable (possibly empty)."""
        return self._reaching.get(id(funcdef), set())

    def is_message_hot(self, funcdef: ast.AST) -> bool:
        """Reachable from a per-message entry point (or annotated hot-path)."""
        return MESSAGE in self.kinds_reaching(funcdef)

    def is_hot(self, funcdef: ast.AST) -> bool:
        """Reachable from any per-event entry point (message or timer)."""
        kinds = self.kinds_reaching(funcdef)
        return MESSAGE in kinds or TIMER in kinds

    def entries(self, kind: str) -> list[ast.FunctionDef]:
        """Entry-point functions of ``kind``, in source order."""
        return sorted(
            (
                self.functions[func_id]
                for func_id, kinds in self.entry_kinds.items()
                if kind in kinds
            ),
            key=lambda f: f.lineno,
        )

    def reachable_from(self, funcdef: ast.AST) -> list[ast.FunctionDef]:
        """Every function reachable from ``funcdef`` (including itself)."""
        seen: set[int] = set()
        stack = [id(funcdef)]
        while stack:
            current = stack.pop()
            if current in seen or current not in self.functions:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()))
        return sorted(
            (self.functions[i] for i in seen), key=lambda f: f.lineno
        )


def build_callgraph(tree: ast.Module, lines: Iterable[str]) -> CallGraph:
    return CallGraph(tree, list(lines))
