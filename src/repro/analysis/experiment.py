"""Parameter-sweep helpers shared by the benchmark harness and the CLI.

An :class:`ExperimentSweep` runs one scenario function over a grid of
parameter values (optionally with seed replication) and collects rows for
an ASCII table — the shape every experiment in the paper reduces to: one
row per sweep point, one column per protocol or metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.analysis.report import Table
from repro.analysis.stats import mean


@dataclass
class SweepPoint:
    """One cell of a sweep: parameter value, protocol, measured values."""

    parameter: Any
    protocol: str
    values: dict[str, float]


@dataclass
class ExperimentSweep:
    """Runs ``scenario(protocol, parameter, seed) -> dict[str, float]``
    over ``parameters x protocols x seeds`` and aggregates by mean."""

    name: str
    scenario: Callable[[str, Any, int], dict[str, float]]
    parameters: Sequence[Any]
    protocols: Sequence[str]
    seeds: Sequence[int] = (0,)
    points: list[SweepPoint] = field(default_factory=list)

    def run(self, progress: Optional[Callable[[str], None]] = None) -> "ExperimentSweep":
        for parameter in self.parameters:
            for protocol in self.protocols:
                samples: dict[str, list[float]] = {}
                for seed in self.seeds:
                    if progress is not None:
                        progress(
                            f"{self.name}: {protocol} @ {parameter} (seed {seed})"
                        )
                    measured = self.scenario(protocol, parameter, seed)
                    for key, value in measured.items():
                        samples.setdefault(key, []).append(value)
                self.points.append(
                    SweepPoint(
                        parameter,
                        protocol,
                        {key: mean(values) for key, values in samples.items()},
                    )
                )
        return self

    def value(self, parameter: Any, protocol: str, metric: str) -> float:
        for point in self.points:
            if point.parameter == parameter and point.protocol == protocol:
                return point.values[metric]
        raise KeyError((parameter, protocol, metric))

    def series(self, protocol: str, metric: str) -> list[float]:
        """Metric values for one protocol across the parameter axis."""
        return [self.value(parameter, protocol, metric) for parameter in self.parameters]

    def table(self, metric: str, parameter_label: str = "parameter") -> Table:
        """One table: rows = parameters, columns = protocols, cells = metric."""
        table = Table(
            [parameter_label] + list(self.protocols),
            title=f"{self.name}: {metric}",
        )
        for parameter in self.parameters:
            table.add_row(
                parameter,
                *(self.value(parameter, protocol, metric) for protocol in self.protocols),
            )
        return table

    def metrics(self) -> list[str]:
        names: list[str] = []
        for point in self.points:
            for key in point.values:
                if key not in names:
                    names.append(key)
        return names

    def render_all(self, parameter_label: str = "parameter") -> str:
        return "\n\n".join(
            self.table(metric, parameter_label).render() for metric in self.metrics()
        )


def cross_product(**axes: Iterable[Any]) -> list[dict[str, Any]]:
    """Simple named cross product for multi-axis sweeps."""
    combos: list[dict[str, Any]] = [{}]
    for name, values in axes.items():
        combos = [dict(combo, **{name: value}) for combo in combos for value in values]
    return combos
