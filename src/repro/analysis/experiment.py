"""Parameter-sweep helpers shared by the benchmark harness and the CLI.

An :class:`ExperimentSweep` runs one scenario function over a grid of
parameter values (optionally with seed replication) and collects rows for
an ASCII table — the shape every experiment in the paper reduces to: one
row per sweep point, one column per protocol or metric.

Sweeps fan out across processes when asked (``jobs > 1``): every cell of
the ``parameters x protocols x seeds`` grid is one independent,
deterministic simulation, so workers share nothing and the aggregated
results are **bit-identical** to a serial run (asserted by the test suite).
The only requirement is the usual multiprocessing one: the scenario
callable must be picklable (a module-level function or a callable object of
a module-level class — not a closure).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.analysis.report import Table
from repro.analysis.stats import mean


def _run_cell(scenario: Callable[[str, Any, int], dict[str, float]],
              parameter: Any, protocol: str, seed: int) -> dict[str, float]:
    """Top-level trampoline so worker processes can unpickle the call."""
    return scenario(protocol, parameter, seed)


@dataclass
class SweepPoint:
    """One cell of a sweep: parameter value, protocol, measured values."""

    parameter: Any
    protocol: str
    values: dict[str, float]


@dataclass
class ExperimentSweep:
    """Runs ``scenario(protocol, parameter, seed) -> dict[str, float]``
    over ``parameters x protocols x seeds`` and aggregates by mean."""

    name: str
    scenario: Callable[[str, Any, int], dict[str, float]]
    parameters: Sequence[Any]
    protocols: Sequence[str]
    seeds: Sequence[int] = (0,)
    points: list[SweepPoint] = field(default_factory=list)

    def _cells(self) -> list[tuple[Any, str, int]]:
        """The sweep grid in its canonical (deterministic) order."""
        return [
            (parameter, protocol, seed)
            for parameter in self.parameters
            for protocol in self.protocols
            for seed in self.seeds
        ]

    def run(
        self,
        progress: Optional[Callable[[str], None]] = None,
        jobs: Optional[int] = None,
    ) -> "ExperimentSweep":
        """Run the sweep; ``jobs > 1`` fans cells across worker processes.

        Parallel runs aggregate in the same canonical cell order as serial
        runs, and each cell is a self-contained deterministic simulation, so
        the resulting :attr:`points` are identical either way.
        """
        cells = self._cells()
        if jobs is not None and jobs > 1 and len(cells) > 1:
            measurements = self._run_parallel(cells, jobs, progress)
        else:
            measurements = []
            for parameter, protocol, seed in cells:
                if progress is not None:
                    progress(f"{self.name}: {protocol} @ {parameter} (seed {seed})")
                measurements.append(self.scenario(protocol, parameter, seed))
        self._fold(cells, measurements)
        return self

    def _run_parallel(
        self,
        cells: list[tuple[Any, str, int]],
        jobs: int,
        progress: Optional[Callable[[str], None]],
    ) -> list[dict[str, float]]:
        with ProcessPoolExecutor(max_workers=min(jobs, len(cells))) as pool:
            futures = []
            for parameter, protocol, seed in cells:
                if progress is not None:
                    progress(
                        f"{self.name}: {protocol} @ {parameter} (seed {seed}) [fan-out]"
                    )
                futures.append(
                    pool.submit(_run_cell, self.scenario, parameter, protocol, seed)
                )
            # Collect in submission (= canonical) order, not completion order.
            return [future.result() for future in futures]

    def _fold(
        self,
        cells: list[tuple[Any, str, int]],
        measurements: list[dict[str, float]],
    ) -> None:
        assert len(cells) == len(measurements)
        index = 0
        for parameter in self.parameters:
            for protocol in self.protocols:
                samples: dict[str, list[float]] = {}
                for _seed in self.seeds:
                    measured = measurements[index]
                    index += 1
                    # Sorted: sample dicts may come from sweep workers in
                    # other processes; never trust their key order.
                    for key, value in sorted(measured.items()):
                        samples.setdefault(key, []).append(value)
                self.points.append(
                    SweepPoint(
                        parameter,
                        protocol,
                        {key: mean(values) for key, values in samples.items()},
                    )
                )

    def value(self, parameter: Any, protocol: str, metric: str) -> float:
        for point in self.points:
            if point.parameter == parameter and point.protocol == protocol:
                return point.values[metric]
        raise KeyError((parameter, protocol, metric))

    def series(self, protocol: str, metric: str) -> list[float]:
        """Metric values for one protocol across the parameter axis."""
        return [self.value(parameter, protocol, metric) for parameter in self.parameters]

    def table(self, metric: str, parameter_label: str = "parameter") -> Table:
        """One table: rows = parameters, columns = protocols, cells = metric."""
        table = Table(
            [parameter_label] + list(self.protocols),
            title=f"{self.name}: {metric}",
        )
        for parameter in self.parameters:
            table.add_row(
                parameter,
                *(self.value(parameter, protocol, metric) for protocol in self.protocols),
            )
        return table

    def metrics(self) -> list[str]:
        names: list[str] = []
        for point in self.points:
            for key in point.values:
                if key not in names:
                    names.append(key)
        return names

    def render_all(self, parameter_label: str = "parameter") -> str:
        return "\n\n".join(
            self.table(metric, parameter_label).render() for metric in self.metrics()
        )


def cross_product(**axes: Iterable[Any]) -> list[dict[str, Any]]:
    """Simple named cross product for multi-axis sweeps."""
    combos: list[dict[str, Any]] = [{}]
    for name, values in axes.items():
        combos = [dict(combo, **{name: value}) for combo in combos for value in values]
    return combos
