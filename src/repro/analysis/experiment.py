"""Parameter-sweep helpers shared by the benchmark harness and the CLI.

An :class:`ExperimentSweep` runs one scenario function over a grid of
parameter values (optionally with seed replication) and collects rows for
an ASCII table — the shape every experiment in the paper reduces to: one
row per sweep point, one column per protocol or metric.

Sweeps fan out across processes when asked (``jobs > 1``) with a
**two-level scheduler**: the grid is first split into cells (``parameters
x protocols``), and each cell's seed list is sharded into chunks sized
``ceil(seeds / jobs)``, so a *single* large cell with many seeds saturates
every worker instead of binding one core.  Chunks go to a persistent
:class:`~concurrent.futures.ProcessPoolExecutor` (workers stay warm across
sweeps in the same process — imports and module state amortize), submitted
in deterministic chunk-key order ``(cell, chunk)``; free workers steal the
next chunk in that order.

Determinism contract: every cell/seed is an independent, deterministic
simulation, and per-seed partial results are reduced through the
order-canonical merge layer (:mod:`repro.analysis.metrics`) — sorted-by-seed
fold, ``math.fsum`` accumulators, mergeable quantile/Welford
representations.  ``jobs=1`` and ``jobs=N`` therefore produce
**byte-identical** points and :meth:`ExperimentSweep.digest` values
(asserted by the test suite and the CI parallel-determinism smoke).  The
only requirement is the usual multiprocessing one: the scenario callable
must be picklable (a module-level function or a callable object of a
module-level class — not a closure).
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.analysis.metrics import measurement_digest, merge_seed_measurements
from repro.analysis.report import Table

#: One unit of parallel work: every seed of one chunk of one cell.
_ChunkKey = tuple[int, int]


def _run_cell(scenario: Callable[[str, Any, int], dict[str, float]],
              parameter: Any, protocol: str, seed: int) -> dict[str, float]:
    """Top-level trampoline so worker processes can unpickle the call."""
    return scenario(protocol, parameter, seed)


def _run_seed_chunk(
    scenario: Callable[[str, Any, int], dict[str, float]],
    parameter: Any,
    protocol: str,
    seeds: tuple[int, ...],
) -> list[dict[str, float]]:
    """Worker-side loop: one cell's seed chunk, measurements in seed order."""
    return [scenario(protocol, parameter, seed) for seed in seeds]


# -- persistent worker pool ----------------------------------------------------
#
# One module-level pool, grown on demand and reused across sweeps, so
# repeated ``run(jobs=N)`` calls (a benchmark suite, the CLI, the perf
# harness) pay the interpreter/import warm-up once.  Workers hold no sweep
# state — every chunk ships its scenario and inputs — so reuse cannot leak
# results between sweeps.

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0


def _get_pool(workers: int) -> ProcessPoolExecutor:
    global _pool, _pool_workers
    if _pool is not None and _pool_workers < workers:
        _pool.shutdown(wait=True)
        _pool = None
    if _pool is None:
        _pool = ProcessPoolExecutor(max_workers=workers)
        _pool_workers = workers
    return _pool


def shutdown_worker_pool() -> None:
    """Tear down the persistent pool (atexit, and tests that count procs)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=True)
        _pool = None
        _pool_workers = 0


atexit.register(shutdown_worker_pool)


def _seed_chunks(seeds: Sequence[int], jobs: int) -> list[tuple[int, ...]]:
    """Split ``seeds`` into at most ``jobs`` contiguous chunks.

    Chunk size is ``ceil(len(seeds) / jobs)``: a single cell with 32 seeds
    at ``jobs=4`` becomes 4 chunks of 8, so the whole pool works on it; a
    cell with one seed stays one chunk and parallelism comes from the cell
    level instead.
    """
    size = max(1, -(-len(seeds) // jobs))
    return [tuple(seeds[i : i + size]) for i in range(0, len(seeds), size)]


@dataclass
class SweepPoint:
    """One cell of a sweep: parameter value, protocol, measured values."""

    parameter: Any
    protocol: str
    values: dict[str, float]


@dataclass
class ExperimentSweep:
    """Runs ``scenario(protocol, parameter, seed) -> dict[str, float]``
    over ``parameters x protocols x seeds`` and folds the per-seed
    measurements canonically (sorted-seed merge, fsum means, pooled
    quantile/Welford expansion — see :mod:`repro.analysis.metrics`)."""

    name: str
    scenario: Callable[[str, Any, int], dict[str, float]]
    parameters: Sequence[Any]
    protocols: Sequence[str]
    seeds: Sequence[int] = (0,)
    points: list[SweepPoint] = field(default_factory=list)

    def _cells(self) -> list[tuple[Any, str]]:
        """The cell grid in its canonical (deterministic) order."""
        return [
            (parameter, protocol)
            for parameter in self.parameters
            for protocol in self.protocols
        ]

    def run(
        self,
        progress: Optional[Callable[[str], None]] = None,
        jobs: Optional[int] = None,
    ) -> "ExperimentSweep":
        """Run the sweep; ``jobs > 1`` shards cells *and* seeds across the
        persistent worker pool.  Results are byte-identical to ``jobs=1``.

        ``jobs=None`` falls back to the ``REPRO_SWEEP_JOBS`` environment
        variable (how ``scripts/run_experiments.py --sweep-jobs`` reaches
        sweeps inside its pytest subprocesses), defaulting to serial.
        """
        if jobs is None:
            env_jobs = os.environ.get("REPRO_SWEEP_JOBS", "")
            jobs = int(env_jobs) if env_jobs.isdigit() else None
        cells = self._cells()
        seeds = list(self.seeds)
        if len(set(seeds)) != len(seeds):
            raise ValueError(f"duplicate seeds in sweep {self.name!r}: {seeds}")
        if jobs is not None and jobs > 1 and len(cells) * len(seeds) > 1:
            measurements = self._run_parallel(cells, seeds, jobs, progress)
        else:
            measurements = {}
            for cell_index, (parameter, protocol) in enumerate(cells):
                for seed in seeds:
                    if progress is not None:
                        progress(f"{self.name}: {protocol} @ {parameter} (seed {seed})")
                    measurements[(cell_index, seed)] = self.scenario(
                        protocol, parameter, seed
                    )
        self._fold(cells, seeds, measurements)
        return self

    def _run_parallel(
        self,
        cells: list[tuple[Any, str]],
        seeds: list[int],
        jobs: int,
        progress: Optional[Callable[[str], None]],
    ) -> dict[tuple[int, int], dict[str, float]]:
        pool = _get_pool(jobs)
        futures: list[tuple[_ChunkKey, tuple[int, ...], Any]] = []
        # Submission order IS the canonical chunk-key order (cell, chunk):
        # the pool hands chunks to free workers in exactly this order, which
        # keeps the "work-stealing" schedule deterministic even though
        # completion order is not.
        for cell_index, (parameter, protocol) in enumerate(cells):
            for chunk_index, chunk in enumerate(_seed_chunks(seeds, jobs)):
                if progress is not None:
                    progress(
                        f"{self.name}: {protocol} @ {parameter} "
                        f"(seeds {chunk[0]}..{chunk[-1]}) [chunk {cell_index}.{chunk_index}]"
                    )
                futures.append(
                    (
                        (cell_index, chunk_index),
                        chunk,
                        pool.submit(
                            _run_seed_chunk, self.scenario, parameter, protocol, chunk
                        ),
                    )
                )
        # Fold by chunk key, never by completion order.
        measurements: dict[tuple[int, int], dict[str, float]] = {}
        for (cell_index, _chunk_index), chunk, future in futures:
            for seed, measured in zip(chunk, future.result()):
                measurements[(cell_index, seed)] = measured
        return measurements

    def _fold(
        self,
        cells: list[tuple[Any, str]],
        seeds: list[int],
        measurements: dict[tuple[int, int], dict[str, float]],
    ) -> None:
        assert len(measurements) == len(cells) * len(seeds)
        for cell_index, (parameter, protocol) in enumerate(cells):
            by_seed = {seed: measurements[(cell_index, seed)] for seed in seeds}
            self.points.append(
                SweepPoint(parameter, protocol, merge_seed_measurements(by_seed))
            )

    def digest(self) -> str:
        """Canonical sha256 over every folded point (full float precision).

        Equal digests mean byte-identical sweep outputs; the parallel
        determinism tests and the CI smoke compare ``jobs=1`` vs ``jobs=N``
        through this.
        """
        return measurement_digest(
            (point.parameter, point.protocol, point.values) for point in self.points
        )

    def value(self, parameter: Any, protocol: str, metric: str) -> float:
        for point in self.points:
            if point.parameter == parameter and point.protocol == protocol:
                return point.values[metric]
        raise KeyError((parameter, protocol, metric))

    def series(self, protocol: str, metric: str) -> list[float]:
        """Metric values for one protocol across the parameter axis."""
        return [self.value(parameter, protocol, metric) for parameter in self.parameters]

    def column(self, parameter: Any, metric: str) -> dict[str, float]:
        """Metric values for one parameter across protocols (a table row).

        The transpose of :meth:`series`; sweep acceptance checks use it to
        assert an invariant (e.g. zero unanswered clients) holds for every
        protocol at one sweep point.
        """
        return {
            protocol: self.value(parameter, protocol, metric)
            for protocol in self.protocols
        }

    def table(self, metric: str, parameter_label: str = "parameter") -> Table:
        """One table: rows = parameters, columns = protocols, cells = metric."""
        table = Table(
            [parameter_label] + list(self.protocols),
            title=f"{self.name}: {metric}",
        )
        for parameter in self.parameters:
            table.add_row(
                parameter,
                *(self.value(parameter, protocol, metric) for protocol in self.protocols),
            )
        return table

    def metrics(self) -> list[str]:
        names: list[str] = []
        for point in self.points:
            for key in point.values:
                if key not in names:
                    names.append(key)
        return names

    def render_all(self, parameter_label: str = "parameter") -> str:
        return "\n\n".join(
            self.table(metric, parameter_label).render() for metric in self.metrics()
        )


def run_sweep(
    name: str,
    scenario: Callable[[str, Any, int], dict[str, float]],
    parameters: Sequence[Any],
    protocols: Sequence[str],
    seeds: Sequence[int] = (0,),
    progress: Optional[Callable[[str], None]] = None,
    jobs: Optional[int] = None,
) -> ExperimentSweep:
    """Build and run an :class:`ExperimentSweep` in one call.

    The functional entry point the scripts and tests use; ``jobs=N`` shards
    seeds within cells across the persistent worker pool and is
    byte-identical to ``jobs=1`` (compare :meth:`ExperimentSweep.digest`).
    """
    return ExperimentSweep(
        name=name,
        scenario=scenario,
        parameters=parameters,
        protocols=protocols,
        seeds=seeds,
    ).run(progress=progress, jobs=jobs)


def cross_product(**axes: Iterable[Any]) -> list[dict[str, Any]]:
    """Simple named cross product for multi-axis sweeps."""
    combos: list[dict[str, Any]] = [{}]
    for name, values in axes.items():
        combos = [dict(combo, **{name: value}) for combo in combos for value in values]
    return combos
