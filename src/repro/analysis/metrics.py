"""Per-run metrics collection and the order-canonical merge layer.

One :class:`MetricsCollector` is shared by all replicas of a cluster.  It
records transaction outcomes and exposes the derived quantities the
experiments report: throughput, commit latency distribution, abort taxonomy
and restart counts.  Message accounting lives in
:class:`repro.net.network.NetworkStats`; the cluster result object joins the
two.

The second half of this module is the **order-canonical merge layer** used
by the seed-sharded sweep scheduler (``repro.analysis.experiment``).  When a
sweep cell's seeds are fanned across worker processes, the per-seed partial
results come back in completion order; merging them with plain float sums
would make ``jobs=N`` outputs drift from ``jobs=1`` (float addition is not
associative).  Everything here reduces canonically instead:

- :func:`merge_seed_measurements` folds per-seed measurement dicts in
  **sorted seed order** with :func:`math.fsum` accumulators, so the merged
  floats are byte-identical no matter which worker finished first;
- :class:`WelfordAccumulator` and :class:`QuantileAccumulator` are
  **mergeable** streaming representations for mean/variance and latency
  percentiles.  Their merge operation is a keyed union of per-source
  partials (exact, order-free); every floating-point reduction happens
  once, at read time, over the sorted source keys.  That makes merging
  associative and permutation-invariant *bit-for-bit*, not just
  approximately — the property the parallel-determinism suite asserts.
"""

from __future__ import annotations

import hashlib
import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional

from typing import TYPE_CHECKING

from repro.analysis.stats import Summary, percentile, summarize

if TYPE_CHECKING:  # imported lazily to avoid a package-level import cycle
    from repro.core.transaction import AbortReason, Transaction


@dataclass
class TxOutcome:
    """Final fate of one transaction attempt."""

    tx_id: str
    spec_name: str
    home: int
    read_only: bool
    committed: bool
    submit_time: float
    end_time: float
    abort_reason: Optional[AbortReason] = None

    @property
    def latency(self) -> float:
        return self.end_time - self.submit_time


@dataclass
class MetricsCollector:
    """Shared sink for transaction outcomes."""

    outcomes: list[TxOutcome] = field(default_factory=list)
    aborts_by_reason: Counter = field(default_factory=Counter)
    deadlocks_detected: int = 0
    local_reader_preemptions: int = 0
    # RBP in-doubt termination (decision queries; see PROTOCOLS.md).
    rbp_in_doubt: int = 0
    rbp_in_doubt_waits: int = 0
    rbp_decision_queries: int = 0
    rbp_decision_answers: int = 0
    rbp_resolved_by_query_commit: int = 0
    rbp_resolved_by_query_abort: int = 0
    rbp_resolved_by_presumption: int = 0
    # Home-side write-phase watchdog firings (stalled ack round aborted
    # retryably; see ReliableBroadcastReplica.write_grace).
    rbp_write_timeouts: int = 0
    # Home-side vote-phase watchdog firings (stalled tally, no view change:
    # the commit request is idempotently re-broadcast to recover lost votes).
    rbp_vote_retries: int = 0

    def tx_committed(self, tx: Transaction, end_time: float) -> None:
        self.outcomes.append(
            TxOutcome(
                tx_id=tx.tx_id,
                spec_name=tx.spec.name,
                home=tx.home,
                read_only=tx.read_only,
                committed=True,
                submit_time=tx.submit_time,
                end_time=end_time,
            )
        )

    def tx_aborted(self, tx: Transaction, reason: AbortReason, end_time: float) -> None:
        self.aborts_by_reason[reason] += 1
        self.outcomes.append(
            TxOutcome(
                tx_id=tx.tx_id,
                spec_name=tx.spec.name,
                home=tx.home,
                read_only=tx.read_only,
                committed=False,
                submit_time=tx.submit_time,
                end_time=end_time,
                abort_reason=reason,
            )
        )

    # -- derived quantities ----------------------------------------------------

    @property
    def committed(self) -> list[TxOutcome]:
        return [o for o in self.outcomes if o.committed]

    @property
    def aborted(self) -> list[TxOutcome]:
        return [o for o in self.outcomes if not o.committed]

    def committed_update_count(self) -> int:
        return sum(1 for o in self.committed if not o.read_only)

    def committed_readonly_count(self) -> int:
        return sum(1 for o in self.committed if o.read_only)

    def abort_rate(self) -> float:
        """Aborted attempts / all attempts (update and read-only alike)."""
        if not self.outcomes:
            return 0.0
        return len(self.aborted) / len(self.outcomes)

    def update_abort_rate(self) -> float:
        updates = [o for o in self.outcomes if not o.read_only]
        if not updates:
            return 0.0
        return sum(1 for o in updates if not o.committed) / len(updates)

    def readonly_abort_count(self, include_environmental: bool = False) -> int:
        """Protocol-level read-only aborts — the paper's claim: zero, in
        every protocol.

        A read-only transaction whose *home site crashed* under it is not
        a protocol abort (no conflict rule fired; the machine died), so
        ``site_failure`` outcomes are excluded unless
        ``include_environmental`` is set.
        """
        from repro.core.transaction import AbortReason

        return sum(
            1
            for o in self.aborted
            if o.read_only
            and (include_environmental or o.abort_reason is not AbortReason.SITE_FAILURE)
        )

    def commit_latency(self, read_only: Optional[bool] = None) -> Summary:
        values = [
            o.latency
            for o in self.committed
            if read_only is None or o.read_only == read_only
        ]
        return summarize(values)

    def throughput(self, duration: float) -> float:
        """Committed transactions per unit time."""
        if duration <= 0:
            return 0.0
        return len(self.committed) / duration

    def attempts_per_commit(self) -> float:
        """Average attempts needed per committed spec (restart overhead)."""
        attempts: Counter = Counter()
        committed_specs: set[str] = set()
        for outcome in self.outcomes:
            attempts[outcome.spec_name] += 1
            if outcome.committed:
                committed_specs.add(outcome.spec_name)
        if not committed_specs:
            return 0.0
        total = sum(attempts[name] for name in sorted(committed_specs))
        return total / len(committed_specs)


# -- order-canonical merge layer (seed-sharded sweeps) --------------------------
#
# Contract: a "source" is any sortable label identifying one deterministic
# sub-computation (in sweeps: the seed).  Accumulators keep one partial per
# source; ``merge`` unions the partial maps without touching a float, and the
# read-time reduction always walks sources in sorted order with fsum-based
# arithmetic.  Two consequences the tests rely on:
#
# 1. merging is associative and permutation-invariant, byte-for-byte;
# 2. a serial run (one process observing every source) and a sharded run
#    (partials merged across workers) produce identical read-outs.


@dataclass
class _WelfordPartial:
    """Streaming count/mean/M2 for one source (Welford's algorithm)."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def as_tuple(self) -> tuple[int, float, float]:
        return (self.count, self.mean, self.m2)


@dataclass
class WelfordAccumulator:
    """Mergeable streaming mean/variance, keyed by source.

    ``observe`` is O(1) per sample; ``merge`` is a keyed union of the
    per-source partials (a merge never performs float arithmetic, so it
    cannot introduce order sensitivity); ``count``/``mean``/``variance``
    combine the partials with Chan's parallel formula, folding in sorted
    source order — the one canonical reduction.
    """

    partials: dict[Any, _WelfordPartial] = field(default_factory=dict)

    def observe(self, value: float, source: Any = 0) -> None:
        partial = self.partials.get(source)
        if partial is None:
            partial = self.partials[source] = _WelfordPartial()
        partial.observe(float(value))

    def merge(self, other: "WelfordAccumulator") -> "WelfordAccumulator":
        """Union of two accumulators over disjoint source sets."""
        overlap = set(self.partials) & set(other.partials)
        if overlap:
            raise ValueError(f"sources observed on both sides: {sorted(overlap)}")
        merged = WelfordAccumulator()
        merged.partials.update(self.partials)
        merged.partials.update(other.partials)
        return merged

    def _fold(self) -> _WelfordPartial:
        folded = _WelfordPartial()
        for source in sorted(self.partials):
            part = self.partials[source]
            if part.count == 0:
                continue
            if folded.count == 0:
                folded = _WelfordPartial(part.count, part.mean, part.m2)
                continue
            total = folded.count + part.count
            delta = part.mean - folded.mean
            mean = folded.mean + delta * (part.count / total)
            m2 = math.fsum(
                [folded.m2, part.m2, delta * delta * folded.count * part.count / total]
            )
            folded = _WelfordPartial(total, mean, m2)
        return folded

    @property
    def count(self) -> int:
        return sum(self.partials[key].count for key in sorted(self.partials))

    @property
    def mean(self) -> float:
        folded = self._fold()
        return folded.mean if folded.count else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (0 for fewer than two observations)."""
        folded = self._fold()
        if folded.count < 2:
            return 0.0
        return folded.m2 / (folded.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)


@dataclass
class QuantileAccumulator:
    """Mergeable streaming quantiles, keyed by source.

    Samples are retained per source in observation order (append-only
    streaming; memory is bounded by the samples one source produces, which
    for sweep cells is one simulation's committed-transaction count).
    ``merge`` unions the per-source runs; ``quantile`` reduces over the
    canonical multiset — every run concatenated in sorted source order,
    then sorted — so the result is identical however the partials were
    sharded or in which order they merged.
    """

    samples: dict[Any, list[float]] = field(default_factory=dict)

    def observe(self, value: float, source: Any = 0) -> None:
        self.samples.setdefault(source, []).append(float(value))

    def merge(self, other: "QuantileAccumulator") -> "QuantileAccumulator":
        overlap = set(self.samples) & set(other.samples)
        if overlap:
            raise ValueError(f"sources observed on both sides: {sorted(overlap)}")
        merged = QuantileAccumulator()
        merged.samples.update({k: list(v) for k, v in self.samples.items()})
        merged.samples.update({k: list(v) for k, v in other.samples.items()})
        return merged

    def _canonical(self) -> list[float]:
        values: list[float] = []
        for source in sorted(self.samples):
            values.extend(self.samples[source])
        values.sort()
        return values

    @property
    def count(self) -> int:
        return sum(len(self.samples[key]) for key in sorted(self.samples))

    @property
    def mean(self) -> float:
        values = self._canonical()
        return math.fsum(values) / len(values) if values else 0.0

    def quantile(self, fraction: float) -> float:
        values = self._canonical()
        if not values:
            return 0.0
        return percentile(values, fraction)

    def summary(self) -> Summary:
        return summarize(self._canonical())


def fsum_mean(values: Iterable[float]) -> float:
    """Exactly-rounded mean; the only mean the merge layer uses."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("mean of empty sequence")
    return math.fsum(data) / len(data)


#: Scalar metrics a :class:`QuantileAccumulator`-valued measurement expands
#: into when a sweep point is folded (suffix -> fraction; mean is special).
QUANTILE_EXPANSION = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def merge_seed_measurements(
    by_seed: Mapping[int, Mapping[str, Any]]
) -> dict[str, float]:
    """Canonically reduce per-seed measurement dicts to one sweep point.

    Plain float values are averaged with :func:`math.fsum` over sorted seed
    order.  :class:`QuantileAccumulator` / :class:`WelfordAccumulator`
    values are merged across seeds and expanded into scalar metrics
    (``"<key> p50"`` ... / ``"<key> mean"``), so a scenario can report a
    whole latency distribution per seed and the sweep yields *pooled*
    percentiles instead of a mean of per-seed percentiles.
    """
    seeds = sorted(by_seed)
    keys = sorted({key for seed in seeds for key in by_seed[seed]})
    merged: dict[str, float] = {}
    for key in keys:
        values = [by_seed[seed][key] for seed in seeds if key in by_seed[seed]]
        first = values[0]
        if isinstance(first, QuantileAccumulator):
            pooled = QuantileAccumulator()
            for seed in seeds:
                value = by_seed[seed].get(key)
                if value is None:
                    continue
                # Namespace each seed's sources under the seed so identical
                # in-run source labels never collide across seeds.
                pooled.samples.update(
                    {(seed, src): list(run) for src, run in value.samples.items()}
                )
            merged[f"{key} mean"] = pooled.mean
            for suffix, fraction in QUANTILE_EXPANSION:
                merged[f"{key} {suffix}"] = pooled.quantile(fraction)
        elif isinstance(first, WelfordAccumulator):
            pooled_w = WelfordAccumulator()
            for seed in seeds:
                value = by_seed[seed].get(key)
                if value is None:
                    continue
                pooled_w.partials.update(
                    {
                        (seed, src): _WelfordPartial(*part.as_tuple())
                        for src, part in value.partials.items()
                    }
                )
            merged[f"{key} mean"] = pooled_w.mean
            merged[f"{key} stddev"] = pooled_w.stddev
        else:
            merged[key] = fsum_mean(values)
    return merged


def measurement_digest(rows: Iterable[tuple[Any, str, Mapping[str, float]]]) -> str:
    """Canonical digest of folded sweep points (byte-identity checks).

    Floats are hashed via :meth:`float.hex` — full precision, no repr
    rounding — so two runs digest equal iff every merged metric is
    bit-identical.
    """
    digest = hashlib.sha256()
    for parameter, protocol, values in rows:
        digest.update(repr(parameter).encode())
        digest.update(protocol.encode())
        for key in sorted(values):
            value = values[key]
            encoded = float(value).hex() if isinstance(value, float) else repr(value)
            digest.update(key.encode())
            digest.update(encoded.encode())
    return digest.hexdigest()
