"""Per-run metrics collection.

One :class:`MetricsCollector` is shared by all replicas of a cluster.  It
records transaction outcomes and exposes the derived quantities the
experiments report: throughput, commit latency distribution, abort taxonomy
and restart counts.  Message accounting lives in
:class:`repro.net.network.NetworkStats`; the cluster result object joins the
two.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from typing import TYPE_CHECKING

from repro.analysis.stats import Summary, summarize

if TYPE_CHECKING:  # imported lazily to avoid a package-level import cycle
    from repro.core.transaction import AbortReason, Transaction


@dataclass
class TxOutcome:
    """Final fate of one transaction attempt."""

    tx_id: str
    spec_name: str
    home: int
    read_only: bool
    committed: bool
    submit_time: float
    end_time: float
    abort_reason: Optional[AbortReason] = None

    @property
    def latency(self) -> float:
        return self.end_time - self.submit_time


@dataclass
class MetricsCollector:
    """Shared sink for transaction outcomes."""

    outcomes: list[TxOutcome] = field(default_factory=list)
    aborts_by_reason: Counter = field(default_factory=Counter)
    deadlocks_detected: int = 0
    local_reader_preemptions: int = 0
    # RBP in-doubt termination (decision queries; see PROTOCOLS.md).
    rbp_in_doubt: int = 0
    rbp_in_doubt_waits: int = 0
    rbp_decision_queries: int = 0
    rbp_decision_answers: int = 0
    rbp_resolved_by_query_commit: int = 0
    rbp_resolved_by_query_abort: int = 0
    rbp_resolved_by_presumption: int = 0
    # Home-side write-phase watchdog firings (stalled ack round aborted
    # retryably; see ReliableBroadcastReplica.write_grace).
    rbp_write_timeouts: int = 0
    # Home-side vote-phase watchdog firings (stalled tally, no view change:
    # the commit request is idempotently re-broadcast to recover lost votes).
    rbp_vote_retries: int = 0

    def tx_committed(self, tx: Transaction, end_time: float) -> None:
        self.outcomes.append(
            TxOutcome(
                tx_id=tx.tx_id,
                spec_name=tx.spec.name,
                home=tx.home,
                read_only=tx.read_only,
                committed=True,
                submit_time=tx.submit_time,
                end_time=end_time,
            )
        )

    def tx_aborted(self, tx: Transaction, reason: AbortReason, end_time: float) -> None:
        self.aborts_by_reason[reason] += 1
        self.outcomes.append(
            TxOutcome(
                tx_id=tx.tx_id,
                spec_name=tx.spec.name,
                home=tx.home,
                read_only=tx.read_only,
                committed=False,
                submit_time=tx.submit_time,
                end_time=end_time,
                abort_reason=reason,
            )
        )

    # -- derived quantities ----------------------------------------------------

    @property
    def committed(self) -> list[TxOutcome]:
        return [o for o in self.outcomes if o.committed]

    @property
    def aborted(self) -> list[TxOutcome]:
        return [o for o in self.outcomes if not o.committed]

    def committed_update_count(self) -> int:
        return sum(1 for o in self.committed if not o.read_only)

    def committed_readonly_count(self) -> int:
        return sum(1 for o in self.committed if o.read_only)

    def abort_rate(self) -> float:
        """Aborted attempts / all attempts (update and read-only alike)."""
        if not self.outcomes:
            return 0.0
        return len(self.aborted) / len(self.outcomes)

    def update_abort_rate(self) -> float:
        updates = [o for o in self.outcomes if not o.read_only]
        if not updates:
            return 0.0
        return sum(1 for o in updates if not o.committed) / len(updates)

    def readonly_abort_count(self, include_environmental: bool = False) -> int:
        """Protocol-level read-only aborts — the paper's claim: zero, in
        every protocol.

        A read-only transaction whose *home site crashed* under it is not
        a protocol abort (no conflict rule fired; the machine died), so
        ``site_failure`` outcomes are excluded unless
        ``include_environmental`` is set.
        """
        from repro.core.transaction import AbortReason

        return sum(
            1
            for o in self.aborted
            if o.read_only
            and (include_environmental or o.abort_reason is not AbortReason.SITE_FAILURE)
        )

    def commit_latency(self, read_only: Optional[bool] = None) -> Summary:
        values = [
            o.latency
            for o in self.committed
            if read_only is None or o.read_only == read_only
        ]
        return summarize(values)

    def throughput(self, duration: float) -> float:
        """Committed transactions per unit time."""
        if duration <= 0:
            return 0.0
        return len(self.committed) / duration

    def attempts_per_commit(self) -> float:
        """Average attempts needed per committed spec (restart overhead)."""
        attempts: Counter = Counter()
        committed_specs: set[str] = set()
        for outcome in self.outcomes:
            attempts[outcome.spec_name] += 1
            if outcome.committed:
                committed_specs.add(outcome.spec_name)
        if not committed_specs:
            return 0.0
        total = sum(attempts[name] for name in sorted(committed_specs))
        return total / len(committed_specs)
