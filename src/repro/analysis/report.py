"""ASCII table rendering for benchmark output.

The benchmark harness prints tables in the same "rows the paper reports"
spirit: one row per sweep point, one column per protocol or metric.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


class Table:
    """A simple right-aligned ASCII table."""

    def __init__(self, columns: Sequence[str], title: str = ""):
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([_format_cell(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(
            column.ljust(widths[index]) for index, column in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-+-".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(
                " | ".join(cell.rjust(widths[index]) for index, cell in enumerate(row))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format_cell(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_ratio(numerator: float, denominator: float) -> str:
    """Human-readable ratio like '3.1x' (guarding zero denominators)."""
    if denominator == 0:
        return "inf"
    return f"{numerator / denominator:.1f}x"


def bullet_list(items: Iterable[str]) -> str:
    """Render items as an indented dash list."""
    return "\n".join(f"  - {item}" for item in items)
