"""Message sequence diagrams from network captures.

With capture enabled, the network records every delivered datagram; this
module renders the flow between sites as an ASCII sequence diagram —
invaluable when explaining or debugging a protocol round:

    t=0.00    s0 ──rbp.write──────────▶ s1
    t=0.00    s0 ──rbp.write──────────▶ s2
    t=1.31    s1 ──rbp.write_ack─────▶ s0
    ...

Use :func:`attach_capture` before the run, then
:func:`render_sequence` afterwards (optionally filtered by message kind
prefix or a time window).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.network import Datagram, Network


@dataclass(frozen=True)
class CapturedMessage:
    """One delivered datagram, as captured for diagramming."""

    time: float
    src: int
    dst: int
    kind: str


class MessageCapture:
    """Collects delivered datagrams from a network."""

    def __init__(self, capacity: int = 100_000):
        self.capacity = capacity
        self.messages: list[CapturedMessage] = []

    def record(self, datagram: Datagram) -> None:
        if len(self.messages) >= self.capacity:
            return
        self.messages.append(
            CapturedMessage(
                datagram.deliver_time, datagram.src, datagram.dst, datagram.kind
            )
        )

    def filtered(
        self,
        kind_prefix: str = "",
        start: float = 0.0,
        end: Optional[float] = None,
        exclude: tuple[str, ...] = (),
    ) -> list[CapturedMessage]:
        """Messages matching a kind prefix inside a time window."""
        result = []
        for message in self.messages:
            if not message.kind.startswith(kind_prefix):
                continue
            if message.kind.startswith(exclude) and exclude:
                continue
            if message.time < start:
                continue
            if end is not None and message.time > end:
                continue
            result.append(message)
        return result

    def __len__(self) -> int:
        return len(self.messages)


def attach_capture(network: Network, capacity: int = 100_000) -> MessageCapture:
    """Wrap the network's delivery path with a capture hook."""
    capture = MessageCapture(capacity)
    original = network._deliver

    def capturing_deliver(datagram: Datagram) -> None:
        was_up = network.site_is_up(datagram.dst)
        original(datagram)
        if was_up:
            capture.record(datagram)

    network._deliver = capturing_deliver  # type: ignore[method-assign]
    return capture


def render_sequence(
    messages: list[CapturedMessage],
    num_sites: Optional[int] = None,
    max_lines: int = 200,
) -> str:
    """ASCII sequence diagram of the captured messages, in time order."""
    if not messages:
        return "(no messages captured)"
    ordered = sorted(messages, key=lambda m: (m.time, m.src, m.dst))[:max_lines]
    widest_kind = max(len(m.kind) for m in ordered)
    lines = []
    for message in ordered:
        arrow_body = message.kind.ljust(widest_kind, "─")
        lines.append(
            f"t={message.time:9.2f}  s{message.src} ──{arrow_body}"
            f"─▶ s{message.dst}"
        )
    if len(messages) > max_lines:
        lines.append(f"... {len(messages) - max_lines} more messages elided")
    return "\n".join(lines)


def message_matrix(messages: list[CapturedMessage], num_sites: int) -> list[list[int]]:
    """Counts of messages from row site to column site."""
    matrix = [[0] * num_sites for _ in range(num_sites)]
    for message in messages:
        matrix[message.src][message.dst] += 1
    return matrix
