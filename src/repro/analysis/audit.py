"""Post-run cluster auditing: every invariant in one sweep.

The serialization checker covers correctness of the *history*; this
auditor covers the *machine state* a clean run must leave behind:

- no locks held or queued once the system is quiescent;
- no in-flight protocol state (buffered writes, pending votes/echoes);
- store/WAL agreement (checkpoint + log tail reproduces the store);
- replica convergence and one-copy serializability (delegated);
- read-only guarantee (no protocol-level read-only aborts);
- trace completeness (a capacity-truncated trace log is flagged, so a
  truncated trace is never read as a complete history).

Tests call :func:`audit_cluster` after draining a run and assert the
finding list is empty; each finding is a human-readable sentence naming
the site and the residue, which makes protocol state leaks immediately
diagnosable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.db.serialization import replicas_converged

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cluster import Cluster


@dataclass(frozen=True)
class Finding:
    """One audit violation."""

    site: int  # -1 for cluster-wide findings
    category: str
    detail: str

    def __str__(self) -> str:
        where = f"site {self.site}" if self.site >= 0 else "cluster"
        return f"[{self.category}] {where}: {self.detail}"


def audit_cluster(cluster: "Cluster", strict_wal: bool = True) -> list[Finding]:
    """Run every post-quiescence check; returns the (ideally empty) findings."""
    findings: list[Finding] = []
    findings.extend(_audit_trace(cluster))
    findings.extend(_audit_serialization(cluster))
    for replica in cluster.replicas:
        if not replica.alive:
            continue
        findings.extend(_audit_locks(replica))
        findings.extend(_audit_protocol_state(replica))
        if strict_wal:
            findings.extend(_audit_wal(replica))
    findings.extend(_audit_readonly(cluster))
    return findings


def _audit_trace(cluster: "Cluster") -> list[Finding]:
    """Flag truncated trace logs: any analysis over ``cluster.trace`` (and
    any test asserting on it) would otherwise silently read an incomplete
    history as a complete one — ``emit`` keeps counting past ``capacity``
    while dropping the records themselves."""
    trace = getattr(cluster, "trace", None)
    if trace is None or not getattr(trace, "dropped", 0):
        return []
    return [
        Finding(
            -1,
            "trace-truncated",
            f"trace log dropped {trace.dropped} records at capacity="
            f"{trace.capacity}; cluster.trace is an incomplete history",
        )
    ]


def _audit_serialization(cluster: "Cluster") -> list[Finding]:
    findings = []
    result = cluster.recorder.check()
    if not result.ok:
        findings.append(Finding(-1, "serialization", result.explain()))
    live = [r.store for r in cluster.replicas if r.alive]
    if not replicas_converged(live):
        findings.append(Finding(-1, "convergence", "live replicas diverge"))
    return findings


def _audit_locks(replica) -> list[Finding]:
    findings = []
    for key in sorted(replica.store.keys()):
        holders = replica.locks.holders_of(key)
        if holders:
            findings.append(
                Finding(
                    replica.site,
                    "lock-leak",
                    f"{key} still held by {sorted(map(str, holders))}",
                )
            )
        queued = replica.locks.queued(key)
        if queued:
            findings.append(
                Finding(
                    replica.site,
                    "lock-queue-leak",
                    f"{key} has {len(queued)} queued requests",
                )
            )
    cycle = replica.locks.find_cycle()
    if cycle:
        findings.append(
            Finding(replica.site, "deadlock", f"standing waits-for cycle {cycle}")
        )
    return findings


def _audit_protocol_state(replica) -> list[Finding]:
    findings = []
    # Protocol-specific in-flight state that must drain by quiescence.
    leak_attrs = {
        "_buffered": "buffered writes",
        "_write_round": "open write rounds",
        "_write_queue": "unsent writes",
        "_votes": "open vote tallies",
        "_write_seen": "live orphan watchdogs",
        "_queries": "open decision queries",
        "_query_waiters": "unserved decision-query waiters",
        "_states": "pending commit states",
        "_shipped": "undelivered shipped write sets",
    }
    # detcheck: ignore[D104] — literal dict above; source order is the spec.
    for attribute, label in leak_attrs.items():
        residue = getattr(replica, attribute, None)
        if residue:
            non_empty = {
                k: v for k, v in residue.items() if v or v == 0
            } if isinstance(residue, dict) else residue
            if non_empty:
                findings.append(
                    Finding(
                        replica.site,
                        "protocol-leak",
                        f"{label}: {list(non_empty)[:4]}"
                        + ("..." if len(non_empty) > 4 else ""),
                    )
                )
    if replica.local:
        findings.append(
            Finding(
                replica.site,
                "protocol-leak",
                f"non-terminal local transactions: {sorted(replica.local)[:4]}",
            )
        )
    return findings


def _audit_wal(replica) -> list[Finding]:
    rebuilt = replica.rebuild_from_local_log()
    if rebuilt.digest() != replica.store.digest():
        return [
            Finding(
                replica.site,
                "wal-mismatch",
                "checkpoint + WAL replay does not reproduce the store",
            )
        ]
    return []


def _audit_readonly(cluster: "Cluster") -> list[Finding]:
    count = cluster.metrics.readonly_abort_count()
    if count:
        return [
            Finding(
                -1,
                "readonly-abort",
                f"{count} protocol-level read-only aborts (paper guarantees zero)",
            )
        ]
    return []


def assert_clean(cluster: "Cluster", strict_wal: bool = True) -> None:
    """Raise AssertionError listing every finding, if any."""
    findings = audit_cluster(cluster, strict_wal=strict_wal)
    if findings:
        raise AssertionError(
            "cluster audit failed:\n" + "\n".join(f"  {f}" for f in findings)
        )
