"""Small statistics helpers for experiment reporting."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile; ``fraction`` in [0, 1]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= fraction <= 1:
        raise ValueError("fraction must be in [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return ordered[low]
    weight = position - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (raises on empty input).

    Uses :func:`math.fsum` so the result is exactly rounded — and therefore
    independent of any upstream reordering of equal-content inputs, which
    the parallel sweep merge relies on.
    """
    if not values:
        raise ValueError("mean of empty sequence")
    return math.fsum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (0 for fewer than two values)."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(math.fsum((v - mu) ** 2 for v in values) / (len(values) - 1))


def confidence_interval(values: Sequence[float], z: float = 1.96) -> tuple[float, float]:
    """Normal-approximation confidence interval for the mean."""
    if not values:
        raise ValueError("confidence interval of empty sequence")
    mu = mean(values)
    half = z * stddev(values) / math.sqrt(len(values))
    return (mu - half, mu + half)


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3f} p50={self.p50:.3f} "
            f"p95={self.p95:.3f} p99={self.p99:.3f} "
            f"min={self.minimum:.3f} max={self.maximum:.3f}"
        )


def summarize(values: Iterable[float]) -> Summary:
    """Build a :class:`Summary` (all-zero for an empty sample)."""
    data = list(values)
    if not data:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return Summary(
        count=len(data),
        mean=mean(data),
        p50=percentile(data, 0.50),
        p95=percentile(data, 0.95),
        p99=percentile(data, 0.99),
        minimum=min(data),
        maximum=max(data),
    )
