"""Measurement, statistics and reporting for experiments."""

from repro.analysis.audit import Finding, assert_clean, audit_cluster
from repro.analysis.charts import AsciiChart, chart_sweep
from repro.analysis.experiment import ExperimentSweep
from repro.analysis.metrics import MetricsCollector, TxOutcome
from repro.analysis.report import Table
from repro.analysis.stats import Summary, confidence_interval, percentile, summarize
from repro.analysis.timeline import TimelineBuilder, render_timeline

__all__ = [
    "AsciiChart",
    "ExperimentSweep",
    "Finding",
    "assert_clean",
    "audit_cluster",
    "chart_sweep",
    "MetricsCollector",
    "Summary",
    "Table",
    "TimelineBuilder",
    "TxOutcome",
    "confidence_interval",
    "percentile",
    "render_timeline",
    "summarize",
]
