"""Measurement, statistics and reporting for experiments."""

from repro.analysis.audit import Finding, assert_clean, audit_cluster
from repro.analysis.charts import AsciiChart, chart_sweep
from repro.analysis.experiment import ExperimentSweep, run_sweep
from repro.analysis.metrics import (
    MetricsCollector,
    QuantileAccumulator,
    TxOutcome,
    WelfordAccumulator,
    measurement_digest,
    merge_seed_measurements,
)
from repro.analysis.report import Table
from repro.analysis.stats import Summary, confidence_interval, percentile, summarize
from repro.analysis.timeline import TimelineBuilder, render_timeline

__all__ = [
    "AsciiChart",
    "ExperimentSweep",
    "Finding",
    "assert_clean",
    "audit_cluster",
    "chart_sweep",
    "MetricsCollector",
    "QuantileAccumulator",
    "Summary",
    "Table",
    "TimelineBuilder",
    "TxOutcome",
    "WelfordAccumulator",
    "confidence_interval",
    "measurement_digest",
    "merge_seed_measurements",
    "percentile",
    "render_timeline",
    "run_sweep",
    "summarize",
]
