"""Performance-regression harness: timed benchmarks + JSON trajectory.

The experiments in ``benchmarks/`` regenerate the paper's *comparative*
claims; this module makes the harness's own *speed* a tracked artifact.  It
times

- two **macro** configurations representative of E1 (message cost, 8 sites,
  CBP) and E5 (throughput, ABP at MPL 8) and reports simulated events/sec,
  wall-clock, and the run's simulated commit-latency p50/p95;
- two **micro** benchmarks isolating the kernel hot paths this repo's
  optimisation PRs target: engine schedule/cancel timer churn and
  vector-clock comparisons;
- a **sweep-scaling** entry (one cell, many seeds) that times the
  seed-sharded parallel scheduler against its serial run, asserts the two
  are byte-identical, and reports the speedup at ``--jobs`` workers.

``scripts/bench_report.py`` runs the suite, writes the next ``BENCH_N.json``
at the repository root and compares against the previous one with a
configurable tolerance, so a kernel regression fails loudly instead of
silently eating every later experiment's wall-clock budget.

Wall-clock numbers are hardware-dependent; the JSON embeds enough context
(python version, quick/full mode) that comparisons only happen between
like-for-like reports.
"""

# detcheck: file-ignore[D102] — wall-clock timing is this module's purpose;
# nothing here feeds back into simulated behavior.

from __future__ import annotations

import json
import pathlib
import platform
import re
import time
from dataclasses import dataclass, field
from typing import Any

SCHEMA_VERSION = 1

BENCH_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")


@dataclass
class BenchResult:
    """One timed benchmark."""

    name: str
    wall_s: float
    ops: int  #: work units done: simulation events (macro) or operations (micro)
    unit: str  #: what ``ops`` counts, e.g. "events", "compares"
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.wall_s if self.wall_s > 0 else float("inf")

    def to_json(self) -> dict[str, Any]:
        return {
            "wall_s": round(self.wall_s, 6),
            "ops": self.ops,
            "unit": self.unit,
            "ops_per_sec": round(self.ops_per_sec, 3),
            "metrics": {k: round(v, 6) for k, v in sorted(self.metrics.items())},
        }


# -- micro benchmarks ---------------------------------------------------------


def bench_engine_churn(timers: int = 100_000, quick: bool = False) -> BenchResult:
    """ARQ-style schedule/cancel churn through the event loop.

    Mimics what a lossy-network run does to the kernel: arm a timer, cancel
    most of them before they fire, keep going.  Exercises the lazy-compaction
    path; ``metrics`` reports the final heap size so a compaction regression
    (heap pinned by cancelled entries) is visible, not just slow.
    """
    from repro.sim.engine import SimulationEngine

    if quick:
        timers //= 10
    engine = SimulationEngine()
    pending: list = []

    def churn(round_no: int) -> None:
        # Cancel what the previous round armed (acks arrived)...
        for handle in pending:
            handle.cancel()
        pending.clear()
        if round_no <= 0:
            return
        # ...and arm a fresh burst of retransmit timers.
        for i in range(10):
            pending.append(engine.schedule(5.0 + i, lambda: None))
        engine.schedule(1.0, churn, round_no - 1)

    started = time.perf_counter()
    engine.schedule(0.0, churn, timers // 10)
    engine.run()
    wall = time.perf_counter() - started
    return BenchResult(
        name="engine_churn",
        wall_s=wall,
        ops=engine.events_processed,
        unit="events",
        metrics={
            "timers_armed": float(timers),
            "final_heap": float(engine.heap_size()),
            "compactions": float(engine.compactions),
        },
    )


def bench_vector_clock(sites: int = 8, iterations: int = 60_000, quick: bool = False) -> BenchResult:
    """Fused vs chained comparison throughput on CBP-shaped clocks."""
    from repro.sim.rng import RngRegistry
    from repro.broadcast.vector_clock import VectorClock

    if quick:
        iterations //= 10
    rng = RngRegistry(4242).stream("perf.vclock")
    clocks = [
        VectorClock([rng.randrange(0, 50) for _ in range(sites)]) for _ in range(256)
    ]
    pairs = [
        (clocks[rng.randrange(len(clocks))], clocks[rng.randrange(len(clocks))])
        for _ in range(512)
    ]
    started = time.perf_counter()
    sink = 0
    for i in range(iterations):
        a, b = pairs[i % len(pairs)]
        sink += a.compare(b)
        if a.concurrent_with(b):
            sink += 1
    wall = time.perf_counter() - started
    return BenchResult(
        name="vector_clock_compare",
        wall_s=wall,
        ops=iterations * 2,  # one compare() + one concurrent_with() per loop
        unit="compares",
        metrics={"sites": float(sites), "checksum": float(sink)},
    )


# -- macro benchmarks (representative experiment configs) ----------------------


def _run_macro(name: str, protocol: str, quick: bool, **knobs: Any) -> BenchResult:
    from repro.core.cluster import Cluster, ClusterConfig
    from repro.workload.generator import WorkloadConfig
    from repro.workload.runner import ClosedLoopRunner

    cluster_kw = dict(knobs)
    workload_kw: dict[str, Any] = cluster_kw.pop("workload")
    transactions = cluster_kw.pop("transactions")
    mpl = cluster_kw.pop("mpl")
    if quick:
        transactions = max(8, transactions // 4)
    cluster = Cluster(ClusterConfig(protocol=protocol, **cluster_kw))
    runner = ClosedLoopRunner(
        cluster, WorkloadConfig(**workload_kw), mpl=mpl, transactions=transactions
    )
    started = time.perf_counter()
    runner.start()
    result = cluster.run(max_time=5_000_000.0)
    wall = time.perf_counter() - started
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged, "replicas diverged"
    latency = result.metrics.commit_latency(read_only=False)
    metrics = {
        "committed": float(result.committed_specs),
        "sim_duration_ms": result.duration,
        "messages": float(result.network_stats["sent"]),
    }
    if latency.count:
        metrics["latency_p50_ms"] = latency.p50
        metrics["latency_p95_ms"] = latency.p95
    return BenchResult(
        name=name,
        wall_s=wall,
        ops=cluster.engine.events_processed,
        unit="events",
        metrics=metrics,
    )


def bench_e1_representative(quick: bool = False) -> BenchResult:
    """E1's shape: message cost under CBP, 8 sites, 4 writes/txn."""
    return _run_macro(
        "e1_message_cost_cbp",
        "cbp",
        quick,
        num_sites=8,
        num_objects=256,
        seed=42,
        cbp_heartbeat=25.0,
        transactions=48,
        mpl=4,
        workload=dict(
            num_objects=256, num_sites=8, read_ops=4, write_ops=4, zipf_theta=0.0
        ),
    )


def bench_e5_representative(quick: bool = False) -> BenchResult:
    """E5's pytest-benchmark cell: ABP throughput at MPL 8, theta 0.4."""
    return _run_macro(
        "e5_throughput_abp",
        "abp",
        quick,
        num_sites=4,
        num_objects=48,
        seed=21,
        cbp_heartbeat=15.0,
        max_attempts=80,
        retry_backoff=4.0,
        transactions=60,
        mpl=8,
        workload=dict(
            num_objects=48, num_sites=4, read_ops=2, write_ops=2, zipf_theta=0.4
        ),
    )


def bench_e9_representative(quick: bool = False) -> BenchResult:
    """E9's shape: RBP riding through a crash/recover and a partition/heal
    under a closed-loop workload, with the failure detector driving view
    changes and decision queries terminating the in-doubt cohorts.

    Beyond events/sec, the report embeds the termination counters and the
    update commit-latency tail: a blocked-transaction tail (a cohort pinned
    on an outcome it cannot learn) would surface as unanswered clients —
    asserted to be zero — or a latency-p95 cliff in the trajectory.
    """
    from repro.core.cluster import Cluster, ClusterConfig
    from repro.sim.faults import FaultSchedule
    from repro.workload.generator import WorkloadConfig
    from repro.workload.runner import ClosedLoopRunner

    transactions = 24 if quick else 96
    cluster = Cluster(
        ClusterConfig(
            protocol="rbp",
            num_sites=5,
            num_objects=64,
            seed=97,
            enable_failure_detector=True,
            fd_interval=20.0,
            fd_timeout=80.0,
            relay=True,
            max_attempts=40,
            retry_backoff=5.0,
        )
    )
    # The think time stretches the workload across the fault timeline: a
    # crash/recover of site 4 early on, then a transient partition aimed
    # into an active 2PC window, with the home crashing inside the split.
    runner = ClosedLoopRunner(
        cluster,
        WorkloadConfig(
            num_objects=64, num_sites=5, read_ops=2, write_ops=2, zipf_theta=0.2
        ),
        mpl=4,
        transactions=transactions,
        think_time=60.0,
    )
    # The cut at t=1108 lands between a site-4-homed transaction's commit
    # request and its votes (under seed 97): the cohort caught on the home's
    # side prepares but its vote reaches nobody, and the home then crashes
    # undecided — so the full-mode run exercises in-doubt entry, decision
    # queries, and the presumed-abort fallback, not just clean failover.
    # The heal at t=1148 is shorter than fd_timeout, which also strands a
    # few mid-write-round acks: the write-phase watchdog must retire those
    # retryably (rbp_write_timeouts below) or clients block forever.
    FaultSchedule(cluster).crash(4, at=300.0).recover(4, at=900.0).partition(
        [[2, 4], [0, 1, 3]], at=1108.0
    ).heal(at=1148.0).crash(4, at=1111.0).recover(4, at=1600.0)
    started = time.perf_counter()
    runner.start()
    # Think time opens all-final lulls between submissions; stop only once
    # every planned transaction has been submitted and answered.
    result = cluster.run(
        max_time=5_000_000.0, stop_when=cluster.await_specs(transactions)
    )
    wall = time.perf_counter() - started
    assert result.serialization.ok, result.serialization.explain()
    assert result.converged, "replicas diverged"
    assert result.incomplete_specs == 0, "blocked-transaction tail: unanswered clients"
    latency = result.metrics.commit_latency(read_only=False)
    m = result.metrics
    metrics = {
        "committed": float(result.committed_specs),
        "failed": float(result.failed_specs),
        "sim_duration_ms": result.duration,
        "messages": float(result.network_stats["sent"]),
        "rbp_in_doubt": float(m.rbp_in_doubt),
        "rbp_decision_queries": float(m.rbp_decision_queries),
        "rbp_resolved_by_query_commit": float(m.rbp_resolved_by_query_commit),
        "rbp_resolved_by_presumption": float(m.rbp_resolved_by_presumption),
        "rbp_write_timeouts": float(m.rbp_write_timeouts),
    }
    if latency.count:
        metrics["latency_p50_ms"] = latency.p50
        metrics["latency_p95_ms"] = latency.p95
    return BenchResult(
        name="e9_failover_rbp",
        wall_s=wall,
        ops=cluster.engine.events_processed,
        unit="events",
        metrics=metrics,
    )


def bench_e12_loss_sweep(quick: bool = False) -> BenchResult:
    """E12's shape: every protocol committing *through* 5% datagram loss and
    partition flaps, with the ARQ transport (epochs, bounded window,
    backed-off retransmission) doing the repairs.

    The report embeds the repair counters: ``retransmissions`` is the
    transport's bill for the loss, and ``rbp_write_timeouts`` — asserted
    zero — is the proof the repairs land before the write-grace watchdog
    would have retired the stalled rounds retryably.
    """
    from repro.core.cluster import Cluster, ClusterConfig
    from repro.sim.faults import FaultSchedule
    from repro.workload.generator import WorkloadConfig
    from repro.workload.runner import ClosedLoopRunner

    protocols = ("rbp",) if quick else ("rbp", "cbp", "abp", "p2p")
    transactions = 12 if quick else 24
    started = time.perf_counter()
    events = 0
    committed = 0
    retransmissions = 0.0
    write_timeouts = 0.0
    sim_ms = 0.0
    for protocol in protocols:
        cluster = Cluster(
            ClusterConfig(
                protocol=protocol,
                num_sites=4,
                num_objects=96,
                seed=97,
                loss_rate=0.05,
                reliable_links=True,
                enable_failure_detector=True,
                fd_interval=20.0,
                fd_timeout=150.0,
                relay=True,
                max_attempts=40,
                retry_backoff=5.0,
            )
        )
        # Flaps shorter than the detector timeout: no view change, so every
        # dropped datagram is the transport's to repair.  The cadence puts
        # every split inside the closed-loop workload's active window.
        FaultSchedule(cluster).flap(
            [[0, 1, 2], [3]], at=80.0, hold=50.0, gap=120.0, cycles=3
        )
        runner = ClosedLoopRunner(
            cluster,
            WorkloadConfig(num_objects=96, num_sites=4, read_ops=2, write_ops=1),
            mpl=4,
            transactions=transactions,
            think_time=20.0,
        )
        runner.start()
        result = cluster.run(
            max_time=5_000_000.0, stop_when=cluster.await_specs(transactions)
        )
        assert result.serialization.ok, result.serialization.explain()
        assert result.converged, "replicas diverged"
        assert result.incomplete_specs == 0, "unanswered clients under loss"
        events += cluster.engine.events_processed
        committed += result.committed_specs
        retransmissions += result.network_stats["retransmissions"]
        write_timeouts += result.metrics.rbp_write_timeouts
        sim_ms += result.duration
    wall = time.perf_counter() - started
    assert write_timeouts == 0, "ARQ failed to repair a write round in time"
    return BenchResult(
        name="e12_loss_sweep",
        wall_s=wall,
        ops=events,
        unit="events",
        metrics={
            "protocols": float(len(protocols)),
            "committed": float(committed),
            "retransmissions": retransmissions,
            "rbp_write_timeouts": write_timeouts,
            "sim_duration_ms": sim_ms,
        },
    )


def bench_e13_churn_soak(quick: bool = False) -> BenchResult:
    """E13's shape: rolling-restart churn soaks with the oracles armed,
    probed along the size axis.

    Each probe is a complete :func:`repro.workload.soak.run_churn_soak`
    cell — scaled failure-detector cadence, seeded churn plan, closed-loop
    clients, ring-buffer tracing — so the wall-clock covers everything a
    real E13 sweep pays per cell, state transfers included.  The headline
    metric is ``max_sites_at_interactive_speed``: the largest probed
    cluster whose soak advances simulated time at least as fast as wall
    time, for RBP (the suite's slowest protocol at scale — its per-write
    vote rounds are O(n) messages each).  Later PRs push this number up.
    """
    from repro.workload.soak import SoakConfig, run_churn_soak

    sizes = (12, 24) if quick else (50, 100, 200)
    duration = 8_000.0 if quick else 20_000.0
    started = time.perf_counter()
    events = 0
    metrics: dict[str, float] = {}
    max_interactive = 0.0
    for sites in sizes:
        cell_started = time.perf_counter()
        cell = run_churn_soak(
            "rbp",
            SoakConfig(sites=sites, duration=duration, trace=True, trace_capacity=5_000),
            seed=1,
        )
        cell_wall = time.perf_counter() - cell_started
        speed = (cell["duration_ms"] / 1_000.0) / cell_wall if cell_wall > 0 else 0.0
        events += int(cell["events"])
        metrics[f"speed_x_{sites}_sites"] = speed
        metrics[f"committed_{sites}_sites"] = cell["committed"]
        metrics[f"max_stall_ms_{sites}_sites"] = cell["max_stall_ms"]
        if speed >= 1.0:
            max_interactive = float(sites)
    metrics["max_sites_at_interactive_speed"] = max_interactive
    metrics["sim_duration_ms_per_cell"] = duration
    return BenchResult(
        name="e13_churn_soak",
        wall_s=time.perf_counter() - started,
        ops=events,
        unit="events",
        metrics=metrics,
    )


def bench_e14_batching(quick: bool = False) -> BenchResult:
    """E14's shape: broadcast batching against passthrough on lossy links.

    Two before/after pairs, both at 5% datagram loss (the regime the
    batching layer exists for — every coalesced datagram is a loss trial
    that never happens):

    - an **E5-shaped throughput pair** (ABP, MPL 8, conflict-free): the
      report's ``e5_speedup_x`` is the batched run's committed txn/s over
      the passthrough run's — the headline step change;
    - an **E1-shaped byte-cost pair** (CBP, 8 sites, 4 writes/txn): the
      report's ``e1_bytes_drop_frac`` is the fractional drop in wire bytes
      per committed update from shared headers, group commit, and delta
      vector clocks.

    Both pairs assert the batched run commits exactly the transactions the
    passthrough run does; the speed numbers are meaningless otherwise.
    """
    from repro.broadcast.batching import BatchingConfig
    from repro.core.cluster import Cluster, ClusterConfig
    from repro.workload.generator import WorkloadConfig
    from repro.workload.runner import ClosedLoopRunner

    def run_pair(protocol, sites, mpl, transactions, workload_kw, **cluster_kw):
        cells = []
        for batching in (None, BatchingConfig(flush_window=2.0)):
            cluster = Cluster(
                ClusterConfig(
                    protocol=protocol,
                    num_sites=sites,
                    loss_rate=0.05,
                    batching=batching,
                    **cluster_kw,
                )
            )
            runner = ClosedLoopRunner(
                cluster,
                WorkloadConfig(**workload_kw),
                mpl=mpl,
                transactions=transactions,
            )
            runner.start()
            result = cluster.run(max_time=5_000_000.0)
            assert result.serialization.ok, result.serialization.explain()
            assert result.converged, "replicas diverged"
            cells.append((cluster, result))
        assert {n for n, s in cells[0][0]._specs.items() if s.committed} == {
            n for n, s in cells[1][0]._specs.items() if s.committed
        }, "batching changed the committed set"
        return cells

    started = time.perf_counter()
    e5_tx = 24 if quick else 100
    e5_cells = run_pair(
        "abp",
        4,
        8,
        e5_tx,
        dict(num_objects=256, num_sites=4, read_ops=2, write_ops=2, zipf_theta=0.0),
        num_objects=256,
        seed=21,
    )
    e1_tx = 12 if quick else 48
    e1_cells = run_pair(
        "cbp",
        8,
        4,
        e1_tx,
        dict(num_objects=256, num_sites=8, read_ops=4, write_ops=4, zipf_theta=0.0),
        num_objects=256,
        seed=42,
        cbp_heartbeat=25.0,
    )
    wall = time.perf_counter() - started

    def txn_s(result):
        return result.metrics.throughput(result.duration) * 1000.0

    def bytes_per_update(result):
        return result.network_stats["bytes_sent"] / max(
            result.metrics.committed_update_count(), 1
        )

    (_, e5_base), (_, e5_batched) = e5_cells
    (_, e1_base), (_, e1_batched) = e1_cells
    events = sum(cluster.engine.events_processed for cluster, _ in e5_cells + e1_cells)
    e1_drop = 1.0 - bytes_per_update(e1_batched) / bytes_per_update(e1_base)
    return BenchResult(
        name="e14_batching",
        wall_s=wall,
        ops=events,
        unit="events",
        metrics={
            "e5_txn_s_passthrough": txn_s(e5_base),
            "e5_txn_s_batched": txn_s(e5_batched),
            "e5_speedup_x": txn_s(e5_batched) / txn_s(e5_base),
            "e5_datagrams_passthrough": float(e5_base.network_stats["sent"]),
            "e5_datagrams_batched": float(e5_batched.network_stats["sent"]),
            "e1_bytes_per_update_passthrough": bytes_per_update(e1_base),
            "e1_bytes_per_update_batched": bytes_per_update(e1_batched),
            "e1_bytes_drop_frac": e1_drop,
        },
    )


# -- sweep scaling (seed-sharded parallel sweeps) ------------------------------


def _sweep_scaling_cell(protocol: str, mpl: int, seed: int) -> dict:
    """One seed of the scaling sweep's single cell (picklable, module-level
    so the worker pool can ship it).  Reports the commit-latency
    distribution as a mergeable accumulator, so the sweep's percentiles are
    pooled across seeds through the order-canonical merge layer."""
    from repro.analysis.metrics import QuantileAccumulator
    from repro.core.cluster import Cluster, ClusterConfig
    from repro.workload.generator import WorkloadConfig
    from repro.workload.runner import ClosedLoopRunner

    cluster = Cluster(
        ClusterConfig(protocol=protocol, num_sites=4, num_objects=48, seed=seed)
    )
    runner = ClosedLoopRunner(
        cluster,
        WorkloadConfig(
            num_objects=48, num_sites=4, read_ops=2, write_ops=2, zipf_theta=0.3
        ),
        mpl=mpl,
        transactions=24,
    )
    runner.start()
    result = cluster.run(max_time=5_000_000.0)
    assert result.ok, "scaling sweep cell violated invariants"
    latency = QuantileAccumulator()
    for outcome in result.metrics.committed:
        if not outcome.read_only:
            latency.observe(outcome.latency)
    return {
        "events": float(cluster.engine.events_processed),
        "commits": float(result.committed_specs),
        "latency (ms)": latency,
    }


def bench_sweep_scaling(jobs: int = 4, quick: bool = False) -> BenchResult:
    """Seed-sharded sweep throughput: one cell, many seeds, serial vs pool.

    The regime the two-level scheduler exists for — a single large cell
    that the old cells-only fan-out would bind to one core.  Times the
    same sweep at ``jobs=1`` and ``jobs=N``, asserts the outcome digests
    are byte-identical (the determinism contract, not just a test-suite
    property), and reports the wall-clock speedup.  On a single-core
    container the speedup hovers around 1x (process scheduling overhead
    included); the metric exists so multi-core trajectories show scaling
    and regressions in either mode fail the gate.
    """
    from repro.analysis.experiment import run_sweep

    seeds = tuple(range(6 if quick else 16))
    sweep_kwargs = dict(
        name="sweep_scaling",
        scenario=_sweep_scaling_cell,
        parameters=(8,),
        protocols=("rbp",),
        seeds=seeds,
    )
    started = time.perf_counter()
    serial = run_sweep(**sweep_kwargs, jobs=1)
    serial_wall = time.perf_counter() - started
    started = time.perf_counter()
    parallel = run_sweep(**sweep_kwargs, jobs=jobs)
    parallel_wall = time.perf_counter() - started
    assert parallel.digest() == serial.digest(), (
        "parallel sweep output diverged from serial"
    )
    events_per_seed = serial.value(8, "rbp", "events")
    total_events = int(events_per_seed * len(seeds))
    return BenchResult(
        name="sweep_scaling_rbp",
        wall_s=parallel_wall,
        ops=total_events,
        unit="events",
        metrics={
            "seeds": float(len(seeds)),
            "jobs": float(jobs),
            "serial_wall_s": serial_wall,
            "parallel_wall_s": parallel_wall,
            "speedup": serial_wall / parallel_wall if parallel_wall > 0 else 0.0,
            "latency_p95_ms": serial.value(8, "rbp", "latency (ms) p95"),
        },
    )


# -- suite / report -----------------------------------------------------------


def run_suite(quick: bool = False, jobs: int = 4) -> list[BenchResult]:
    """Run every benchmark, micro first (they warm nothing up; order is
    cosmetic but stable so reports diff cleanly)."""
    return [
        bench_engine_churn(quick=quick),
        bench_vector_clock(quick=quick),
        bench_e1_representative(quick=quick),
        bench_e5_representative(quick=quick),
        bench_e9_representative(quick=quick),
        bench_e12_loss_sweep(quick=quick),
        bench_e13_churn_soak(quick=quick),
        bench_e14_batching(quick=quick),
        bench_sweep_scaling(jobs=jobs, quick=quick),
    ]


def to_report(results: list[BenchResult], quick: bool = False) -> dict[str, Any]:
    return {
        "schema": SCHEMA_VERSION,
        "quick": quick,
        "python": platform.python_version(),
        "benchmarks": {r.name: r.to_json() for r in results},
    }


def write_report(path: pathlib.Path, report: dict[str, Any]) -> None:
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def load_report(path: pathlib.Path) -> dict[str, Any]:
    return json.loads(path.read_text())


def bench_paths(root: pathlib.Path) -> list[pathlib.Path]:
    """Every BENCH_N.json under ``root``, sorted by N."""
    found = []
    for path in root.iterdir():
        match = BENCH_PATTERN.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return [path for _, path in sorted(found)]


def next_bench_path(root: pathlib.Path) -> pathlib.Path:
    existing = bench_paths(root)
    if not existing:
        return root / "BENCH_1.json"
    last = int(BENCH_PATTERN.match(existing[-1].name).group(1))
    return root / f"BENCH_{last + 1}.json"


def compare_reports(
    baseline: dict[str, Any], current: dict[str, Any], tolerance: float = 0.35
) -> list[str]:
    """Regressions of ``current`` against ``baseline``.

    A benchmark regresses when its ops/sec fell by more than ``tolerance``
    (fractional).  Reports from different modes (quick vs full) are never
    compared — wall-clock simply isn't comparable across workload sizes —
    and that mismatch is reported as a note, not a regression.
    """
    if baseline.get("quick") != current.get("quick"):
        return []
    regressions = []
    base_benches = baseline.get("benchmarks", {})
    for name, entry in sorted(current.get("benchmarks", {}).items()):
        base = base_benches.get(name)
        if base is None:
            continue
        old = base.get("ops_per_sec", 0.0)
        new = entry.get("ops_per_sec", 0.0)
        if old > 0 and new < old * (1.0 - tolerance):
            regressions.append(
                f"{name}: {new:,.0f} {entry.get('unit', 'ops')}/s vs baseline "
                f"{old:,.0f} ({new / old - 1.0:+.1%}, tolerance -{tolerance:.0%})"
            )
    return regressions


def render_results(results: list[BenchResult]) -> str:
    """Human-readable summary table for the console."""
    from repro.analysis.report import Table

    table = Table(
        ["benchmark", "wall (s)", "ops", "ops/sec", "unit"],
        title="perf suite",
    )
    for r in results:
        table.add_row(r.name, r.wall_s, r.ops, r.ops_per_sec, r.unit)
    return table.render()
