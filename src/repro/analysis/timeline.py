"""ASCII transaction timelines from trace logs.

Turns a run's :class:`repro.sim.trace.TraceLog` into a gantt-style view of
every transaction's lifecycle — submission, read completion, terminal
outcome — which makes protocol behaviour (sequential RBP write rounds,
CBP's heartbeat-bound commit waits, baseline deadlock stalls) visible at
a glance:

    T1#1  s0 |----r=============C           |  committed @ 41.2
    T2#1  s1 |      --r=====A               |  aborted (write_conflict)

Legend: ``-`` waiting for read locks, ``r`` reads done, ``=`` executing /
committing, ``C`` committed, ``A`` aborted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.trace import TraceLog


@dataclass
class TxTimeline:
    """Lifecycle timestamps of one transaction attempt."""

    tx_id: str
    site: str = "?"
    submit: Optional[float] = None
    reads_done: Optional[float] = None
    end: Optional[float] = None
    outcome: Optional[str] = None  # "committed" | "aborted:<reason>" | None
    events: list[tuple[float, str]] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.end is not None


class TimelineBuilder:
    """Extracts per-transaction timelines from a trace log."""

    SUBMIT = "tx.submit"
    READS = "tx.reads_done"
    COMMITS = ("tx.commit", "tx.commit_readonly")
    ABORT = "tx.abort"

    def __init__(self, trace: TraceLog):
        self.timelines: dict[str, TxTimeline] = {}
        for record in trace.records:
            tx_id = record.detail.get("tx")
            if tx_id is None:
                continue
            timeline = self.timelines.setdefault(tx_id, TxTimeline(tx_id))
            timeline.events.append((record.time, record.kind))
            if record.kind == self.SUBMIT:
                timeline.submit = record.time
                timeline.site = record.source
            elif record.kind == self.READS:
                timeline.reads_done = record.time
            elif record.kind in self.COMMITS:
                # Only the home's commit ends the timeline; remote applies
                # share the kind "rbp.applied"/"cbp.applied" instead.
                if record.source == timeline.site or timeline.site == "?":
                    timeline.end = record.time
                    timeline.outcome = "committed"
            elif record.kind == self.ABORT:
                if record.source == timeline.site or timeline.site == "?":
                    timeline.end = record.time
                    reason = record.detail.get("reason", "?")
                    timeline.outcome = f"aborted:{reason}"

    def ordered(self) -> list[TxTimeline]:
        return sorted(
            self.timelines.values(),
            key=lambda t: (t.submit if t.submit is not None else float("inf"), t.tx_id),
        )

    def render(self, width: int = 64) -> str:
        """Gantt rendering across the full traced time span."""
        timelines = [t for t in self.ordered() if t.submit is not None]
        if not timelines:
            return "(no transactions traced)"
        start = min(t.submit for t in timelines)
        end = max((t.end if t.end is not None else t.submit) for t in timelines)
        span = max(end - start, 1e-9)

        def column(time: float) -> int:
            return min(int((time - start) / span * (width - 1)), width - 1)

        lines = []
        label_width = max(len(t.tx_id) for t in timelines) + 1
        for t in timelines:
            row = [" "] * width
            begin = column(t.submit)
            reads = column(t.reads_done) if t.reads_done is not None else None
            stop = column(t.end) if t.end is not None else width - 1
            for i in range(begin, stop + 1):
                row[i] = "-"
            if reads is not None:
                for i in range(reads, stop + 1):
                    row[i] = "="
                row[reads] = "r"
            if t.end is not None:
                row[stop] = "C" if t.outcome == "committed" else "A"
            status = t.outcome if t.outcome else "incomplete"
            suffix = f"{status} @ {t.end:.1f}" if t.end is not None else status
            lines.append(
                f"{t.tx_id:<{label_width}} {t.site:<7}|{''.join(row)}|  {suffix}"
            )
        return "\n".join(lines)


def render_timeline(trace: TraceLog, width: int = 64) -> str:
    """Convenience wrapper: trace log -> gantt string."""
    return TimelineBuilder(trace).render(width)
