"""Adversarial workload patterns targeting each protocol's weak spot.

Where :mod:`repro.workload.generator` produces statistically shaped load,
this module produces *structured* schedules that aim a specific stressor
at a specific protocol mechanism:

- :func:`symmetric_race` — pairs of concurrent writers on the same key
  from different homes (CBP's mutual-NACK case; RBP's negative-ack case);
- :func:`write_skew_web` — rings of read-x-write-y transactions whose
  naive interleavings form 1SR cycles (ABP certification's reason to
  exist);
- :func:`opposed_lock_orders` — writers taking the same keys in opposite
  orders (the baseline's distributed-deadlock generator);
- :func:`reader_gauntlet` — long read-only transactions threaded between
  bursts of writers (the read-only never-abort guarantee under pressure);
- :func:`per_op_cross_causality` — interleaved multi-key writers timed to
  produce cross-causal lock queues (CBP per-op mode's cycle backstop).

Each returns ``[(spec, submit_time), ...]`` ready for
:meth:`repro.core.cluster.Cluster.submit`, and the test-suite uses them to
demonstrate that the invariants hold even under targeted attack.
"""

from __future__ import annotations


from repro.core.transaction import TransactionSpec

Schedule = list[tuple[TransactionSpec, float]]


def symmetric_race(
    pairs: int = 6,
    sites: int = 3,
    spacing: float = 120.0,
    jitter: float = 0.1,
) -> Schedule:
    """Two writers per round hit one key from different homes, near-simultaneously."""
    schedule: Schedule = []
    for n in range(pairs):
        key = f"x{n}"
        base = n * spacing
        left_home = n % sites
        right_home = (n + 1) % sites
        schedule.append(
            (TransactionSpec.make(f"raceL{n}", left_home, writes={key: f"L{n}"}), base)
        )
        schedule.append(
            (
                TransactionSpec.make(f"raceR{n}", right_home, writes={key: f"R{n}"}),
                base + jitter,
            )
        )
    return schedule


def write_skew_web(
    rings: int = 4,
    ring_size: int = 3,
    sites: int = 3,
    spacing: float = 150.0,
) -> Schedule:
    """Rings of transactions each reading the next one's write target.

    Within a ring of size k, transaction i reads key i and writes key
    (i+1) mod k, all submitted together: any two adjacent members form an
    rw/rw pair, and committing all of them naively is a 1SR cycle.
    """
    schedule: Schedule = []
    for ring in range(rings):
        base = ring * spacing
        keys = [f"x{ring * ring_size + i}" for i in range(ring_size)]
        for i in range(ring_size):
            read_key = keys[i]
            write_key = keys[(i + 1) % ring_size]
            schedule.append(
                (
                    TransactionSpec.make(
                        f"skew{ring}_{i}",
                        i % sites,
                        read_keys=[read_key],
                        writes={write_key: f"r{ring}i{i}"},
                    ),
                    base + i * 0.05,
                )
            )
    return schedule


def opposed_lock_orders(
    rounds: int = 5,
    sites: int = 3,
    spacing: float = 200.0,
) -> Schedule:
    """Pairs of two-key writers whose sorted write sets coincide but whose
    homes race: a distributed-deadlock factory for WAIT locking."""
    schedule: Schedule = []
    for n in range(rounds):
        a, b = f"x{2 * n}", f"x{2 * n + 1}"
        base = n * spacing
        schedule.append(
            (
                TransactionSpec.make(f"fwd{n}", n % sites, writes={a: 1, b: 1}),
                base,
            )
        )
        schedule.append(
            (
                TransactionSpec.make(f"rev{n}", (n + 1) % sites, writes={b: 2, a: 2}),
                base + 0.1,
            )
        )
    return schedule


def reader_gauntlet(
    readers: int = 4,
    writer_bursts: int = 6,
    keys: int = 8,
    sites: int = 3,
    burst_spacing: float = 80.0,
) -> Schedule:
    """Wide read-only transactions interleaved with writer bursts on the
    same keys: read-only transactions must all commit untouched."""
    schedule: Schedule = []
    key_names = [f"x{i}" for i in range(keys)]
    for burst in range(writer_bursts):
        base = burst * burst_spacing
        key = key_names[burst % keys]
        schedule.append(
            (
                TransactionSpec.make(
                    f"burst{burst}", burst % sites, writes={key: f"b{burst}"}
                ),
                base,
            )
        )
    for reader in range(readers):
        schedule.append(
            (
                TransactionSpec.make(
                    f"gauntlet{reader}",
                    reader % sites,
                    read_keys=key_names,
                ),
                25.0 + reader * (writer_bursts * burst_spacing / max(readers, 1)),
            )
        )
    return schedule


def per_op_cross_causality(
    rounds: int = 4,
    sites: int = 3,
    spacing: float = 180.0,
) -> Schedule:
    """Two-key writers from different homes with mirrored key orders,
    timed so per-operation causal dissemination can interleave the two
    keys' queues (the cross-causality pattern CBP's cycle backstop
    exists for)."""
    schedule: Schedule = []
    for n in range(rounds):
        a, b = f"x{2 * n}", f"x{2 * n + 1}"
        base = n * spacing
        schedule.append(
            (
                TransactionSpec.make(f"crossA{n}", n % sites, writes={a: "A", b: "A"}),
                base,
            )
        )
        schedule.append(
            (
                TransactionSpec.make(
                    f"crossB{n}", (n + 1) % sites, writes={a: "B", b: "B"}
                ),
                base + 0.6,
            )
        )
        schedule.append(
            (
                TransactionSpec.make(
                    f"crossC{n}", (n + 2) % sites, writes={b: "C"}
                ),
                base + 1.1,
            )
        )
    return schedule


def required_objects(schedule: Schedule) -> int:
    """Database size the schedule needs (max key index + 1)."""
    highest = 0
    for spec, _ in schedule:
        for key in list(spec.read_keys) + list(spec.write_keys):
            highest = max(highest, int(key[1:]))
    return highest + 1


def submit_all(cluster, schedule: Schedule) -> int:
    """Submit a schedule into a cluster; returns the spec count."""
    for spec, at in schedule:
        cluster.submit(spec, at=at)
    return len(schedule)
