"""Transaction workload generation.

Produces :class:`repro.core.transaction.TransactionSpec` streams matching
the paper's model: read operations first, then write operations.  Knobs:

- ``readonly_fraction`` — share of read-only transactions (the paper's
  protocols commit them locally with no messages; experiment E7);
- ``zipf_theta`` — key skew (contention, experiment E4);
- ``read_ops`` / ``write_ops`` — footprint sizes (experiment E8 sweeps
  writes);
- ``rmw`` — when True (default) update transactions read what they write
  (read-modify-write), the case where certification and locking conflicts
  actually bite.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.transaction import TransactionSpec
from repro.workload.zipf import ZipfSampler


@dataclass
class WorkloadConfig:
    """Shape of the generated transaction stream."""

    num_objects: int = 64
    num_sites: int = 4
    read_ops: int = 2
    write_ops: int = 2
    readonly_fraction: float = 0.0
    readonly_read_ops: int = 4
    zipf_theta: float = 0.0
    rmw: bool = True
    home_policy: str = "round_robin"  # or "random"

    def __post_init__(self) -> None:
        if not 0 <= self.readonly_fraction <= 1:
            raise ValueError("readonly_fraction must be in [0, 1]")
        if self.read_ops + self.write_ops > self.num_objects:
            raise ValueError("footprint larger than the database")
        if self.home_policy not in ("round_robin", "random"):
            raise ValueError(f"unknown home_policy {self.home_policy!r}")


class WorkloadGenerator:
    """Deterministic spec stream for a given (config, rng) pair."""

    def __init__(self, config: WorkloadConfig, rng: random.Random):
        self.config = config
        self.rng = rng
        self.sampler = ZipfSampler(config.num_objects, config.zipf_theta)
        self._counter = itertools.count(1)
        self._value_counter = itertools.count(1)

    def next_spec(self, home: Optional[int] = None) -> TransactionSpec:
        """Generate the next transaction spec."""
        config = self.config
        index = next(self._counter)
        name = f"T{index}"
        if home is None:
            if config.home_policy == "round_robin":
                home = (index - 1) % config.num_sites
            else:
                home = self.rng.randrange(config.num_sites)
        if self.rng.random() < config.readonly_fraction:
            ranks = self.sampler.sample_distinct(
                self.rng, min(config.readonly_read_ops, config.num_objects)
            )
            return TransactionSpec.make(
                name, home, read_keys=[f"x{r}" for r in ranks]
            )
        total_keys = config.write_ops + (0 if config.rmw else config.read_ops)
        ranks = self.sampler.sample_distinct(self.rng, max(total_keys, config.write_ops))
        write_ranks = ranks[: config.write_ops]
        if config.rmw:
            extra = [r for r in ranks[config.write_ops:]]
            read_ranks = write_ranks + extra
            if config.read_ops > len(read_ranks):
                # Top up reads with additional distinct keys.
                more = self.sampler.sample_distinct(self.rng, config.read_ops)
                read_ranks = list(dict.fromkeys(read_ranks + more))[: config.read_ops]
            else:
                read_ranks = read_ranks[: max(config.read_ops, len(write_ranks))]
                # Always read the written keys under rmw.
                read_ranks = list(dict.fromkeys(write_ranks + read_ranks))
        else:
            read_ranks = ranks[config.write_ops:]
        writes = {
            f"x{rank}": f"{name}:v{next(self._value_counter)}" for rank in write_ranks
        }
        return TransactionSpec.make(
            name, home, read_keys=[f"x{r}" for r in read_ranks], writes=writes
        )

    def stream(self, count: int) -> Iterator[TransactionSpec]:
        """A finite stream of ``count`` specs."""
        for _ in range(count):
            yield self.next_spec()
