"""Workload generation and load drivers for the experiments."""

from repro.workload.generator import WorkloadConfig, WorkloadGenerator
from repro.workload.runner import ClosedLoopRunner, OpenLoopRunner
from repro.workload.scenarios import SCENARIOS, Scenario, get_scenario, scenario_names
from repro.workload.zipf import ZipfSampler

__all__ = [
    "ClosedLoopRunner",
    "OpenLoopRunner",
    "SCENARIOS",
    "Scenario",
    "WorkloadConfig",
    "WorkloadGenerator",
    "ZipfSampler",
    "get_scenario",
    "scenario_names",
]
