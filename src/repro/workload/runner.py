"""Load drivers: open-loop (Poisson arrivals) and closed-loop (MPL clients).

Both drivers submit generated specs into a :class:`repro.core.cluster.Cluster`
and rely on the cluster's client retry loop for aborted attempts.  The
closed-loop driver models the classical multiprogramming-level experiment
(E5): ``mpl`` logical clients each keep exactly one transaction in flight,
submitting the next one (after ``think_time``) when the previous reaches a
final outcome.
"""

from __future__ import annotations

from typing import Optional

from repro.core.cluster import Cluster, SpecStatus
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


class OpenLoopRunner:
    """Poisson arrivals at a fixed rate, ``count`` transactions in total."""

    def __init__(
        self,
        cluster: Cluster,
        workload: WorkloadConfig,
        rate: float,
        count: int,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if count <= 0:
            raise ValueError("count must be positive")
        self.cluster = cluster
        self.rate = rate
        self.count = count
        rng_registry = cluster.rng
        self.generator = WorkloadGenerator(workload, rng_registry.stream("workload"))
        self._arrival_rng = rng_registry.stream("arrivals")

    def start(self) -> None:
        """Schedule all arrivals up front (deterministic given the seed)."""
        at = self.cluster.engine.now
        for _ in range(self.count):
            at += self._arrival_rng.expovariate(self.rate)
            self.cluster.submit(self.generator.next_spec(), at=at)


class ClosedLoopRunner:
    """``mpl`` clients, each with one transaction outstanding."""

    def __init__(
        self,
        cluster: Cluster,
        workload: WorkloadConfig,
        mpl: int,
        transactions: int,
        think_time: float = 0.0,
    ):
        if mpl <= 0:
            raise ValueError("mpl must be positive")
        if transactions < mpl:
            raise ValueError("need at least one transaction per client")
        self.cluster = cluster
        self.mpl = mpl
        self.transactions = transactions
        self.think_time = think_time
        self.generator = WorkloadGenerator(workload, cluster.rng.stream("workload"))
        self._submitted = 0
        self._stopped = False
        self._outstanding: set[str] = set()
        cluster.add_spec_listener(self._on_final)

    def start(self) -> None:
        for _ in range(self.mpl):
            self._submit_next()

    def stop(self) -> None:
        """Clients go quiet: no further submissions, but transactions
        already in flight still run to their final outcomes.  The soak
        harness uses this to end the churn phase at a horizon rather than
        at a transaction count, then drain."""
        self._stopped = True

    def _submit_next(self) -> None:
        if self._stopped or self._submitted >= self.transactions:
            return
        spec = self.generator.next_spec()
        self._submitted += 1
        self._outstanding.add(spec.name)
        self.cluster.submit(spec, at=self.cluster.engine.now)

    def _on_final(self, status: SpecStatus) -> None:
        if status.spec.name not in self._outstanding:
            return
        self._outstanding.discard(status.spec.name)
        if self._submitted >= self.transactions:
            return
        if self.think_time > 0:
            self.cluster.engine.schedule(self.think_time, self._submit_next)
        else:
            self._submit_next()

    @property
    def done(self) -> bool:
        if self._outstanding:
            return False
        return self._stopped or self._submitted >= self.transactions


def run_standard_mix(
    cluster: Cluster,
    workload: WorkloadConfig,
    transactions: int,
    mpl: Optional[int] = None,
    max_time: float = 1_000_000.0,
):
    """Convenience: closed-loop run to completion, returning the result."""
    runner = ClosedLoopRunner(
        cluster, workload, mpl=mpl or min(8, transactions), transactions=transactions
    )
    runner.start()
    return cluster.run(max_time=max_time)
