"""Churn-soak harness: long runs under continuous churn (E13).

Composes the pieces the E13 series needs into one picklable scenario cell:

- a cluster whose failure-detector / heartbeat / timeout knobs **scale
  with the site count** (constant small-cluster intervals at 200 sites
  drown the run in O(n²)-per-interval heartbeat events — see
  :func:`scaled_cluster_config`),
- a seeded :class:`repro.sim.churn.ChurnSchedule` plan sized to the soak
  duration (rolling restarts, a cascade when time and quorum allow, and
  optional link flaps),
- a closed-loop workload that submits continuously until the horizon and
  then goes quiet (:meth:`ClosedLoopRunner.stop`),
- :class:`repro.sim.oracles.SoakOracles` armed for the whole run, and
- ring-buffer tracing so memory stays bounded however long the soak runs.

The phases: run under churn to the horizon, stop the clients, run on
until every outstanding transaction reaches a final outcome, drain, then
assert the end-of-run oracles.  ``run_churn_soak`` returns a flat
``dict[str, float]`` so :func:`repro.analysis.experiment.run_sweep` can
fold it across seeds and jobs byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.cluster import Cluster, ClusterConfig
from repro.sim.churn import ChurnSchedule
from repro.sim.oracles import OracleConfig, SoakOracles
from repro.workload.generator import WorkloadConfig
from repro.workload.runner import ClosedLoopRunner


def scaled_cluster_config(
    protocol: str,
    sites: int,
    seed: int,
    flap_loss: Optional[float] = None,
    trace: bool = False,
    trace_capacity: int = 20_000,
) -> ClusterConfig:
    """A deployment whose periodic machinery scales with the site count.

    The failure detector and CBP's null messages each cost O(n²) messages
    per interval; holding the small-cluster defaults (50ms/25ms) at 200
    sites means ~95M heartbeat events per simulated minute before any
    transaction runs.  Scaling the intervals linearly with ``n`` keeps the
    per-simulated-second event count roughly constant across the E13 size
    axis, while timeouts stay a fixed multiple of the interval so detection
    semantics (missed-beats-to-suspicion) are size-independent.
    """
    fd_interval = max(200.0, 10.0 * sites)
    fd_timeout = 4.0 * fd_interval
    return ClusterConfig(
        protocol=protocol,
        num_sites=sites,
        num_objects=max(64, sites),
        seed=seed,
        enable_failure_detector=True,
        fd_interval=fd_interval,
        fd_timeout=fd_timeout,
        cbp_heartbeat=fd_interval,
        p2p_write_timeout=fd_interval,
        p2p_deadlock_interval=max(50.0, fd_interval / 4.0),
        max_attempts=60,
        retry_backoff=50.0,
        # Eager relay is O(n²) datagrams per broadcast — infeasible on the
        # size axis.  Crash-only churn is safe without it: a multicast's
        # sends are scheduled atomically, so partial dissemination by a
        # crashing sender cannot occur (loss windows are the exception and
        # require ARQ, forced below).
        relay=False,
        reliable_links=True if flap_loss is not None else None,
        trace=trace,
        trace_capacity=trace_capacity if trace else None,
        trace_mode="ring" if trace else "head",
    )


@dataclass(frozen=True)
class SoakConfig:
    """One churn-soak cell (everything but protocol and seed)."""

    sites: int
    #: Simulated ms of churn + load before the clients go quiet.
    duration: float = 60_000.0
    mpl: int = 4
    think_time: float = 1_500.0
    read_ops: int = 2
    write_ops: int = 1
    #: Loss rate for link-flap windows; ``None`` disables flaps (and the
    #: ARQ transports they require).
    flap_loss: Optional[float] = None
    trace: bool = False
    trace_capacity: int = 20_000
    #: ``None`` derives a window from the cluster's scaled fd timeout.
    liveness_window: Optional[float] = None
    in_doubt_limit: Optional[float] = None
    #: Extra simulated ms allowed for the quiet tail (outstanding
    #: transactions finishing + convergence drain) past the horizon.
    tail_budget: float = 120_000.0

    def __post_init__(self) -> None:
        if self.sites < 3:
            raise ValueError("churn soaks need at least 3 sites (quorum with one down)")
        if self.duration <= 0:
            raise ValueError("duration must be positive")


def build_churn_plan(cluster: Cluster, config: SoakConfig) -> ChurnSchedule:
    """A seeded plan sized to the soak: as many rolling crash/recover
    cycles as fit the duration at this scale, a two-site cascade when a
    cycle's budget is left over and quorum allows, plus optional flaps.

    All recoveries are scheduled inside the horizon, so the quiet tail
    starts with every site up and converging.
    """
    churn = ChurnSchedule(cluster)
    cfg = cluster.config
    start = cfg.fd_timeout  # let the detector's first beats settle
    downtime = (1.25 * cfg.fd_timeout, 2.0 * cfg.fd_timeout)
    gap = (cfg.fd_interval, 2.0 * cfg.fd_interval)
    cycle_budget = downtime[1] + gap[1]
    victims = churn.default_victims()
    cycles = max(1, int((config.duration - start - cycle_budget) // cycle_budget))
    # Deterministic spread over the id space so repeated soaks at one size
    # exercise different sites per cycle.
    picks = [victims[(i * 7 + 3) % len(victims)] for i in range(cycles)]
    end = churn.rolling_restart(start, victims=picks, downtime=downtime, gap=gap)
    if (
        churn.max_concurrent_down >= 2
        and end + cycle_budget + 2.0 * cfg.fd_interval < config.duration
    ):
        pair = [victims[(cycles * 7 + 3) % len(victims)], victims[(cycles * 7 + 10) % len(victims)]]
        if pair[0] != pair[1]:
            churn.cascade(at=end + 2.0 * cfg.fd_interval, victims=pair, downtime=downtime)
    if config.flap_loss is not None:
        churn.link_flaps(
            config.flap_loss,
            start=start + 0.3 * config.duration,
            cycles=2,
            hold=(cfg.fd_interval, 2.0 * cfg.fd_interval),
            gap=(2.0 * cfg.fd_interval, 4.0 * cfg.fd_interval),
        )
    return churn


def run_churn_soak(protocol: str, config: SoakConfig, seed: int) -> dict[str, float]:
    """One soak cell: build, churn, quiesce, assert, measure.

    Raises :class:`repro.sim.oracles.OracleViolation` if any oracle fails;
    a completed call certifies the run.  The returned floats fold through
    the order-canonical merge layer (digest tests compare serial vs
    ``jobs=N`` sweeps over this function).
    """
    cluster = Cluster(
        scaled_cluster_config(
            protocol,
            config.sites,
            seed,
            flap_loss=config.flap_loss,
            trace=config.trace,
            trace_capacity=config.trace_capacity,
        )
    )
    cfg = cluster.config
    liveness = config.liveness_window
    if liveness is None:
        # Longest legitimate gap: a crash stalls commits for the detection
        # timeout plus a state-transfer round plus client think/backoff.
        liveness = 3.0 * cfg.fd_timeout + config.think_time + 5_000.0
    in_doubt = config.in_doubt_limit
    if in_doubt is None:
        in_doubt = liveness
    oracles = SoakOracles(
        cluster,
        OracleConfig(
            liveness_window=liveness,
            in_doubt_limit=in_doubt,
            check_interval=max(500.0, cfg.fd_interval / 2.0),
        ),
    )
    churn = build_churn_plan(cluster, config)
    runner = ClosedLoopRunner(
        cluster,
        WorkloadConfig(
            num_objects=cfg.num_objects,
            num_sites=config.sites,
            read_ops=config.read_ops,
            write_ops=config.write_ops,
        ),
        mpl=config.mpl,
        transactions=1 << 31,  # horizon-bounded, not count-bounded
        think_time=config.think_time,
    )
    oracles.arm()
    runner.start()
    cluster.run_for(config.duration)
    runner.stop()
    result = cluster.run(
        max_time=config.duration + config.tail_budget,
        stop_when=cluster.all_final,
        drain=True,
    )
    oracles.disarm()
    oracles.check_final(result)
    stats = oracles.stats()
    return {
        "committed": float(result.committed_specs),
        "failed": float(result.failed_specs),
        "unanswered": float(result.incomplete_specs),
        "throughput_per_s": result.committed_specs / (result.duration / 1_000.0),
        "converged": 1.0 if result.converged else 0.0,
        "serializable": 1.0 if result.serialization.ok else 0.0,
        "crashes": float(len(churn.faults.events("crash"))),
        "recoveries": float(len(churn.faults.events("recover"))),
        "max_stall_ms": float(stats["max_stall_ms"]),
        "max_in_doubt_ms": float(stats["max_in_doubt_residency_ms"]),
        "trace_dropped": float(cluster.trace.dropped),
        "duration_ms": float(result.duration),
        "events": float(cluster.engine.events_processed),
    }


def e13_cell(protocol: str, sites: int, seed: int) -> dict[str, float]:
    """The E13 sweep cell: a default-shape churn soak at ``sites`` sites.

    Module-level and closure-free so ``run_sweep(jobs=N)`` can pickle it
    into the worker pool.
    """
    return run_churn_soak(protocol, SoakConfig(sites=sites), seed)


def e13_smoke_cell(protocol: str, sites: int, seed: int) -> dict[str, float]:
    """A CI-sized soak: short horizon, small clusters, bounded tracing.
    Same code path as :func:`e13_cell`, an order of magnitude cheaper."""
    return run_churn_soak(
        protocol,
        SoakConfig(sites=sites, duration=25_000.0, trace=True, trace_capacity=5_000),
        seed,
    )


def e13_tiny_cell(protocol: str, sites: int, seed: int) -> dict[str, float]:
    """A sub-second cell for digest-equality tests: the sweep layer's
    serial-vs-sharded byte-identity contract must hold over the churn
    soak's metric shape (oracle stats and fault counts included), and a
    tier-1 test cannot afford the CI smoke's horizon."""
    return run_churn_soak(
        protocol,
        SoakConfig(
            sites=sites, duration=6_000.0, mpl=2, trace=True, trace_capacity=1_000
        ),
        seed,
    )
