"""Named canonical workload scenarios.

The experiments, examples and CLI keep re-describing the same handful of
workload shapes; this module gives them names so a scenario can be
referenced consistently ("hotspot") instead of re-spelling its knobs.

Each scenario is a factory: given the cluster geometry it returns a
:class:`repro.workload.generator.WorkloadConfig` plus suggested driver
parameters (mpl, transaction count multiplier).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workload.generator import WorkloadConfig


@dataclass(frozen=True)
class Scenario:
    """A named workload shape with suggested driver settings."""

    name: str
    description: str
    workload: WorkloadConfig
    suggested_mpl: int = 6

    def for_sites(self, num_sites: int) -> WorkloadConfig:
        """The workload configured for a cluster of ``num_sites``."""
        from dataclasses import replace

        return replace(self.workload, num_sites=num_sites)


def _make(name, description, mpl=6, **workload_kwargs) -> Scenario:
    defaults = dict(num_objects=64, num_sites=4)
    defaults.update(workload_kwargs)
    return Scenario(name, description, WorkloadConfig(**defaults), mpl)


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        _make(
            "uniform",
            "low contention: uniform access over a wide key space",
            read_ops=2,
            write_ops=2,
        ),
        _make(
            "hotspot",
            "Zipf(1.1) hot spot: the contention regime of experiment E4",
            num_objects=24,
            read_ops=2,
            write_ops=2,
            zipf_theta=1.1,
            mpl=8,
        ),
        _make(
            "read_mostly",
            "80% read-only transactions over a medium key space (E7-like)",
            read_ops=4,
            write_ops=1,
            readonly_fraction=0.8,
            readonly_read_ops=6,
        ),
        _make(
            "write_heavy",
            "update-only, four writes per transaction (E8's steep end)",
            read_ops=1,
            write_ops=4,
        ),
        _make(
            "wide_transactions",
            "large read-modify-write footprints (8 keys each)",
            num_objects=128,
            read_ops=8,
            write_ops=8,
            mpl=4,
        ),
        _make(
            "churn_soak",
            "the E13 soak mix: small read-modify-write transactions under"
            " rolling churn, low contention so stalls implicate recovery",
            num_objects=96,
            read_ops=2,
            write_ops=1,
            mpl=4,
        ),
        _make(
            "loss_sweep",
            "small read-modify-write transactions for the E12 loss/partition"
            " sweep: low contention so stalls are the transport's fault",
            num_objects=96,
            read_ops=2,
            write_ops=1,
            mpl=4,
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name (raises KeyError with suggestions)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)
