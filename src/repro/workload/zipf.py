"""Zipfian key sampling for hot-spot workloads.

``theta = 0`` degenerates to uniform; larger theta skews access toward low
ranks.  Used by the contention experiments (E4): the paper's protocols
differ most visibly when concurrent transactions touch the same objects.
"""

from __future__ import annotations

import bisect
import random


class ZipfSampler:
    """Samples ranks in ``[0, n)`` with probability proportional to
    ``1 / (rank + 1) ** theta`` via the precomputed inverse CDF."""

    def __init__(self, n: int, theta: float = 0.0):
        if n <= 0:
            raise ValueError("n must be positive")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.n = n
        self.theta = theta
        self._cdf: list[float] = []
        total = 0.0
        for rank in range(n):
            total += 1.0 / ((rank + 1) ** theta)
            self._cdf.append(total)
        self._total = total

    def sample(self, rng: random.Random) -> int:
        """One rank sample."""
        point = rng.random() * self._total
        return bisect.bisect_left(self._cdf, point)

    def sample_distinct(self, rng: random.Random, count: int) -> list[int]:
        """``count`` distinct ranks, **in sampled order**, on both paths.

        Callers slice the result positionally (the workload generator takes
        the first ``write_ops`` as the write set, which in turn fixes lock
        acquisition order), so the order contract must not depend on which
        sampling strategy ran: ranks come back in the order they were first
        drawn.  Historically the rejection path returned ``sorted(chosen)``
        while the shuffle fallback returned shuffle order, silently changing
        conflict shapes with the count/n ratio.
        """
        if count > self.n:
            raise ValueError(f"cannot sample {count} distinct from {self.n}")
        # Rejection sampling is fine for count << n; fall back to a shuffle
        # when the request covers most of the space.
        if count * 3 >= self.n:
            ranks = list(range(self.n))
            rng.shuffle(ranks)
            return ranks[:count]
        chosen: list[int] = []
        seen: set[int] = set()
        while len(chosen) < count:
            rank = self.sample(rng)
            if rank not in seen:
                seen.add(rank)
                chosen.append(rank)
        return chosen
