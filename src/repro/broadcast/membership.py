"""Majority-quorum view management [Bv94, SS94].

The communication layer maintains a *view* of the current configuration; as
sites fail and recover the view is restructured, and the system stays
operational while the view holds a majority of all sites.  The paper
delegates fault tolerance to this layer so the replication protocols can use
read-one/write-all *within the view*.

Design (simplified virtual synchrony, documented in DESIGN.md):

- The **coordinator** of a view is its lowest-id unsuspected member.
- When the coordinator's failure detector output changes, it installs and
  multicasts a new view (higher view id) to every site it believes alive.
- Sites adopt any view with a higher id that includes them.
- A recovering site multicasts a JOIN request; the coordinator responds with
  a new view including it, and the protocol layer performs a state transfer
  (hooked via ``on_view``'s ``joined`` set).
- Views that lose a majority of all sites are **blocked**: the protocol
  layer must refuse update transactions in them (one-copy serializability
  would otherwise break across a partition).

This is not a full group-membership consensus protocol (impossible in pure
asynchrony [CHTCB96]); it is faithful to what the paper assumes of its
communication substrate under the simulation's partial synchrony.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.broadcast.failure_detector import FailureDetector
from repro.net.router import ChannelRouter
from repro.net.sizes import register_payload
from repro.sim.engine import SimulationEngine
from repro.sim.process import Process

CHANNEL = "membership"


@dataclass(frozen=True)
class View:
    """An installed configuration: numbered, with a fixed member list."""

    view_id: int
    members: tuple[int, ...]

    def has_quorum(self, num_sites: int) -> bool:
        """Majority of *all* sites, not just of the previous view."""
        return len(self.members) * 2 > num_sites

    def coordinator(self) -> int:
        return min(self.members)

    def __contains__(self, site: int) -> bool:
        return site in self.members

    def __str__(self) -> str:
        return f"view#{self.view_id}{list(self.members)}"


@dataclass(slots=True)
class ViewMessage:
    view: View
    kind: str = "membership.view"


@dataclass(slots=True)
class JoinRequest:
    """Rejoin/resync request; carries the requester's view id so the
    coordinator can propose past any view numbers generated independently
    on the other side of a partition (view-id collision avoidance)."""

    site: int
    view_id: int = 0
    kind: str = "membership.join"


ViewListener = Callable[[View, set[int]], None]


class MembershipService(Process):
    """Per-site membership endpoint."""

    def __init__(
        self,
        engine: SimulationEngine,
        router: ChannelRouter,
        detector: FailureDetector,
        site: int,
        num_sites: int,
    ):
        super().__init__(engine, f"memb{site}")
        self.router = router
        self.detector = detector
        self.site = site
        self.num_sites = num_sites
        #: The full-cluster fan-out list never changes; building it afresh
        #: on every announce cost an O(n) allocation per join attempt
        #: (detcheck S301 audit; same precompute as FailureDetector).
        self._peers = tuple(p for p in range(num_sites) if p != site)
        self.view = View(0, tuple(range(num_sites)))
        self.listeners: list[ViewListener] = []
        router.register(CHANNEL, self._on_message)
        detector.on_change = self._on_suspicion_change

    def add_listener(self, listener: ViewListener) -> None:
        """``listener(view, joined_sites)`` fires on every installed view."""
        self.listeners.append(listener)

    @property
    def in_primary_component(self) -> bool:
        """True when our view can process update transactions."""
        return self.view.has_quorum(self.num_sites) and self.site in self.view

    def i_am_coordinator(self) -> bool:
        # Coordinator = lowest live member: electing one must scan the live
        # set, so the O(n) pass is inherent; it runs per membership event
        # (join request, suspicion change), not per data message.
        # detcheck: ignore[S301]
        live = [m for m in self.view.members if m not in self.detector.suspected]
        return bool(live) and self.site == min(live)

    def announce_join(self) -> None:
        """Called by a recovering or out-of-sync site to request readmission."""
        request = JoinRequest(self.site, self.view.view_id)
        self.router.multicast(self._peers, CHANNEL, request, request.kind)

    # -- internals -----------------------------------------------------------

    def _on_suspicion_change(self, suspected: set[int]) -> None:
        if not self.alive:
            return
        if not self.i_am_coordinator():
            return
        proposed = tuple(
            sorted(m for m in range(self.num_sites) if m not in suspected and self._reachable(m))
        )
        if proposed == self.view.members:
            return
        self._install_and_announce(proposed)

    def _reachable(self, member: int) -> bool:
        # The detector's silence already covers partitions; this hook exists
        # for subclasses that integrate an explicit topology oracle.
        return member == self.site or member not in self.detector.suspected

    def _install_and_announce(self, members: tuple[int, ...], min_id: int = 0) -> None:
        if self.site not in members:
            return
        new_view = View(max(self.view.view_id, min_id) + 1, members)
        self._install(new_view)
        announcement = ViewMessage(new_view)
        for member in range(self.num_sites):
            if member != self.site:
                self.router.send(member, CHANNEL, announcement, announcement.kind)

    def _on_message(self, src: int, payload: object) -> None:
        if isinstance(payload, ViewMessage):
            view = payload.view
            if view.view_id > self.view.view_id and self.site in view:
                self._install(view)
            elif (
                self.site in view
                and view.members != self.view.members
                and view.view_id <= self.view.view_id
            ):
                # View-id collision: both sides of a partition advanced
                # their counters independently and the announcement cannot
                # outrank our (stale) view.  Ask the announcer's side to
                # re-propose past our counter.
                self.announce_join()
        elif isinstance(payload, JoinRequest):
            # The request is proof of life: refresh the detector first, or
            # stale suspicion evicts the joiner from the very next view
            # (see FailureDetector.refresh on why that loses messages).
            self.detector.refresh(payload.site)
            self._on_join_request(payload)

    def _on_join_request(self, request: JoinRequest) -> None:
        if not self.i_am_coordinator():
            return
        if request.site in self.view.members:
            if request.view_id >= self.view.view_id:
                # The requester's counter collided with (or passed) ours:
                # re-issue the same membership under a number that outranks
                # every view either side has seen.
                self._install_and_announce(self.view.members, min_id=request.view_id)
            else:
                # Plain stale joiner: the current view announcement suffices.
                self.router.send(
                    request.site, CHANNEL, ViewMessage(self.view), "membership.view"
                )
            return
        # View-change path: building the next membership tuple is one O(n)
        # pass per join event, not per data message.
        # detcheck: ignore[S301]
        proposed = tuple(sorted(set(self.view.members) | {request.site}))
        self._install_and_announce(proposed, min_id=request.view_id)

    def _install(self, view: View) -> None:
        # View-change path: the old/new membership diff is one O(n) pass
        # per view install, not per data message.
        # detcheck: ignore[S301]
        previous = set(self.view.members)
        self.view = view
        joined = set(view.members) - previous  # detcheck: ignore[S301]
        for listener in self.listeners:
            listener(view, joined)

    def on_recover(self) -> None:
        # Fresh start: we only know ourselves until a view message arrives.
        self.view = View(self.view.view_id, (self.site,))
        self.announce_join()

# Import-time shape check for the size model (detcheck P201/P202).
register_payload(ViewMessage, JoinRequest)
