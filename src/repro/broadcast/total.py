"""Atomic (total-order) broadcast, consistent with causal order.

The paper's ABP protocol needs a total order on commit requests that also
respects causality, while write operations may travel by plain causal
broadcast (ISIS provides both primitives [Bv94]).  This layer therefore sits
*on top of* :class:`repro.broadcast.causal.CausalBroadcast` and offers both:

- :meth:`broadcast` -- total-order delivery (a global sequence number), and
- :meth:`broadcast_causal` -- pass-through causal delivery,

with a single upward callback so the two streams interleave correctly
(causally-ordered messages are never delayed behind unrelated sequencing).

Two orderers are implemented (ablation experiment E10):

- **fixed sequencer** (default): the lowest-id group member assigns global
  sequence numbers to ordered messages as it causally delivers them, and
  causally broadcasts the assignment.  Because the assignment causally
  follows the data message, every site has the data by the time it learns
  the number; and because the sequencer's causal delivery order extends the
  causal partial order, the resulting total order is causal.
- **token ring** (Totem-style [AMMS+95]): a token carrying the next global
  sequence number circulates; a site stamps its pending ordered messages
  while holding the token.

Sequencer takeover on view change is best-effort (the new lowest-id member
assigns the unassigned backlog under a higher epoch).  A production system
needs a view flush here; the fault-injection experiments in this repository
crash non-sequencer sites or quiesce first, as documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.broadcast.causal import CausalBroadcast, CausalEnvelope
from repro.broadcast.message import BroadcastMessage, MessageId
from repro.net.sizes import OBJECT_OVERHEAD, estimate_size, register_payload
from repro.sim.engine import SimulationEngine

TOKEN_CHANNEL = "abcast.token"


@dataclass(slots=True)
class SequencedEnvelope:
    """Inner wrapper distinguishing ordered from causal-only payloads."""

    payload: Any
    ordered: bool
    kind: str = ""
    preassigned: Optional[tuple[int, int]] = None  # (epoch, seq) in token mode
    #: Memoized wire size (see BroadcastMessage): the enclosing causal and
    #: broadcast envelopes consult this on every size estimate.
    _size: int = field(default=-1, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.kind:
            payload_kind = getattr(self.payload, "kind", None)
            self.kind = (
                payload_kind if isinstance(payload_kind, str) else type(self.payload).__name__
            )

    def __wire_size__(self) -> int:
        # Byte-identical to the generic __slots__ traversal over (payload,
        # ordered, kind, preassigned); _size is bookkeeping, not wire content.
        if self._size < 0:
            self._size = (
                OBJECT_OVERHEAD
                + estimate_size(self.payload)
                + estimate_size(self.ordered)
                + estimate_size(self.kind)
                + estimate_size(self.preassigned)
            )
        return self._size


@dataclass(slots=True)
class OrderAssignment:
    """Sequencer-issued mapping of message ids to global sequence numbers."""

    epoch: int
    assignments: list[tuple[MessageId, int]]
    kind: str = "abcast.order"


@dataclass(slots=True)
class Token:
    """Totem-style circulating token carrying the next sequence number."""

    epoch: int
    next_seq: int
    kind: str = "abcast.token"


@dataclass
class _OrderedPending:
    message: BroadcastMessage
    envelope: CausalEnvelope


DeliverFn = Callable[[Any, CausalEnvelope, Optional[int]], None]


class TotalOrderBroadcast:
    """Atomic broadcast endpoint for one site, layered on causal broadcast."""

    def __init__(
        self,
        engine: SimulationEngine,
        causal: CausalBroadcast,
        mode: str = "sequencer",
        token_hold: float = 1.0,
        uniform: bool = False,
        stability_interval: float = 10.0,
        group_commit: bool = False,
    ):
        if mode not in ("sequencer", "token"):
            raise ValueError(f"unknown total-order mode {mode!r}")
        self.engine = engine
        self.causal = causal
        self.site = causal.site
        self.num_sites = causal.num_sites
        self.mode = mode
        self.token_hold = token_hold
        #: Uniform delivery: an ordered message is handed to the
        #: application only once it is *stable* (delivered at every group
        #: member, per the matrix-clock tracker).  This closes the
        #: durability window of non-uniform delivery — a site can no longer
        #: commit a transaction whose commit request would vanish if that
        #: site and the sequencer crashed — at the price of roughly one
        #: extra one-way delay, bounded by ``stability_interval`` null
        #: messages on an idle system.
        self.uniform = uniform
        self.stability_interval = stability_interval
        self.group: list[int] = list(range(self.num_sites))
        self.epoch = 0
        self._deliver: Optional[DeliverFn] = None
        # Ordered-delivery machinery.
        self._next_delivery_index = 0
        self._order_of: dict[MessageId, tuple[int, int]] = {}
        self._ready: dict[tuple[int, int], _OrderedPending] = {}
        self._unordered: dict[MessageId, _OrderedPending] = {}
        self._delivery_order: list[tuple[int, int]] = []  # sorted keys awaiting delivery
        # Sequencer state.
        self._next_seq = 0
        #: Group commit: the sequencer accumulates the assignments it issues
        #: at one simulation instant and broadcasts them as a single
        #: OrderAssignment per epoch run, instead of one per message.
        self.group_commit = group_commit
        self._assign_outbox: list[tuple[int, MessageId, int]] = []
        self._assign_armed = False
        # Token state.
        self._outbox: list[tuple[Any, str]] = []
        self._has_token = False
        causal.set_deliver(self._on_causal_deliver)
        if uniform:
            tracker = causal.enable_stability()
            tracker.on_advance(lambda stable: self._drain())
            self._last_own_broadcast = 0.0
            engine.schedule(stability_interval, self._stability_tick)
        if mode == "token":
            causal.reliable.router.register(TOKEN_CHANNEL, self._on_token)
            if self.site == 0:
                engine.schedule(0.0, self._acquire_token, Token(0, 0))

    # -- public API ---------------------------------------------------------

    def set_deliver(self, fn: DeliverFn) -> None:
        """Register ``fn(payload, envelope, order_index)``.

        ``payload`` is the application payload (unwrapped), ``envelope`` the
        causal envelope carrying its vector clock, and ``order_index`` the
        global total-order position for ordered messages (``None`` for
        causal-only messages).
        """
        self._deliver = fn

    def broadcast(self, payload: Any, kind: Optional[str] = None) -> None:
        """Atomically broadcast ``payload`` (total + causal order)."""
        if self.uniform:
            self._last_own_broadcast = self.engine.now
        if self.mode == "sequencer":
            self.causal.broadcast(SequencedEnvelope(payload, True, kind or ""), kind)
        else:
            self._outbox.append((payload, kind or ""))
            if self._has_token:
                self._flush_outbox()

    def broadcast_causal(self, payload: Any, kind: Optional[str] = None) -> None:
        """Causally broadcast ``payload`` (no total ordering)."""
        if self.uniform:
            self._last_own_broadcast = self.engine.now
        self.causal.broadcast(SequencedEnvelope(payload, False, kind or ""), kind)

    def set_group(self, members: list[int]) -> None:
        """Adopt a new view: re-elect the sequencer, bump the epoch."""
        self.group = sorted(members)
        self.epoch += 1
        if self.mode == "sequencer" and self.is_sequencer:
            # Best-effort takeover: number the unassigned backlog.
            # Canonical (sorted) takeover order: the backlog dict reflects
            # this site's arrival order, which other sites need not share.
            backlog = sorted(
                pending.message.id
                for pending in self._unordered.values()
                if pending.message.id not in self._order_of
            )
            if backlog:
                assignments = []
                for msg_id in backlog:
                    assignments.append((msg_id, self._next_seq))
                    self._next_seq += 1
                self.causal.broadcast(OrderAssignment(self.epoch, assignments))

    @property
    def is_sequencer(self) -> bool:
        return bool(self.group) and self.site == min(self.group)

    def export_order_state(self) -> dict:
        """Ordering position for a state-transfer donor to ship."""
        return {
            "next_delivery_index": self._next_delivery_index,
            "last_delivered_key": self._last_delivered_key,
            "next_seq": self._next_seq,
            "epoch": self.epoch,
        }

    def fast_forward(self, state: dict) -> None:
        """Jump past the total-order prefix a state transfer covers."""
        self._next_delivery_index = state["next_delivery_index"]
        self._last_delivered_key = state["last_delivered_key"]
        self._next_seq = max(self._next_seq, state["next_seq"])
        self.epoch = max(self.epoch, state["epoch"])
        # Drop buffered deliveries from the covered prefix.
        covered = {
            key for key in self._ready if self._last_delivered_key is not None
            and key <= self._last_delivered_key
        }
        for key in sorted(covered):
            del self._ready[key]
        self._delivery_order = [k for k in self._delivery_order if k not in covered]

    # -- causal delivery path ------------------------------------------------

    def _on_causal_deliver(self, message: BroadcastMessage, envelope: CausalEnvelope) -> None:
        inner = envelope.payload
        if isinstance(inner, OrderAssignment):
            self._on_order_assignment(inner)
            return
        if not isinstance(inner, SequencedEnvelope):
            raise RuntimeError(f"site {self.site}: unexpected causal payload {inner!r}")
        if inner.kind == "abcast.stability":
            return  # clock carrier only; the stability tracker saw it
        if not inner.ordered:
            self._handoff(message, envelope, None)
            return
        pending = _OrderedPending(message, envelope)
        if inner.preassigned is not None:
            self._record_order(message.id, inner.preassigned, pending)
        else:
            self._unordered[message.id] = pending
            known = self._order_of.get(message.id)
            if known is not None:
                self._record_order(message.id, known, self._unordered.pop(message.id))
            elif self.mode == "sequencer" and self.is_sequencer:
                key = (self.epoch, self._next_seq)
                self._next_seq += 1
                # Record before broadcasting (detcheck H402): were the
                # assignment delivered back synchronously, the handler above
                # would pop _unordered itself and this pop would KeyError.
                self._record_order(message.id, key, self._unordered.pop(message.id))
                self._issue_assignment(key[0], message.id, key[1])
        self._drain()

    def _issue_assignment(self, epoch: int, msg_id: MessageId, seq: int) -> None:
        """Broadcast one assignment, or queue it for the group-commit flush.

        The local :meth:`_record_order` already happened (H402); only the
        wire announcement is deferred, by one zero-delay event, so every
        ordered message the sequencer delivers at this instant shares one
        OrderAssignment frame.
        """
        if not self.group_commit:
            self.causal.broadcast(OrderAssignment(epoch, [(msg_id, seq)]))
            return
        self._assign_outbox.append((epoch, msg_id, seq))
        if not self._assign_armed:
            self._assign_armed = True
            # detcheck: ignore[P203] — the flush re-checks the outbox; a
            # crash clears it (on_crash) and leaves the firing a no-op.
            self.engine.schedule(0.0, self._flush_assignments)

    def _flush_assignments(self) -> None:
        self._assign_armed = False
        if not self._assign_outbox:
            return
        # Swap-drain (detcheck H402): broadcasting can re-enter delivery.
        outbox, self._assign_outbox = self._assign_outbox, []
        # One OrderAssignment per contiguous same-epoch run, so a view
        # change mid-window never mixes epochs inside one frame.
        index = 0
        while index < len(outbox):
            epoch = outbox[index][0]
            assignments: list[tuple[MessageId, int]] = []
            while index < len(outbox) and outbox[index][0] == epoch:
                assignments.append((outbox[index][1], outbox[index][2]))
                index += 1
            self.causal.broadcast(OrderAssignment(epoch, assignments))

    def on_crash(self) -> None:
        """Fail-stop: assignments queued for the flush are lost with the
        site (the takeover sequencer re-numbers the unassigned backlog)."""
        self._assign_outbox.clear()

    def _on_order_assignment(self, order: OrderAssignment) -> None:
        for msg_id, seq in order.assignments:
            if msg_id in self._order_of:
                continue  # first assignment wins (takeover duplicates)
            key = (order.epoch, seq)
            self._order_of[msg_id] = key
            if self.mode == "sequencer" and not self.is_sequencer:
                # Track the orderer's counter so a takeover continues from it.
                self._next_seq = max(self._next_seq, seq + 1)
            pending = self._unordered.pop(msg_id, None)
            if pending is not None:
                self._record_order(msg_id, key, pending)
        self._drain()

    def _record_order(self, msg_id: MessageId, key: tuple[int, int], pending: _OrderedPending) -> None:
        self._order_of[msg_id] = key
        self._ready[key] = pending
        self._delivery_order.append(key)
        self._delivery_order.sort()

    def _drain(self) -> None:
        """Deliver ready ordered messages in contiguous global order.

        The global order index counts delivered ordered messages; a message
        is deliverable once every ordered message with a smaller (epoch,
        seq) key has been delivered.  Within one epoch, sequence numbers are
        contiguous from the sequencer, so gap-freedom is detectable.
        """
        while self._delivery_order:
            key = self._delivery_order[0]
            if key not in self._ready:
                self._delivery_order.pop(0)
                continue
            epoch, seq = key
            if not self._is_next(epoch, seq):
                break
            pending = self._ready[key]
            if self.uniform and not self._is_stable(pending):
                break  # stability advance will re-drain
            self._delivery_order.pop(0)
            del self._ready[key]
            index = self._next_delivery_index
            self._next_delivery_index += 1
            self._last_delivered_key = key
            self._handoff(pending.message, pending.envelope, index)

    _last_delivered_key: Optional[tuple[int, int]] = None

    def _is_stable(self, pending: _OrderedPending) -> bool:
        tracker = self.causal.stability
        assert tracker is not None
        sender = pending.message.sender
        return tracker.is_stable(sender, pending.envelope.vc[sender])

    def _stability_tick(self) -> None:
        """Null messages keep stability advancing on an idle system.

        Suppressed when this site broadcast recently — real traffic's
        piggybacked clocks already carry the information.
        """
        if self.engine.now - self._last_own_broadcast < self.stability_interval:
            # Recent real traffic's piggybacked clock already carried the
            # information; this firing is redundant (detcheck H401 guard).
            self.engine.schedule(self.stability_interval, self._stability_tick)
            return
        self.causal.broadcast(
            SequencedEnvelope(None, False, "abcast.stability"), "abcast.stability"
        )
        self._last_own_broadcast = self.engine.now
        self.engine.schedule(self.stability_interval, self._stability_tick)

    def _is_next(self, epoch: int, seq: int) -> bool:
        last = self._last_delivered_key
        if last is None:
            return seq == 0
        last_epoch, last_seq = last
        if epoch == last_epoch:
            return seq == last_seq + 1
        # New epoch: the takeover sequencer continues the counter, so the
        # first message of an epoch is deliverable when its seq continues
        # from the last delivered one.
        return epoch > last_epoch and seq == last_seq + 1

    def _handoff(
        self,
        message: BroadcastMessage,
        envelope: CausalEnvelope,
        order_index: Optional[int],
    ) -> None:
        if self._deliver is None:
            raise RuntimeError(f"site {self.site}: total-order broadcast has no deliver callback")
        inner: SequencedEnvelope = envelope.payload
        self._deliver(inner.payload, envelope, order_index)

    # -- token mode -----------------------------------------------------------

    def _on_token(self, src: int, token: Token) -> None:
        self._acquire_token(token)

    def _acquire_token(self, token: Token) -> None:
        # Token possession is its own freshness evidence: this fires on
        # direct token receipt or the sole-member self-pass (_pass_token),
        # and a crashed epoch's callbacks are dropped by the engine.
        # detcheck: ignore[H401]
        self._has_token = True
        self._token = token
        self._flush_outbox()
        self.engine.schedule(self.token_hold, self._pass_token)

    def _flush_outbox(self) -> None:
        token = self._token
        # Swap-drain (detcheck H402): a broadcast delivered back
        # synchronously could append to the outbox mid-loop; draining a
        # detached list keeps such arrivals queued for the next flush
        # instead of silently clearing them unsent.
        outbox, self._outbox = self._outbox, []
        for payload, kind in outbox:
            key = (token.epoch, token.next_seq)
            token.next_seq += 1
            self.causal.broadcast(
                SequencedEnvelope(payload, True, kind, preassigned=key), kind
            )

    def _pass_token(self) -> None:
        if not self._has_token:
            return
        self._has_token = False
        token = self._token
        members = self.group
        if len(members) <= 1:
            # detcheck: ignore[P203] — sole-member token self-pass; the token
            # argument is the freshness token (stale tokens are discarded).
            self.engine.schedule(self.token_hold, self._acquire_token, token)
            return
        position = members.index(self.site)
        successor = members[(position + 1) % len(members)]
        self.causal.reliable.router.send(successor, TOKEN_CHANNEL, token, "abcast.token")

# Import-time shape check for the size model (detcheck P201/P202).
register_payload(SequencedEnvelope, OrderAssignment, Token)
