"""Heartbeat failure detector.

Implements an eventually-perfect-style detector (class <>P in practice):
every site multicasts heartbeats and suspects peers it has not heard from
within a timeout.  Under the simulation's bounded latencies the detector is
accurate after a crash-free prefix, which is what the membership service
needs; deterministic detectors are impossible in pure asynchrony
[CT96, CHTCB96], which is exactly why the paper's CBP avoids relying on one
for commitment.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.router import ChannelRouter
from repro.net.sizes import register_payload
from repro.sim.engine import SimulationEngine
from repro.sim.process import Process

CHANNEL = "fd"


class Heartbeat:
    """A heartbeat ping (empty payload, identified by channel)."""

    __slots__ = ()
    kind = "fd.heartbeat"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Heartbeat()"


register_payload(Heartbeat)
_HEARTBEAT = Heartbeat()


class FailureDetector(Process):
    """Per-site heartbeat failure detector.

    ``on_change(suspected)`` fires whenever the suspected set changes.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        router: ChannelRouter,
        site: int,
        num_sites: int,
        interval: float = 50.0,
        timeout: float = 200.0,
        enabled: bool = True,
    ):
        super().__init__(engine, f"fd{site}")
        if timeout <= interval:
            raise ValueError("timeout must exceed the heartbeat interval")
        self.router = router
        self.site = site
        self.num_sites = num_sites
        self.interval = interval
        self.timeout = timeout
        self.enabled = enabled
        self.suspected: set[int] = set()
        self.on_change: Optional[Callable[[set[int]], None]] = None
        self._listeners: list[Callable[[set[int]], None]] = []
        self._last_heard = {peer: 0.0 for peer in range(num_sites) if peer != site}
        # The heartbeat fan-out list never changes; building it afresh on
        # every tick cost an O(n) allocation per site per interval.
        self._peers = tuple(peer for peer in range(num_sites) if peer != site)
        router.register(CHANNEL, self._on_heartbeat)
        if enabled:
            self.schedule(self.interval, self._tick)

    def start(self) -> None:
        """Enable a detector constructed with ``enabled=False``."""
        if not self.enabled:
            self.enabled = True
            for peer in self._last_heard:
                self._last_heard[peer] = self.now
            self.schedule(self.interval, self._tick)

    def _on_heartbeat(self, src: int, payload: object) -> None:
        self._last_heard[src] = self.now
        if src in self.suspected:
            self.suspected.discard(src)
            self._notify()

    def _tick(self) -> None:
        if not self.enabled:
            return
        self.router.multicast(self._peers, CHANNEL, _HEARTBEAT, "fd.heartbeat")
        newly = {
            peer
            for peer, heard in self._last_heard.items()
            if self.now - heard > self.timeout
        }
        if newly != self.suspected:
            self.suspected = newly
            self._notify()
        self.schedule(self.interval, self._tick)

    def refresh(self, peer: int) -> None:
        """Direct proof of life for ``peer`` outside the heartbeat channel
        (e.g. a membership join request).  Treat it like a heartbeat:
        without this, a recovering site that just announced itself can be
        re-suspected — and evicted from the view — on the coordinator's
        next tick, before its own heartbeats resume.  Messages multicast
        during that eviction window never reach the joiner, and the state
        transfer's clock cut does not cover them: a permanent causal gap.
        """
        if peer == self.site or peer not in self._last_heard:
            return
        self._last_heard[peer] = self.now
        if peer in self.suspected:
            self.suspected.discard(peer)
            self._notify()

    def add_listener(self, fn: Callable[[set[int]], None]) -> None:
        """Additional suspicion-change subscriber.

        ``on_change`` is a single slot owned by the membership service;
        listeners are for everything else (e.g. the transport's
        retransmission parking) and fire after it, in registration order.
        """
        self._listeners.append(fn)

    def _notify(self) -> None:
        if self.on_change is not None:
            self.on_change(set(self.suspected))
        for listener in self._listeners:
            listener(set(self.suspected))

    def on_recover(self) -> None:
        for peer in self._last_heard:
            self._last_heard[peer] = self.now
        self.suspected.clear()
        if self.enabled:
            self.schedule(self.interval, self._tick)
