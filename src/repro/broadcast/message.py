"""Broadcast message envelope and identity.

Every broadcast primitive wraps application payloads in a
:class:`BroadcastMessage`.  Identity is ``(sender, sender_seq)``: globally
unique because each site numbers its own broadcasts.

These headers are allocated once per broadcast and touched on every
delivery, so both classes are ``__slots__`` dataclasses and the ``kind``
label is interned: the accounting layer compares kinds millions of times
per run, and interning makes those comparisons pointer checks while
deduplicating the strings across every message of a run.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any

from repro.net.sizes import OBJECT_OVERHEAD, estimate_size


@dataclass(frozen=True, order=True, slots=True)
class MessageId:
    """Globally unique broadcast message identity."""

    sender: int
    seq: int

    def __str__(self) -> str:
        return f"m{self.sender}.{self.seq}"

    def __wire_size__(self) -> int:
        # Fixed shape (two ints behind __slots__): shortcut for the size
        # estimator, byte-identical to its generic traversal.
        return OBJECT_OVERHEAD + 16


@dataclass(slots=True)
class BroadcastMessage:
    """A payload travelling through a broadcast primitive.

    ``kind`` labels the payload for message accounting; it defaults to the
    payload's own ``kind`` attribute when present.
    """

    id: MessageId
    payload: Any
    kind: str = field(default="")
    #: Memoized wire size.  An envelope is sent once per group member (and
    #: again by every relay), and its payload may carry an O(n) vector
    #: clock — re-traversing it per destination made a single broadcast
    #: cost O(n^2) in size estimation alone.  Payloads are immutable once
    #: broadcast (the same object is delivered at every site; mutation
    #: would leak state across sites), so the first estimate is final.
    _size: int = field(default=-1, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.kind:
            payload_kind = getattr(self.payload, "kind", None)
            self.kind = payload_kind if isinstance(payload_kind, str) else type(self.payload).__name__
        self.kind = sys.intern(self.kind)

    @property
    def sender(self) -> int:
        return self.id.sender

    @property
    def seq(self) -> int:
        return self.id.seq

    def __wire_size__(self) -> int:
        # Envelope fast path: the id is fixed-shape and the kind string is
        # interned (so its UTF-8 length memoizes on first sight).  Byte-
        # identical to the generic __slots__ traversal over (id, payload,
        # kind) — the shortcut skips the per-field getattr dispatch only.
        if self._size < 0:
            self._size = (
                OBJECT_OVERHEAD
                + self.id.__wire_size__()
                + estimate_size(self.payload)
                + estimate_size(self.kind)
            )
        return self._size

    def __str__(self) -> str:
        return f"{self.id}[{self.kind}]"
