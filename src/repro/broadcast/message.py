"""Broadcast message envelope and identity.

Every broadcast primitive wraps application payloads in a
:class:`BroadcastMessage`.  Identity is ``(sender, sender_seq)``: globally
unique because each site numbers its own broadcasts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, order=True)
class MessageId:
    """Globally unique broadcast message identity."""

    sender: int
    seq: int

    def __str__(self) -> str:
        return f"m{self.sender}.{self.seq}"


@dataclass
class BroadcastMessage:
    """A payload travelling through a broadcast primitive.

    ``kind`` labels the payload for message accounting; it defaults to the
    payload's own ``kind`` attribute when present.
    """

    id: MessageId
    payload: Any
    kind: str = field(default="")

    def __post_init__(self) -> None:
        if not self.kind:
            payload_kind = getattr(self.payload, "kind", None)
            self.kind = payload_kind if isinstance(payload_kind, str) else type(self.payload).__name__

    @property
    def sender(self) -> int:
        return self.id.sender

    @property
    def seq(self) -> int:
        return self.id.seq

    def __str__(self) -> str:
        return f"{self.id}[{self.kind}]"
