"""Vector clocks.

The causal broadcast layer stamps every message with a vector clock and, as
the paper requires, *exposes* the clocks to the application layer: the causal
protocol (CBP) uses them both to detect concurrent conflicting operations and
to recognise implicit acknowledgments ("this message causally follows the
delivery of my commit request").

Comparisons are the CBP delivery hot path, so they are all single-pass:
:meth:`VectorClock.compare` classifies a pair of clocks as BEFORE / AFTER /
EQUAL / CONCURRENT in one scan with early exit, and the rich comparisons are
thin single-scan loops rather than two chained ``<=`` passes.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.net.sizes import OBJECT_OVERHEAD

#: Outcomes of :meth:`VectorClock.compare` (a partial order, hence four).
BEFORE = -1  #: self happened strictly before other
AFTER = 1  #: other happened strictly before self
EQUAL = 0  #: identical clocks
CONCURRENT = 2  #: incomparable (neither dominates)


class VectorClock:
    """An immutable-by-convention vector of per-site event counts.

    Stored densely as a list indexed by site id.  Mutating helpers return
    new clocks; in-place variants are available for the hot paths inside the
    broadcast layer (suffixed ``_inplace``).
    """

    __slots__ = ("entries",)

    def __init__(self, entries: Iterable[int]):
        self.entries = list(entries)

    @classmethod
    def zero(cls, num_sites: int) -> "VectorClock":
        if num_sites <= 0:
            raise ValueError("num_sites must be positive")
        return cls([0] * num_sites)

    def copy(self) -> "VectorClock":
        return VectorClock(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, site: int) -> int:
        return self.entries[site]

    def __iter__(self) -> Iterator[int]:
        return iter(self.entries)

    def increment(self, site: int) -> "VectorClock":
        """New clock with ``site``'s entry incremented."""
        clock = self.copy()
        clock.entries[site] += 1
        return clock

    def increment_inplace(self, site: int) -> None:
        self.entries[site] += 1

    def merge(self, other: "VectorClock") -> "VectorClock":
        """New clock: componentwise maximum."""
        self._check_compatible(other)
        return VectorClock(max(a, b) for a, b in zip(self.entries, other.entries))

    def merge_inplace(self, other: "VectorClock") -> None:
        self._check_compatible(other)
        for i, value in enumerate(other.entries):
            if value > self.entries[i]:
                self.entries[i] = value

    def compare(self, other: "VectorClock") -> int:
        """Fused single-pass comparison: BEFORE, AFTER, EQUAL or CONCURRENT.

        One scan with early exit on the first proof of concurrency — the
        primitive the CBP holdback queue and conflict detection build on,
        replacing pairs of ``<=`` scans.
        """
        self._check_compatible(other)
        less = greater = False
        for a, b in zip(self.entries, other.entries):
            if a < b:
                if greater:
                    return CONCURRENT
                less = True
            elif a > b:
                if less:
                    return CONCURRENT
                greater = True
        if less:
            return BEFORE
        if greater:
            return AFTER
        return EQUAL

    def __le__(self, other: "VectorClock") -> bool:
        """Componentwise <= ("happened before or equal")."""
        self._check_compatible(other)
        for a, b in zip(self.entries, other.entries):
            if a > b:
                return False
        return True

    def __lt__(self, other: "VectorClock") -> bool:
        """Strictly happened-before: <= and not equal (single scan)."""
        self._check_compatible(other)
        strict = False
        for a, b in zip(self.entries, other.entries):
            if a > b:
                return False
            if a < b:
                strict = True
        return strict

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self.entries == other.entries

    def __hash__(self) -> int:
        return hash(tuple(self.entries))

    def happens_before(self, other: "VectorClock") -> bool:
        """Alias for ``self < other``."""
        return self < other

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock happened before the other."""
        return self.compare(other) == CONCURRENT

    def delta_since(self, other: "VectorClock") -> tuple[tuple[int, int], ...]:
        """Changed entries of ``self`` relative to ``other``, as ``(site,
        value)`` pairs in site order.

        This is the wire encoding behind delta clocks (see
        ``CausalBroadcast.enable_delta_clocks``): a sender that knows the
        receiver reconstructed ``other`` ships only the entries that differ.
        Any difference is reported — including entries that went *down* —
        so ``other.apply_delta(self.delta_since(other)) == self`` holds for
        arbitrary clock pairs, not only monotone successors.
        """
        self._check_compatible(other)
        return tuple(
            (site, a)
            for site, (a, b) in enumerate(zip(self.entries, other.entries))
            if a != b
        )

    def apply_delta(self, changes: Iterable[tuple[int, int]]) -> "VectorClock":
        """New clock: ``self`` with each ``(site, value)`` entry replaced.

        Inverse of :meth:`delta_since` — the receiver applies the shipped
        changes to its reconstruction of the sender's previous stamp.
        """
        clock = self.copy()
        for site, value in changes:
            clock.entries[site] = value
        return clock

    def dominates_entry(self, site: int, value: int) -> bool:
        """True when this clock has seen at least ``value`` events of ``site``.

        This is the implicit-acknowledgment test of the CBP protocol: a
        message ``m`` from any site causally follows event number ``value``
        of ``site`` exactly when ``m``'s clock dominates that entry.
        """
        return self.entries[site] >= value

    def __wire_size__(self) -> int:
        """Shortcut for the wire-size estimator: one object overhead for the
        clock, one for its entries list, 8 bytes per counter — byte-identical
        to the estimator's generic ``__slots__`` traversal, without walking
        ``num_sites`` ints on every message send."""
        return 2 * OBJECT_OVERHEAD + 8 * len(self.entries)

    def _check_compatible(self, other: "VectorClock") -> None:
        if len(self.entries) != len(other.entries):
            raise ValueError(
                f"vector clock size mismatch: {len(self.entries)} vs {len(other.entries)}"
            )

    def __repr__(self) -> str:
        return f"VC{self.entries}"
