"""Message stability tracking via matrix clocks.

A message is *stable* once every group member is known to have delivered
it.  Stability is what real group-communication systems (Trans/Totem
[MMA90, AMMS+95]) use to garbage-collect retransmission buffers, and what
a *uniform* atomic broadcast needs: delivering only stable messages
guarantees that no site delivers (and a database commits) a message that
could be lost with its deliverers in a crash.

Implementation: every causal envelope already carries its sender's vector
clock, which states exactly how many messages of each origin the sender
had delivered.  Collecting the latest such vector per sender yields a
matrix clock; the componentwise **minimum** across the group is the stable
vector — entry ``j`` is the number of ``j``-origin messages everyone has
delivered.
"""

from __future__ import annotations

from typing import Callable

from repro.broadcast.vector_clock import VectorClock


class StabilityTracker:
    """Matrix-clock stability for one site."""

    def __init__(self, num_sites: int, site: int):
        self.num_sites = num_sites
        self.site = site
        self._rows: list[VectorClock] = [
            VectorClock.zero(num_sites) for _ in range(num_sites)
        ]
        self._listeners: list[Callable[[VectorClock], None]] = []
        self._last_stable = VectorClock.zero(num_sites)

    def observe(self, sender: int, clock: VectorClock) -> None:
        """Record that ``sender`` reported delivered-vector ``clock``.

        Called for every causally delivered message (its envelope's clock),
        and for the local site's own clock after each local delivery.
        """
        self._rows[sender].merge_inplace(clock)
        stable = self.stable_vector()
        if self._last_stable.entries != stable.entries:
            self._last_stable = stable
            for listener in self._listeners:
                listener(stable.copy())

    def on_advance(self, listener: Callable[[VectorClock], None]) -> None:
        """``listener(stable_vector)`` fires whenever stability advances."""
        self._listeners.append(listener)

    def stable_vector(self) -> VectorClock:
        """Componentwise minimum over all rows: what everyone delivered."""
        entries = [
            min(row[j] for row in self._rows) for j in range(self.num_sites)
        ]
        return VectorClock(entries)

    def is_stable(self, origin: int, seq: int) -> bool:
        """True when message ``seq`` of ``origin`` is delivered everywhere."""
        return self.stable_vector()[origin] >= seq

    def row(self, sender: int) -> VectorClock:
        """Latest known delivered-vector of ``sender``."""
        return self._rows[sender].copy()

    def restrict_to(self, members: list[int]) -> None:
        """View change: stability is computed over current members only.

        Rows of departed members are raised to the local row so they no
        longer hold the minimum down (their deliveries are moot).
        """
        local = self._rows[self.site]
        for site in range(self.num_sites):
            if site not in members:
                self._rows[site] = local.copy()

    def garbage_collect_threshold(self) -> VectorClock:
        """Alias for :meth:`stable_vector`: everything at or below it can
        be dropped from retransmission/dedup buffers."""
        return self.stable_vector()
