"""Reliable broadcast [HT93].

Properties implemented (and tested):

- **Validity**: if a correct site broadcasts m, all correct group members
  eventually deliver m.
- **Agreement**: if any correct site delivers m, all correct group members
  eventually deliver m.
- **Integrity**: every site delivers m at most once, and only if m was
  broadcast.

Two dissemination modes:

- ``relay=False`` (default): the sender unicasts m to every group member.
  This matches the paper's cost model (a broadcast = n-1 point-to-point
  messages) and satisfies agreement when the sender does not crash
  mid-broadcast.
- ``relay=True``: eager flooding — every site re-forwards m on first
  receipt, so agreement holds even when the sender crashes after reaching a
  single correct site.  Used by the fault-injection experiments; costs
  O(n^2) messages.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.broadcast.message import BroadcastMessage, MessageId
from repro.net.router import ChannelRouter
from repro.sim.engine import SimulationEngine

CHANNEL = "rbcast"


class ReliableBroadcast:
    """Reliable broadcast endpoint for one site."""

    def __init__(
        self,
        engine: SimulationEngine,
        router: ChannelRouter,
        site: int,
        num_sites: int,
        relay: bool = False,
    ):
        self.engine = engine
        self.router = router
        self.site = site
        self.num_sites = num_sites
        self.relay = relay
        self.group: list[int] = list(range(num_sites))
        self._next_seq = 0
        self._seen: set[MessageId] = set()
        self._deliver: Optional[Callable[[BroadcastMessage], None]] = None
        self.delivered_count = 0
        self.gc_reclaimed = 0
        router.register(CHANNEL, self._on_receive)

    def set_deliver(self, fn: Callable[[BroadcastMessage], None]) -> None:
        """Register the upward delivery callback."""
        self._deliver = fn

    def set_group(self, members: list[int]) -> None:
        """Restrict dissemination to the current view's members."""
        if self.site not in members:
            raise ValueError(f"site {self.site} not in its own group {members}")
        self.group = sorted(members)

    def broadcast(self, payload: Any, kind: Optional[str] = None) -> BroadcastMessage:
        """Reliably broadcast ``payload`` to the group (including ourselves).

        Local delivery is scheduled through the event loop (not synchronous)
        so upper layers observe a single, uniform delivery path.
        """
        msg_id = MessageId(self.site, self._next_seq)
        self._next_seq += 1
        message = BroadcastMessage(msg_id, payload, kind or "")
        self._seen.add(msg_id)
        # Single shared envelope for the whole fan-out; multicast skips the
        # sending site itself (local delivery goes through the event loop).
        self.router.multicast(self.group, CHANNEL, message, message.kind)
        self.engine.schedule(0.0, self._deliver_local, message)
        return message

    def _deliver_local(self, message: BroadcastMessage) -> None:
        self._handoff(message)

    def _on_receive(self, src: int, message: BroadcastMessage) -> None:
        if message.id in self._seen:
            return
        self._seen.add(message.id)
        if self.relay:
            for dst in self.group:
                if dst not in (self.site, src, message.sender):
                    self.router.send(dst, CHANNEL, message, message.kind)
        self._handoff(message)

    def _handoff(self, message: BroadcastMessage) -> None:
        if self._deliver is None:
            raise RuntimeError(f"site {self.site}: reliable broadcast has no deliver callback")
        self.delivered_count += 1
        self._deliver(message)

    def garbage_collect(self, stable, lag: int = 128) -> int:
        """Drop dedup entries for messages stable at every site.

        ``stable`` is a vector (per-origin delivered-everywhere counts,
        from :class:`repro.broadcast.stability.StabilityTracker`).  A
        ``lag`` margin is kept because relayed duplicates of a stable
        message can still be in flight for a short while; by the time a
        message is ``lag`` broadcasts below the stability frontier, any
        straggler copy has long been delivered or dropped.  Returns the
        number of entries reclaimed.
        """
        removable = {
            msg_id
            for msg_id in self._seen
            if stable[msg_id.sender] - lag >= msg_id.seq
        }
        self._seen -= removable
        self.gc_reclaimed += len(removable)
        return len(removable)
