"""Opt-in broadcast batching: coalesce a flush window's traffic per link.

Every message in this simulator is a point-to-point datagram paying
``HEADER_BYTES`` of framing and one full scheduling round trip through the
event loop.  Bursty protocol phases — a transaction's write fan-out, the
vote storm after a commit request, the sequencer's order assignments — issue
several payloads to the same destinations at (nearly) the same instant, so
the per-datagram overhead dominates both the byte accounting and the
simulator's wall-clock cost.

:class:`BroadcastBatcher` sits between a site's :class:`ChannelRouter
<repro.net.router.ChannelRouter>` and its transport.  Payloads sent inside
one *flush window* are queued per destination; when the window closes, each
destination receives a single slotted :class:`BatchEnvelope` carrying every
queued payload in issue order.  The receiving router unpacks the envelope
and dispatches the constituents in deterministic ``(sender, batch seq,
slot)`` order — slot order *is* the sender's issue order, so per-link FIFO
is preserved payload-for-payload.

Selection is per-cluster via ``ClusterConfig.batching`` (see
:class:`BatchingConfig`).  ``None`` keeps the historical passthrough path:
no batcher is constructed at all and the wire traffic is bit-identical to
previous releases (the pinned digests in
``tests/integration/test_batching_equivalence.py`` prove it).  With
batching enabled, correctness is *outcome equivalence* — same committed
set, same converged stores, 1SR — not trace identity: coalescing reorders
event timing by up to one flush window.

A ``flush_window`` of ``0.0`` still batches: the flush is scheduled through
the event loop at the current timestamp, so every payload issued by the
current event cascade shares one envelope per link without adding simulated
latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.net.sizes import OBJECT_OVERHEAD, estimate_size, register_payload

#: Accounting label of the envelope's own framing overhead.  The network
#: attributes each constituent payload's bytes to the payload's own kind
#: (see ``Network.send``); only the residual — shared header plus envelope
#: framing — lands under this label, which is background traffic for the
#: E1 cost model.
BATCH_KIND = "transport.batch"


@dataclass(frozen=True)
class BatchingConfig:
    """Batching knobs, selected via ``ClusterConfig.batching``.

    ``flush_window`` is the coalescing horizon in simulated milliseconds
    (0.0 = same-timestamp coalescing only).  ``group_commit`` lets the
    protocol layers pack votes/acks/order-assignments for transactions
    sharing a delivery round into single logical messages;
    ``delta_clocks`` ships vector clocks as per-sender deltas (see
    ``CausalBroadcast.enable_delta_clocks``).
    """

    flush_window: float = 0.0
    group_commit: bool = True
    delta_clocks: bool = True

    def __post_init__(self) -> None:
        if self.flush_window < 0:
            raise ValueError("flush_window must be non-negative")


@dataclass(slots=True)
class BatchEnvelope:
    """One link's coalesced payloads for one flush window.

    ``seq`` numbers the batches a site flushes (its identity together with
    the sending site); ``items`` hold the constituent payloads in issue
    order — the receiver dispatches slot 0 first, so FIFO per link is
    preserved exactly.
    """

    seq: int
    items: tuple[Any, ...]
    kind: str = BATCH_KIND
    #: Memoized wire size: the envelope is sized once when sent and again
    #: by the accounting split; items are immutable once flushed.
    _size: int = field(default=-1, init=False, repr=False, compare=False)

    def __wire_size__(self) -> int:
        # Byte-identical to the generic __slots__ traversal over
        # (seq, items, kind); _size is sender-side bookkeeping.
        if self._size < 0:
            self._size = (
                OBJECT_OVERHEAD
                + 8  # seq
                + estimate_size(self.items)
                + estimate_size(self.kind)
            )
        return self._size

    def __len__(self) -> int:
        return len(self.items)


class BroadcastBatcher:
    """Per-site flush-window coalescer between router and transport.

    The router hands every outgoing (already channel-tagged) payload to
    :meth:`send`; the first payload of a window arms one flush timer for
    the whole site.  At flush time each destination's queue becomes one
    :class:`BatchEnvelope` (destinations drained in sorted order, so runs
    are deterministic); a queue holding a single payload is sent unwrapped
    — byte-identical to an unbatched send, just window-delayed.
    """

    def __init__(self, engine, transport, flush_window: float = 0.0):
        if flush_window < 0:
            raise ValueError("flush_window must be non-negative")
        self.engine = engine
        self.transport = transport
        self.site = transport.site
        self.flush_window = flush_window
        self._queues: dict[int, list[tuple[Any, Optional[str]]]] = {}
        self._armed = False
        self._next_seq = 0
        #: Counters for tests and the E14 tables.
        self.batches_sent = 0
        self.singles_sent = 0
        self.payloads_batched = 0
        self.empty_flushes = 0

    def send(self, dst: int, payload: Any, kind: Optional[str] = None) -> None:
        """Queue one payload for ``dst``; arms the flush timer if idle."""
        queue = self._queues.get(dst)
        if queue is None:
            queue = self._queues[dst] = []
        queue.append((payload, kind))
        if not self._armed:
            self._armed = True
            # detcheck: ignore[P203] — the flush re-checks the queues; a
            # crash (reset) between arming and firing leaves it a no-op.
            self.engine.schedule(self.flush_window, self._flush)

    def flush_now(self) -> None:
        """Flush synchronously (tests, and draining before a controlled
        shutdown).  The armed timer, if any, later fires as a no-op."""
        self._flush()

    def _flush(self) -> None:
        if not self._queues:
            # Crash reset (or flush_now) emptied the window under the timer.
            self._armed = False
            self.empty_flushes += 1
            return
        self._armed = False
        queues, self._queues = self._queues, {}
        for dst in sorted(queues):
            items = queues[dst]
            if len(items) == 1:
                payload, kind = items[0]
                self.singles_sent += 1
                self.transport.send(dst, payload, kind)
                continue
            envelope = BatchEnvelope(
                self._next_seq, tuple(payload for payload, _ in items)
            )
            self._next_seq += 1
            self.batches_sent += 1
            self.payloads_batched += len(items)
            self.transport.send(dst, envelope, BATCH_KIND)

    def pending_count(self) -> int:
        """Payloads queued for the currently open window."""
        return sum(len(self._queues[dst]) for dst in sorted(self._queues))

    def reset(self) -> None:
        """Drop the open window (fail-stop crash: queued traffic is lost)."""
        self._queues.clear()


# Import-time shape check for the size model (detcheck P201/P202).
register_payload(BatchEnvelope)
