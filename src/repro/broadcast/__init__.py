"""Broadcast primitives: reliable, FIFO, causal, and atomic (total order).

This package implements, from scratch, the group-communication layer the
paper builds on.  The primitives form a hierarchy [HT93]:

- **Reliable broadcast**: validity, agreement, integrity — no ordering.
- **FIFO broadcast**: reliable + per-sender order.
- **Causal broadcast**: reliable + causal order (vector clocks, exposed to
  the application layer as the paper requires for the CBP protocol).
- **Atomic broadcast**: reliable + a single total order consistent with
  causal order (fixed-sequencer and token-ring implementations).

Plus the membership layer: heartbeat failure detection and majority-quorum
views [Bv94, SS94].
"""

from repro.broadcast.message import BroadcastMessage, MessageId
from repro.broadcast.vector_clock import VectorClock
from repro.broadcast.batching import BatchEnvelope, BatchingConfig, BroadcastBatcher
from repro.broadcast.reliable import ReliableBroadcast
from repro.broadcast.fifo import FifoBroadcast
from repro.broadcast.causal import CausalBroadcast, CausalEnvelope, DeltaCausalEnvelope
from repro.broadcast.total import SequencedEnvelope, TotalOrderBroadcast
from repro.broadcast.failure_detector import FailureDetector
from repro.broadcast.membership import MembershipService, View
from repro.broadcast.stability import StabilityTracker

__all__ = [
    "BatchEnvelope",
    "BatchingConfig",
    "BroadcastBatcher",
    "BroadcastMessage",
    "CausalBroadcast",
    "CausalEnvelope",
    "DeltaCausalEnvelope",
    "FailureDetector",
    "FifoBroadcast",
    "MembershipService",
    "MessageId",
    "ReliableBroadcast",
    "SequencedEnvelope",
    "StabilityTracker",
    "TotalOrderBroadcast",
    "VectorClock",
    "View",
]
