"""Causal broadcast: reliable broadcast + causal delivery order [Bv94].

Implementation: the classic vector-clock holdback algorithm.  Site ``i``
increments its clock entry and stamps the outgoing message; a received
message from ``j`` with clock ``V`` is deliverable at site ``k`` when

- ``V[j] == local[j] + 1``  (it is the next broadcast of ``j``), and
- ``V[x] <= local[x]`` for all ``x != j``  (everything the sender had
  delivered, we have delivered).

Deliverability is tracked *incrementally*: a held-back message counts the
clock entries still blocking it (its **deficit**) and indexes itself under
each missing ``(site, value)`` pair.  Every local delivery advances exactly
one clock entry, so it pops exactly one waiting-index bucket and decrements
the deficits found there; a message whose deficit reaches zero joins an
arrival-ordered ready heap.  Delivery work is therefore proportional to the
messages actually unblocked, not to a rescan of the whole holdback queue —
the per-event cost no longer degrades as bursts deepen the queue.  Delivery
*order* is unchanged from the historical scan-and-restart loop: that loop
always delivered the earliest-arrived deliverable message next, and
deliverability is monotone (a deliverable message stays deliverable until
delivered), so popping the minimum arrival rank from the ready heap yields
the identical sequence.

As the paper requires for the CBP protocol, the message clocks are exposed
to the application layer: the upward callback receives the stamped envelope,
and :meth:`clock` reports the site's current delivered-vector, so protocols
can test causal precedence and concurrency between operations.

**Delta clocks** (:meth:`CausalBroadcast.enable_delta_clocks`): with the
batching feature on, a broadcast may ship a :class:`DeltaCausalEnvelope`
carrying only the clock entries that changed since the sender's previous
broadcast, instead of the full O(n) vector.  Every receiver reconstructs
the full stamp from its record of that previous stamp; a delta arriving
before its base (relay and retransmission reorder across links) is parked
until the base reconstructs.  The sender falls back to a full clock
whenever continuity is in doubt — first broadcast, view change or
recovery fast-forward (:meth:`note_disruption`, which also covers ARQ
epoch bumps: link incarnations only change through the crash/recovery
path that announces a view change) — and whenever the delta would not
actually be smaller on the wire.
"""

from __future__ import annotations

import heapq
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.broadcast.message import BroadcastMessage
from repro.broadcast.reliable import ReliableBroadcast
from repro.broadcast.vector_clock import VectorClock
from repro.net.sizes import (
    DELTA_PAIR_BYTES,
    OBJECT_OVERHEAD,
    estimate_size,
    register_payload,
)


@dataclass(slots=True)
class CausalEnvelope:
    """A payload stamped with the sender's vector clock at broadcast time."""

    vc: VectorClock
    payload: Any
    kind: str = ""
    #: Memoized wire size: the envelope carries an O(n) vector clock, and
    #: the enclosing BroadcastMessage consults this once per broadcast —
    #: the memo keeps re-deliveries and relays from re-walking the clock.
    _size: int = field(default=-1, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.kind:
            payload_kind = getattr(self.payload, "kind", None)
            self.kind = (
                payload_kind if isinstance(payload_kind, str) else type(self.payload).__name__
            )
        self.kind = sys.intern(self.kind)

    def __wire_size__(self) -> int:
        # Byte-identical to the generic traversal over (vc, payload, kind);
        # _size is sender-side bookkeeping, not wire content.
        if self._size < 0:
            self._size = (
                OBJECT_OVERHEAD
                + estimate_size(self.vc)
                + estimate_size(self.payload)
                + estimate_size(self.kind)
            )
        return self._size


@dataclass(slots=True)
class DeltaCausalEnvelope:
    """A payload stamped with only the clock entries that changed.

    ``delta`` holds ``(site, value)`` pairs — the output of
    :meth:`VectorClock.delta_since` against the sender's previous stamp.
    The sender's own entry always appears (each broadcast increments it),
    so the receiver reads the sender's sequence number straight from the
    delta to order reconstruction.  Receivers rebuild the full
    :class:`CausalEnvelope` before the holdback queue ever sees the
    message; the rest of the stack is delta-agnostic.
    """

    delta: tuple[tuple[int, int], ...]
    payload: Any
    kind: str = ""
    #: Memoized wire size, same contract as :class:`CausalEnvelope`.
    _size: int = field(default=-1, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.kind:
            payload_kind = getattr(self.payload, "kind", None)
            self.kind = (
                payload_kind if isinstance(payload_kind, str) else type(self.payload).__name__
            )
        self.kind = sys.intern(self.kind)

    def __wire_size__(self) -> int:
        # Byte-identical to the generic traversal over (delta, payload,
        # kind): the delta encodes as a tuple of (site, value) int pairs,
        # DELTA_PAIR_BYTES each (see net/sizes.py).
        if self._size < 0:
            self._size = (
                OBJECT_OVERHEAD
                + (OBJECT_OVERHEAD + DELTA_PAIR_BYTES * len(self.delta))
                + estimate_size(self.payload)
                + estimate_size(self.kind)
            )
        return self._size


class _Held:
    """One held-back message and the count of clock entries blocking it."""

    __slots__ = ("order", "message", "envelope", "deficit")

    def __init__(self, order: int, message: BroadcastMessage, envelope: CausalEnvelope):
        self.order = order
        self.message = message
        self.envelope = envelope
        self.deficit = 0


class CausalBroadcast:
    """Causal broadcast endpoint for one site."""

    def __init__(self, reliable: ReliableBroadcast):
        self.reliable = reliable
        self.site = reliable.site
        self.num_sites = reliable.num_sites
        self._clock = VectorClock.zero(self.num_sites)
        self._send_seq = 0
        #: Holdback state: every undelivered message by arrival rank, the
        #: ready heap of (rank, held) with deficit zero, and the waiting
        #: index mapping each missing (site, value) clock entry to the
        #: messages it blocks.
        self._held: dict[int, _Held] = {}
        self._heap: list[tuple[int, _Held]] = []
        self._waiting: dict[tuple[int, int], list[_Held]] = {}
        self._arrivals = 0
        self._deliver: Optional[Callable[[BroadcastMessage, CausalEnvelope], None]] = None
        self.delivered_count = 0
        #: Optional matrix-clock stability tracking (see enable_stability).
        self.stability = None
        #: Delta-clock state (enable_delta_clocks): the stamp of our own
        #: previous broadcast, whether the next broadcast must ship a full
        #: clock, each peer's last reconstructed stamp, and deltas parked
        #: waiting for their reconstruction base, per sender by sequence.
        self._delta_enabled = False
        self._last_stamp: Optional[VectorClock] = None
        self._full_due = True
        self._recon: dict[int, VectorClock] = {}
        self._recon_pending: dict[int, dict[int, BroadcastMessage]] = {}
        self.deltas_sent = 0
        self.fulls_sent = 0
        self.deltas_parked = 0
        reliable.set_deliver(self._on_reliable_deliver)

    def enable_stability(self, gc: bool = False):
        """Attach a :class:`repro.broadcast.stability.StabilityTracker`.

        Every delivered envelope's clock feeds the tracker (it states what
        the sender had delivered), as does our own clock after each local
        delivery.  With ``gc=True``, stability advances also reclaim the
        reliable layer's deduplication entries for messages everyone has
        long delivered.  Returns the tracker.
        """
        from repro.broadcast.stability import StabilityTracker

        self.stability = StabilityTracker(self.num_sites, self.site)
        if gc:
            self.stability.on_advance(self.reliable.garbage_collect)
        return self.stability

    def enable_delta_clocks(self) -> None:
        """Ship vector clocks as deltas against the previous broadcast
        whenever that is smaller on the wire (see the module docstring).
        Cluster-wide: every site of a group must agree, since receivers
        only reconstruct what senders encode."""
        self._delta_enabled = True

    def note_disruption(self) -> None:
        """Force the next broadcast to carry a full clock.  Called on view
        changes and recovery (which also covers ARQ link-epoch bumps):
        receivers may have lost the reconstruction chain."""
        self._full_due = True

    @property
    def clock(self) -> VectorClock:
        """Copy of the site's current delivered-vector clock."""
        return self._clock.copy()

    def set_deliver(self, fn: Callable[[BroadcastMessage, CausalEnvelope], None]) -> None:
        self._deliver = fn

    def broadcast(self, payload: Any, kind: Optional[str] = None) -> CausalEnvelope:
        """Causally broadcast ``payload``; returns the stamped envelope.

        The returned envelope's clock identifies this broadcast: its entry
        for this site is the broadcast's own event number, which protocols
        use for the implicit-acknowledgment test.

        The stamp combines the delivered-vector (what we have seen) with our
        own *send* counter, so back-to-back broadcasts issued before our own
        first message loops back through delivery still get distinct,
        FIFO-ordered stamps.

        With delta clocks enabled the wire form may be a
        :class:`DeltaCausalEnvelope`; the returned envelope is always the
        full stamp regardless.
        """
        self._send_seq += 1
        stamp = self._clock.copy()
        stamp.entries[self.site] = self._send_seq
        envelope = CausalEnvelope(stamp, payload, kind or "")
        wire: Any = envelope
        if self._delta_enabled:
            wire = self._encode(envelope)
        self._last_stamp = stamp
        self.reliable.broadcast(wire, envelope.kind)
        return envelope

    def _encode(self, envelope: CausalEnvelope) -> Any:
        """Pick the wire form: delta when safe and strictly smaller."""
        if self._full_due or self._last_stamp is None:
            self._full_due = False
            self.fulls_sent += 1
            return envelope
        delta = envelope.vc.delta_since(self._last_stamp)
        candidate = DeltaCausalEnvelope(delta, envelope.payload, envelope.kind)
        if candidate.__wire_size__() < envelope.__wire_size__():
            self.deltas_sent += 1
            return candidate
        self.fulls_sent += 1
        return envelope

    # -- receive path: reconstruction, admission, delivery ------------------------

    def _on_reliable_deliver(self, message: BroadcastMessage) -> None:
        payload = message.payload
        if type(payload) is DeltaCausalEnvelope:
            envelope = self._decode_delta(message)
            if envelope is None:
                return  # parked until its base reconstructs, or stale
        else:
            envelope = payload
            if self._delta_enabled:
                self._note_recon(message.sender, envelope.vc)
        self._admit(message, envelope)
        if self._recon_pending:
            self._drain_recon(message.sender)
        self._pump()

    def _decode_delta(self, message: BroadcastMessage) -> Optional[CausalEnvelope]:
        wire: DeltaCausalEnvelope = message.payload
        sender = message.sender
        seq = -1
        for site, value in wire.delta:
            if site == sender:
                seq = value
                break
        if seq < 0:
            raise RuntimeError(
                f"site {self.site}: delta from {sender} lacks the sender's own entry"
            )
        prev = self._recon.get(sender)
        if prev is None or seq > prev.entries[sender] + 1:
            # Base not reconstructed yet (relay/retransmit reorder): park.
            self._recon_pending.setdefault(sender, {})[seq] = message
            self.deltas_parked += 1
            return None
        if seq <= prev.entries[sender]:
            return None  # stale duplicate of an already-reconstructed stamp
        vc = prev.apply_delta(wire.delta)
        self._recon[sender] = vc
        return CausalEnvelope(vc, wire.payload, wire.kind)

    def _note_recon(self, sender: int, vc: VectorClock) -> None:
        """A full stamp re-seeds the reconstruction chain for ``sender``."""
        prev = self._recon.get(sender)
        if prev is None or vc.entries[sender] > prev.entries[sender]:
            self._recon[sender] = vc

    def _drain_recon(self, sender: int) -> None:
        """Admit parked deltas from ``sender`` whose base just arrived."""
        parked = self._recon_pending.get(sender)
        if not parked:
            return
        while True:
            prev = self._recon[sender]
            message = parked.pop(prev.entries[sender] + 1, None)
            if message is None:
                break
            wire: DeltaCausalEnvelope = message.payload
            vc = prev.apply_delta(wire.delta)
            self._recon[sender] = vc
            self._admit(message, CausalEnvelope(vc, wire.payload, wire.kind))
        if not parked:
            del self._recon_pending[sender]

    def _admit(self, message: BroadcastMessage, envelope: CausalEnvelope) -> None:
        """Index a message under every clock entry still blocking it."""
        held = _Held(self._arrivals, message, envelope)
        self._arrivals += 1
        self._held[held.order] = held
        self._register(held)

    def _register(self, held: _Held) -> None:
        sender = held.message.sender
        # Hot path: raw entry lists, one scan, no generator machinery.
        stamped = held.envelope.vc.entries
        local = self._clock.entries
        deficit = 0
        seq = stamped[sender]
        if seq != local[sender] + 1:
            # Waits for the sender's preceding broadcast.  A *stale* stamp
            # (seq already delivered or skipped by a recovery fast-forward)
            # lands on a (sender, value) key the clock has already passed
            # and is never released — exactly the historical behavior of
            # parking it in the scan queue forever; fast_forward prunes it.
            deficit += 1
            self._waiting.setdefault((sender, seq - 1), []).append(held)
        for site, seen in enumerate(stamped):
            if site != sender and seen > local[site]:
                deficit += 1
                self._waiting.setdefault((site, seen), []).append(held)
        held.deficit = deficit
        if deficit == 0:
            heapq.heappush(self._heap, (held.order, held))

    def _pump(self) -> None:
        """Deliver ready messages in arrival order until the heap drains."""
        heap = self._heap
        while heap:
            order, held = heapq.heappop(heap)
            del self._held[order]
            self._apply(held.message, held.envelope)

    def _apply(self, message: BroadcastMessage, envelope: CausalEnvelope) -> None:
        sender = message.sender
        self._clock.increment_inplace(sender)
        self.delivered_count += 1
        if self.stability is not None:
            self.stability.observe(sender, envelope.vc)
            self.stability.observe(self.site, self._clock)
        # This delivery advanced exactly one clock entry: release the
        # messages waiting on it.
        waiters = self._waiting.pop((sender, self._clock.entries[sender]), None)
        if waiters is not None:
            for held in waiters:
                held.deficit -= 1
                if held.deficit == 0:
                    heapq.heappush(self._heap, (held.order, held))
        if self._deliver is None:
            raise RuntimeError(f"site {self.site}: causal broadcast has no deliver callback")
        self._deliver(message, envelope)

    def pending_count(self) -> int:
        """Messages held back waiting for causal predecessors (including
        deltas parked for reconstruction)."""
        parked = sum(
            len(self._recon_pending[sender]) for sender in sorted(self._recon_pending)
        )
        return len(self._held) + parked

    def fast_forward(self, clock_entries: list[int]) -> None:
        """Jump the delivered-vector past messages a state transfer already
        covers (crash recovery).  Our own send counter is preserved — peers
        still expect our next broadcast to continue our own sequence — and
        held-back messages from the skipped past are discarded.  Survivors
        are re-indexed against the new clock, keeping their arrival ranks;
        as before, delivery resumes with the next arrival, not here.
        """
        own_send_seq = max(self._send_seq, clock_entries[self.site])
        self._clock = VectorClock(clock_entries)
        self._clock.entries[self.site] = own_send_seq
        self._send_seq = own_send_seq
        survivors = [
            self._held[order]
            for order in sorted(self._held)
            if self._deliverable_in_future(self._held[order])
        ]
        self._held = {}
        self._heap = []
        self._waiting = {}
        for held in survivors:
            self._held[held.order] = held
            self._register(held)
        # Receivers may have lost our reconstruction chain while we were
        # away; ship a full clock first.
        self._full_due = True

    def _deliverable_in_future(self, held: _Held) -> bool:
        return held.envelope.vc[held.message.sender] > self._clock[held.message.sender]

    # -- recovery plumbing for delta reconstruction --------------------------------

    def export_recon(self) -> dict[int, list[int]]:
        """Last reconstructed stamp per sender — a state-transfer donor
        ships this so a rejoiner can decode deltas that straddle the
        transfer (senders also go full on the view change, so this is a
        second line of defense for the static-membership path)."""
        return {sender: list(vc.entries) for sender, vc in self._recon.items()}

    def adopt_recon(self, recon: dict[int, list[int]]) -> None:
        """Seed reconstruction bases from a donor's :meth:`export_recon`."""
        for sender, entries in sorted(recon.items()):
            self._note_recon(sender, VectorClock(entries))


# Import-time shape check for the size model (detcheck P201/P202).
register_payload(CausalEnvelope)
register_payload(DeltaCausalEnvelope)
