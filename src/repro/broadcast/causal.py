"""Causal broadcast: reliable broadcast + causal delivery order [Bv94].

Implementation: the classic vector-clock holdback algorithm.  Site ``i``
increments its clock entry and stamps the outgoing message; a received
message from ``j`` with clock ``V`` is deliverable at site ``k`` when

- ``V[j] == local[j] + 1``  (it is the next broadcast of ``j``), and
- ``V[x] <= local[x]`` for all ``x != j``  (everything the sender had
  delivered, we have delivered).

As the paper requires for the CBP protocol, the message clocks are exposed
to the application layer: the upward callback receives the stamped envelope,
and :meth:`clock` reports the site's current delivered-vector, so protocols
can test causal precedence and concurrency between operations.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.broadcast.message import BroadcastMessage
from repro.broadcast.reliable import ReliableBroadcast
from repro.broadcast.vector_clock import VectorClock
from repro.net.sizes import OBJECT_OVERHEAD, estimate_size, register_payload


@dataclass(slots=True)
class CausalEnvelope:
    """A payload stamped with the sender's vector clock at broadcast time."""

    vc: VectorClock
    payload: Any
    kind: str = ""
    #: Memoized wire size: the envelope carries an O(n) vector clock, and
    #: the enclosing BroadcastMessage consults this once per broadcast —
    #: the memo keeps re-deliveries and relays from re-walking the clock.
    _size: int = field(default=-1, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.kind:
            payload_kind = getattr(self.payload, "kind", None)
            self.kind = (
                payload_kind if isinstance(payload_kind, str) else type(self.payload).__name__
            )
        self.kind = sys.intern(self.kind)

    def __wire_size__(self) -> int:
        # Byte-identical to the generic traversal over (vc, payload, kind);
        # _size is sender-side bookkeeping, not wire content.
        if self._size < 0:
            self._size = (
                OBJECT_OVERHEAD
                + estimate_size(self.vc)
                + estimate_size(self.payload)
                + estimate_size(self.kind)
            )
        return self._size


class CausalBroadcast:
    """Causal broadcast endpoint for one site."""

    def __init__(self, reliable: ReliableBroadcast):
        self.reliable = reliable
        self.site = reliable.site
        self.num_sites = reliable.num_sites
        self._clock = VectorClock.zero(self.num_sites)
        self._send_seq = 0
        self._pending: list[BroadcastMessage] = []
        self._deliver: Optional[Callable[[BroadcastMessage, CausalEnvelope], None]] = None
        self.delivered_count = 0
        #: Optional matrix-clock stability tracking (see enable_stability).
        self.stability = None
        reliable.set_deliver(self._on_reliable_deliver)

    def enable_stability(self, gc: bool = False):
        """Attach a :class:`repro.broadcast.stability.StabilityTracker`.

        Every delivered envelope's clock feeds the tracker (it states what
        the sender had delivered), as does our own clock after each local
        delivery.  With ``gc=True``, stability advances also reclaim the
        reliable layer's deduplication entries for messages everyone has
        long delivered.  Returns the tracker.
        """
        from repro.broadcast.stability import StabilityTracker

        self.stability = StabilityTracker(self.num_sites, self.site)
        if gc:
            self.stability.on_advance(self.reliable.garbage_collect)
        return self.stability

    @property
    def clock(self) -> VectorClock:
        """Copy of the site's current delivered-vector clock."""
        return self._clock.copy()

    def set_deliver(self, fn: Callable[[BroadcastMessage, CausalEnvelope], None]) -> None:
        self._deliver = fn

    def broadcast(self, payload: Any, kind: Optional[str] = None) -> CausalEnvelope:
        """Causally broadcast ``payload``; returns the stamped envelope.

        The returned envelope's clock identifies this broadcast: its entry
        for this site is the broadcast's own event number, which protocols
        use for the implicit-acknowledgment test.

        The stamp combines the delivered-vector (what we have seen) with our
        own *send* counter, so back-to-back broadcasts issued before our own
        first message loops back through delivery still get distinct,
        FIFO-ordered stamps.
        """
        self._send_seq += 1
        stamp = self._clock.copy()
        stamp.entries[self.site] = self._send_seq
        envelope = CausalEnvelope(stamp, payload, kind or "")
        self.reliable.broadcast(envelope, envelope.kind)
        return envelope

    def _on_reliable_deliver(self, message: BroadcastMessage) -> None:
        self._pending.append(message)
        self._drain()

    def _drain(self) -> None:
        progress = True
        while progress:
            progress = False
            for index, message in enumerate(self._pending):
                if self._deliverable(message):
                    del self._pending[index]
                    self._apply(message)
                    progress = True
                    break

    def _deliverable(self, message: BroadcastMessage) -> bool:
        envelope: CausalEnvelope = message.payload
        sender = message.sender
        # Hot path: raw entry lists, one scan, no generator machinery.
        stamped = envelope.vc.entries
        local = self._clock.entries
        if stamped[sender] != local[sender] + 1:
            return False
        # Vector-clock deliverability compares whole clocks: the O(n) scan
        # is inherent to the algorithm, and this fused raw-entry loop is its
        # minimized form (no set builds, no generator machinery).
        # detcheck: ignore[S301]
        for site in range(self.num_sites):
            if site != sender and stamped[site] > local[site]:
                return False
        return True

    def _apply(self, message: BroadcastMessage) -> None:
        envelope: CausalEnvelope = message.payload
        self._clock.increment_inplace(message.sender)
        self.delivered_count += 1
        if self.stability is not None:
            self.stability.observe(message.sender, envelope.vc)
            self.stability.observe(self.site, self._clock)
        if self._deliver is None:
            raise RuntimeError(f"site {self.site}: causal broadcast has no deliver callback")
        self._deliver(message, envelope)

    def pending_count(self) -> int:
        """Messages held back waiting for causal predecessors."""
        return len(self._pending)

    def fast_forward(self, clock_entries: list[int]) -> None:
        """Jump the delivered-vector past messages a state transfer already
        covers (crash recovery).  Our own send counter is preserved — peers
        still expect our next broadcast to continue our own sequence — and
        held-back messages from the skipped past are discarded.
        """
        own_send_seq = max(self._send_seq, clock_entries[self.site])
        self._clock = VectorClock(clock_entries)
        self._clock.entries[self.site] = own_send_seq
        self._send_seq = own_send_seq
        self._pending = [m for m in self._pending if self._deliverable_in_future(m)]

    def _deliverable_in_future(self, message: BroadcastMessage) -> bool:
        envelope: CausalEnvelope = message.payload
        return envelope.vc[message.sender] > self._clock[message.sender]

# Import-time shape check for the size model (detcheck P201/P202).
register_payload(CausalEnvelope)
