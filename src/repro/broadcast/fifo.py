"""FIFO broadcast: reliable broadcast + per-sender delivery order.

With direct dissemination over FIFO links the order is already respected,
but relayed (flooded) messages can overtake each other, so this layer keeps
per-sender expected sequence numbers and a holdback queue regardless of the
mode underneath.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.broadcast.message import BroadcastMessage
from repro.broadcast.reliable import ReliableBroadcast


class FifoBroadcast:
    """FIFO-ordered broadcast endpoint layered on reliable broadcast."""

    def __init__(self, reliable: ReliableBroadcast):
        self.reliable = reliable
        self.site = reliable.site
        self._next_expected: dict[int, int] = {}
        self._holdback: dict[int, dict[int, BroadcastMessage]] = {}
        self._deliver: Optional[Callable[[BroadcastMessage], None]] = None
        reliable.set_deliver(self._on_reliable_deliver)

    def set_deliver(self, fn: Callable[[BroadcastMessage], None]) -> None:
        self._deliver = fn

    def broadcast(self, payload: Any, kind: Optional[str] = None) -> BroadcastMessage:
        return self.reliable.broadcast(payload, kind)

    def _on_reliable_deliver(self, message: BroadcastMessage) -> None:
        sender = message.sender
        expected = self._next_expected.get(sender, 0)
        if message.seq == expected:
            self._handoff(message)
            expected += 1
            queue = self._holdback.get(sender)
            while queue and expected in queue:
                self._handoff(queue.pop(expected))
                expected += 1
            self._next_expected[sender] = expected
        elif message.seq > expected:
            self._holdback.setdefault(sender, {})[message.seq] = message
        # message.seq < expected cannot happen: reliable layer deduplicates.

    def _handoff(self, message: BroadcastMessage) -> None:
        if self._deliver is None:
            raise RuntimeError(f"site {self.site}: FIFO broadcast has no deliver callback")
        self._deliver(message)
