"""Network partition injection.

A :class:`PartitionManager` tracks which sites can currently exchange
messages.  The default state is fully connected; experiments carve the sites
into disjoint groups and later heal them.  E9 (fault tolerance) uses this to
demonstrate majority-view liveness.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence


class PartitionManager:
    """Tracks communication groups among site ids ``0..n-1``."""

    def __init__(self, num_sites: int):
        if num_sites <= 0:
            raise ValueError("num_sites must be positive")
        self.num_sites = num_sites
        # group id per site; all zero means fully connected.
        self._group: list[int] = [0] * num_sites

    def connected(self, a: int, b: int) -> bool:
        """True when sites ``a`` and ``b`` can currently communicate."""
        return self._group[a] == self._group[b]

    def split(self, groups: Sequence[Iterable[int]]) -> None:
        """Partition the network into the given disjoint site groups.

        Sites not mentioned keep communicating only among themselves (they
        are placed together in one implicit leftover group).
        """
        assignment: dict[int, int] = {}
        for gid, members in enumerate(groups, start=1):
            for site in members:
                if site in assignment:
                    raise ValueError(f"site {site} appears in two groups")
                if not 0 <= site < self.num_sites:
                    raise ValueError(f"unknown site {site}")
                assignment[site] = gid
        leftover_gid = len(groups) + 1
        for site in range(self.num_sites):
            self._group[site] = assignment.get(site, leftover_gid)

    def isolate(self, site: int) -> None:
        """Cut one site off from everyone else."""
        if not 0 <= site < self.num_sites:
            raise ValueError(f"unknown site {site}")
        self._group[site] = max(self._group) + 1

    def heal(self) -> None:
        """Restore full connectivity."""
        self._group = [0] * self.num_sites

    def group_of(self, site: int) -> int:
        return self._group[site]

    def groups(self) -> list[list[int]]:
        """Current groups as sorted lists of site ids."""
        by_gid: dict[int, list[int]] = {}
        for site, gid in enumerate(self._group):
            by_gid.setdefault(gid, []).append(site)
        return [sorted(members) for _, members in sorted(by_gid.items())]

    def is_fully_connected(self) -> bool:
        return len(set(self._group)) == 1

    def majority_group(self) -> Optional[list[int]]:
        """The group holding a strict majority of sites, if any."""
        for members in self.groups():
            if len(members) * 2 > self.num_sites:
                return members
        return None
