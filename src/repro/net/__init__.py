"""Simulated asynchronous message-passing network.

This package is the substitution for the paper's LAN + group-communication
hardware: point-to-point FIFO links with configurable latency distributions,
optional message loss compensated by an ARQ transport, and partitions.

Layering (bottom to top):

- :class:`repro.net.network.Network` -- unreliable datagram fabric with
  per-link FIFO ordering and loss/partition injection.
- :class:`repro.net.transport.ReliableTransport` -- per-link ARQ giving
  reliable FIFO channels between correct, connected sites (what the paper
  assumes of its links).
- The broadcast primitives in :mod:`repro.broadcast` build on the transport.
"""

from repro.net.latency import (
    FixedLatency,
    LanLatency,
    LatencyModel,
    LognormalLatency,
    UniformLatency,
    WanLatency,
)
from repro.net.network import Datagram, Network, NetworkStats
from repro.net.partition import PartitionManager
from repro.net.router import ChannelRouter
from repro.net.sizes import estimate_size, wire_size
from repro.net.transport import ReliableTransport

__all__ = [
    "ChannelRouter",
    "Datagram",
    "FixedLatency",
    "LanLatency",
    "LatencyModel",
    "LognormalLatency",
    "Network",
    "NetworkStats",
    "PartitionManager",
    "ReliableTransport",
    "UniformLatency",
    "WanLatency",
    "estimate_size",
    "wire_size",
]
