"""Per-link ARQ transport: reliable FIFO channels over a lossy network.

The paper assumes reliable FIFO links between correct, connected sites; the
simulated :class:`repro.net.network.Network` can drop datagrams, so this
transport restores the assumption with sequence numbers, cumulative
acknowledgments and retransmission.

Two modes, chosen automatically:

- **passthrough** (``network.loss_rate == 0``): datagrams go straight
  through with no framing or acks, so message accounting matches the paper's
  analytical cost model exactly.
- **ARQ** (lossy network): payloads are framed with per-link sequence
  numbers; the receiver delivers in order and returns cumulative acks; the sender
  retransmits unacked frames on a timer.  Transport frames are labelled
  ``transport.ack`` / original payload kind so experiments can separate
  protocol messages from transport overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.net.network import Datagram, Network
from repro.net.sizes import register_payload
from repro.sim.engine import EventHandle, SimulationEngine


@dataclass(slots=True)
class Frame:
    """ARQ data frame wrapping one upper-layer payload."""

    seq: int
    payload: Any
    kind: str


@dataclass(slots=True)
class AckFrame:
    """Cumulative acknowledgment: everything below ``next_expected`` arrived."""

    next_expected: int
    kind: str = "transport.ack"


@dataclass
class _LinkSendState:
    next_seq: int = 0
    unacked: dict[int, Frame] = field(default_factory=dict)
    #: Reusable timer slot (see SimulationEngine.reschedule): the handle is
    #: kept across re-arms instead of cancel+push per ack/send cycle.
    retransmit_timer: Optional[EventHandle] = None
    #: Deadline the timer owes a retransmission for; None = fully acked
    #: (the timer may still be armed but fires as a no-op and is reused).
    retransmit_due: Optional[float] = None


@dataclass
class _LinkRecvState:
    next_expected: int = 0
    buffer: dict[int, Frame] = field(default_factory=dict)


class ReliableTransport:
    """Reliable FIFO channel endpoint for one site.

    Exactly one transport is attached per site; upper layers register a
    delivery callback with :meth:`set_receiver` and send with :meth:`send`.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        network: Network,
        site: int,
        retransmit_interval: Optional[float] = None,
    ):
        self.engine = engine
        self.network = network
        self.site = site
        self.passthrough = network.loss_rate == 0
        mean = network.latency.mean()
        self.retransmit_interval = (
            retransmit_interval if retransmit_interval is not None else max(4 * mean, 1.0)
        )
        self._receiver: Optional[Callable[[int, Any], None]] = None
        self._send_state: dict[int, _LinkSendState] = {}
        self._recv_state: dict[int, _LinkRecvState] = {}
        network.attach(site, self._on_datagram)

    def set_receiver(self, fn: Callable[[int, Any], None]) -> None:
        """Register the upper-layer callback ``fn(src_site, payload)``."""
        self._receiver = fn

    def send(self, dst: int, payload: Any, kind: Optional[str] = None) -> None:
        """Send ``payload`` reliably and in FIFO order to ``dst``."""
        if self.passthrough or dst == self.site:
            self.network.send(self.site, dst, payload, kind)
            return
        state = self._send_state.setdefault(dst, _LinkSendState())
        label = kind if kind is not None else getattr(payload, "kind", type(payload).__name__)
        frame = Frame(state.next_seq, payload, label)
        state.next_seq += 1
        state.unacked[frame.seq] = frame
        self.network.send(self.site, dst, frame, label)
        self._arm_retransmit(dst, state)

    def reset(self) -> None:
        """Drop all link state (used when a site recovers from a crash).

        Peers' states toward this site are reset lazily by sequence-number
        mismatch being impossible here: recovery in this library goes through
        a state transfer that supersedes in-flight traffic, so simply
        clearing is sufficient for the experiments we run.
        """
        for state in self._send_state.values():
            if state.retransmit_timer is not None:
                state.retransmit_timer.cancel()
        self._send_state.clear()
        self._recv_state.clear()

    # -- internals ---------------------------------------------------------

    def _on_datagram(self, datagram: Datagram) -> None:
        payload = datagram.payload
        if self.passthrough or datagram.src == self.site:
            self._deliver(datagram.src, payload)
            return
        if isinstance(payload, AckFrame):
            self._on_ack(datagram.src, payload)
        elif isinstance(payload, Frame):
            self._on_frame(datagram.src, payload)
        else:
            # Raw payload from a passthrough peer (mixed configs are not
            # expected, but handle it rather than dropping silently).
            self._deliver(datagram.src, payload)

    def _on_frame(self, src: int, frame: Frame) -> None:
        state = self._recv_state.setdefault(src, _LinkRecvState())
        if frame.seq == state.next_expected:
            state.next_expected += 1
            self._deliver(src, frame.payload)
            while state.next_expected in state.buffer:
                queued = state.buffer.pop(state.next_expected)
                state.next_expected += 1
                self._deliver(src, queued.payload)
        elif frame.seq > state.next_expected:
            state.buffer[frame.seq] = frame
        # Always (re)acknowledge cumulatively.
        self.network.send(self.site, src, AckFrame(state.next_expected), "transport.ack")

    def _on_ack(self, src: int, ack: AckFrame) -> None:
        state = self._send_state.get(src)
        if state is None:
            return
        for seq in [s for s in state.unacked if s < ack.next_expected]:
            del state.unacked[seq]
        if not state.unacked:
            # Park rather than cancel: the armed handle stays in the heap
            # and is reused (deferred in place) by the next send, so the
            # steady ack/send churn creates no heap garbage at all.
            state.retransmit_due = None

    def _arm_retransmit(self, dst: int, state: _LinkSendState) -> None:
        if state.retransmit_due is not None:
            return  # an earlier deadline is already owed
        state.retransmit_due = self.engine.now + self.retransmit_interval
        state.retransmit_timer = self.engine.reschedule(
            state.retransmit_timer, self.retransmit_interval, self._retransmit, dst
        )

    def _retransmit(self, dst: int) -> None:
        state = self._send_state.get(dst)
        if state is None or state.retransmit_due is None or not state.unacked:
            return  # parked no-op: everything was acked since arming
        if not self.network.site_is_up(self.site):
            # Re-armed by the next send after recovery (reset() clears us).
            state.retransmit_due = None
            return
        for seq in sorted(state.unacked):
            frame = state.unacked[seq]
            self.network.send(self.site, dst, frame, frame.kind)
        state.retransmit_due = self.engine.now + self.retransmit_interval
        state.retransmit_timer = self.engine.reschedule(
            state.retransmit_timer, self.retransmit_interval, self._retransmit, dst
        )

    def _deliver(self, src: int, payload: Any) -> None:
        if self._receiver is None:
            raise RuntimeError(f"site {self.site} transport has no receiver")
        self._receiver(src, payload)

# Import-time shape check for the size model (detcheck P201/P202).
register_payload(Frame, AckFrame)
