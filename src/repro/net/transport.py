"""Per-link ARQ transport: reliable FIFO channels over a faulty network.

The paper assumes reliable FIFO links between correct, connected sites; the
simulated :class:`repro.net.network.Network` can drop datagrams (loss,
partitions, crashed destinations), so this transport restores the assumption
with sequence numbers, cumulative acknowledgments, bounded windowed
retransmission and per-link incarnation epochs.

Two modes, fixed at construction:

- **passthrough**: datagrams go straight through with no framing or acks, so
  message accounting matches the paper's analytical cost model exactly.
  This is the default on a lossless network.
- **ARQ** (lossy network, or ``reliable=True`` on a lossless one): payloads
  are framed with per-link sequence numbers; the receiver delivers in order
  and returns cumulative acks; the sender retransmits unacked frames on a
  timer.  First transmissions keep the payload's own accounting label;
  retransmissions are labelled ``transport.retransmit`` and acks
  ``transport.ack`` so experiments can separate protocol messages from
  transport overhead (E1's analytical comparison depends on this).

Reliability machinery (ARQ mode):

- **Sliding window.**  At most ``window`` frames per link are in flight;
  further sends queue in FIFO order and are admitted as acks free slots, so
  a dead link accumulates a bounded retransmission set instead of an
  unbounded one.
- **Retransmission with exponential backoff.**  Each silent retransmit
  interval doubles the next one (up to ``max_backoff`` times the base
  interval); any ack that makes progress resets the backoff.  A crashed or
  partitioned peer therefore costs a geometrically decaying trickle, not a
  go-back-N storm every interval forever.
- **Reachability hook.**  :meth:`set_suspected` (wired to the failure
  detector by the cluster) parks retransmission toward suspected peers
  entirely and resumes it, with fresh backoff, when suspicion clears.
- **Incarnation epochs.**  Each transport carries a per-site epoch, bumped
  by :meth:`reset` when the site recovers from a crash (the counter lives on
  the long-lived transport object, standing in for a durably logged
  incarnation number).  Frames and acks carry both the sender's epoch and
  the sender's belief about the receiver's epoch.  A peer that observes a
  larger epoch re-frames its outstanding traffic from sequence zero for the
  new incarnation; a receiver that sees a frame numbered against its
  *previous* incarnation discards it but acks with the current epoch, which
  is what teaches the sender to re-frame.  Without this handshake a
  recovered site's peers would keep their old sequence state and every
  post-recovery frame would buffer forever — a silent FIFO stall.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.net.network import Datagram, Network
from repro.net.sizes import OBJECT_OVERHEAD, estimate_size, register_payload
from repro.sim.engine import EventHandle, SimulationEngine
from repro.sim.trace import TraceLog

#: Accounting label for retransmitted data frames (first transmissions keep
#: the payload's own kind; see NetworkStats.retransmissions).
RETRANSMIT_KIND = "transport.retransmit"
ACK_KIND = "transport.ack"


@dataclass(slots=True)
class Frame:
    """ARQ data frame wrapping one upper-layer payload.

    ``src_epoch`` is the sender's incarnation; ``dst_epoch`` is the
    incarnation of the receiver the sequence number was assigned against.
    """

    seq: int
    payload: Any
    kind: str
    src_epoch: int = 0
    dst_epoch: int = 0
    #: Memoized wire size: retransmission re-sends the *same* Frame object
    #: on every backoff interval, so without the memo a lossy link pays the
    #: full payload traversal once per retransmit, not once per frame.
    _size: int = field(default=-1, init=False, repr=False, compare=False)

    def __wire_size__(self) -> int:
        # Byte-identical to the generic __slots__ traversal: three fixed
        # ints (seq + epoch pair) plus payload and kind; _size is sender
        # bookkeeping, not wire content.
        if self._size < 0:
            self._size = (
                OBJECT_OVERHEAD
                + 24
                + estimate_size(self.payload)
                + estimate_size(self.kind)
            )
        return self._size


@dataclass(slots=True)
class AckFrame:
    """Cumulative acknowledgment: everything below ``next_expected`` arrived.

    Carries the same epoch pair as :class:`Frame` so a recovered receiver's
    acks teach senders about the new incarnation even when the ack itself
    acknowledges nothing.
    """

    next_expected: int
    src_epoch: int = 0
    dst_epoch: int = 0
    kind: str = "transport.ack"

    def __wire_size__(self) -> int:
        # Fixed shape (three ints + an interned label): shortcut for the
        # size estimator, byte-identical to its generic traversal.  Acks are
        # the most numerous frames on a reliable link, one per data frame.
        return OBJECT_OVERHEAD + 24 + estimate_size(self.kind)


@dataclass
class _LinkSendState:
    next_seq: int = 0
    unacked: dict[int, Frame] = field(default_factory=dict)
    #: Payloads waiting for a window slot, FIFO: (payload, accounting label).
    pending: deque = field(default_factory=deque)
    #: Multiplier on the base retransmit interval; doubles on every silent
    #: retransmission, resets to 1 on ack progress.
    backoff: float = 1.0
    #: Reusable timer slot (see SimulationEngine.reschedule): the handle is
    #: kept across re-arms instead of cancel+push per ack/send cycle.
    retransmit_timer: Optional[EventHandle] = None
    #: Deadline the timer owes a retransmission for; None = parked (fully
    #: acked, or the peer is suspected down — the timer may still be armed
    #: but fires as a no-op and is reused).
    retransmit_due: Optional[float] = None


@dataclass
class _LinkRecvState:
    next_expected: int = 0
    buffer: dict[int, Frame] = field(default_factory=dict)


class ReliableTransport:
    """Reliable FIFO channel endpoint for one site.

    Exactly one transport is attached per site; upper layers register a
    delivery callback with :meth:`set_receiver` and send with :meth:`send`.

    ``reliable=None`` (the default) picks ARQ exactly when the network is
    lossy, keeping lossless runs passthrough (and bit-identical to the
    analytical cost model).  ``reliable=True`` forces ARQ on a lossless
    network — required before ``FaultSchedule.flaky_links`` can inject loss
    mid-run, and for partitions whose dropped datagrams should be repaired
    rather than retried at the protocol layer.  ``reliable=False`` on a
    lossy network is an error: it would silently break the reliable-link
    assumption every protocol in this library is built on.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        network: Network,
        site: int,
        retransmit_interval: Optional[float] = None,
        reliable: Optional[bool] = None,
        window: int = 32,
        max_backoff: float = 64.0,
        trace: Optional[TraceLog] = None,
    ):
        if window < 1:
            raise ValueError("window must be at least 1")
        if max_backoff < 1:
            raise ValueError("max_backoff must be at least 1 (a multiplier)")
        if reliable is False and network.loss_rate > 0:
            raise ValueError(
                "reliable=False (passthrough) on a lossy network would break "
                "the reliable-FIFO-link assumption; drop reliable_links=False "
                "or build the network with loss_rate=0"
            )
        self.engine = engine
        self.network = network
        self.site = site
        self.passthrough = (network.loss_rate == 0) if reliable is None else not reliable
        self.window = window
        self.max_backoff = max_backoff
        self.trace = trace
        mean = network.latency.mean()
        self.retransmit_interval = (
            retransmit_interval if retransmit_interval is not None else max(4 * mean, 1.0)
        )
        #: This site's incarnation number, bumped by :meth:`reset`.
        self.epoch = 0
        #: Largest incarnation observed per peer.  Survives :meth:`reset`:
        #: losing it would only cost an extra resync round trip, but keeping
        #: it keeps recovery deterministic and cheap.
        self._peer_epoch: dict[int, int] = {}
        #: Peers the failure detector currently suspects (see
        #: :meth:`set_suspected`); retransmission toward them is parked.
        self._suspected: set[int] = set()
        self._receiver: Optional[Callable[[int, Any], None]] = None
        self._send_state: dict[int, _LinkSendState] = {}
        self._recv_state: dict[int, _LinkRecvState] = {}
        network.attach(site, self._on_datagram)

    def set_receiver(self, fn: Callable[[int, Any], None]) -> None:
        """Register the upper-layer callback ``fn(src_site, payload)``."""
        self._receiver = fn

    def send(self, dst: int, payload: Any, kind: Optional[str] = None) -> None:
        """Send ``payload`` reliably and in FIFO order to ``dst``."""
        if self.passthrough or dst == self.site:
            self.network.send(self.site, dst, payload, kind)
            return
        state = self._send_state.setdefault(dst, _LinkSendState())
        label = kind if kind is not None else getattr(payload, "kind", type(payload).__name__)
        if len(state.unacked) >= self.window:
            state.pending.append((payload, label))
            return
        self._admit(dst, state, payload, label)

    def reset(self) -> None:
        """Begin a new incarnation after a crash (drop all link state).

        Bumps :attr:`epoch` so peers can tell post-recovery traffic from the
        previous incarnation's: frames we now send carry the new epoch (a
        peer seeing it re-frames its side of the link from sequence zero),
        and frames peers send numbered against our old incarnation are
        discarded but acked with the new epoch, which resynchronizes the
        sender.  Peer-side retransmit timers keep firing until that
        handshake completes, but each firing toward a down site parks itself
        behind exponential backoff, so the churn is bounded.
        """
        for state in self._send_state.values():
            if state.retransmit_timer is not None:
                state.retransmit_timer.cancel()
        self._send_state.clear()
        self._recv_state.clear()
        self._suspected = set()
        self.epoch += 1

    def set_suspected(self, suspected: set[int]) -> None:
        """Reachability hook: park retransmission toward suspected peers.

        Wired to the failure detector's suspicion changes by the cluster.
        Newly suspected peers have their retransmit deadline parked (the
        armed timer fires as a no-op and is reused later); peers whose
        suspicion clears get fresh backoff and an immediate re-arm if frames
        are still outstanding toward them.
        """
        if self.passthrough:
            return
        previous = self._suspected
        self._suspected = set(suspected)
        for peer in sorted(self._suspected - previous):
            state = self._send_state.get(peer)
            if state is not None:
                state.retransmit_due = None
        for peer in sorted(previous - self._suspected):
            state = self._send_state.get(peer)
            if state is None:
                continue
            state.backoff = 1.0
            if state.unacked or state.pending:
                self._arm_retransmit(peer, state)

    # -- internals ---------------------------------------------------------

    def _on_datagram(self, datagram: Datagram) -> None:
        payload = datagram.payload
        if self.passthrough or datagram.src == self.site:
            self._deliver(datagram.src, payload)
            return
        if isinstance(payload, AckFrame):
            self._on_ack(datagram.src, payload)
        elif isinstance(payload, Frame):
            self._on_frame(datagram.src, payload)
        else:
            # A raw (unframed) payload reaching an ARQ endpoint means some
            # peer runs in passthrough mode.  Delivering it would bypass the
            # FIFO machinery and let framing bugs masquerade as reordering
            # or duplication, so mixed configs are an explicit error.
            if self.trace is not None:
                self.trace.emit(
                    self.engine.now,
                    f"transport{self.site}",
                    "transport.unframed",
                    src=datagram.src,
                    payload_kind=datagram.kind,
                )
            raise RuntimeError(
                f"site {self.site} (ARQ mode) received an unframed payload of "
                f"kind {datagram.kind!r} from site {datagram.src}: mixed "
                "passthrough/ARQ transport configurations are not supported"
            )

    def _note_peer_epoch(self, peer: int, peer_epoch: int) -> bool:
        """Track ``peer``'s incarnation; False means the message is stale.

        Seeing a larger epoch means the peer crashed and recovered: its
        receive state for us is gone (our outstanding frames must be
        re-framed from sequence zero) and its old send stream toward us is
        dead (our buffered out-of-order frames from it can never be
        completed, their FIFO predecessors died with the crash).
        """
        known = self._peer_epoch.get(peer, 0)
        if peer_epoch < known:
            return False
        if peer_epoch > known:
            self._peer_epoch[peer] = peer_epoch
            self._relink(peer)
        return True

    def _relink(self, peer: int) -> None:
        """Restart the link to ``peer`` for its new incarnation."""
        self._recv_state.pop(peer, None)
        old = self._send_state.pop(peer, None)
        if old is None:
            return
        if old.retransmit_timer is not None:
            old.retransmit_timer.cancel()
        state = _LinkSendState()
        self._send_state[peer] = state
        # Re-frame in the original FIFO order: unacked frames (by sequence)
        # first, then payloads that never got a window slot.
        for seq in sorted(old.unacked):
            frame = old.unacked[seq]
            if len(state.unacked) < self.window:
                self._admit(peer, state, frame.payload, frame.kind, resend=True)
            else:
                state.pending.append((frame.payload, frame.kind))
        state.pending.extend(old.pending)

    def _admit(
        self,
        dst: int,
        state: _LinkSendState,
        payload: Any,
        label: str,
        resend: bool = False,
    ) -> None:
        """Assign the next sequence number, transmit, arm the timer."""
        frame = Frame(
            state.next_seq, payload, label, self.epoch, self._peer_epoch.get(dst, 0)
        )
        state.next_seq += 1
        state.unacked[frame.seq] = frame
        self._transmit(dst, frame, resend)
        self._arm_retransmit(dst, state)

    def _transmit(self, dst: int, frame: Frame, resend: bool) -> None:
        if resend:
            # Retransmissions get their own accounting label so protocol
            # message counts (E1) keep matching the analytical cost model.
            self.network.stats.retransmissions += 1
            self.network.send(self.site, dst, frame, RETRANSMIT_KIND)
        else:
            self.network.send(self.site, dst, frame, frame.kind)

    def _refill(self, dst: int, state: _LinkSendState) -> None:
        while state.pending and len(state.unacked) < self.window:
            payload, label = state.pending.popleft()
            self._admit(dst, state, payload, label)

    def _on_frame(self, src: int, frame: Frame) -> None:
        if not self._note_peer_epoch(src, frame.src_epoch):
            return  # a previous incarnation of src; its stream is dead
        state = self._recv_state.setdefault(src, _LinkRecvState())
        if frame.dst_epoch != self.epoch:
            # Numbered against our previous incarnation: the sequence means
            # nothing to our fresh receive state.  Ack with the current
            # epoch; _note_peer_epoch on the sender re-frames its traffic.
            self._send_ack(src, state)
            return
        if frame.seq == state.next_expected:
            state.next_expected += 1
            self._deliver(src, frame.payload)
            while state.next_expected in state.buffer:
                queued = state.buffer.pop(state.next_expected)
                state.next_expected += 1
                self._deliver(src, queued.payload)
        elif frame.seq > state.next_expected:
            state.buffer[frame.seq] = frame
        # Always (re)acknowledge cumulatively.
        self._send_ack(src, state)

    def _send_ack(self, src: int, state: _LinkRecvState) -> None:
        ack = AckFrame(state.next_expected, self.epoch, self._peer_epoch.get(src, 0))
        self.network.send(self.site, src, ack, ACK_KIND)

    def _on_ack(self, src: int, ack: AckFrame) -> None:
        if not self._note_peer_epoch(src, ack.src_epoch):
            return
        if ack.dst_epoch != self.epoch:
            return  # acknowledges frames of our previous incarnation
        state = self._send_state.get(src)
        if state is None:
            return
        acked = [s for s in state.unacked if s < ack.next_expected]
        for seq in acked:
            del state.unacked[seq]
        if acked:
            state.backoff = 1.0  # forward progress
            self._refill(src, state)
        if not state.unacked:
            # Park rather than cancel: the armed handle stays in the heap
            # and is reused (deferred in place) by the next send, so the
            # steady ack/send churn creates no heap garbage at all.
            state.retransmit_due = None
        elif acked:
            # Progress reset the backoff; pull the (possibly backed-off)
            # deadline back in for the frames still outstanding.
            state.retransmit_due = None
            self._arm_retransmit(src, state)

    def _arm_retransmit(self, dst: int, state: _LinkSendState) -> None:
        if state.retransmit_due is not None or dst in self._suspected:
            return  # an earlier deadline is owed, or the peer is parked
        delay = self.retransmit_interval * state.backoff
        state.retransmit_due = self.engine.now + delay
        state.retransmit_timer = self.engine.reschedule(
            state.retransmit_timer, delay, self._retransmit, dst
        )

    def _retransmit(self, dst: int) -> None:
        state = self._send_state.get(dst)
        if state is None or state.retransmit_due is None or not state.unacked:
            return  # parked no-op: acked, parked, or reset since arming
        if not self.network.site_is_up(self.site):
            # Re-armed by the next send after recovery (reset() clears us).
            state.retransmit_due = None
            return
        for seq in sorted(state.unacked):
            self._transmit(dst, state.unacked[seq], True)
        # Exponential backoff: each silent interval doubles the next one so
        # a dead or partitioned peer costs a decaying trickle, not a storm.
        state.backoff = min(state.backoff * 2, self.max_backoff)
        delay = self.retransmit_interval * state.backoff
        state.retransmit_due = self.engine.now + delay
        state.retransmit_timer = self.engine.reschedule(
            state.retransmit_timer, delay, self._retransmit, dst
        )

    def _deliver(self, src: int, payload: Any) -> None:
        if self._receiver is None:
            raise RuntimeError(f"site {self.site} transport has no receiver")
        self._receiver(src, payload)

# Import-time shape check for the size model (detcheck P201/P202).
register_payload(Frame, AckFrame)
