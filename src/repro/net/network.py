"""The datagram fabric: per-link FIFO, latency, loss, partitions, crashes.

:class:`Network` models the physical medium.  Guarantees and non-guarantees:

- **FIFO per link**: two datagrams from site A to site B are delivered in
  send order (the paper assumes FIFO links).  Implemented by clamping each
  link's delivery time to be monotonically non-decreasing.
- **Loss**: each datagram is dropped independently with ``loss_rate``
  probability; recovery from loss is the transport's job.
- **Partitions / crashes**: datagrams to unreachable or crashed sites are
  silently dropped (counted in the stats).

The network also keeps the message accounting used by the paper-style cost
comparisons (experiment E1): physical point-to-point sends per payload kind.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.net.latency import FixedLatency, LatencyModel
from repro.net.sizes import estimate_size, wire_size
from repro.net.partition import PartitionManager
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RngRegistry


@dataclass
# Simulator-internal delivery record: the network sizes datagram *payloads*
# (wire_size(payload) below), never the Datagram wrapper itself.
# detcheck: ignore[S302]
class Datagram:
    """One point-to-point message on the wire."""

    src: int
    dst: int
    payload: Any
    kind: str
    send_time: float
    deliver_time: float = 0.0


@dataclass
class NetworkStats:
    """Message accounting, the raw material of experiment E1."""

    sent: int = 0
    delivered: int = 0
    bytes_sent: int = 0
    dropped_loss: int = 0
    dropped_partition: int = 0
    dropped_crashed: int = 0
    #: Data frames re-sent by the ARQ transport.  Counted here (alongside
    #: the ``transport.retransmit`` by_kind label) so experiments can report
    #: repair traffic next to the loss/partition drop counters it answers.
    retransmissions: int = 0
    by_kind: Counter = field(default_factory=Counter)
    bytes_by_kind: Counter = field(default_factory=Counter)

    def snapshot(self) -> dict[str, Any]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "bytes_sent": self.bytes_sent,
            "dropped_loss": self.dropped_loss,
            "dropped_partition": self.dropped_partition,
            "dropped_crashed": self.dropped_crashed,
            "retransmissions": self.retransmissions,
            "by_kind": dict(self.by_kind),
        }


class Network:
    """Simulated datagram network connecting numbered sites.

    Sites register a receive callback with :meth:`attach`; crashed sites are
    marked with :meth:`set_site_up`.  The optional ``payload_kind`` function
    extracts an accounting label from payloads (defaults to the payload's
    ``kind`` attribute, or its type name).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        num_sites: int,
        latency: Optional[LatencyModel] = None,
        rng: Optional[RngRegistry] = None,
        loss_rate: float = 0.0,
        bandwidth: Optional[float] = None,
    ):
        if num_sites <= 0:
            raise ValueError("num_sites must be positive")
        if not 0 <= loss_rate < 1:
            raise ValueError("loss_rate must be in [0, 1)")
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError("bandwidth must be positive (bytes per ms)")
        self.engine = engine
        self.num_sites = num_sites
        self.latency = latency if latency is not None else FixedLatency(1.0)
        self.loss_rate = loss_rate
        #: Optional per-link bandwidth in bytes/ms: adds size/bandwidth
        #: transmission delay on top of the propagation latency.
        self.bandwidth = bandwidth
        self.partitions = PartitionManager(num_sites)
        self.stats = NetworkStats()
        self._rng = (rng or RngRegistry(0)).stream("network")
        self._handlers: list[Optional[Callable[[Datagram], None]]] = [None] * num_sites
        self._site_up = [True] * num_sites
        # Per-(src, dst) last scheduled delivery time, for FIFO clamping.
        self._last_delivery: dict[tuple[int, int], float] = {}

    def attach(self, site: int, handler: Callable[[Datagram], None]) -> None:
        """Register the receive callback for ``site``."""
        self._check_site(site)
        self._handlers[site] = handler

    def set_site_up(self, site: int, up: bool) -> None:
        """Mark a site crashed (False) or recovered (True)."""
        self._check_site(site)
        self._site_up[site] = up

    def site_is_up(self, site: int) -> bool:
        self._check_site(site)
        return self._site_up[site]

    def send(self, src: int, dst: int, payload: Any, kind: Optional[str] = None) -> None:
        """Send one datagram; it may be lost, partitioned away, or delivered.

        Loopback (``src == dst``) is delivered with zero loss after a tiny
        scheduling delay so local delivery still goes through the event loop
        (keeping callback ordering uniform).
        """
        self._check_site(src)
        self._check_site(dst)
        label = kind if kind is not None else _kind_of(payload)
        size = wire_size(payload)
        self.stats.sent += 1
        self.stats.bytes_sent += size
        if label == _BATCH_KIND:
            # A flush-window batch is one physical datagram but many
            # protocol messages: attribute each constituent's count and
            # bytes to its own kind so the E1/E11 per-kind cost tables are
            # batching-invariant, and only the shared framing residual to
            # the batch label.  (Retransmissions of batch frames keep the
            # opaque ``transport.retransmit`` label, as all repair traffic
            # does.)  ``sent`` keeps counting physical datagrams, so with
            # batching on ``sum(by_kind) > sent`` by design.
            self._account_batch(payload, size)
        else:
            self.stats.by_kind[label] += 1
            self.stats.bytes_by_kind[label] += size

        if not self._site_up[src]:
            # A crashed site cannot send; callers normally guard this, but a
            # late timer may race a crash.
            self.stats.dropped_crashed += 1
            return
        if src != dst:
            if not self.partitions.connected(src, dst):
                self.stats.dropped_partition += 1
                return
            if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
                self.stats.dropped_loss += 1
                return
            delay = self.latency.sample(self._rng, src, dst)
            if self.bandwidth is not None:
                delay += size / self.bandwidth
        else:
            delay = 0.0

        now = self.engine.now
        deliver_at = now + delay
        # FIFO clamp: never deliver before an earlier datagram on this link.
        key = (src, dst)
        floor = self._last_delivery.get(key, 0.0)
        if deliver_at < floor:
            deliver_at = floor
        self._last_delivery[key] = deliver_at

        datagram = Datagram(src, dst, payload, label, now, deliver_at)
        self.engine.schedule_at(deliver_at, self._deliver, datagram)

    def multicast(
        self,
        src: int,
        dsts: list[int],
        payload: Any,
        kind: Optional[str] = None,
        include_self: bool = False,
    ) -> None:
        """Unicast ``payload`` to each destination (the LAN broadcast model).

        The paper's cost model treats a broadcast to ``n`` sites as ``n``
        point-to-point messages in the absence of hardware multicast; this
        method makes that accounting explicit.
        """
        for dst in dsts:
            if dst == src and not include_self:
                continue
            self.send(src, dst, payload, kind)

    def _deliver(self, datagram: Datagram) -> None:
        if not self._site_up[datagram.dst]:
            self.stats.dropped_crashed += 1
            return
        if datagram.src != datagram.dst and not self.partitions.connected(
            datagram.src, datagram.dst
        ):
            # Partition struck while in flight.
            self.stats.dropped_partition += 1
            return
        handler = self._handlers[datagram.dst]
        if handler is None:
            raise RuntimeError(f"site {datagram.dst} has no attached handler")
        self.stats.delivered += 1
        handler(datagram)

    def _account_batch(self, payload: Any, size: int) -> None:
        """Split a batch datagram's accounting across its constituents.

        ``payload`` is the BatchEnvelope itself on a passthrough link, or
        the ARQ data frame wrapping one; anything else labeled as a batch
        is accounted opaquely.  The invariant ``sum(bytes_by_kind) ==
        bytes_sent`` is preserved: constituent sizes are the same memoized
        estimates the envelope's own wire size summed over.
        """
        batch = payload if isinstance(payload, BatchEnvelope) else getattr(payload, "payload", None)
        if not isinstance(batch, BatchEnvelope):
            self.stats.by_kind[_BATCH_KIND] += 1
            self.stats.bytes_by_kind[_BATCH_KIND] += size
            return
        by_kind = self.stats.by_kind
        bytes_by_kind = self.stats.bytes_by_kind
        inner = 0
        for item in batch.items:
            item_size = estimate_size(item)
            item_kind = _kind_of(item)
            by_kind[item_kind] += 1
            bytes_by_kind[item_kind] += item_size
            inner += item_size
        by_kind[_BATCH_KIND] += 1
        bytes_by_kind[_BATCH_KIND] += size - inner

    def _check_site(self, site: int) -> None:
        if not 0 <= site < self.num_sites:
            raise ValueError(f"unknown site {site} (num_sites={self.num_sites})")

    def reset_stats(self) -> None:
        self.stats = NetworkStats()


def _kind_of(payload: Any) -> str:
    kind = getattr(payload, "kind", None)
    if isinstance(kind, str):
        return kind
    return type(payload).__name__


# Imported last: batching lives in repro.broadcast, whose package import
# reaches this module through the transport — by this point every name the
# cycle needs is defined.
from repro.broadcast.batching import BATCH_KIND as _BATCH_KIND  # noqa: E402
from repro.broadcast.batching import BatchEnvelope  # noqa: E402
