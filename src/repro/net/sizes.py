"""Approximate wire-size estimation for simulated payloads.

The paper's cost analysis counts messages; real deployments also care
about *bytes* (a CBP write set carries values, an RBP vote carries one
bit).  This module estimates a serialized size for arbitrary payload
objects so the network can keep byte accounting and optionally model
transmission delay over a finite-bandwidth link.

The estimate is intentionally simple and deterministic: primitive sizes
plus per-object framing overhead, recursing through containers and
dataclass-style ``__dict__``/`__slots__`` objects.
"""

from __future__ import annotations

from typing import Any

#: Per-message envelope overhead (headers, addressing), in bytes.
HEADER_BYTES = 48
#: Per-object framing overhead inside a payload.
OBJECT_OVERHEAD = 8

_PRIMITIVE_SIZES = {
    bool: 1,
    int: 8,
    float: 8,
    type(None): 0,
}


def estimate_size(payload: Any, _depth: int = 0) -> int:
    """Deterministic approximate serialized size of ``payload`` in bytes."""
    if _depth > 12:  # cycles / pathological nesting: stop estimating
        return OBJECT_OVERHEAD
    for primitive, size in _PRIMITIVE_SIZES.items():
        if type(payload) is primitive:
            return size
    if isinstance(payload, str):
        return len(payload.encode("utf-8", errors="replace"))
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, dict):
        return OBJECT_OVERHEAD + sum(
            estimate_size(k, _depth + 1) + estimate_size(v, _depth + 1)
            for k, v in payload.items()
        )
    if isinstance(payload, (list, tuple, set, frozenset)):
        return OBJECT_OVERHEAD + sum(estimate_size(item, _depth + 1) for item in payload)
    inner = getattr(payload, "__dict__", None)
    if inner is not None:
        return OBJECT_OVERHEAD + sum(
            estimate_size(value, _depth + 1) for value in inner.values()
        )
    slots = getattr(payload, "__slots__", None)
    if slots is not None:
        return OBJECT_OVERHEAD + sum(
            estimate_size(getattr(payload, name, None), _depth + 1) for name in slots
        )
    return OBJECT_OVERHEAD


def wire_size(payload: Any) -> int:
    """Payload size plus the per-message header."""
    return HEADER_BYTES + estimate_size(payload)
