"""Approximate wire-size estimation for simulated payloads.

The paper's cost analysis counts messages; real deployments also care
about *bytes* (a CBP write set carries values, an RBP vote carries one
bit).  This module estimates a serialized size for arbitrary payload
objects so the network can keep byte accounting and optionally model
transmission delay over a finite-bandwidth link.

The estimate is intentionally simple and deterministic: primitive sizes
plus per-object framing overhead, recursing through containers and
dataclass-style ``__dict__``/`__slots__`` objects.

``estimate_size`` runs once per datagram per destination, which makes it
one of the hottest functions in the simulator, so the traversal dispatches
on exact type first and memoizes what is safe to memoize: UTF-8 lengths of
(heavily repeated) strings and the ``__slots__`` tuple of each class.  The
returned sizes are byte-for-byte identical to a naive traversal.
"""

from __future__ import annotations

from typing import Any

#: Per-message envelope overhead (headers, addressing), in bytes.
HEADER_BYTES = 48
#: Per-object framing overhead inside a payload.
OBJECT_OVERHEAD = 8
#: One ``(site, value)`` entry of a delta-encoded vector clock: a pair
#: object framing two 8-byte ints.  Matches the generic traversal of a
#: 2-int tuple, so delta envelopes stay byte-identical to naive sizing;
#: a delta with ``k`` changed entries costs ``OBJECT_OVERHEAD + k *
#: DELTA_PAIR_BYTES`` against the full clock's ``2 * OBJECT_OVERHEAD +
#: 8 * num_sites``.
DELTA_PAIR_BYTES = OBJECT_OVERHEAD + 16

_PRIMITIVE_SIZES = {
    bool: 1,
    int: 8,
    float: 8,
    type(None): 0,
}

#: Encoded lengths of previously seen strings (keys, kinds, txn names all
#: repeat across thousands of messages).  Bounded so adversarial workloads
#: with unbounded distinct strings cannot leak memory.
_STR_SIZES: dict[str, int] = {}
_STR_SIZES_LIMIT = 1 << 16

#: Per-class traversal plan: ``cls -> (cls.__wire_size__, cls.__slots__)``
#: (either may be None), resolved once per class.  A class may define
#: ``__wire_size__(self) -> int`` to shortcut the walk over its fields; the
#: contract is that it returns exactly what the generic traversal would —
#: it exists for hot fixed-shape headers (vector clocks, message ids), not
#: to change the cost model.
_CLASS_PLAN: dict[type, tuple[Any, Any]] = {}


def estimate_size(payload: Any, _depth: int = 0) -> int:
    """Deterministic approximate serialized size of ``payload`` in bytes."""
    if _depth > 12:  # cycles / pathological nesting: stop estimating
        return OBJECT_OVERHEAD
    cls = payload.__class__
    size = _PRIMITIVE_SIZES.get(cls)
    if size is not None:
        return size
    if cls is str:
        size = _STR_SIZES.get(payload)
        if size is None:
            size = len(payload.encode("utf-8", errors="replace"))
            if len(_STR_SIZES) < _STR_SIZES_LIMIT:
                _STR_SIZES[payload] = size
        return size
    deeper = _depth + 1
    if isinstance(payload, str):  # str subclass: size it, skip the cache
        return len(payload.encode("utf-8", errors="replace"))
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, dict):
        total = OBJECT_OVERHEAD
        for key, value in payload.items():
            total += estimate_size(key, deeper) + estimate_size(value, deeper)
        return total
    if isinstance(payload, (list, tuple, set, frozenset)):
        total = OBJECT_OVERHEAD
        for item in payload:
            total += estimate_size(item, deeper)
        return total
    try:
        sizer, slots = _CLASS_PLAN[cls]
    except KeyError:
        sizer = getattr(cls, "__wire_size__", None)
        slots = getattr(cls, "__slots__", None)
        _CLASS_PLAN[cls] = (sizer, slots)
    if sizer is not None:
        return sizer(payload)
    inner = getattr(payload, "__dict__", None)
    if inner is not None:
        total = OBJECT_OVERHEAD
        for value in inner.values():
            total += estimate_size(value, deeper)
        return total
    if slots is not None:
        total = OBJECT_OVERHEAD
        for name in slots:
            total += estimate_size(getattr(payload, name, None), deeper)
        return total
    return OBJECT_OVERHEAD


def wire_size(payload: Any) -> int:
    """Payload size plus the per-message header."""
    return HEADER_BYTES + estimate_size(payload)


#: Payload classes vetted for the size model (see :func:`register_payload`).
_REGISTERED_PAYLOADS: set[type] = set()


def register_payload(*classes: type) -> None:
    """Declare wire payload classes to the size model.

    Every class whose instances travel through :func:`wire_size` must either
    define ``__wire_size__`` or be slotted, so the estimator's traversal has
    a fixed shape and never falls back to attribute-dict walking.  Payload
    modules call this at import time for each payload they define; the check
    here turns a forgotten ``slots=True`` into an import error instead of a
    silently different (and slower) size estimate.  detcheck rule P202
    enforces statically that every payload class reaches a call like this.
    """
    for cls in classes:
        if not hasattr(cls, "__wire_size__") and "__slots__" not in cls.__dict__:
            raise TypeError(
                f"wire payload {cls.__name__} must declare __slots__ "
                "(e.g. @dataclass(slots=True)) or define __wire_size__"
            )
        _REGISTERED_PAYLOADS.add(cls)


def registered_payloads() -> frozenset[type]:
    """The payload classes registered so far (for tests and audits)."""
    return frozenset(_REGISTERED_PAYLOADS)
