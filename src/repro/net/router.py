"""Channel demultiplexer over a site's transport.

A site runs several message-consuming components (broadcast stack, failure
detector, membership, protocol point-to-point traffic).  The router tags
payloads with a channel name at the sender and dispatches by channel at the
receiver, so the components stay decoupled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.net.sizes import OBJECT_OVERHEAD, estimate_size, register_payload
from repro.net.transport import ReliableTransport


@dataclass(slots=True)
class Tagged:
    """A channel-tagged payload travelling through the transport."""

    channel: str
    payload: Any
    kind: str
    #: Memoized wire size: the network sizes every datagram, and a
    #: multicast reuses one Tagged across all destinations, so the payload
    #: traversal runs once per message instead of once per send.
    _size: int = field(default=-1, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.kind:
            payload_kind = getattr(self.payload, "kind", None)
            self.kind = (
                payload_kind if isinstance(payload_kind, str) else type(self.payload).__name__
            )

    def __wire_size__(self) -> int:
        # Byte-identical to the generic traversal over (channel, payload,
        # kind); _size is sender-side bookkeeping, not wire content.
        if self._size < 0:
            self._size = (
                OBJECT_OVERHEAD
                + estimate_size(self.channel)
                + estimate_size(self.payload)
                + estimate_size(self.kind)
            )
        return self._size


class ChannelRouter:
    """Sends and dispatches channel-tagged payloads for one site."""

    def __init__(self, transport: ReliableTransport, batcher: Optional[Any] = None):
        self.transport = transport
        self.site = transport.site
        #: Optional flush-window coalescer (repro.broadcast.batching); when
        #: absent every send goes straight to the transport, keeping the
        #: historical wire traffic bit-identical.
        self.batcher = batcher
        self._sender = batcher if batcher is not None else transport
        self._handlers: dict[str, Callable[[int, Any], None]] = {}
        transport.set_receiver(self._dispatch)

    def register(self, channel: str, handler: Callable[[int, Any], None]) -> None:
        """Register ``handler(src_site, payload)`` for ``channel``."""
        if channel in self._handlers:
            raise ValueError(f"channel {channel!r} already registered")
        self._handlers[channel] = handler

    def send(self, dst: int, channel: str, payload: Any, kind: Optional[str] = None) -> None:
        self._sender.send(dst, Tagged(channel, payload, kind or ""), kind)

    def multicast(
        self,
        dsts: list[int],
        channel: str,
        payload: Any,
        kind: Optional[str] = None,
        include_self: bool = False,
    ) -> None:
        # One envelope for the whole fan-out: allocation and the memoized
        # wire size amortize across destinations (detcheck S302 audit).
        tagged = Tagged(channel, payload, kind or "")
        for dst in dsts:
            if dst == self.site and not include_self:
                continue
            self._sender.send(dst, tagged, kind)

    def _dispatch(self, src: int, payload: Any) -> None:
        if isinstance(payload, Tagged):
            handler = self._handlers.get(payload.channel)
            if handler is None:
                raise RuntimeError(
                    f"site {self.site}: no handler for channel {payload.channel!r}"
                )
            handler(src, payload.payload)
            return
        if isinstance(payload, BatchEnvelope):
            # Unpack in slot order — the sender's issue order — so batching
            # preserves per-link FIFO payload-for-payload, and batches from
            # different senders dispatch in (sender, seq) arrival order.
            for item in payload.items:
                self._dispatch(src, item)
            return
        raise RuntimeError(f"site {self.site}: untagged payload {payload!r} from {src}")


# Import-time shape check for the size model (detcheck P201/P202).
register_payload(Tagged)

# Imported last: batching lives in repro.broadcast, whose package import
# pulls in the reliable layer, which imports this module — by this point
# every name the cycle needs is defined.
from repro.broadcast.batching import BatchEnvelope  # noqa: E402
