"""Latency models for simulated links.

A latency model maps (source, destination) to a one-way delay sample.  All
models draw from a ``random.Random`` supplied by the network so streams stay
deterministic.  Units are abstract milliseconds.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod


class LatencyModel(ABC):
    """Samples one-way link delays."""

    @abstractmethod
    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        """One delay sample for a message from ``src`` to ``dst``."""

    def mean(self) -> float:
        """Approximate mean delay (used by default timeout heuristics)."""
        return 1.0


class FixedLatency(LatencyModel):
    """Constant delay; useful for analytical-style message-count tests."""

    def __init__(self, delay: float = 1.0):
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.delay = delay

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return self.delay

    def mean(self) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """Uniformly distributed delay in ``[low, high]``."""

    def __init__(self, low: float = 0.5, high: float = 1.5):
        if not 0 <= low <= high:
            raise ValueError("require 0 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0


class LognormalLatency(LatencyModel):
    """Heavy-tailed delay typical of shared-medium networks.

    Parameterised by the median and a shape ``sigma``; delays are clamped at
    ``cap`` to keep simulations bounded.
    """

    def __init__(self, median: float = 1.0, sigma: float = 0.4, cap: float = 100.0):
        if median <= 0 or sigma < 0:
            raise ValueError("median must be positive and sigma non-negative")
        self.median = median
        self.sigma = sigma
        self.cap = cap

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        value = rng.lognormvariate(math.log(self.median), self.sigma)
        return min(value, self.cap)

    def mean(self) -> float:
        return min(self.median * math.exp(self.sigma**2 / 2.0), self.cap)


class LanLatency(LognormalLatency):
    """Preset resembling the paper's era: sub-millisecond to few-ms LAN."""

    def __init__(self) -> None:
        super().__init__(median=1.0, sigma=0.3, cap=20.0)


class WanLatency(LatencyModel):
    """Site-distance-sensitive WAN: base RTT plus per-hop jitter.

    Delay grows with the (circular) distance between site ids, a cheap
    stand-in for geographic placement in scaling experiments.
    """

    def __init__(self, base: float = 10.0, per_hop: float = 5.0, jitter: float = 0.2):
        if base < 0 or per_hop < 0 or not 0 <= jitter < 1:
            raise ValueError("invalid WAN parameters")
        self.base = base
        self.per_hop = per_hop
        self.jitter = jitter

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        hops = abs(src - dst)
        nominal = self.base + self.per_hop * hops
        return nominal * rng.uniform(1 - self.jitter, 1 + self.jitter)

    def mean(self) -> float:
        return self.base + self.per_hop
