"""Multiversioned per-site object store.

Objects are identified by string keys.  Each committed write installs a new
version; version numbers are per-object and dense (0 is the initial
version).  Old versions are retained (bounded by ``history_limit``) so that
read-only transactions can be served a consistent snapshot and so the 1SR
checker can resolve exactly which version every read observed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional


@dataclass(frozen=True)
class VersionedValue:
    """One committed version of one object."""

    version: int
    value: Any
    writer: Optional[str]  # transaction id, None for the initial version


class StorageError(KeyError):
    """Raised when accessing an unknown object or version."""


class VersionedStore:
    """The committed state of one replica."""

    def __init__(self, history_limit: int = 16):
        if history_limit < 1:
            raise ValueError("history_limit must be at least 1")
        self.history_limit = history_limit
        self._objects: dict[str, list[VersionedValue]] = {}
        self.install_count = 0

    def initialize(self, keys: Iterable[str], value: Any = 0) -> None:
        """Create objects at version 0 (the database's initial state)."""
        for key in keys:
            if key not in self._objects:
                self._objects[key] = [VersionedValue(0, value, None)]

    def contains(self, key: str) -> bool:
        return key in self._objects

    def keys(self) -> list[str]:
        return sorted(self._objects)

    def read(self, key: str) -> VersionedValue:
        """Latest committed version of ``key``."""
        versions = self._objects.get(key)
        if not versions:
            raise StorageError(f"unknown object {key!r}")
        return versions[-1]

    def read_version(self, key: str, version: int) -> VersionedValue:
        """A specific retained version (snapshot reads)."""
        versions = self._objects.get(key)
        if not versions:
            raise StorageError(f"unknown object {key!r}")
        for candidate in reversed(versions):
            if candidate.version == version:
                return candidate
        raise StorageError(f"version {version} of {key!r} not retained")

    def read_at_or_before(self, key: str, version: int) -> VersionedValue:
        """Latest retained version with number <= ``version`` (snapshots)."""
        versions = self._objects.get(key)
        if not versions:
            raise StorageError(f"unknown object {key!r}")
        for candidate in reversed(versions):
            if candidate.version <= version:
                return candidate
        raise StorageError(f"no version of {key!r} at or before {version}")

    def version(self, key: str) -> int:
        return self.read(key).version

    def install(self, key: str, value: Any, writer: str) -> int:
        """Install a new committed version; returns its version number."""
        versions = self._objects.get(key)
        if versions is None:
            raise StorageError(f"unknown object {key!r}")
        new_version = versions[-1].version + 1
        versions.append(VersionedValue(new_version, value, writer))
        if len(versions) > self.history_limit:
            del versions[: len(versions) - self.history_limit]
        self.install_count += 1
        return new_version

    def force_version(self, key: str, version: int, value: Any, writer: str) -> None:
        """Install a version with an explicit number (state transfer only)."""
        versions = self._objects.setdefault(key, [])
        if versions and versions[-1].version >= version:
            raise StorageError(
                f"cannot force {key!r} version {version} at or below "
                f"current {versions[-1].version}"
            )
        versions.append(VersionedValue(version, value, writer))

    def latest_snapshot(self) -> dict[str, VersionedValue]:
        """Latest version of every object (convergence checking)."""
        return {key: versions[-1] for key, versions in self._objects.items()}

    def digest(self) -> tuple:
        """Hashable summary of the latest committed state of every object."""
        return tuple(
            (key, versions[-1].version, versions[-1].value)
            for key, versions in sorted(self._objects.items())
        )

    def export_snapshot(self) -> tuple[tuple[str, int, Any], ...]:
        """Latest version of every object as wire-friendly tuples
        (key, version, value) — the payload of a state transfer."""
        return tuple(
            (key, versions[-1].version, versions[-1].value)
            for key, versions in sorted(self._objects.items())
        )

    def load_snapshot(
        self, snapshot: Iterable[tuple[str, int, Any]], writer: str = "state-transfer"
    ) -> None:
        """Replace our state with a received snapshot (state transfer)."""
        self._objects = {
            key: [VersionedValue(version, value, writer if version > 0 else None)]
            for key, version, value in snapshot
        }

    def clone_from(self, other: "VersionedStore") -> None:
        """Replace our state with a copy of ``other`` (state transfer)."""
        self._objects = {
            key: list(versions) for key, versions in other._objects.items()
        }

    def __len__(self) -> int:
        return len(self._objects)
