"""Executable one-copy serializability checking.

The paper proves its protocols produce one-copy serializable executions via
one-copy serialization graphs [BG87, BHG87].  This module turns that proof
technique into a runtime check: a global :class:`HistoryRecorder` collects,
for every *committed* transaction, the exact versions it read and installed;
:meth:`HistoryRecorder.check` then builds the one-copy serialization graph
and verifies it is acyclic.

Edges (versions are per-object and dense, version 0 is initial):

- ``wr``: the writer of version v  ->  every reader of version v
- ``ww``: the writer of version v  ->  the writer of version v+1
- ``rw``: every reader of version v  ->  the writer of version v+1

Acyclicity of this graph over the committed transactions (with the initial
transaction T0 as the source) certifies one-copy serializability of the
execution, because replicas also converge on a single version order per
object (checked separately by :func:`replicas_converged`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

INITIAL_TX = "T0(initial)"


@dataclass(frozen=True)
class CommittedTransaction:
    """What one committed transaction observed and produced.

    ``provisional`` records are written by a *cohort* (writes only, no read
    set) so the version order keeps a writer even when the initiator dies
    before recording; the initiator's full record upgrades them in place.
    """

    tx: str
    site: int
    reads: tuple[tuple[str, int], ...]  # (key, version read)
    writes: tuple[tuple[str, int], ...]  # (key, version installed)
    commit_time: float
    provisional: bool = False


@dataclass
class SerializationResult:
    """Outcome of the 1SR check."""

    acyclic: bool
    cycle: Optional[list[str]] = None
    version_conflicts: list[str] = field(default_factory=list)
    num_transactions: int = 0
    num_edges: int = 0

    @property
    def ok(self) -> bool:
        return self.acyclic and not self.version_conflicts

    def explain(self) -> str:
        if self.ok:
            return (
                f"1SR OK: {self.num_transactions} committed transactions, "
                f"{self.num_edges} edges, acyclic"
            )
        parts = []
        if self.cycle:
            parts.append("cycle: " + " -> ".join(self.cycle + [self.cycle[0]]))
        parts.extend(self.version_conflicts)
        return "1SR VIOLATION: " + "; ".join(parts)


class HistoryRecorder:
    """Global (omniscient-observer) record of the committed history."""

    def __init__(self) -> None:
        self.committed: list[CommittedTransaction] = []
        self._by_tx: dict[str, CommittedTransaction] = {}
        self._index: dict[str, int] = {}

    def record_commit(
        self,
        tx: str,
        site: int,
        reads: dict[str, int],
        writes: dict[str, int],
        commit_time: float,
    ) -> None:
        """Record a committed transaction (called once, by its initiator).

        An existing *provisional* record (from a cohort) is upgraded in
        place; a second full record is still an error.
        """
        existing = self._by_tx.get(tx)
        if existing is not None and not existing.provisional:
            raise ValueError(f"transaction {tx} recorded twice")
        writes_tuple = tuple(sorted(writes.items()))
        if existing is not None and not writes_tuple:
            # Initiator completing a transaction whose writes were installed
            # (and version-stamped) by the cohorts while it was partitioned
            # away: keep the cohort's authoritative versions.
            writes_tuple = existing.writes
        record = CommittedTransaction(
            tx,
            site,
            tuple(sorted(reads.items())),
            writes_tuple,
            commit_time,
        )
        if existing is not None:
            self.committed[self._index[tx]] = record
        else:
            self._index[tx] = len(self.committed)
            self.committed.append(record)
        self._by_tx[tx] = record

    def record_commit_provisional(
        self,
        tx: str,
        site: int,
        writes: dict[str, int],
        commit_time: float,
    ) -> None:
        """Record a commit observed at a cohort (writes only, no read set).

        Idempotent across cohorts — the first one wins — and a no-op once
        any record for ``tx`` exists.  Keeps the version order dense when
        the initiator crashes between the unanimous vote and its own
        :meth:`record_commit`.
        """
        if tx in self._by_tx:
            return
        record = CommittedTransaction(
            tx,
            site,
            (),
            tuple(sorted(writes.items())),
            commit_time,
            provisional=True,
        )
        self._index[tx] = len(self.committed)
        self.committed.append(record)
        self._by_tx[tx] = record

    def __len__(self) -> int:
        return len(self.committed)

    def check(self) -> SerializationResult:
        """Build the one-copy serialization graph and test acyclicity."""
        writer_of: dict[tuple[str, int], str] = {}
        conflicts: list[str] = []
        max_version: dict[str, int] = {}

        for record in self.committed:
            for key, version in record.writes:
                slot = (key, version)
                if slot in writer_of:
                    conflicts.append(
                        f"{key} version {version} written by both "
                        f"{writer_of[slot]} and {record.tx}"
                    )
                else:
                    writer_of[slot] = record.tx
                max_version[key] = max(max_version.get(key, 0), version)

        # Version-order density: every version 1..max must have a writer.
        for key, top in sorted(max_version.items()):
            for version in range(1, top + 1):
                if (key, version) not in writer_of:
                    conflicts.append(f"{key} version {version} has no recorded writer")

        edges: dict[str, set[str]] = {}

        def add_edge(src: str, dst: str) -> None:
            if src != dst:
                edges.setdefault(src, set()).add(dst)

        for record in self.committed:
            for key, version in record.reads:
                if version > 0 and (key, version) not in writer_of:
                    conflicts.append(
                        f"{record.tx} read {key} version {version}, "
                        f"which no committed transaction wrote"
                    )
                writer = writer_of.get((key, version), INITIAL_TX) if version > 0 else INITIAL_TX
                add_edge(writer, record.tx)  # wr
                successor = writer_of.get((key, version + 1))
                if successor is not None:
                    add_edge(record.tx, successor)  # rw
            for key, version in record.writes:
                if version > 1:
                    predecessor = writer_of.get((key, version - 1))
                    if predecessor is not None:
                        add_edge(predecessor, record.tx)  # ww
                else:
                    add_edge(INITIAL_TX, record.tx)
                successor = writer_of.get((key, version + 1))
                if successor is not None:
                    add_edge(record.tx, successor)  # ww forward

        num_edges = sum(  # detcheck: ignore[D106] — integer sum
            len(targets) for targets in edges.values())
        cycle = _find_cycle(edges)
        return SerializationResult(
            acyclic=cycle is None,
            cycle=cycle,
            version_conflicts=conflicts,
            num_transactions=len(self.committed),
            num_edges=num_edges,
        )

    def serial_order(self) -> Optional[list[str]]:
        """A topological order witnessing serializability, if acyclic."""
        result = self.check()
        if not result.acyclic:
            return None
        edges: dict[str, set[str]] = {}
        nodes = {record.tx for record in self.committed} | {INITIAL_TX}
        # Rebuild edges (cheap; check() already validated them).
        writer_of = {
            (key, version): record.tx
            for record in self.committed
            for key, version in record.writes
        }
        for record in self.committed:
            for key, version in record.reads:
                writer = writer_of.get((key, version), INITIAL_TX)
                edges.setdefault(writer, set()).add(record.tx)  # wr
                successor = writer_of.get((key, version + 1))
                if successor is not None and successor != record.tx:
                    edges.setdefault(record.tx, set()).add(successor)  # rw
            for key, version in record.writes:
                predecessor = writer_of.get((key, version - 1), INITIAL_TX)
                edges.setdefault(predecessor, set()).add(record.tx)  # ww
        order: list[str] = []
        visited: set[str] = set()

        def visit(node: str) -> None:
            if node in visited:
                return
            visited.add(node)
            for succ in sorted(edges.get(node, ()), key=str):
                visit(succ)
            order.append(node)

        for node in sorted(nodes, key=str):
            visit(node)
        order.reverse()
        return [tx for tx in order if tx != INITIAL_TX]


def _find_cycle(edges: dict[str, set[str]]) -> Optional[list[str]]:
    WHITE, GREY, BLACK = 0, 1, 2
    color: dict[str, int] = {}
    stack: list[str] = []

    def visit(node: str) -> Optional[list[str]]:
        color[node] = GREY
        stack.append(node)
        for succ in sorted(edges.get(node, ()), key=str):
            state = color.get(succ, WHITE)
            if state == GREY:
                return stack[stack.index(succ):]
            if state == WHITE:
                found = visit(succ)
                if found is not None:
                    return found
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(edges, key=str):
        if color.get(node, WHITE) == WHITE:
            cycle = visit(node)
            if cycle is not None:
                return cycle
    return None


def replicas_converged(stores: Iterable) -> bool:
    """True when all replica stores expose identical committed state."""
    digests = [store.digest() for store in stores]
    return all(digest == digests[0] for digest in digests[1:]) if digests else True
