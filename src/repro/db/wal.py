"""Write-ahead log for one replica.

Every replica appends redo records for the transactions it processes and
replays committed writes after a crash.  In a simulated environment the
store survives crashes anyway, so the WAL's role here is (a) fidelity — the
protocols log exactly where a real implementation would have to — and (b)
supporting local crash-recovery tests that wipe the store and rebuild it
from the log.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.db.storage import VersionedStore


class LogRecordType(enum.Enum):
    """WAL record types (begin / write / commit / abort)."""

    BEGIN = "begin"
    WRITE = "write"
    COMMIT = "commit"
    ABORT = "abort"


@dataclass(frozen=True)
class LogRecord:
    """One WAL entry."""

    lsn: int
    type: LogRecordType
    tx: str
    key: Optional[str] = None
    value: Any = None

    def __str__(self) -> str:
        extra = f" {self.key}={self.value!r}" if self.type is LogRecordType.WRITE else ""
        return f"lsn={self.lsn} {self.type.value} {self.tx}{extra}"


class WriteAheadLog:
    """Append-only redo log."""

    def __init__(self) -> None:
        self._records: list[LogRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    @property
    def last_lsn(self) -> int:
        return len(self._records) - 1

    def log_begin(self, tx: str) -> int:
        return self._append(LogRecordType.BEGIN, tx)

    def log_write(self, tx: str, key: str, value: Any) -> int:
        return self._append(LogRecordType.WRITE, tx, key, value)

    def log_commit(self, tx: str) -> int:
        return self._append(LogRecordType.COMMIT, tx)

    def log_abort(self, tx: str) -> int:
        return self._append(LogRecordType.ABORT, tx)

    def _append(
        self, type_: LogRecordType, tx: str, key: Optional[str] = None, value: Any = None
    ) -> int:
        lsn = len(self._records)
        self._records.append(LogRecord(lsn, type_, tx, key, value))
        return lsn

    def committed_transactions(self) -> list[str]:
        """Transaction ids with a COMMIT record, in commit order."""
        return [r.tx for r in self._records if r.type is LogRecordType.COMMIT]

    def replay(self, store: VersionedStore) -> int:
        """Redo committed writes, in commit order, into a fresh store.

        Returns the number of writes applied.  Writes of each committed
        transaction are applied at the point of its COMMIT record, matching
        the install order the replica used online.
        """
        pending: dict[str, list[tuple[str, Any]]] = {}
        applied = 0
        for record in self._records:
            if record.type is LogRecordType.BEGIN:
                pending.setdefault(record.tx, [])
            elif record.type is LogRecordType.WRITE:
                assert record.key is not None
                pending.setdefault(record.tx, []).append((record.key, record.value))
            elif record.type is LogRecordType.ABORT:
                pending.pop(record.tx, None)
            elif record.type is LogRecordType.COMMIT:
                for key, value in pending.pop(record.tx, []):
                    store.install(key, value, record.tx)
                    applied += 1
        return applied

    def truncate(self) -> None:
        """Drop all records (after a checkpoint/state transfer)."""
        self._records.clear()
