"""Per-site database substrate.

Each replica owns a :class:`repro.db.storage.VersionedStore`, a strict
two-phase-locking :class:`repro.db.locks.LockManager`, and a
:class:`repro.db.wal.WriteAheadLog`.  A single global
:class:`repro.db.serialization.HistoryRecorder` turns the paper's 1SR proof
obligation into an executable check (one-copy serialization graph
acyclicity) asserted by every test and benchmark run.
"""

from repro.db.locks import (
    LockManager,
    LockMode,
    LockPolicyError,
)
from repro.db.serialization import HistoryRecorder, SerializationResult
from repro.db.storage import VersionedStore
from repro.db.wal import LogRecord, LogRecordType, WriteAheadLog

__all__ = [
    "HistoryRecorder",
    "LockManager",
    "LockMode",
    "LockPolicyError",
    "LogRecord",
    "LogRecordType",
    "SerializationResult",
    "VersionedStore",
    "WriteAheadLog",
]
