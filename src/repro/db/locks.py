"""Strict two-phase locking for one replica.

The paper assumes "concurrency control is locally enforced by strict
two-phase locking at all database sites"; this module is that local lock
manager.  It supports the different acquisition disciplines the three
protocols need:

- :meth:`LockManager.try_acquire` -- **no-wait** (used by RBP for remote
  writes: a conflict produces a negative acknowledgment, never a wait, which
  is how RBP prevents deadlocks).
- :meth:`LockManager.acquire` -- FIFO queueing with a grant callback (used
  by CBP/ABP write application).
- :meth:`LockManager.acquire_group` -- all-or-nothing acquisition of a whole
  read set with **no hold-and-wait** (the transaction holds nothing while
  queued), which keeps read-only transactions out of every deadlock cycle —
  they can be waited on, but never wait while holding.

A waits-for graph with cycle detection backstops the protocols that do
queue (see DESIGN.md, "Design resolutions").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Hashable, Optional

TxId = Hashable


class LockMode(enum.Enum):
    """Lock modes: shared (reads) and exclusive (writes)."""

    SHARED = "S"
    EXCLUSIVE = "X"


def compatible(a: LockMode, b: LockMode) -> bool:
    """Lock compatibility matrix: only S/S coexist."""
    return a is LockMode.SHARED and b is LockMode.SHARED


class LockPolicyError(RuntimeError):
    """Raised on invalid lock-manager usage (e.g. double queueing)."""


@dataclass
class LockRequest:
    """One queued single-key request."""

    tx: TxId
    key: str
    mode: LockMode
    on_grant: Optional[Callable[[TxId, str], None]]


@dataclass
class GroupRequest:
    """A queued all-or-nothing multi-key request (holds nothing while waiting)."""

    tx: TxId
    needs: dict[str, LockMode]
    on_grant: Optional[Callable[[TxId], None]]


@dataclass
class LockStats:
    immediate_grants: int = 0
    queued_waits: int = 0
    queue_grants: int = 0
    denials: int = 0
    releases: int = 0


class LockManager:
    """Lock table for one site."""

    def __init__(self) -> None:
        self._holders: dict[str, dict[TxId, LockMode]] = {}
        self._queues: dict[str, list[LockRequest]] = {}
        self._group_waiters: list[GroupRequest] = []
        self._held_keys: dict[TxId, set[str]] = {}
        self.stats = LockStats()

    # -- inspection ----------------------------------------------------------

    def holds(self, tx: TxId, key: str) -> Optional[LockMode]:
        """The mode ``tx`` holds on ``key``, or None."""
        return self._holders.get(key, {}).get(tx)

    def holders_of(self, key: str) -> dict[TxId, LockMode]:
        return dict(self._holders.get(key, {}))

    def conflicting_holders(self, tx: TxId, key: str, mode: LockMode) -> list[TxId]:
        """Holders (other than ``tx``) whose mode is incompatible with ``mode``."""
        return [
            holder
            # detcheck: ignore[D104] — holder dicts are insertion-ordered by
            # grant time (deterministic); callers treat this list as a set.
            for holder, held in self._holders.get(key, {}).items()
            if holder != tx and not compatible(held, mode)
        ]

    def queued(self, key: str) -> list[LockRequest]:
        return list(self._queues.get(key, []))

    def is_waiting(self, tx: TxId) -> bool:
        if any(r.tx == tx for queue in self._queues.values() for r in queue):
            return True
        return any(g.tx == tx for g in self._group_waiters)

    def held_keys(self, tx: TxId) -> set[str]:
        return set(self._held_keys.get(tx, set()))

    # -- acquisition ---------------------------------------------------------

    def try_acquire(self, tx: TxId, key: str, mode: LockMode) -> bool:
        """No-wait acquisition: grant immediately or fail with no side effect."""
        if self._grantable(tx, key, mode, respect_queue=False):
            self._grant(tx, key, mode)
            self.stats.immediate_grants += 1
            return True
        self.stats.denials += 1
        return False

    def acquire(
        self,
        tx: TxId,
        key: str,
        mode: LockMode,
        on_grant: Optional[Callable[[TxId, str], None]] = None,
    ) -> bool:
        """Acquire with FIFO queueing.

        Returns True when granted immediately; otherwise the request is
        queued and ``on_grant(tx, key)`` fires upon grant.
        """
        if self._grantable(tx, key, mode, respect_queue=True):
            self._grant(tx, key, mode)
            self.stats.immediate_grants += 1
            return True
        if any(r.tx == tx for r in self._queues.get(key, [])):
            raise LockPolicyError(f"{tx} already queued on {key!r}")
        self._queues.setdefault(key, []).append(LockRequest(tx, key, mode, on_grant))
        self.stats.queued_waits += 1
        return False

    def acquire_group(
        self,
        tx: TxId,
        needs: dict[str, LockMode],
        on_grant: Optional[Callable[[TxId], None]] = None,
    ) -> bool:
        """All-or-nothing acquisition of several keys (no hold-and-wait).

        Either every key is granted now (returns True) or the request waits
        holding nothing, re-evaluated after each release, and ``on_grant``
        fires once all keys are granted together.
        """
        if not needs:
            return True
        if self._group_grantable(tx, needs):
            for key, mode in needs.items():
                self._grant(tx, key, mode)
            self.stats.immediate_grants += 1
            return True
        if any(g.tx == tx for g in self._group_waiters):
            raise LockPolicyError(f"{tx} already has a pending group request")
        self._group_waiters.append(GroupRequest(tx, dict(needs), on_grant))
        self.stats.queued_waits += 1
        return False

    # -- release -------------------------------------------------------------

    def release_all(self, tx: TxId) -> None:
        """Strict 2PL release: drop every lock and queued request of ``tx``."""
        touched: set[str] = set()
        for key in self._held_keys.pop(tx, set()):
            holders = self._holders.get(key)
            if holders is not None and tx in holders:
                del holders[tx]
                touched.add(key)
                if not holders:
                    del self._holders[key]
        for key, queue in list(self._queues.items()):
            remaining = [r for r in queue if r.tx != tx]
            if len(remaining) != len(queue):
                touched.add(key)
                if remaining:
                    self._queues[key] = remaining
                else:
                    del self._queues[key]
        self._group_waiters = [g for g in self._group_waiters if g.tx != tx]
        self.stats.releases += 1
        self._reevaluate(touched)

    def preempt(self, key: str, winner: TxId) -> list[TxId]:
        """Force-grant ``winner`` the exclusive lock on ``key``.

        Current holders (other than the winner) are displaced back to the
        *front* of the queue, keeping their claim but losing the grant —
        used by certification-ordered protocols where the total order, not
        grant order, decides who installs first.  The displaced holders
        must be preemptible by protocol argument (e.g. uncommitted
        writers); this method does not check.  Returns the displaced ids.
        """
        holders = self._holders.get(key, {})
        losers = [tx for tx in holders if tx != winner]
        queue = self._queues.setdefault(key, [])
        # The winner's own queued claim (if any) is consumed by the grant.
        queue[:] = [request for request in queue if request.tx != winner]
        for tx in losers:
            del holders[tx]
            held = self._held_keys.get(tx)
            if held is not None:
                held.discard(key)
        # Displaced holders rejoin at the front, ahead of younger waiters,
        # in a deterministic (sorted) order.
        queue[:0] = [
            LockRequest(tx, key, LockMode.EXCLUSIVE, None)
            for tx in sorted(losers, key=str)
        ]
        if not queue:
            self._queues.pop(key, None)
        self._grant(winner, key, LockMode.EXCLUSIVE)
        return losers

    def cancel_request(self, tx: TxId, key: str) -> None:
        """Withdraw a queued single-key request (e.g. the tx was NACKed)."""
        queue = self._queues.get(key)
        if not queue:
            return
        remaining = [r for r in queue if r.tx != tx]
        if remaining:
            self._queues[key] = remaining
        else:
            self._queues.pop(key, None)
        self._reevaluate({key})

    # -- deadlock detection ----------------------------------------------------

    def waits_for_edges(self) -> dict[TxId, set[TxId]]:
        """The waits-for graph over queued single-key requests.

        A queued request waits on every incompatible holder and on every
        earlier incompatible queued request (FIFO discipline).  Group
        waiters hold nothing, so they cannot close a cycle and are omitted.
        """
        edges: dict[TxId, set[TxId]] = {}
        for key, queue in self._queues.items():
            holders = self._holders.get(key, {})
            for index, request in enumerate(queue):
                blockers: set[TxId] = set()
                for holder, held in holders.items():
                    if holder != request.tx and not compatible(held, request.mode):
                        blockers.add(holder)
                for earlier in queue[:index]:
                    if earlier.tx != request.tx and not (
                        compatible(earlier.mode, request.mode)
                    ):
                        blockers.add(earlier.tx)
                if blockers:
                    edges.setdefault(request.tx, set()).update(blockers)
        return edges

    def find_cycle(self) -> Optional[list[TxId]]:
        """A waits-for cycle as a list of transaction ids, or None."""
        edges = self.waits_for_edges()
        WHITE, GREY, BLACK = 0, 1, 2
        color: dict[TxId, int] = {}
        stack: list[TxId] = []

        def visit(node: TxId) -> Optional[list[TxId]]:
            color[node] = GREY
            stack.append(node)
            # Sorted: successor order decides which cycle (and victim) is
            # found; raw set order varies with PYTHONHASHSEED across runs.
            for succ in sorted(edges.get(node, ())):
                state = color.get(succ, WHITE)
                if state == GREY:
                    start = stack.index(succ)
                    return stack[start:]
                if state == WHITE:
                    found = visit(succ)
                    if found is not None:
                        return found
            stack.pop()
            color[node] = BLACK
            return None

        for node in list(edges):
            if color.get(node, WHITE) == WHITE:
                cycle = visit(node)
                if cycle is not None:
                    return cycle
        return None

    # -- internals -------------------------------------------------------------

    def _grantable(self, tx: TxId, key: str, mode: LockMode, respect_queue: bool) -> bool:
        holders = self._holders.get(key, {})
        held = holders.get(tx)
        if held is not None:
            if held is mode or held is LockMode.EXCLUSIVE:
                return True  # already strong enough
            # Upgrade S -> X allowed only as the sole holder.
            return len(holders) == 1
        if any(not compatible(h, mode) for h in holders.values()):
            return False
        if respect_queue:
            # FIFO fairness: do not jump over an already-queued conflicting
            # request (otherwise writers starve behind reader streams).
            for request in self._queues.get(key, ()):
                if not compatible(request.mode, mode) or request.mode is LockMode.EXCLUSIVE:
                    return False
        return True

    def _group_grantable(self, tx: TxId, needs: dict[str, LockMode]) -> bool:
        # Groups respect queued conflicting requests too: a reader group
        # must not slip its shared locks under an already-queued exclusive
        # request (that both starves writers and manufactures upgrade-style
        # deadlocks between transactions granted shared locks "together").
        return all(
            self._grantable(tx, key, mode, respect_queue=True)
            for key, mode in needs.items()
        )

    def _grant(self, tx: TxId, key: str, mode: LockMode) -> None:
        holders = self._holders.setdefault(key, {})
        held = holders.get(tx)
        if held is LockMode.EXCLUSIVE:
            return
        holders[tx] = mode if held is None else (
            LockMode.EXCLUSIVE if mode is LockMode.EXCLUSIVE else held
        )
        self._held_keys.setdefault(tx, set()).add(key)

    def _reevaluate(self, touched: set[str]) -> None:
        granted_callbacks: list[tuple[Callable, tuple]] = []
        # Sorted: grant (and callback) order across keys must not depend on
        # set hash order, which differs between interpreter processes.
        for key in sorted(touched):
            queue = self._queues.get(key)
            if not queue:
                continue
            still_queued: list[LockRequest] = []
            blocked = False
            for request in queue:
                if not blocked and self._grantable(
                    request.tx, key, request.mode, respect_queue=False
                ):
                    self._grant(request.tx, key, request.mode)
                    self.stats.queue_grants += 1
                    if request.on_grant is not None:
                        granted_callbacks.append((request.on_grant, (request.tx, key)))
                else:
                    blocked = True
                    still_queued.append(request)
            if still_queued:
                self._queues[key] = still_queued
            else:
                self._queues.pop(key, None)
        # Group waiters are re-checked after single-key grants settle.
        remaining_groups: list[GroupRequest] = []
        for group in self._group_waiters:
            if self._group_grantable(group.tx, group.needs):
                for key, mode in group.needs.items():
                    self._grant(group.tx, key, mode)
                self.stats.queue_grants += 1
                if group.on_grant is not None:
                    granted_callbacks.append((group.on_grant, (group.tx,)))
            else:
                remaining_groups.append(group)
        self._group_waiters = remaining_groups
        # Callbacks run last so reentrant acquire/release see settled state.
        for fn, args in granted_callbacks:
            fn(*args)
