"""Wire payloads of the replication protocols.

Every payload carries a ``kind`` string used by the network's message
accounting (experiment E1 separates protocol phases by these labels).
Naming convention: ``<protocol>.<message>``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.net.sizes import register_payload

# -- RBP: reliable broadcast + explicit acks + decentralized 2PC --------------


@dataclass(slots=True)
class RbpWrite:
    """One write operation, reliably broadcast to all sites (paper S3)."""

    tx: str
    home: int
    key: str
    value: Any
    priority: tuple
    kind: str = "rbp.write"


@dataclass(slots=True)
class RbpWriteAck:
    """Point-to-point (positive or negative) acknowledgment of one write."""

    tx: str
    key: str
    site: int
    ok: bool
    kind: str = "rbp.write_ack"


@dataclass(slots=True)
class RbpCommitRequest:
    """Decentralized 2PC round 1: the initiator's commit request."""

    tx: str
    home: int
    kind: str = "rbp.commit_request"


@dataclass(slots=True)
class RbpVote:
    """Decentralized 2PC round 2: every site broadcasts its vote [Ske82]."""

    tx: str
    site: int
    yes: bool
    kind: str = "rbp.vote"


@dataclass(slots=True)
class RbpVoteBatch:
    """Group commit: every vote this site cast at one simulation instant,
    piggybacked in a single reliable broadcast.  Receivers tally each
    constituent exactly as if it had arrived alone."""

    votes: tuple[RbpVote, ...]
    kind: str = "rbp.vote_batch"


@dataclass(slots=True)
class RbpWriteAckBatch:
    """Group commit: every write acknowledgment this site owes one home
    site at one simulation instant, in a single point-to-point frame."""

    acks: tuple[RbpWriteAck, ...]
    kind: str = "rbp.ack_batch"


@dataclass(slots=True)
class RbpAbort:
    """Initiator-broadcast abort (after a negative ack or vote)."""

    tx: str
    kind: str = "rbp.abort"


@dataclass(slots=True)
class RbpDecisionQuery:
    """Termination protocol: an in-doubt cohort (voted yes, home departed
    from the view) asks the surviving members for the transaction's fate."""

    tx: str
    site: int
    attempt: int
    kind: str = "rbp.decision_query"


@dataclass(slots=True)
class RbpDecisionAnswer:
    """Point-to-point answer to a decision query.

    ``outcome`` is one of:

    - ``"commit"`` / ``"abort"``: authoritative, from the decision log;
    - ``"pending"``: the answerer can still decide (live 2PC state) and
      promises to push the outcome to the querier when it does;
    - ``"presumed"``: the answerer presumed abort (never authoritative);
    - ``"unknown"``: the answerer has no state for the transaction.

    ``voted_yes`` is the safety bit of the termination protocol: True when
    the answerer voted YES for the transaction (or may have — a durable
    prepare record survived its crash), so the answerer could be part of a
    commit tally somewhere.  A ``presumed``/``unknown`` answer with
    ``voted_yes=False`` is a promise never to vote YES; only enough such
    promises to block every possible commit quorum justify presumed abort.
    """

    tx: str
    site: int
    outcome: str
    voted_yes: bool = False
    kind: str = "rbp.decision_answer"


# -- CBP: causal broadcast with implicit acknowledgments ----------------------


@dataclass(slots=True)
class CbpWriteSet:
    """A transaction's write operations, causally broadcast (paper S4).

    In ``per_op`` dissemination mode the set carries a single write and a
    transaction broadcasts one message per operation, as the paper's text
    describes; batched mode ships all writes in one message.
    """

    tx: str
    home: int
    writes: tuple[tuple[str, Any], ...]
    priority: tuple
    final: bool  # True on the last (or only) write message of the tx
    kind: str = "cbp.write"


@dataclass(slots=True)
class CbpCommitRequest:
    """Causally broadcast commit request; its vector clock entry for the
    home site is the reference point of the implicit-acknowledgment test."""

    tx: str
    home: int
    kind: str = "cbp.commit_request"


@dataclass(slots=True)
class CbpNack:
    """Explicit negative acknowledgment, causally broadcast.

    Delivery of a NACK aborts the victim everywhere; causal order
    guarantees every site sees the NACK from site ``by`` before any later
    message of ``by`` that could have been mistaken for an implicit yes.
    """

    tx: str
    by: int
    reason: str
    kind: str = "cbp.nack"


@dataclass(slots=True)
class CbpNull:
    """Null message (heartbeat) bounding the implicit-acknowledgment wait."""

    site: int
    kind: str = "cbp.null"


# -- ABP: atomic broadcast, acknowledgment-free certification -----------------


@dataclass(slots=True)
class AbpCommitRequest:
    """Atomically broadcast commit request (paper S5).

    Variant A bundles the write values; variant B pre-ships them by causal
    broadcast and the commit request carries only the write-key summary.
    Read versions ride along for the deterministic certification test.
    """

    tx: str
    home: int
    reads: tuple[tuple[str, int], ...]
    writes: tuple[tuple[str, Any], ...]  # values in variant A; empty in B
    write_keys: tuple[str, ...]
    kind: str = "abp.commit_request"


@dataclass(slots=True)
class AbpWriteSet:
    """Variant B: write values shipped ahead via causal broadcast."""

    tx: str
    home: int
    writes: tuple[tuple[str, Any], ...]
    kind: str = "abp.write"


# -- Baseline: point-to-point ROWA + centralized 2PC --------------------------


@dataclass(slots=True)
class P2pWrite:
    tx: str
    key: str
    value: Any
    priority: tuple
    kind: str = "p2p.write"


@dataclass(slots=True)
class P2pWriteAck:
    tx: str
    key: str
    site: int
    ok: bool
    kind: str = "p2p.write_ack"


@dataclass(slots=True)
class P2pPrepare:
    tx: str
    kind: str = "p2p.prepare"


@dataclass(slots=True)
class P2pVote:
    tx: str
    site: int
    yes: bool
    kind: str = "p2p.vote"


@dataclass(slots=True)
class P2pDecision:
    tx: str
    commit: bool
    kind: str = "p2p.decision"


# Recovery / state-transfer payloads live in repro.core.recovery, next to
# the protocol that uses them.


def priority_of(payload: Any) -> Optional[tuple]:
    """The embedded priority of a payload, when it has one."""
    return getattr(payload, "priority", None)


# Import-time shape check: every payload above is slotted, so the size
# model never falls back to attribute-dict traversal (detcheck P201/P202).
register_payload(
    RbpWrite,
    RbpWriteAck,
    RbpCommitRequest,
    RbpVote,
    RbpVoteBatch,
    RbpWriteAckBatch,
    RbpAbort,
    RbpDecisionQuery,
    RbpDecisionAnswer,
    CbpWriteSet,
    CbpCommitRequest,
    CbpNack,
    CbpNull,
    AbpCommitRequest,
    AbpWriteSet,
    P2pWrite,
    P2pWriteAck,
    P2pPrepare,
    P2pVote,
    P2pDecision,
)
