"""Message-based crash recovery: state transfer over the network.

When a crashed site comes back it must catch up on everything the majority
committed while it was down.  A real system replays missed updates or
ships a checkpoint; this module implements the checkpoint variant as an
actual message exchange (request -> snapshot reply), rather than a
simulation shortcut:

1. the recovering site sends a :class:`StateTransferRequest` to a donor
   (the lowest live member of the primary component);
2. the donor replies with a full object snapshot plus the broadcast-layer
   fast-forward state (causal clock, total-order position);
3. the recovering site loads the snapshot, fast-forwards its broadcast
   stack past everything the snapshot already covers, truncates its WAL
   (the snapshot is the new recovery point), and only then starts
   accepting transactions and announces itself to the membership service.

While the transfer is in flight the replica is marked ``recovering`` and
refuses submissions.

Fidelity note (DESIGN.md): survivors' causal layers stay consistent across
a sender crash only if partially-disseminated messages reach either all or
none of them — run fault experiments with ``relay=True`` (eager flooding)
so the reliable layer's agreement property provides exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.replica import Replica
from repro.net.router import ChannelRouter
from repro.net.sizes import register_payload
from repro.sim.engine import SimulationEngine
from repro.sim.trace import TraceLog

CHANNEL = "recovery"


@dataclass(slots=True)
class StateTransferRequest:
    """Sent by a recovering site to a donor."""

    site: int
    kind: str = "recovery.request"


@dataclass(slots=True)
class StateTransferReply:
    """Snapshot of committed state + broadcast-layer positions."""

    from_site: int
    objects: tuple[tuple[str, int, Any], ...]
    causal_clock: Optional[list[int]] = None
    total_order_state: Optional[dict] = None
    #: RBP decision log (tx -> committed?) so a rejoiner can answer (and
    #: terminate) decision queries for outcomes reached while it was down.
    decision_log: Optional[tuple] = None
    #: Protocol-private in-flight state (``Replica.export_protocol_state``):
    #: CBP's transaction books, ABP's pre-shipped write sets.  The committed
    #: snapshot alone misses transactions in flight at export time.
    protocol_state: Optional[dict] = None
    kind: str = "recovery.reply"


@dataclass
class _FastForward:
    """Hooks into the broadcast stack, filled in by the cluster wiring."""

    export: Callable[[], dict] = field(default=lambda: {})
    apply: Callable[[dict], None] = field(default=lambda state: None)


class RecoveryAgent:
    """Per-site endpoint of the state-transfer protocol."""

    def __init__(
        self,
        engine: SimulationEngine,
        router: ChannelRouter,
        replica: Replica,
        trace: TraceLog,
        serve_delay: float = 100.0,
    ):
        self.engine = engine
        self.router = router
        self.replica = replica
        self.trace = trace
        #: Settle period before the donor exports its snapshot.  The
        #: recovering site rejoins the broadcast group *first*; any message
        #: sent by a member that had not yet installed the rejoin view will
        #: reach the donor within this window, so the delayed snapshot
        #: covers every message the recovering site will never receive.
        #: (A real group-communication system runs a view flush here.)
        self.serve_delay = serve_delay
        self.fast_forward = _FastForward()
        self.on_recovered: Optional[Callable[[], None]] = None
        self.requested = False
        self.transfers_served = 0
        self.transfers_completed = 0
        router.register(CHANNEL, self._on_message)

    def request_from(self, donor: int) -> None:
        """Begin recovery: ask ``donor`` for a state snapshot."""
        self.replica.recovering = True
        self.requested = True
        self.trace.emit(
            self.engine.now, self.replica.name, "recovery.requested", donor=donor
        )
        request = StateTransferRequest(self.replica.site)
        self.router.send(donor, CHANNEL, request, request.kind)

    # -- internals ---------------------------------------------------------------

    def _on_message(self, src: int, payload: Any) -> None:
        if isinstance(payload, StateTransferRequest):
            self._serve(payload)
        elif isinstance(payload, StateTransferReply):
            self._complete(payload)
        else:
            raise RuntimeError(f"unexpected recovery payload {payload!r}")

    def _serve(self, request: StateTransferRequest) -> None:
        replica = self.replica
        if not replica.alive or replica.recovering:
            return  # a better donor will answer a retried request
        # Export at *send* time, after the settle window (see serve_delay).
        self.engine.schedule(self.serve_delay, self._send_reply, request.site)

    def _send_reply(self, to_site: int) -> None:
        replica = self.replica
        if not replica.alive or replica.recovering:
            return
        state = self.fast_forward.export()
        reply = StateTransferReply(
            from_site=replica.site,
            objects=replica.store.export_snapshot(),
            causal_clock=state.get("causal_clock"),
            total_order_state=state.get("total_order_state"),
            decision_log=state.get("decision_log"),
            protocol_state=replica.export_protocol_state(),
        )
        self.transfers_served += 1
        self.trace.emit(
            self.engine.now,
            replica.name,
            "recovery.served",
            to=to_site,
            objects=len(reply.objects),
        )
        self.router.send(to_site, CHANNEL, reply, reply.kind)

    def _complete(self, reply: StateTransferReply) -> None:
        replica = self.replica
        if not replica.recovering:
            return  # duplicate reply
        replica.install_snapshot(reply.objects)
        self.fast_forward.apply(
            {
                "causal_clock": reply.causal_clock,
                "total_order_state": reply.total_order_state,
                "decision_log": reply.decision_log,
            }
        )
        if reply.protocol_state is not None:
            replica.adopt_protocol_state(reply.protocol_state)
        replica.recovering = False
        # The snapshot (plus fast-forwarded decision log) is now the store
        # base: let the protocol replay whatever it deferred while the
        # transfer was in flight, so live traffic delivered between the
        # donor's export and this install is not clobbered by it.
        replica.on_recovery_complete()
        self.requested = False
        self.transfers_completed += 1
        self.trace.emit(
            self.engine.now,
            replica.name,
            "recovery.completed",
            donor=reply.from_site,
            objects=len(reply.objects),
        )
        if self.on_recovered is not None:
            self.on_recovered()

# Import-time shape check for the size model (detcheck P201/P202).
register_payload(StateTransferRequest, StateTransferReply)
