"""Base replica: one database site.

A replica owns the site's store, lock manager and WAL, and implements the
phases every protocol shares:

- transaction submission and the read phase (read locks are acquired
  **all-or-nothing** so a transaction never waits while holding a partial
  read set — this keeps read-only transactions out of every deadlock cycle,
  see DESIGN.md);
- the read-only fast path: read-only transactions commit locally, broadcast
  nothing, and are never aborted (paper, sections 3-5);
- commit/abort bookkeeping against the global history recorder and metrics.

Protocol subclasses implement :meth:`start_update` (what happens once an
update transaction has its reads) and the message handlers.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.analysis.metrics import MetricsCollector
from repro.core.transaction import AbortReason, Transaction, TxPhase
from repro.db.locks import LockManager, LockMode
from repro.db.serialization import HistoryRecorder
from repro.db.storage import VersionedStore
from repro.db.wal import WriteAheadLog
from repro.sim.engine import SimulationEngine
from repro.sim.process import Process
from repro.sim.trace import TraceLog

CompletionFn = Callable[[Transaction, bool], None]


class Replica(Process):
    """One site of the replicated database."""

    #: Subclasses set False to release read locks right after reading
    #: (optimistic certification protocols).
    hold_read_locks = True

    def __init__(
        self,
        engine: SimulationEngine,
        site: int,
        num_sites: int,
        recorder: HistoryRecorder,
        metrics: MetricsCollector,
        trace: TraceLog,
    ):
        super().__init__(engine, f"site{site}")
        self.site = site
        self.num_sites = num_sites
        self.store = VersionedStore()
        self.locks = LockManager()
        self.wal = WriteAheadLog()
        self.recorder = recorder
        self.metrics = metrics
        self.trace = trace
        self.on_complete: Optional[CompletionFn] = None
        #: Transactions homed at this site, by tx_id, until terminal.
        self.local: dict[str, Transaction] = {}
        #: Local update transactions that have broadcast anything ("public").
        self.public: set[str] = set()
        #: View membership hook; protocols read this for "all sites".
        self.view_members: list[int] = list(range(num_sites))
        #: Same membership as a frozenset, maintained by on_view_change so
        #: per-message paths test/filter against it without rebuilding a
        #: set per event (detcheck S301 audit).
        self.view_member_set: frozenset[int] = frozenset(self.view_members)
        self.has_quorum = True
        #: True while a post-crash state transfer is in flight.
        self.recovering = False
        #: Last checkpoint snapshot (None until the first checkpoint).
        self._checkpoint: Optional[tuple] = None
        self.checkpoints_taken = 0

    # -- submission and the read phase -------------------------------------------

    def submit(self, tx: Transaction) -> None:
        """Begin executing ``tx`` at this (its home) site."""
        if not self.alive or self.recovering:
            self._complete_abort(tx, AbortReason.SITE_FAILURE)
            return
        if not tx.read_only and not self.has_quorum:
            # Minority view: update transactions are refused (one-copy
            # serializability across a partition would be violated).
            self._complete_abort(tx, AbortReason.NO_QUORUM)
            return
        self.local[tx.tx_id] = tx
        tx.phase = TxPhase.PENDING
        # Read locks for the read set; keys the transaction will also write
        # take their exclusive lock right away (the write set is known at
        # submission in the paper's model).  This upgrade avoidance removes
        # the classic S->X upgrade deadlock between two local
        # read-modify-write transactions on the same key.
        write_keys = set(tx.spec.write_keys)
        needs = {
            key: LockMode.EXCLUSIVE if key in write_keys else LockMode.SHARED
            for key in tx.spec.read_keys
        }
        self.trace.emit(self.now, self.name, "tx.submit", tx=tx.tx_id)
        if self.locks.acquire_group(tx.tx_id, needs, self._reads_granted_cb):
            self._reads_granted(tx)

    def _reads_granted_cb(self, tx_id: str) -> None:
        tx = self.local.get(tx_id)
        if tx is not None and tx.phase is TxPhase.PENDING:
            self._reads_granted(tx)

    def _reads_granted(self, tx: Transaction) -> None:
        tx.phase = TxPhase.READING
        for key in tx.spec.read_keys:
            versioned = self.store.read(key)
            tx.reads_observed[key] = (versioned.value, versioned.version)
        self.trace.emit(self.now, self.name, "tx.reads_done", tx=tx.tx_id)
        if tx.read_only:
            self._commit_readonly(tx)
            return
        if not self.hold_read_locks:
            self.locks.release_all(tx.tx_id)
        self.wal.log_begin(tx.tx_id)
        tx.phase = TxPhase.EXECUTING
        self.start_update(tx)

    def start_update(self, tx: Transaction) -> None:
        """Protocol-specific dissemination of the write phase."""
        raise NotImplementedError

    # -- read-only fast path -------------------------------------------------------

    def _commit_readonly(self, tx: Transaction) -> None:
        """Read-only transactions commit locally and never abort (paper)."""
        self.locks.release_all(tx.tx_id)
        tx.phase = TxPhase.COMMITTED
        tx.commit_time = self.now
        self.recorder.record_commit(
            tx.tx_id, self.site, tx.observed_versions(), {}, self.now
        )
        self.metrics.tx_committed(tx, self.now)
        self.local.pop(tx.tx_id, None)
        self.trace.emit(self.now, self.name, "tx.commit_readonly", tx=tx.tx_id)
        if self.on_complete is not None:
            self.on_complete(tx, True)

    # -- shared commit/abort plumbing -----------------------------------------------

    def install_writes(self, tx_id: str, writes: dict[str, Any]) -> dict[str, int]:
        """Apply committed writes to this replica, logging redo records.

        Keys are installed in sorted order so replicas that commit the same
        transactions in the same per-key order converge bit-for-bit.
        Returns the installed version numbers.
        """
        versions: dict[str, int] = {}
        for key in sorted(writes):
            self.wal.log_write(tx_id, key, writes[key])
            versions[key] = self.store.install(key, writes[key], tx_id)
        self.wal.log_commit(tx_id)
        return versions

    def commit_home(self, tx: Transaction, installed: dict[str, int]) -> None:
        """Finish a committed update transaction at its home site."""
        tx.phase = TxPhase.COMMITTED
        tx.commit_time = self.now
        tx.writes_installed = dict(installed)
        self.recorder.record_commit(
            tx.tx_id, self.site, tx.observed_versions(), installed, self.now
        )
        self.metrics.tx_committed(tx, self.now)
        self.local.pop(tx.tx_id, None)
        self.public.discard(tx.tx_id)
        self.trace.emit(self.now, self.name, "tx.commit", tx=tx.tx_id)
        if self.on_complete is not None:
            self.on_complete(tx, True)

    def abort_home(self, tx: Transaction, reason: AbortReason) -> None:
        """Finish an aborted transaction at its home site."""
        if tx.terminal:
            return
        self.locks.release_all(tx.tx_id)
        self.wal.log_abort(tx.tx_id)
        self._complete_abort(tx, reason)

    def _complete_abort(self, tx: Transaction, reason: AbortReason) -> None:
        tx.phase = TxPhase.ABORTED
        tx.abort_reason = reason
        self.metrics.tx_aborted(tx, reason, self.now)
        self.local.pop(tx.tx_id, None)
        self.public.discard(tx.tx_id)
        self.trace.emit(
            self.now, self.name, "tx.abort", tx=tx.tx_id, reason=reason.value
        )
        if self.on_complete is not None:
            self.on_complete(tx, False)

    # -- local reader preemption (CBP rule c, DESIGN.md) ------------------------------

    def preempt_local_readers(self, key: str, exempt: str) -> list[str]:
        """Abort-and-restart local update transactions that only hold a read
        lock on ``key`` and have not broadcast anything yet.

        Such transactions are invisible to other sites, so aborting them is
        purely local.  Returns the preempted tx ids.  Read-only transactions
        are never preempted (the paper's guarantee); "public" update
        transactions are left to the protocol's conflict rules.
        """
        preempted: list[str] = []
        # detcheck: ignore[D104] — dict order here is lock-grant order, which
        # is deterministic in-run and is the order preemption must follow
        # (sorting by tx id would preempt in an arbitrary textual order).
        for holder, mode in list(self.locks.holders_of(key).items()):
            if holder == exempt or mode is not LockMode.SHARED:
                continue
            tx = self.local.get(holder)
            if tx is None or tx.read_only or holder in self.public:
                continue
            if tx.phase in (TxPhase.PENDING, TxPhase.READING, TxPhase.EXECUTING):
                self.metrics.local_reader_preemptions += 1
                self.abort_home(tx, AbortReason.READER_PREEMPTED)
                preempted.append(holder)
        return preempted

    # -- checkpointing ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Truncate the redo log: the current store is the recovery point.

        Without checkpoints the WAL grows without bound; with them, local
        crash recovery is "load the checkpoint snapshot, replay the (short)
        log tail" — verified by :meth:`rebuild_from_local_log`.
        """
        self._checkpoint = self.store.export_snapshot()
        self.wal.truncate()
        self.checkpoints_taken += 1

    def install_snapshot(self, objects) -> None:
        """Adopt a received state-transfer snapshot as committed state and
        as the new local recovery point (checkpoint + empty log)."""
        self.store.load_snapshot(objects)
        self._checkpoint = tuple(objects)
        self.wal.truncate()
        self.checkpoints_taken += 1

    def rebuild_from_local_log(self) -> VersionedStore:
        """Reconstruct committed state from checkpoint + WAL (recovery
        fidelity check: the result must equal the live store)."""
        rebuilt = VersionedStore()
        if self._checkpoint is not None:
            rebuilt.load_snapshot(self._checkpoint)
        else:
            rebuilt.initialize(self.store.keys())
        self.wal.replay(rebuilt)
        return rebuilt

    # -- crash / recovery ------------------------------------------------------------

    def on_crash(self) -> None:
        """Fail-stop: volatile state (lock table, in-flight transactions)
        is lost.  The store and WAL survive, as on a real disk; recovery
        replaces the store with a snapshot anyway."""
        self.locks = LockManager()
        self.local.clear()
        self.public.clear()

    def on_recovery_complete(self) -> None:
        """Hook invoked by the recovery agent right after the state-transfer
        snapshot is installed and ``recovering`` is cleared.  Protocols that
        defer live deliveries during the transfer (RBP buffers broadcasts,
        since a delivery applied *before* the snapshot install would be
        clobbered by it) replay them here; the base replica has nothing to
        replay."""

    def export_protocol_state(self) -> Optional[dict]:
        """Protocol-private state a state-transfer donor ships alongside
        the committed-store snapshot (e.g. CBP's in-flight transaction
        books, ABP's causally pre-shipped write sets).  ``None`` means the
        committed snapshot plus broadcast-layer fast-forward is complete —
        true for the base replica."""
        return None

    def adopt_protocol_state(self, state: dict) -> None:
        """Install a donor's :meth:`export_protocol_state` payload (rejoiner
        side, between the snapshot install and :meth:`on_recovery_complete`)."""

    # -- view plumbing -------------------------------------------------------------

    def on_view_change(self, members: list[int], has_quorum: bool) -> None:
        """Adopt a new view (called by the cluster's membership wiring)."""
        self.view_members = sorted(members)
        self.view_member_set = frozenset(self.view_members)
        self.has_quorum = has_quorum

    def other_members(self) -> list[int]:
        return [m for m in self.view_members if m != self.site]
