"""CBP: the Causal Broadcast-based Protocol (paper, section 4).

CBP removes RBP's explicit per-write acknowledgments and explicit 2PC votes
by exploiting causal delivery:

- Write operations and the commit request are **causally broadcast**; the
  commit request's vector-clock entry for the home site is the reference
  event *e*.
- **Implicit positive acknowledgment**: any message from site *j* whose
  clock dominates *e* proves *j* delivered the commit request (and, by FIFO,
  all of T's writes) earlier — and had it detected a conflict, its causally
  earlier NACK would have arrived first.  So a site commits T once it has
  delivered, from every other view member, *some* message causally
  following T's commit request, with no NACK — a fully decentralized
  decision with zero dedicated acknowledgment messages.
- **Explicit negative acknowledgment**: conflicts between *concurrent*
  (vector-clock-incomparable) operations are detected when the later write
  is delivered; the detecting site causally broadcasts a NACK that
  deterministically kills the victim everywhere.

Safety of NACKs (the "endorsement" rule, DESIGN.md): a site may NACK a
transaction only while it has not *endorsed* it — i.e. before delivering
(or, for a local transaction, broadcasting) its commit request.  Because a
conflict involving T's write is always detected before T's commit request
arrives (FIFO), the newcomer T is always NACKable; an already-endorsed
opponent never is, so the victim choice is: endorsed opponent => NACK T,
otherwise the deterministically younger of the two.  A NACK from site *s*
causally precedes every later message of *s*, so no site can first count
*s*'s implicit yes and then see its NACK.

Conflicting writes that are causally *ordered* queue in delivery order —
identical at every site — so no NACK is needed for them.  In batched
write-set mode this cannot deadlock; in per-operation mode (the paper's
presentation) rare cross-causality waits-for cycles are possible, appear
identically at every site, involve only transactions with no grants
anywhere, and are resolved by a deterministic youngest-victim NACK
(DESIGN.md, "Design resolutions").

The paper's stated drawback — commitment stalls when sites broadcast rarely
— is measured in experiment E3 and bounded by optional **null messages**
(heartbeats) broadcast through the causal layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.analysis.metrics import MetricsCollector
from repro.broadcast.causal import CausalBroadcast, CausalEnvelope
from repro.broadcast.message import BroadcastMessage
from repro.broadcast.vector_clock import BEFORE, VectorClock
from repro.core.events import CbpCommitRequest, CbpNack, CbpNull, CbpWriteSet
from repro.core.replica import Replica
from repro.core.transaction import AbortReason, Transaction, TxPhase
from repro.db.locks import LockMode
from repro.db.serialization import HistoryRecorder
from repro.sim.engine import SimulationEngine
from repro.sim.trace import TraceLog


class ProtocolInvariantError(AssertionError):
    """A protocol safety invariant was violated (always a bug)."""


@dataclass
class _TxState:
    """Per-site bookkeeping for one in-flight update transaction."""

    tx: str
    home: int
    priority: tuple
    writes: dict[str, Any] = field(default_factory=dict)
    write_clocks: dict[str, VectorClock] = field(default_factory=dict)
    all_writes_seen: bool = False
    granted: set[str] = field(default_factory=set)
    waiting: set[str] = field(default_factory=set)
    cr_entry: Optional[int] = None  # home's clock entry of the commit request
    echoes: set[int] = field(default_factory=set)
    endorsed: bool = False
    committed: bool = False


class CausalBroadcastReplica(Replica):
    """One site running CBP."""

    def __init__(
        self,
        engine: SimulationEngine,
        site: int,
        num_sites: int,
        recorder: HistoryRecorder,
        metrics: MetricsCollector,
        trace: TraceLog,
        cbcast: CausalBroadcast,
        heartbeat_interval: Optional[float] = 25.0,
        per_op: bool = False,
    ):
        super().__init__(engine, site, num_sites, recorder, metrics, trace)
        self.cbcast = cbcast
        self.heartbeat_interval = heartbeat_interval
        self.per_op = per_op
        cbcast.set_deliver(self._on_deliver)
        self._states: dict[str, _TxState] = {}
        self._dead: set[str] = set()
        self._finished: set[str] = set()
        self._nacked_by_me: set[str] = set()
        #: Causal deliveries deferred while a state transfer is in flight
        #: (message, envelope), replayed in :meth:`on_recovery_complete`.
        #: Processing them live would race the snapshot: conflict resolution
        #: against the stale pre-crash store could NACK transactions the
        #: rest of the group is about to commit, and any write applied now
        #: would be clobbered by the install.
        self._recovery_backlog: list[tuple[BroadcastMessage, CausalEnvelope]] = []
        self._last_broadcast = 0.0
        self.nacks_sent = 0
        if heartbeat_interval is not None:
            # detcheck: ignore[P203] — periodic null-message loop; sends are
            # idempotent heartbeats gated on elapsed time, not on epoch state.
            self.schedule(heartbeat_interval, self._heartbeat)

    # -- home side --------------------------------------------------------------

    def start_update(self, tx: Transaction) -> None:
        self.public.add(tx.tx_id)
        # Eager local state: the home must remember endorsement and priority
        # before its own broadcasts loop back through causal delivery.
        state = _TxState(tx.tx_id, self.site, tx.priority)
        self._states[tx.tx_id] = state
        writes = tx.spec.writes
        # The home acquires its own write locks synchronously, *before*
        # broadcasting.  Conflicts here are with lock holders that predate
        # this broadcast, i.e. always ordered-before it: invisible local
        # readers are preempted, everyone else (read-only readers, public
        # transactions) is waited on.  Acquiring now — rather than at the
        # self-delivery of our own write message — closes the window in
        # which a later local transaction could slip its read locks under
        # our writes and manufacture a conflict between two transactions
        # this site has already endorsed.
        for key, value in writes:
            state.writes[key] = value
            self.preempt_local_readers(key, exempt=tx.tx_id)
            if self.locks.acquire(tx.tx_id, key, LockMode.EXCLUSIVE, self._write_granted):
                state.granted.add(key)
            else:
                state.waiting.add(key)
        state.all_writes_seen = True
        if self.per_op:
            for index, (key, value) in enumerate(writes):
                final = index == len(writes) - 1
                envelope = self._broadcast(
                    CbpWriteSet(tx.tx_id, self.site, ((key, value),), tx.priority, final)
                )
                state.write_clocks[key] = envelope.vc
        else:
            envelope = self._broadcast(
                CbpWriteSet(tx.tx_id, self.site, writes, tx.priority, final=True)
            )
            for key, _ in writes:
                state.write_clocks[key] = envelope.vc
        tx.phase = TxPhase.COMMITTING
        envelope = self._broadcast(CbpCommitRequest(tx.tx_id, self.site))
        # Broadcasting the commit request endorses our own transaction: from
        # here on this site may not NACK it (another site still may, until
        # it delivers the commit request).  Recording the request's clock
        # entry now lets conflict resolution classify later-delivered writes
        # as causally ordered with respect to it.
        state.endorsed = True
        state.cr_entry = envelope.vc[self.site]

    def _broadcast(self, payload: Any) -> CausalEnvelope:
        self._last_broadcast = self.now
        return self.cbcast.broadcast(payload)

    # -- causal delivery --------------------------------------------------------

    def _on_deliver(self, message: BroadcastMessage, envelope: CausalEnvelope) -> None:
        if self.recovering:
            self._recovery_backlog.append((message, envelope))
            return
        sender = message.sender
        clock = envelope.vc
        payload = envelope.payload
        if isinstance(payload, CbpNack):
            self._on_nack(payload)
        elif isinstance(payload, CbpWriteSet):
            self._on_write_set(payload, clock)
        elif isinstance(payload, CbpCommitRequest):
            self._on_commit_request(payload, clock)
        elif isinstance(payload, CbpNull):
            pass  # pure implicit-acknowledgment carrier
        else:
            raise RuntimeError(f"site {self.site}: unexpected CBP payload {payload!r}")
        # Every delivered message is a potential implicit acknowledgment for
        # every pending commit request (including this very message).
        self._update_echoes(sender, clock)

    def _update_echoes(self, sender: int, clock: VectorClock) -> None:
        for state in list(self._states.values()):
            if state.cr_entry is None or state.committed or state.tx in self._dead:
                continue
            if sender not in state.echoes and clock.dominates_entry(state.home, state.cr_entry):
                state.echoes.add(sender)
                self._check_commit(state)

    # -- write delivery and conflict resolution ------------------------------------

    def _on_write_set(self, write_set: CbpWriteSet, clock: VectorClock) -> None:
        tx_id = write_set.tx
        if tx_id in self._dead or tx_id in self._finished:
            return
        if write_set.home == self.site:
            # Our own broadcast looping back: locks were taken synchronously
            # at start_update; nothing further to admit.
            return
        state = self._states.get(tx_id)
        if state is None:
            state = _TxState(tx_id, write_set.home, write_set.priority)
            self._states[tx_id] = state
        for key, value in write_set.writes:
            state.writes[key] = value
            state.write_clocks[key] = clock
        if write_set.final:
            state.all_writes_seen = True
        for key, _ in write_set.writes:
            self._admit_write(state, key, clock)
            if tx_id in self._dead:
                return  # a NACK we just issued killed it
        self._check_commit(state)

    def _admit_write(self, state: _TxState, key: str, clock: VectorClock) -> None:
        """Resolve conflicts for one delivered write and lock or NACK."""
        tx_id = state.tx
        blockers = self.locks.conflicting_holders(tx_id, key, LockMode.EXCLUSIVE)
        blockers += [
            request.tx
            for request in self.locks.queued(key)
            if request.tx != tx_id
        ]
        for opponent_id in blockers:
            if tx_id in self._dead:
                return
            self._resolve_conflict(state, key, clock, opponent_id)
        if tx_id in self._dead:
            return
        granted = self.locks.acquire(tx_id, key, LockMode.EXCLUSIVE, self._write_granted)
        if granted:
            state.granted.add(key)
        else:
            state.waiting.add(key)
            if self.per_op:
                self._break_cycles()

    def _resolve_conflict(
        self, state: _TxState, key: str, clock: VectorClock, opponent_id: str
    ) -> None:
        """Apply the paper's conflict rules between the just-delivered write
        of ``state.tx`` and one conflicting lock holder/waiter."""
        tx_id = state.tx
        opponent_state = self._states.get(opponent_id)
        if opponent_state is not None and opponent_id not in self.local:
            # Remote (or already-public local) update transaction.
            opponent_clock = opponent_state.write_clocks.get(key)
            if opponent_clock is not None and opponent_clock.compare(clock) == BEFORE:
                return  # causally ordered: queue behind, no NACK
            if opponent_state.endorsed:
                self._nack(tx_id, f"concurrent with endorsed {opponent_id} on {key}")
            elif state.priority < opponent_state.priority:
                self._nack(opponent_id, f"concurrent with older {tx_id} on {key}")
            else:
                self._nack(tx_id, f"concurrent with older {opponent_id} on {key}")
            return
        local_tx = self.local.get(opponent_id)
        if local_tx is not None:
            if local_tx.read_only:
                return  # wait: read-only transactions finish locally, soon
            if opponent_id not in self.public:
                # Invisible local update reader: abort-and-restart it.
                self.preempt_local_readers(key, exempt=tx_id)
                return
            # Public local update transaction holding a read lock on key.
            local_state = self._states.get(opponent_id)
            if (
                local_state is not None
                and local_state.cr_entry is not None
                and clock.dominates_entry(local_state.home, local_state.cr_entry)
            ):
                # The delivered write causally follows the opponent's commit
                # request: an ordered (not concurrent) conflict; just queue.
                return
            endorsed = local_state.endorsed if local_state is not None else True
            if endorsed:
                self._nack(tx_id, f"concurrent with endorsed local {opponent_id} on {key}")
            elif local_tx.priority < state.priority:
                self._nack(tx_id, f"concurrent with older local {opponent_id} on {key}")
            else:
                self._nack(opponent_id, f"concurrent with younger local tx on {key}")
            return
        # Unknown opponent (e.g. a read lock of a remote... impossible: read
        # locks are only local).  Conservatively NACK the newcomer.
        self._nack(tx_id, f"conflict with unknown holder {opponent_id} on {key}")

    def _write_granted(self, tx_id: str, key: str) -> None:
        state = self._states.get(tx_id)
        if state is None or tx_id in self._dead:
            return
        state.waiting.discard(key)
        state.granted.add(key)
        self._check_commit(state)

    def _break_cycles(self) -> None:
        """Per-op mode backstop: NACK the youngest transaction in a
        waits-for cycle.  Such cycles appear identically at every site and
        involve only transactions no site has fully granted, so the NACK is
        safe and every site picks the same victim (DESIGN.md)."""
        cycle = self.locks.find_cycle()
        if not cycle:
            return
        candidates = [
            self._states[tx_id]
            for tx_id in cycle
            if tx_id in self._states and tx_id not in self._dead
        ]
        if not candidates:
            return
        victim = max(candidates, key=lambda s: s.priority)
        # Endorsement does not protect cycle members: a transaction stuck in
        # a waits-for cycle has ungranted writes at *every* site (the cycle
        # is identical everywhere because causal delivery orders the queues
        # identically), so no site can have committed it and the NACK is
        # safe even for an endorsed victim.
        self._nack(victim.tx, "waits-for cycle (per-op cross causality)", force=True)

    # -- NACK handling ------------------------------------------------------------

    def _nack(self, tx_id: str, reason: str, force: bool = False) -> None:
        if tx_id in self._nacked_by_me or tx_id in self._dead:
            return
        state = self._states.get(tx_id)
        if not force and state is not None and state.endorsed and state.home == self.site:
            raise ProtocolInvariantError(
                f"site {self.site} attempted to NACK its own endorsed {tx_id}"
            )
        self._nacked_by_me.add(tx_id)
        self.nacks_sent += 1
        self.trace.emit(self.now, self.name, "cbp.nack_sent", tx=tx_id, reason=reason)
        self._broadcast(CbpNack(tx_id, self.site, reason))
        # Apply locally at once: the self-delivery would do the same, but
        # later deliveries in this event must already see the victim dead.
        self._kill(tx_id)

    def _on_nack(self, nack: CbpNack) -> None:
        self._kill(nack.tx)

    def _kill(self, tx_id: str) -> None:
        if tx_id in self._dead:
            return
        if tx_id in self._finished:
            # The endorsement rule makes this unreachable: no site can NACK
            # a transaction once an echo chain allowed anyone to commit it.
            raise ProtocolInvariantError(
                f"site {self.site}: NACK arrived for committed transaction {tx_id}"
            )
        self._dead.add(tx_id)
        self._states.pop(tx_id, None)
        self.locks.release_all(tx_id)
        tx = self.local.get(tx_id)
        if tx is not None and not tx.terminal:
            self.abort_home(tx, AbortReason.CONCURRENT_NACK)

    # -- commit request and the decentralized decision ------------------------------

    def _on_commit_request(self, request: CbpCommitRequest, clock: VectorClock) -> None:
        tx_id = request.tx
        if tx_id in self._dead or tx_id in self._finished:
            return
        state = self._states.get(tx_id)
        if state is None:
            # Commit request with no writes seen: FIFO order makes this
            # impossible for correct senders.
            raise ProtocolInvariantError(
                f"site {self.site}: commit request for unknown {tx_id}"
            )
        state.cr_entry = clock[request.home]
        # Delivering the commit request without having objected endorses the
        # transaction at this site: we may no longer NACK it.
        state.endorsed = True
        # The request itself is the home's implicit yes; our own endorsement
        # counts as ours.
        state.echoes.add(request.home)
        state.echoes.add(self.site)
        self._check_commit(state)

    def _check_commit(self, state: _TxState) -> None:
        if (
            state.committed
            or state.tx in self._dead
            or state.cr_entry is None
            or not state.all_writes_seen
        ):
            return
        if state.waiting:
            return
        # Length guards first: this check runs on every grant and every
        # echo, and rebuilding these sets each time made the commit path
        # O(n^2) per transaction.  ``granted``/``echoes`` are sets and
        # ``writes`` is keyed by object, so equal length is necessary —
        # the full comparisons below remain authoritative.
        if len(state.granted) != len(state.writes) or set(state.granted) != set(
            state.writes
        ):
            return
        if len(state.echoes) < len(self.view_members) or not set(
            self.view_members
        ) <= state.echoes:
            return
        state.committed = True
        installed = self.install_writes(state.tx, state.writes)
        self.locks.release_all(state.tx)
        self._states.pop(state.tx, None)
        self._finished.add(state.tx)
        self.trace.emit(self.now, self.name, "cbp.applied", tx=state.tx)
        tx = self.local.get(state.tx) if state.home == self.site else None
        if tx is not None:
            self.commit_home(tx, installed)
        else:
            # Cohort, or a home that lost the client context in a crash:
            # the group commits without the initiator (implicit acks need
            # no reply from it), so keep the version order dense for the
            # 1SR checker even when nobody ever calls record_commit.
            self.recorder.record_commit_provisional(
                state.tx, self.site, installed, self.now
            )

    # -- heartbeats (null messages) ---------------------------------------------------

    def _heartbeat(self) -> None:
        assert self.heartbeat_interval is not None
        # No broadcasts while a state transfer is in flight: a null message
        # stamped with our stale pre-crash clock can dominate an *old*
        # commit request's entry and hand the group an implicit yes for a
        # transaction whose state this site lost in the crash.  Staying
        # silent instead is safe: our first post-install broadcast carries
        # the donor's clock, so every transaction it implicitly acknowledges
        # is covered by the snapshot or the adopted in-flight state.
        if not self.recovering and self.now - self._last_broadcast >= self.heartbeat_interval:
            self._broadcast(CbpNull(self.site))
        # detcheck: ignore[P203] — periodic tick reschedule (see __init__).
        self.schedule(self.heartbeat_interval, self._heartbeat)

    # -- crash / recovery ------------------------------------------------------------------

    def on_crash(self) -> None:
        super().on_crash()
        self._states.clear()
        self._nacked_by_me.clear()
        self._recovery_backlog.clear()

    def export_protocol_state(self) -> Optional[dict]:
        """Serialize in-flight transaction state for a state transfer.

        The committed-store snapshot alone is not enough for CBP: a
        transaction still in flight at export time has its writes in no
        site's store, only in the group's ``_TxState`` books — and once the
        rejoiner's fast-forwarded clock starts implicitly acknowledging it,
        the survivors *will* commit it.  Shipping the donor's in-flight
        books (plus its finished/dead sets and per-key lock-queue order, so
        the rejoiner grants locks in the same causal-delivery order every
        other site uses) closes the gap; without it the rejoined replica
        permanently misses every transaction that was in flight during the
        transfer — the recovered-site divergence the churn soaks exposed.

        Everything is copied into plain tuples: the donor keeps mutating
        its live state while the reply is in flight.
        """
        states = []
        for _, state in sorted(self._states.items()):
            states.append(
                {
                    "tx": state.tx,
                    "home": state.home,
                    "priority": tuple(state.priority),
                    "writes": tuple(sorted(state.writes.items())),
                    "write_clocks": tuple(
                        (key, tuple(clock.entries))
                        for key, clock in sorted(state.write_clocks.items())
                    ),
                    "all_writes_seen": state.all_writes_seen,
                    "granted": tuple(sorted(state.granted)),
                    "cr_entry": state.cr_entry,
                    "echoes": tuple(sorted(state.echoes)),
                    "endorsed": state.endorsed,
                }
            )
        keys: set[str] = set()
        for state in self._states.values():
            keys.update(state.writes)
        lock_queues = {
            key: tuple(
                request.tx
                for request in self.locks.queued(key)
                if request.tx in self._states
            )
            for key in sorted(keys)
        }
        return {
            "finished": tuple(sorted(self._finished)),
            "dead": tuple(sorted(self._dead)),
            "states": tuple(states),
            "lock_queues": lock_queues,
        }

    def adopt_protocol_state(self, state: dict) -> None:
        """Install a donor's in-flight books (rejoiner side, at snapshot
        install time).  Replaces wholesale: anything built locally from the
        stale pre-crash state is released and dropped."""
        for tx_id in sorted(self._states):
            self.locks.release_all(tx_id)
        self._states.clear()
        self._finished = set(state["finished"])
        self._dead = set(state["dead"])
        for exported in state["states"]:
            adopted = _TxState(
                exported["tx"], exported["home"], tuple(exported["priority"])
            )
            adopted.writes = dict(exported["writes"])
            adopted.write_clocks = {
                key: VectorClock(list(entries))
                for key, entries in exported["write_clocks"]
            }
            adopted.all_writes_seen = exported["all_writes_seen"]
            adopted.cr_entry = exported["cr_entry"]
            adopted.echoes = set(exported["echoes"])
            adopted.endorsed = exported["endorsed"]
            self._states[adopted.tx] = adopted
        # Locks: donor's holders first (at most one exclusive holder per
        # key), then waiters in the donor's queue order — which is the
        # causal delivery order of the conflicting writes, identical at
        # every site, so per-key install order (and hence version numbers)
        # stays convergent.
        for exported in state["states"]:
            tx_id = exported["tx"]
            adopted = self._states[tx_id]
            for key in exported["granted"]:
                if self.locks.acquire(tx_id, key, LockMode.EXCLUSIVE, self._write_granted):
                    adopted.granted.add(key)
                else:
                    adopted.waiting.add(key)
        for key in sorted(state["lock_queues"]):
            for tx_id in state["lock_queues"][key]:
                adopted = self._states.get(tx_id)
                if adopted is None or key in adopted.granted or key in adopted.waiting:
                    continue
                if self.locks.acquire(tx_id, key, LockMode.EXCLUSIVE, self._write_granted):
                    adopted.granted.add(key)
                else:
                    adopted.waiting.add(key)
        # The export races the next view change: a state whose home crashed
        # after the donor exported (but before the reply landed here) was
        # killed at every other site by the view change — which this
        # replica's adopted copy never saw, and no *future* view change
        # re-delivers.  Reap it now, exactly as on_view_change would have;
        # otherwise its locks wedge the keys forever (a churn-soak liveness
        # stall with every site up).
        for adopted in list(self._states.values()):
            if adopted.home not in self.view_members:
                self._kill(adopted.tx)

    def on_recovery_complete(self) -> None:
        """Replay the deliveries deferred during the state transfer.

        The donor's exported causal clock is the cut: a deferred message the
        donor had already delivered at export time is *covered* — its
        effects are in the snapshot and the adopted in-flight books — and is
        dropped; everything past the cut is replayed in delivery order, so
        the replica continues from a state identical to the donor's at the
        export instant.
        """
        backlog, self._recovery_backlog = self._recovery_backlog, []
        cut = self.cbcast.clock
        replayed = 0
        for message, envelope in backlog:
            if envelope.vc[message.sender] <= cut[message.sender]:
                continue
            replayed += 1
            self._on_deliver(message, envelope)
        if backlog:
            self.trace.emit(
                self.now,
                self.name,
                "cbp.recovery_replay",
                deferred=len(backlog),
                replayed=replayed,
            )
        for state in list(self._states.values()):
            self._check_commit(state)

    def on_recover(self) -> None:
        # Restart the null-message loop; without it the recovered site
        # would never provide implicit acknowledgments again.
        if self.heartbeat_interval is not None:
            # detcheck: ignore[P203] — restart of the periodic null-message
            # loop after recovery (see __init__).
            self.schedule(self.heartbeat_interval, self._heartbeat)

    # -- view changes -------------------------------------------------------------------

    def on_view_change(self, members: list[int], has_quorum: bool) -> None:
        super().on_view_change(members, has_quorum)
        for state in list(self._states.values()):
            if state.home not in members:
                # The initiator left: its transaction cannot be completed
                # (no further messages from it); drop it everywhere.
                self._kill(state.tx)
            else:
                self._check_commit(state)
