"""High-level facade: a replicated database you can just call.

:class:`ReplicatedDatabase` wraps the cluster harness behind a synchronous
interface for interactive use, notebooks and small scripts — submit a
transaction, get its outcome back; no engine plumbing:

    from repro import ReplicatedDatabase

    db = ReplicatedDatabase(protocol="cbp", sites=4, seed=7)
    db.write({"alice": 100, "bob": 50})                     # seed accounts
    outcome = db.transfer("alice", "bob", 25)               # RMW helper
    print(db.read("alice", site=2), outcome.committed)      # -> 75 True
    report = db.close()                                     # invariants!

Every call advances the simulation until the transaction settles, so time
"passes" only while you interact — latencies in the outcomes are still the
simulated protocol latencies.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional

from repro.core.cluster import Cluster, ClusterConfig, SpecStatus
from repro.core.transaction import TransactionSpec


@dataclass(frozen=True)
class Outcome:
    """What happened to one submitted transaction."""

    name: str
    committed: bool
    attempts: int
    values: dict[str, Any]  # the values read (committed attempt only)
    latency: float

    def __bool__(self) -> bool:
        return self.committed


class ReplicatedDatabase:
    """Synchronous-feeling facade over a simulated replicated database."""

    def __init__(
        self,
        protocol: str = "cbp",
        sites: int = 3,
        objects: Optional[list[str]] = None,
        seed: int = 0,
        **config_overrides: Any,
    ):
        self._names = itertools.count(1)
        self._explicit_keys = objects
        num_objects = 1  # cluster pre-creates x0..; we add named keys below
        config = ClusterConfig(
            protocol=protocol,
            num_sites=sites,
            num_objects=num_objects,
            seed=seed,
            **config_overrides,
        )
        self.cluster = Cluster(config)
        if objects:
            for replica in self.cluster.replicas:
                replica.store.initialize(objects, value=0)
            self.cluster.keys = sorted(set(self.cluster.keys) | set(objects))
        self._closed = False

    # -- dynamic keys ---------------------------------------------------------------

    def _ensure_keys(self, keys) -> None:
        new = [k for k in keys if not self.cluster.replicas[0].store.contains(k)]
        if not new:
            return
        if self._explicit_keys is not None:
            raise KeyError(f"unknown objects {new}; declared: {self._explicit_keys}")
        for replica in self.cluster.replicas:
            replica.store.initialize(new, value=0)
        self.cluster.keys = sorted(set(self.cluster.keys) | set(new))

    # -- transactions -----------------------------------------------------------------

    def execute(
        self,
        reads: Optional[list[str]] = None,
        writes: Optional[dict[str, Any]] = None,
        site: int = 0,
        name: Optional[str] = None,
    ) -> Outcome:
        """Run one transaction to completion and return its outcome."""
        self._check_open()
        self._check_site(site)
        reads = list(reads or [])
        writes = dict(writes or {})
        self._ensure_keys(reads + list(writes))
        spec_name = name or f"api{next(self._names)}"
        spec = TransactionSpec.make(
            spec_name,
            site,
            read_keys=sorted(set(reads) | set(writes)),
            writes=writes,
        )
        start = self.cluster.engine.now
        self.cluster.submit(spec, at=start)
        status = self.cluster.spec_status(spec_name)
        # Drain after completion so a subsequent read at ANY site sees the
        # settled state (remote applies land before execute() returns).
        self.cluster.run(
            max_time=start + 10_000_000.0,
            stop_when=lambda: status.final,
            drain=True,
        )
        return self._outcome_of(status, reads, start)

    def read(self, key: str, site: int = 0) -> Any:
        """Committed value of ``key`` at ``site`` (a local read)."""
        self._check_open()
        self._check_site(site)
        self._ensure_keys([key])
        return self.cluster.replicas[site].store.read(key).value

    def write(self, values: dict[str, Any], site: int = 0) -> Outcome:
        """Blind update transaction writing ``values``."""
        return self.execute(writes=values, site=site)

    def transfer(self, source: str, target: str, amount: Any, site: int = 0) -> Outcome:
        """Read-modify-write: move ``amount`` from ``source`` to ``target``.

        Retries with fresh reads are handled by the cluster's client loop
        at the *attempt* level; the value computation here re-runs per call
        (call again if the outcome reports an abort).
        """
        self._check_open()
        self._ensure_keys([source, target])
        store = self.cluster.replicas[site].store
        source_balance = store.read(source).value
        target_balance = store.read(target).value
        return self.execute(
            reads=[source, target],
            writes={source: source_balance - amount, target: target_balance + amount},
            site=site,
        )

    # -- lifecycle ------------------------------------------------------------------------

    def close(self) -> dict[str, Any]:
        """Drain, verify every invariant, and return a closing report."""
        self._check_open()
        self._closed = True
        result = self.cluster.run(max_time=self.cluster.engine.now + 1_000_000.0)
        if not result.ok:
            raise AssertionError(
                f"invariant violation at close: {result.serialization.explain()}, "
                f"converged={result.converged}"
            )
        return {
            "committed": result.committed_specs,
            "failed": result.failed_specs,
            "messages": result.network_stats["sent"],
            "serialization": result.serialization.explain(),
            "converged": result.converged,
            "simulated_ms": result.duration,
        }

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("database already closed")

    def _check_site(self, site: int) -> None:
        if not 0 <= site < len(self.cluster.replicas):
            raise ValueError(
                f"unknown site {site}; this database has "
                f"{len(self.cluster.replicas)} sites"
            )

    def _outcome_of(self, status: SpecStatus, reads, start: float) -> Outcome:
        values: dict[str, Any] = {}
        if status.committed:
            committed = {r.tx: r for r in self.cluster.recorder.committed}
            record = committed.get(f"{status.spec.name}#{status.attempts}")
            if record is not None:
                versions = dict(record.reads)
                for key in reads:
                    if key in versions:
                        store = self.cluster.replicas[status.spec.home].store
                        try:
                            values[key] = store.read_version(key, versions[key]).value
                        except KeyError:
                            values[key] = store.read(key).value
        return Outcome(
            name=status.spec.name,
            committed=status.committed,
            attempts=status.attempts,
            values=values,
            latency=self.cluster.engine.now - start,
        )
