"""ABP: the Atomic Broadcast-based Protocol (paper, section 5).

Commit requests are delivered in a single total order consistent with
causality, so every site runs the *same deterministic certification test in
the same order* and reaches the same commit/abort decision independently —
"completely eliminating the need for acknowledgements during transaction
commitment".

Three dissemination variants (ablation E10):

- **bundled** (variant A): the commit request carries the write values; one
  atomic broadcast per update transaction.
- **shipped** (variant B, the paper's presentation): write operations are
  disseminated by **causal broadcast** while the transaction executes and
  only a slim commit request goes through the atomic order ("the system
  must support both atomic as well as causal broadcast primitives", as in
  ISIS).  Causal order guarantees a site has a transaction's writes before
  its commit request becomes deliverable, and the total order resolves
  conflicts among concurrent writers deterministically.
- **locked** (variant B + delivery-time locking, closest to the paper's
  "operations executed as they are delivered"): pre-shipped writes also
  take exclusive locks at delivery, so local readers wait for the writer's
  fate instead of reading soon-to-be-stale versions — fewer certification
  aborts, slightly higher read latency.  The total order still decides
  installs: certification preempts any conflicting grant (the displaced
  writer's own commit request necessarily comes later in the order).

Certification: the commit request carries the versions the transaction read
at its home site.  When the request is processed (in total order), a site
commits the transaction iff every read version still equals the object's
current committed version.  Because every site installs writes at the same
total-order positions, the current versions agree everywhere, so the
decision is deterministic — no votes.  This is backward read validation
(optimistic concurrency control [KR81] at the replication level), the
deterministic surrogate for the locking details the paper leaves to its
technical report; see DESIGN.md.

Read-only transactions read a locally committed snapshot (atomically, under
the group read-lock discipline) and commit locally: never broadcast, never
aborted.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.analysis.metrics import MetricsCollector
from repro.broadcast.causal import CausalEnvelope
from repro.broadcast.total import TotalOrderBroadcast
from repro.core.events import AbpCommitRequest, AbpWriteSet
from repro.core.replica import Replica
from repro.core.transaction import AbortReason, Transaction, TxPhase
from repro.db.locks import LockMode
from repro.db.serialization import HistoryRecorder
from repro.sim.engine import SimulationEngine
from repro.sim.trace import TraceLog


class AtomicBroadcastReplica(Replica):
    """One site running ABP."""

    #: Optimistic: read locks are released right after the read burst; the
    #: certification test replaces lock-based read protection.
    hold_read_locks = False

    def __init__(
        self,
        engine: SimulationEngine,
        site: int,
        num_sites: int,
        recorder: HistoryRecorder,
        metrics: MetricsCollector,
        trace: TraceLog,
        abcast: TotalOrderBroadcast,
        variant: str = "bundled",
    ):
        super().__init__(engine, site, num_sites, recorder, metrics, trace)
        if variant not in ("bundled", "shipped", "locked"):
            raise ValueError(f"unknown ABP variant {variant!r}")
        self.abcast = abcast
        self.variant = variant
        abcast.set_deliver(self._on_deliver)
        #: Variant B: causally pre-shipped write values, by tx id.
        self._shipped: dict[str, dict[str, Any]] = {}
        #: Sanity: total-order positions must arrive contiguously.
        self._expected_index = 0
        self.certified_commits = 0
        self.certified_aborts = 0

    # -- crash / recovery --------------------------------------------------------------

    def on_crash(self) -> None:
        super().on_crash()
        self._shipped.clear()

    def fast_forward_order(self, next_index: int) -> None:
        """Skip the total-order prefix a state-transfer snapshot covers."""
        self._expected_index = max(self._expected_index, next_index)

    def export_protocol_state(self) -> Optional[dict]:
        """Ship the causally pre-shipped write sets with a state transfer.

        In the shipped/locked variants a write set travels causally ahead of
        its totally-ordered commit request.  A write set the donor delivered
        *before* its export whose commit request orders *after* it would be
        unobtainable for the rejoiner (the causal fast-forward skips the
        covered prefix) — certification would then crash on the missing
        writes.  The bundled variant carries writes inside the request and
        needs nothing.
        """
        if self.variant == "bundled":
            return None
        return {
            "shipped": tuple(
                (tx, tuple(sorted(writes.items())))
                for tx, writes in sorted(self._shipped.items())
            )
        }

    def adopt_protocol_state(self, state: dict) -> None:
        for tx, writes in state["shipped"]:
            self._shipped.setdefault(tx, dict(writes))

    # -- home side ------------------------------------------------------------------

    def start_update(self, tx: Transaction) -> None:
        self.public.add(tx.tx_id)
        tx.phase = TxPhase.COMMITTING
        reads = tuple(sorted(tx.observed_versions().items()))
        if self.variant in ("shipped", "locked"):
            self.abcast.broadcast_causal(
                AbpWriteSet(tx.tx_id, self.site, tx.spec.writes)
            )
            request = AbpCommitRequest(
                tx.tx_id, self.site, reads, (), tx.spec.write_keys
            )
        else:
            request = AbpCommitRequest(
                tx.tx_id, self.site, reads, tx.spec.writes, tx.spec.write_keys
            )
        self.abcast.broadcast(request)

    # -- delivery --------------------------------------------------------------------

    # ABP installs straight from totally-ordered deliveries: the recovery
    # agent fast-forwards the broadcast layer past the snapshot before any
    # live delivery resumes, and the post-rejoin settle window (serve_delay)
    # keeps installs out of the transfer itself.  E13 churn-soak oracles
    # (1SR + convergence under rolling restarts) cover this path.
    # detcheck: ignore[H403]
    def _on_deliver(
        self, payload: Any, envelope: CausalEnvelope, order_index: Optional[int]
    ) -> None:
        if isinstance(payload, AbpWriteSet):
            assert order_index is None
            self._shipped[payload.tx] = dict(payload.writes)
            if self.variant == "locked":
                # The paper's S5 text: operations "executed as delivered".
                # Acquire (or queue for) the exclusive locks now, so local
                # readers wait for the writer's fate instead of reading
                # soon-to-be-stale versions.  The total order still decides
                # installs: certification preempts any grant order.
                for key, _ in payload.writes:
                    self.locks.acquire(payload.tx, key, LockMode.EXCLUSIVE)
            return
        if not isinstance(payload, AbpCommitRequest):
            raise RuntimeError(f"site {self.site}: unexpected ABP payload {payload!r}")
        assert order_index is not None, "commit requests must be totally ordered"
        if order_index != self._expected_index:
            raise RuntimeError(
                f"site {self.site}: total-order gap (got {order_index}, "
                f"expected {self._expected_index})"
            )
        self._expected_index += 1
        self._certify(payload)

    def _certify(self, request: AbpCommitRequest) -> None:
        """The deterministic certification test, identical at every site."""
        ok = all(
            self.store.version(key) == version for key, version in request.reads
        )
        tx = self.local.get(request.tx)
        if not ok:
            self.certified_aborts += 1
            self.trace.emit(self.now, self.name, "abp.cert_abort", tx=request.tx)
            self._shipped.pop(request.tx, None)
            if self.variant == "locked":
                # Drop the early locks/queued claims: waiting readers resume.
                self.locks.release_all(request.tx)
            if tx is not None and request.home == self.site:
                self.abort_home(tx, AbortReason.CERTIFICATION)
            return
        if self.variant in ("shipped", "locked"):
            writes = self._shipped.pop(request.tx, None)
            if writes is None:
                # Causal order puts the write set before the commit request;
                # its absence indicates a broken broadcast stack.
                raise RuntimeError(
                    f"site {self.site}: write set for {request.tx} missing at "
                    "certification (causal order violated)"
                )
        else:
            writes = dict(request.writes)
        if self.variant == "locked":
            # The total order outranks grant order: displace any other
            # uncommitted writer still holding one of our keys (its commit
            # request, if it ever certifies, comes later in the order).
            for key in writes:
                self.locks.preempt(key, request.tx)
        installed = self.install_writes(request.tx, writes)
        self.certified_commits += 1
        if self.variant == "locked":
            self.locks.release_all(request.tx)
        self.trace.emit(self.now, self.name, "abp.applied", tx=request.tx)
        if tx is not None and request.home == self.site:
            self.locks.release_all(tx.tx_id)
            self.commit_home(tx, installed)
        else:
            # Cohort, or a home whose client context died with a crash:
            # certification committed the transaction group-wide, so record
            # a provisional writer for the 1SR version order.
            self.recorder.record_commit_provisional(
                request.tx, self.site, installed, self.now
            )
