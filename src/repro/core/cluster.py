"""Cluster harness: wires sites, broadcast stacks, protocol replicas,
clients and invariant checks into one runnable simulation.

Typical use::

    from repro import Cluster, ClusterConfig, TransactionSpec

    cluster = Cluster(ClusterConfig(protocol="cbp", num_sites=4, seed=7))
    cluster.submit(TransactionSpec.make("T1", home=0,
                                        read_keys=["x0"], writes={"x0": 42}))
    result = cluster.run()
    assert result.serialization.ok and result.converged

The cluster also owns the client retry loop: an aborted update transaction
is resubmitted (same spec, next attempt number, original priority
timestamp) after a jittered backoff, until it commits or exhausts
``max_attempts``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.analysis.metrics import MetricsCollector
from repro.baselines.p2p_2pc import PointToPointReplica
from repro.broadcast.batching import BatchingConfig, BroadcastBatcher
from repro.broadcast.causal import CausalBroadcast
from repro.broadcast.failure_detector import FailureDetector
from repro.broadcast.membership import MembershipService, View
from repro.broadcast.reliable import ReliableBroadcast
from repro.broadcast.total import TotalOrderBroadcast
from repro.core.atomic_protocol import AtomicBroadcastReplica
from repro.core.causal_protocol import CausalBroadcastReplica
from repro.core.recovery import RecoveryAgent
from repro.core.reliable_protocol import ReliableBroadcastReplica
from repro.core.replica import Replica
from repro.core.transaction import AbortReason, Transaction, TransactionSpec
from repro.db.serialization import (
    HistoryRecorder,
    SerializationResult,
    replicas_converged,
)
from repro.net.latency import LatencyModel, UniformLatency
from repro.net.network import Network
from repro.net.router import ChannelRouter
from repro.net.transport import ReliableTransport
from repro.sim.engine import RUN_EXHAUSTED, SimulationEngine
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog

PROTOCOLS = ("rbp", "cbp", "abp", "p2p")


@dataclass
class ClusterConfig:
    """Everything that defines one simulated deployment."""

    protocol: str = "rbp"
    num_sites: int = 4
    num_objects: int = 64
    seed: int = 0
    latency: Optional[LatencyModel] = None  # default: UniformLatency(0.5, 1.5)
    loss_rate: float = 0.0
    bandwidth: Optional[float] = None  # bytes/ms per link; None = infinite
    # Transport mode: None = ARQ exactly when loss_rate > 0 (lossless runs
    # stay passthrough and bit-identical to the analytical cost model);
    # True = ARQ always, required before FaultSchedule.flaky_links can
    # inject loss mid-run on a lossless build; False = passthrough always
    # (rejected when loss_rate > 0).
    reliable_links: Optional[bool] = None
    # Batching: None = passthrough, bit-identical to historical traffic.
    # Otherwise a BatchingConfig (or shorthand: True = defaults, a number =
    # flush window in ms) enabling the flush-window coalescer plus, per its
    # flags, protocol group commit and delta-encoded vector clocks.  With
    # batching on, runs are outcome-equivalent, not trace-identical.
    batching: Optional[Any] = None
    arq_window: int = 32
    arq_max_backoff: float = 64.0
    relay: bool = False
    trace: bool = False
    # Trace retention: a cap (records) and which end to keep when it is
    # reached — "head" keeps the oldest (assert on a run's opening phase),
    # "ring" keeps the newest (long soaks: memory stays bounded and the
    # records nearest a failure survive).  See repro.sim.trace.TraceLog.
    trace_capacity: Optional[int] = None
    trace_mode: str = "head"
    # Failure handling.
    enable_failure_detector: bool = False
    fd_interval: float = 50.0
    fd_timeout: float = 200.0
    # Periodic WAL checkpointing (None disables).
    checkpoint_interval: Optional[float] = None
    # Client retry loop.
    retry_aborted: bool = True
    max_attempts: int = 25
    retry_backoff: float = 10.0
    # RBP knobs.
    rbp_wound_local_readers: bool = False
    rbp_pipeline_writes: bool = False
    rbp_decision_query_timeout: float = 60.0
    rbp_decision_query_attempts: int = 8
    rbp_decision_log_capacity: int = 1024
    # CBP knobs.
    cbp_heartbeat: Optional[float] = 25.0
    cbp_per_op: bool = False
    # ABP knobs.
    abp_variant: str = "bundled"  # or "shipped" / "locked"
    abp_order_mode: str = "sequencer"  # or "token"
    abp_token_hold: float = 1.0
    abp_uniform: bool = False  # uniform (stable) delivery of commit requests
    abp_stability_interval: float = 10.0
    # Baseline knobs.
    p2p_write_timeout: float = 400.0
    p2p_deadlock_interval: float = 10.0

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}; pick from {PROTOCOLS}")
        if self.num_sites < 1:
            raise ValueError("num_sites must be at least 1")
        if self.num_objects < 1:
            raise ValueError("num_objects must be at least 1")
        if self.reliable_links is False and self.loss_rate > 0:
            raise ValueError(
                "reliable_links=False with loss_rate > 0 would break the "
                "reliable-FIFO-link assumption the protocols are built on"
            )
        if self.batching is not None and not isinstance(self.batching, BatchingConfig):
            if self.batching is True:
                self.batching = BatchingConfig()
            elif isinstance(self.batching, (int, float)) and not isinstance(
                self.batching, bool
            ):
                self.batching = BatchingConfig(flush_window=float(self.batching))
            else:
                raise ValueError(
                    "batching must be None, True, a flush window in ms, "
                    "or a BatchingConfig"
                )


@dataclass
class SpecStatus:
    """Client-side status of one logical transaction (across attempts)."""

    spec: TransactionSpec
    attempts: int = 0
    committed: bool = False
    final: bool = False
    first_submit_time: float = 0.0
    last_outcome: Optional[AbortReason] = None


@dataclass
class ClusterResult:
    """Everything a benchmark or test wants to know after a run."""

    duration: float
    metrics: MetricsCollector
    network_stats: dict[str, Any]
    serialization: SerializationResult
    converged: bool
    committed_specs: int
    failed_specs: int
    incomplete_specs: int
    messages_by_kind: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.serialization.ok and self.converged

    def messages_total(self, prefix: str = "") -> int:
        return sum(  # detcheck: ignore[D106] — integer sum, order-insensitive
            count
            for kind, count in self.messages_by_kind.items()
            if kind.startswith(prefix)
        )


class Cluster:
    """A simulated replicated database running one protocol."""

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.engine = SimulationEngine()
        self.rng = RngRegistry(config.seed)
        self.trace = TraceLog(
            enabled=config.trace,
            capacity=config.trace_capacity,
            mode=config.trace_mode,
        )
        self.recorder = HistoryRecorder()
        self.metrics = MetricsCollector()
        latency = config.latency if config.latency is not None else UniformLatency(0.5, 1.5)
        self.network = Network(
            self.engine,
            config.num_sites,
            latency=latency,
            rng=self.rng,
            loss_rate=config.loss_rate,
            bandwidth=config.bandwidth,
        )
        self.keys = [f"x{i}" for i in range(config.num_objects)]
        self.replicas: list[Replica] = []
        self.transports: list[ReliableTransport] = []
        self.batchers: list[Optional[BroadcastBatcher]] = []
        self.routers: list[ChannelRouter] = []
        self.reliables: list[ReliableBroadcast] = []
        self.causals: list[CausalBroadcast] = []
        self.totals: list[TotalOrderBroadcast] = []
        self.detectors: list[FailureDetector] = []
        self.memberships: list[MembershipService] = []
        self.recovery_agents: list[RecoveryAgent] = []
        self._specs: dict[str, SpecStatus] = {}
        self._unfinished_specs = 0
        self._spec_listeners: list[Callable[[SpecStatus], None]] = []
        self._build()

    # -- construction ---------------------------------------------------------------

    def _build(self) -> None:
        config = self.config
        for site in range(config.num_sites):
            transport = ReliableTransport(
                self.engine,
                self.network,
                site,
                reliable=config.reliable_links,
                window=config.arq_window,
                max_backoff=config.arq_max_backoff,
                trace=self.trace,
            )
            batcher = None
            if config.batching is not None:
                batcher = BroadcastBatcher(
                    self.engine, transport, flush_window=config.batching.flush_window
                )
            router = ChannelRouter(transport, batcher=batcher)
            reliable = ReliableBroadcast(
                self.engine, router, site, config.num_sites, relay=config.relay
            )
            self.transports.append(transport)
            self.batchers.append(batcher)
            self.routers.append(router)
            self.reliables.append(reliable)

            replica = self._build_replica(site, router, reliable)
            replica.on_complete = self._on_complete
            replica.store.initialize(self.keys)
            self.replicas.append(replica)
            if config.checkpoint_interval is not None:
                self._schedule_checkpoints(replica, config.checkpoint_interval)
            self.recovery_agents.append(
                self._wire_recovery(site, router, replica)
            )

            if config.enable_failure_detector:
                detector = FailureDetector(
                    self.engine,
                    router,
                    site,
                    config.num_sites,
                    interval=config.fd_interval,
                    timeout=config.fd_timeout,
                )
                membership = MembershipService(
                    self.engine, router, detector, site, config.num_sites
                )
                membership.add_listener(self._make_view_listener(site))
                # Reachability hook: suspicion parks ARQ retransmission
                # toward the suspected peers (no-op for passthrough).
                detector.add_listener(transport.set_suspected)
                self.detectors.append(detector)
                self.memberships.append(membership)

    def _build_replica(
        self, site: int, router: ChannelRouter, reliable: ReliableBroadcast
    ) -> Replica:
        config = self.config
        batching = config.batching
        group_commit = batching is not None and batching.group_commit
        delta_clocks = batching is not None and batching.delta_clocks
        common = (
            self.engine,
            site,
            config.num_sites,
            self.recorder,
            self.metrics,
            self.trace,
        )
        if config.protocol == "rbp":
            return ReliableBroadcastReplica(
                *common,
                rbcast=reliable,
                router=router,
                wound_local_readers=config.rbp_wound_local_readers,
                pipeline_writes=config.rbp_pipeline_writes,
                decision_query_timeout=config.rbp_decision_query_timeout,
                decision_query_attempts=config.rbp_decision_query_attempts,
                decision_log_capacity=config.rbp_decision_log_capacity,
                group_commit=group_commit,
            )
        if config.protocol == "cbp":
            causal = CausalBroadcast(reliable)
            if delta_clocks:
                causal.enable_delta_clocks()
            self.causals.append(causal)
            return CausalBroadcastReplica(
                *common,
                cbcast=causal,
                heartbeat_interval=config.cbp_heartbeat,
                per_op=config.cbp_per_op,
            )
        if config.protocol == "abp":
            causal = CausalBroadcast(reliable)
            if delta_clocks:
                causal.enable_delta_clocks()
            self.causals.append(causal)
            total = TotalOrderBroadcast(
                self.engine,
                causal,
                mode=config.abp_order_mode,
                token_hold=config.abp_token_hold,
                uniform=config.abp_uniform,
                stability_interval=config.abp_stability_interval,
                group_commit=group_commit,
            )
            self.totals.append(total)
            return AtomicBroadcastReplica(*common, abcast=total, variant=config.abp_variant)
        return PointToPointReplica(
            *common,
            router=router,
            write_timeout=config.p2p_write_timeout,
            deadlock_check_interval=config.p2p_deadlock_interval,
        )

    def _schedule_checkpoints(self, replica: Replica, interval: float) -> None:
        def tick() -> None:
            if replica.alive and not replica.recovering:
                replica.checkpoint()
            # detcheck: ignore[P203] — periodic checkpoint tick; guarded by
            # the alive/recovering re-check above on every firing.
            replica.schedule(interval, tick)

        # detcheck: ignore[P203] — initial arming of the checkpoint tick.
        replica.schedule(interval, tick)

    def _wire_recovery(
        self, site: int, router: ChannelRouter, replica: Replica
    ) -> RecoveryAgent:
        agent = RecoveryAgent(self.engine, router, replica, self.trace)

        def export() -> dict:
            state: dict = {}
            if self.causals:
                state["causal_clock"] = list(self.causals[site].clock)
                state["causal_recon"] = self.causals[site].export_recon()
            if self.totals:
                state["total_order_state"] = self.totals[site].export_order_state()
            if isinstance(replica, ReliableBroadcastReplica):
                state["decision_log"] = replica.export_decision_log()
            return state

        def apply(state: dict) -> None:
            clock = state.get("causal_clock")
            if self.causals and clock is not None:
                self.causals[site].fast_forward(clock)
                recon = state.get("causal_recon")
                if recon is not None:
                    self.causals[site].adopt_recon(recon)
            order_state = state.get("total_order_state")
            if self.totals and order_state is not None:
                self.totals[site].fast_forward(order_state)
                if isinstance(replica, AtomicBroadcastReplica):
                    replica.fast_forward_order(order_state["next_delivery_index"])
            decision_log = state.get("decision_log")
            if decision_log is not None and isinstance(replica, ReliableBroadcastReplica):
                replica.adopt_decision_log(decision_log)

        agent.fast_forward.export = export
        agent.fast_forward.apply = apply
        return agent

    def _make_view_listener(self, site: int) -> Callable[[View, set[int]], None]:
        def listener(view: View, joined: set[int]) -> None:
            replica = self.replicas[site]
            members = list(view.members)
            was_primary = replica.has_quorum
            self.reliables[site].set_group(members)
            if self.causals:
                # Delta-clock fallback: a membership change means some
                # receiver may have lost our reconstruction chain — the
                # next broadcast ships a full clock (no-op without deltas).
                self.causals[site].note_disruption()
            if self.totals:
                self.totals[site].set_group(members)
            now_primary = view.has_quorum(self.config.num_sites)
            if replica.recovering:
                # Crash recovery: we have rejoined the view (so members now
                # send to us and our causal layer holds their messages
                # back); request the snapshot from the view coordinator.
                agent = self.recovery_agents[site]
                if (
                    not agent.requested
                    and now_primary
                    and site in view.members
                    and len(view.members) > 1
                ):
                    donor = min(m for m in view.members if m != site)
                    agent.request_from(donor)
            elif now_primary and not was_primary:
                # Rejoining the primary component after a healed partition:
                # catch up on the updates the majority committed while we
                # were away.  A real system streams the missed writes or a
                # checkpoint; this in-place clone stands in for it (see
                # DESIGN.md on the simplification).
                self._state_transfer_into(site)
            replica.on_view_change(members, now_primary)

        return listener

    def _state_transfer_into(self, site: int) -> None:
        donor = None
        for candidate in self.replicas:
            if candidate.site != site and candidate.alive and candidate.has_quorum:
                donor = candidate
                break
        if donor is None:
            return
        replica = self.replicas[site]
        if donor.store.digest() != replica.store.digest():
            replica.install_snapshot(donor.store.export_snapshot())
            self.trace.emit(
                self.engine.now, f"site{site}", "recovery.state_transfer", donor=donor.site
            )
        if isinstance(replica, ReliableBroadcastReplica) and isinstance(
            donor, ReliableBroadcastReplica
        ):
            # The snapshot (when one was needed) already reflects the
            # donor's decided transactions; the log lets this site discharge
            # residual in-doubt state — including a parked transaction of
            # its own the majority decided without it — and answer decision
            # queries for them.  Worth adopting even when the stores already
            # agree: an all-aborted epoch leaves digests equal but in-doubt
            # state standing.
            replica.adopt_decision_log(donor.export_decision_log())

    # -- client API ------------------------------------------------------------------

    def submit(self, spec: TransactionSpec, at: float = 0.0) -> None:
        """Schedule the first attempt of ``spec`` at simulation time ``at``."""
        if spec.name in self._specs:
            raise ValueError(f"spec {spec.name} already submitted")
        status = SpecStatus(spec=spec, first_submit_time=at)
        self._specs[spec.name] = status
        self._unfinished_specs += 1
        # detcheck: ignore[P203] — the SpecStatus argument is the staleness
        # token: _attempt re-checks status.final before acting.
        self.engine.schedule_at(at, self._attempt, status)

    def add_spec_listener(self, listener: Callable[[SpecStatus], None]) -> None:
        """``listener(status)`` fires when a spec reaches its final outcome."""
        self._spec_listeners.append(listener)

    def _attempt(self, status: SpecStatus) -> None:
        status.attempts += 1
        tx = Transaction(
            spec=status.spec,
            attempt=status.attempts,
            submit_time=self.engine.now,
            first_submit_time=status.first_submit_time,
        )
        self.replicas[status.spec.home].submit(tx)

    def _on_complete(self, tx: Transaction, committed: bool) -> None:
        status = self._specs.get(tx.spec.name)
        if status is None or status.final:
            return
        if committed:
            status.committed = True
            status.final = True
            self._unfinished_specs -= 1
            self._notify_final(status)
            return
        status.last_outcome = tx.abort_reason
        retryable = self.config.retry_aborted and tx.abort_reason not in (
            AbortReason.SITE_FAILURE,
            AbortReason.NO_QUORUM,
        )
        if retryable and status.attempts < self.config.max_attempts:
            backoff = self.config.retry_backoff
            jitter = self.rng.stream("retry").uniform(0.5, 1.5)
            delay = backoff * jitter * min(status.attempts, 4)
            # detcheck: ignore[P203] — retry with the same SpecStatus token.
            self.engine.schedule(delay, self._attempt, status)
        else:
            status.final = True
            self._unfinished_specs -= 1
            self._notify_final(status)

    def _notify_final(self, status: SpecStatus) -> None:
        for listener in self._spec_listeners:
            listener(status)

    # -- fault injection ---------------------------------------------------------------

    def crash_site(self, site: int, at: Optional[float] = None) -> None:
        """Crash ``site`` now or at a future time (fail-stop)."""
        if at is not None:
            self.engine.schedule_at(at, self.crash_site, site)
            return
        self.network.set_site_up(site, False)
        if self.batchers[site] is not None:
            # Fail-stop: the open flush window's queued traffic is lost.
            self.batchers[site].reset()
        if self.totals:
            self.totals[site].on_crash()
        replica = self.replicas[site]
        for tx in list(replica.local.values()):
            replica._complete_abort(tx, AbortReason.SITE_FAILURE)
        replica.crash()
        if self.detectors:
            self.detectors[site].crash()
            self.memberships[site].crash()

    def recover_site(self, site: int, at: Optional[float] = None) -> None:
        """Recover a crashed site via a message-based state transfer.

        The site comes back up, requests a snapshot from the lowest live
        primary-component member, loads it, fast-forwards its broadcast
        stack, and only then rejoins the failure detector and membership
        (so peers keep it out of acknowledgment sets until it is ready).
        """
        if at is not None:
            self.engine.schedule_at(at, self.recover_site, site)
            return
        replica = self.replicas[site]
        self.network.set_site_up(site, True)
        self.transports[site].reset()
        if self.batchers[site] is not None:
            self.batchers[site].reset()
        replica.recover()
        replica.recovering = True
        if self.detectors:
            # Rejoin first: once the coordinator reinstates us in the view,
            # peers broadcast to us again and the view listener requests
            # the state snapshot (see _make_view_listener).
            self.detectors[site].recover()
            self.memberships[site].recover()
            return
        # Static membership (no failure detector): request immediately from
        # the lowest other live site.
        donor = next(
            (
                r.site
                for r in self.replicas
                if r.alive and r.site != site and not r.recovering
            ),
            None,
        )
        if donor is None:
            replica.recovering = False
            return
        self.recovery_agents[site].request_from(donor)

    def partition(self, groups: list[list[int]]) -> None:
        self.network.partitions.split(groups)

    def heal_partition(self) -> None:
        self.network.partitions.heal()

    # -- running ----------------------------------------------------------------------

    def all_final(self) -> bool:
        """O(1): ``run`` evaluates this after *every* event, so a scan over
        the spec table would make the whole simulation quadratic in the
        number of submitted transactions."""
        return self._unfinished_specs == 0

    def specs_submitted(self) -> int:
        return len(self._specs)

    def work_started_and_unfinished(self) -> bool:
        """True when some submitted spec has actually *begun* (its first
        attempt is due) without reaching a final outcome.  ``submit``
        registers specs eagerly so ``all_final`` can gate ``run`` on
        future-scheduled arrivals; liveness oracles must not treat those
        not-yet-started arrivals as stalled work, so they use this
        instead of ``not all_final()``."""
        if self._unfinished_specs == 0:
            return False
        now = self.engine.now
        return any(
            not status.final and status.first_submit_time <= now
            for status in self._specs.values()
        )

    def await_specs(self, count: int) -> Callable[[], bool]:
        """A ``stop_when`` predicate: at least ``count`` specs submitted and
        all of them final.  Use when submissions are scheduled into the
        future (a plain ``all_final`` would stop in the lull between
        batches)."""
        return lambda: len(self._specs) >= count and self.all_final()

    def run(
        self,
        max_time: float = 1_000_000.0,
        stop_when: Optional[Callable[[], bool]] = None,
        drain: bool = True,
    ) -> ClusterResult:
        """Run until every submitted spec is final (or ``max_time``).

        Drivers that submit work with gaps (e.g. a closed loop with think
        time) pass their own ``stop_when`` so the run does not stop in a
        momentary all-final lull.

        With ``drain`` (the default) the run then continues in chunks until
        the replicas converge, so in-flight remote applies (votes, echoes,
        decisions still on the wire when the last client got its answer)
        reach every site before invariants are checked.
        """
        self.engine.run(until=max_time, stop_when=stop_when or self.all_final)
        if drain:
            self._drain(max_time)
        return self.result()

    def _drain(self, max_time: float, chunk: float = 50.0, rounds: int = 200) -> None:
        for _ in range(rounds):
            live_stores = [r.store for r in self.replicas if r.alive]
            if replicas_converged(live_stores):
                return
            if self.engine.now >= max_time:
                return
            reason = self.engine.run(until=min(self.engine.now + chunk, max_time))
            if reason == RUN_EXHAUSTED:
                # Truly nothing pending (not merely idle until the chunk
                # horizon): no in-flight apply can ever arrive, so further
                # rounds cannot make progress.
                return

    def run_for(self, duration: float) -> None:
        """Advance simulation time by ``duration`` without stopping early."""
        self.engine.run(until=self.engine.now + duration)

    def result(self) -> ClusterResult:
        serialization = self.recorder.check()
        live_stores = [r.store for r in self.replicas if r.alive]
        converged = replicas_converged(live_stores)
        # detcheck: ignore[D106] — integer counts, order-insensitive
        committed = sum(1 for s in self._specs.values() if s.final and s.committed)
        failed = sum(  # detcheck: ignore[D106] — integer count
            1 for s in self._specs.values() if s.final and not s.committed)
        incomplete = sum(  # detcheck: ignore[D106] — integer count
            1 for s in self._specs.values() if not s.final)
        return ClusterResult(
            duration=self.engine.now,
            metrics=self.metrics,
            network_stats=self.network.stats.snapshot(),
            serialization=serialization,
            converged=converged,
            committed_specs=committed,
            failed_specs=failed,
            incomplete_specs=incomplete,
            messages_by_kind=dict(self.network.stats.by_kind),
        )

    def spec_status(self, name: str) -> SpecStatus:
        return self._specs[name]
