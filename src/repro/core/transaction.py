"""Transaction model.

Matches the paper's assumptions: a transaction is a sequence of read
operations followed by write operations ("a transaction performs all its
read operations before initiating any write operations"), executed
atomically, with the read and write sets known when the transaction is
submitted at its initiating (home) site.

A :class:`TransactionSpec` is the client's request; each execution attempt
is a :class:`Transaction` (aborted update transactions are resubmitted by
the client driver as a new attempt of the same spec).  Priorities used for
deterministic victim selection order attempts by the *original* submission
time, so an often-aborted transaction eventually becomes the oldest and
wins — avoiding livelock.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional


class TxPhase(enum.Enum):
    """Lifecycle states of one transaction attempt."""

    PENDING = "pending"  # submitted, waiting for read locks
    READING = "reading"  # read locks granted, reads executing
    EXECUTING = "executing"  # writes being disseminated
    COMMITTING = "committing"  # commitment protocol in progress
    COMMITTED = "committed"
    ABORTED = "aborted"


TERMINAL_PHASES = (TxPhase.COMMITTED, TxPhase.ABORTED)


class AbortReason(enum.Enum):
    """Taxonomy of aborts, reported per protocol in experiment E4."""

    WRITE_CONFLICT = "write_conflict"  # RBP: negative ack on a broadcast write
    CONCURRENT_NACK = "concurrent_nack"  # CBP: NACK for a concurrent conflict
    CERTIFICATION = "certification"  # ABP: failed the certification test
    READER_PREEMPTED = "reader_preempted"  # local reader displaced by a remote write
    DEADLOCK = "deadlock"  # baseline 2PL: waits-for cycle victim
    TIMEOUT = "timeout"  # baseline 2PL: presumed distributed deadlock
    VIEW_LOSS = "view_loss"  # a required site left the view mid-protocol
    NO_QUORUM = "no_quorum"  # submitted in a minority view
    SITE_FAILURE = "site_failure"  # home site crashed mid-transaction


@dataclass(frozen=True)
class TransactionSpec:
    """A client request: what to read and what to write, at which site."""

    name: str
    home: int
    read_keys: tuple[str, ...] = ()
    writes: tuple[tuple[str, Any], ...] = ()

    @staticmethod
    def make(
        name: str,
        home: int,
        read_keys: tuple[str, ...] | list[str] = (),
        writes: Optional[dict[str, Any]] = None,
    ) -> "TransactionSpec":
        """Convenience constructor accepting a writes dict."""
        write_items = tuple(sorted((writes or {}).items()))
        return TransactionSpec(name, home, tuple(read_keys), write_items)

    @property
    def read_only(self) -> bool:
        return not self.writes

    @property
    def write_keys(self) -> tuple[str, ...]:
        return tuple(key for key, _ in self.writes)

    def writes_dict(self) -> dict[str, Any]:
        return dict(self.writes)

    def __str__(self) -> str:
        return f"{self.name}@s{self.home}"


@dataclass
class Transaction:
    """One execution attempt of a spec at its home replica."""

    spec: TransactionSpec
    attempt: int
    submit_time: float
    first_submit_time: float  # of attempt 1, used for priority/fairness

    phase: TxPhase = TxPhase.PENDING
    reads_observed: dict[str, tuple[Any, int]] = field(default_factory=dict)
    writes_installed: dict[str, int] = field(default_factory=dict)
    commit_time: Optional[float] = None
    abort_reason: Optional[AbortReason] = None

    @property
    def tx_id(self) -> str:
        return f"{self.spec.name}#{self.attempt}"

    @property
    def home(self) -> int:
        return self.spec.home

    @property
    def read_only(self) -> bool:
        return self.spec.read_only

    @property
    def priority(self) -> tuple[float, int, str]:
        """Lower tuple = older transaction = higher priority (wins conflicts)."""
        return (self.first_submit_time, self.spec.home, self.spec.name)

    @property
    def terminal(self) -> bool:
        return self.phase in TERMINAL_PHASES

    def observed_versions(self) -> dict[str, int]:
        return {key: version for key, (_, version) in self.reads_observed.items()}

    def observed_values(self) -> dict[str, Any]:
        return {key: value for key, (value, _) in self.reads_observed.items()}

    def __str__(self) -> str:
        return self.tx_id


def older(priority_a: tuple, priority_b: tuple) -> bool:
    """True when ``priority_a`` outranks (is older than) ``priority_b``."""
    return priority_a < priority_b
