"""The paper's contribution: three broadcast-based replication protocols.

- :class:`repro.core.reliable_protocol.ReliableBroadcastReplica` -- RBP,
  paper section 3: reliable broadcast, explicit per-write acknowledgments,
  decentralized two-phase commit; deadlock-free by construction.
- :class:`repro.core.causal_protocol.CausalBroadcastReplica` -- CBP, paper
  section 4: causal broadcast with *implicit* positive acknowledgments and
  explicit causally-broadcast negative acknowledgments.
- :class:`repro.core.atomic_protocol.AtomicBroadcastReplica` -- ABP, paper
  section 5: atomic broadcast orders commit requests; deterministic
  certification removes acknowledgments entirely (two dissemination
  variants: bundled write sets, and causally pre-shipped write sets).

:class:`repro.core.cluster.Cluster` wires replicas, broadcast stacks, the
workload driver and the invariant checkers into one harness.
"""

from repro.core.transaction import (
    AbortReason,
    Transaction,
    TransactionSpec,
    TxPhase,
)
from repro.core.cluster import Cluster, ClusterConfig, ClusterResult
from repro.core.replica import Replica

__all__ = [
    "AbortReason",
    "Cluster",
    "ClusterConfig",
    "ClusterResult",
    "Replica",
    "Transaction",
    "TransactionSpec",
    "TxPhase",
]
