"""RBP: the Reliable Broadcast-based Protocol (paper, section 3).

Execution of an update transaction T homed at site *h*:

1. Read locks are acquired locally at *h* (all-or-nothing) and the reads
   execute.
2. Each write operation is **reliably broadcast**, one at a time; every
   site attempts the exclusive lock with a **no-wait** discipline and sends
   an explicit point-to-point acknowledgment back to *h*.  T "remains
   blocked until acknowledgments have been received from all sites"; a
   negative acknowledgment aborts T (the initiator broadcasts an abort).
3. After all writes are acknowledged everywhere, T commits with a
   **decentralized two-phase commit** [Ske82]: *h* broadcasts a commit
   request; every site broadcasts its vote to every site; each site decides
   locally (commit iff every view member voted yes) — so all sites reach
   the decision without a coordinator round-trip.

Deadlock freedom: remote writes never wait (conflict => negative ack), and
read acquisition is all-or-nothing, so no transaction ever waits while
holding a lock another waiter needs — there are no waits-for cycles.  The
``wound_local_readers`` option (ablation E10) lets a broadcast write displace
local update transactions that have not yet broadcast anything, instead of
aborting the (much more expensive to restart) remote writer.

Read-only transactions commit locally, broadcast nothing, and are never
aborted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.metrics import MetricsCollector
from repro.broadcast.message import BroadcastMessage
from repro.broadcast.reliable import ReliableBroadcast
from repro.core.events import (
    RbpAbort,
    RbpCommitRequest,
    RbpVote,
    RbpWrite,
    RbpWriteAck,
)
from repro.core.replica import Replica
from repro.core.transaction import AbortReason, Transaction, TxPhase
from repro.db.locks import LockMode
from repro.db.serialization import HistoryRecorder
from repro.net.router import ChannelRouter
from repro.sim.engine import SimulationEngine
from repro.sim.trace import TraceLog

DIRECT_CHANNEL = "rbp.direct"


@dataclass
class _WriteRound:
    """Home-side state for one in-flight broadcast write."""

    key: str
    acks: set[int] = field(default_factory=set)


@dataclass
class _VoteState:
    """Per-site tally of decentralized 2PC votes for one transaction."""

    home: int
    votes: dict[int, bool] = field(default_factory=dict)
    request_seen: bool = False
    decided: bool = False


class ReliableBroadcastReplica(Replica):
    """One site running RBP."""

    #: Presumed abort [Ske82]: a buffered remote write whose home has sent
    #: neither further writes nor a commit request for this long is dropped
    #: and its locks freed (see :meth:`_check_orphan`).  Far above any
    #: healthy write-round latency, even with ARQ retransmissions.
    orphan_grace = 1000.0

    def __init__(
        self,
        engine: SimulationEngine,
        site: int,
        num_sites: int,
        recorder: HistoryRecorder,
        metrics: MetricsCollector,
        trace: TraceLog,
        rbcast: ReliableBroadcast,
        router: ChannelRouter,
        wound_local_readers: bool = False,
        pipeline_writes: bool = False,
    ):
        super().__init__(engine, site, num_sites, recorder, metrics, trace)
        self.rbcast = rbcast
        self.router = router
        self.wound_local_readers = wound_local_readers
        #: Ablation (E10): broadcast every write at once instead of the
        #: paper's one-blocked-round-per-write; latency stops growing
        #: linearly in the write count at unchanged message cost.
        self.pipeline_writes = pipeline_writes
        rbcast.set_deliver(self._on_broadcast)
        router.register(DIRECT_CHANNEL, self._on_direct)
        # Shared (all sites): buffered write values of in-flight transactions.
        self._buffered: dict[str, dict[str, Any]] = {}
        self._finished: set[str] = set()
        self._votes: dict[str, _VoteState] = {}
        # Remote-homed buffered transactions: who homes them, and when we
        # last heard a write for them (drives the presumed-abort watchdog).
        self._write_homes: dict[str, int] = {}
        self._write_seen: dict[str, float] = {}
        # Home-side only: in-flight acknowledgment rounds per (tx, key),
        # and the writes not yet broadcast (sequential mode).
        self._write_round: dict[str, dict[str, _WriteRound]] = {}
        self._write_queue: dict[str, list[tuple[str, Any]]] = {}

    # -- home side --------------------------------------------------------------

    def start_update(self, tx: Transaction) -> None:
        self.public.add(tx.tx_id)
        self._write_round[tx.tx_id] = {}
        if self.pipeline_writes:
            self._write_queue[tx.tx_id] = []
            for key, value in tx.spec.writes:
                self._write_round[tx.tx_id][key] = _WriteRound(key)
                self.rbcast.broadcast(
                    RbpWrite(tx.tx_id, self.site, key, value, tx.priority)
                )
        else:
            self._write_queue[tx.tx_id] = list(tx.spec.writes)
            self._send_next_write(tx)

    def _send_next_write(self, tx: Transaction) -> None:
        if tx.terminal:
            return
        queue = self._write_queue.get(tx.tx_id, [])
        if not queue:
            self._maybe_start_2pc(tx)
            return
        key, value = queue.pop(0)
        self._write_round[tx.tx_id] = {key: _WriteRound(key)}
        self.rbcast.broadcast(RbpWrite(tx.tx_id, self.site, key, value, tx.priority))

    def _maybe_start_2pc(self, tx: Transaction) -> None:
        if self._write_round.get(tx.tx_id) or self._write_queue.get(tx.tx_id):
            return
        # All writes acknowledged everywhere: start decentralized 2PC.
        tx.phase = TxPhase.COMMITTING
        self.rbcast.broadcast(RbpCommitRequest(tx.tx_id, self.site))

    def _on_ack(self, ack: RbpWriteAck) -> None:
        tx = self.local.get(ack.tx)
        rounds = self._write_round.get(ack.tx)
        round_ = rounds.get(ack.key) if rounds is not None else None
        if tx is None or round_ is None or tx.terminal:
            return
        if not ack.ok:
            self.trace.emit(
                self.now, self.name, "rbp.negative_ack", tx=ack.tx, key=ack.key, by=ack.site
            )
            self._abort_everywhere(tx, AbortReason.WRITE_CONFLICT)
            return
        round_.acks.add(ack.site)
        self._check_round(tx, round_)

    def _check_round(self, tx: Transaction, round_: _WriteRound) -> None:
        if round_.acks >= set(self.view_members):
            rounds = self._write_round.get(tx.tx_id)
            if rounds is not None:
                rounds.pop(round_.key, None)
                if not rounds:
                    del self._write_round[tx.tx_id]
            self._send_next_write(tx)

    def _abort_everywhere(self, tx: Transaction, reason: AbortReason) -> None:
        self._write_round.pop(tx.tx_id, None)
        self._write_queue.pop(tx.tx_id, None)
        self.rbcast.broadcast(RbpAbort(tx.tx_id))
        self.abort_home(tx, reason)
        # Local cleanup for our own copy happens via the broadcast's
        # self-delivery (_purge), like at every other site.

    # -- broadcast deliveries (every site, including the home) ---------------------

    def _on_broadcast(self, message: BroadcastMessage) -> None:
        payload = message.payload
        if isinstance(payload, RbpWrite):
            self._on_write(payload)
        elif isinstance(payload, RbpCommitRequest):
            self._on_commit_request(payload)
        elif isinstance(payload, RbpVote):
            self._on_vote(payload)
        elif isinstance(payload, RbpAbort):
            self._purge(payload.tx)
        else:
            raise RuntimeError(f"site {self.site}: unexpected RBP payload {payload!r}")

    def _on_write(self, write: RbpWrite) -> None:
        if write.tx in self._finished:
            # Already locally aborted (abort broadcast, or the presumed-abort
            # watchdog below): negative-ack instead of staying silent so a
            # home that is still alive aborts rather than blocking on us.
            self._send_ack(write, ok=False)
            return
        granted = self.locks.try_acquire(write.tx, write.key, LockMode.EXCLUSIVE)
        if not granted and self.wound_local_readers:
            wounded = self._wound_local_holders(write)
            if wounded:
                granted = self.locks.try_acquire(write.tx, write.key, LockMode.EXCLUSIVE)
        if granted:
            self._buffered.setdefault(write.tx, {})[write.key] = write.value
            if write.home != self.site:
                self._write_homes[write.tx] = write.home
                fresh = write.tx not in self._write_seen
                self._write_seen[write.tx] = self.now
                if fresh:
                    self.engine.schedule(self.orphan_grace, self._check_orphan, write.tx)
        self._send_ack(write, ok=granted)

    def _check_orphan(self, tx_id: str) -> None:
        """Presumed-abort watchdog for a remote-homed buffered write.

        A partition can strand a home site where no new view ever forms at
        the write-holding sites (the membership coordinator is on the other
        side), leaving its buffered writes pinning exclusive locks forever.
        If the home has sent neither a write nor a commit request for
        ``orphan_grace``, no site has voted for the transaction, so no site
        can commit it: drop the buffer and free the locks.  A home that was
        merely slow gets a negative ack / no vote on its next message and
        aborts-and-retries.
        """
        last = self._write_seen.get(tx_id)
        if last is None or tx_id not in self._buffered:
            self._write_seen.pop(tx_id, None)
            return
        state = self._votes.get(tx_id)
        if state is not None and state.request_seen:
            # 2PC reached this site; the vote/decision path owns the state.
            self._write_seen.pop(tx_id, None)
            return
        due = last + self.orphan_grace
        if self.now < due - 1e-9:
            self.engine.schedule(due - self.now, self._check_orphan, tx_id)
            return
        self.trace.emit(self.now, self.name, "rbp.presume_abort", tx=tx_id)
        self._purge(tx_id)

    def _wound_local_holders(self, write: RbpWrite) -> bool:
        """Wound-wait flavour (ablation E10): instead of negative-acking the
        already-half-replicated remote writer, this site aborts its *own*
        younger update transactions whose locks are in the way — safe while
        they are still disseminating writes (we are their home and have not
        cast a 2PC vote for them, so no site can have committed them)."""
        wounded = False
        for holder in self.locks.conflicting_holders(write.tx, write.key, LockMode.EXCLUSIVE):
            victim = self.local.get(holder)
            if (
                victim is not None
                and not victim.read_only
                and victim.phase is TxPhase.EXECUTING
                and victim.priority > write.priority
            ):
                self.metrics.local_reader_preemptions += 1
                self.trace.emit(
                    self.now, self.name, "rbp.wound", victim=holder, by=write.tx
                )
                self._abort_everywhere(victim, AbortReason.READER_PREEMPTED)
                wounded = True
        return wounded

    def _send_ack(self, write: RbpWrite, ok: bool) -> None:
        ack = RbpWriteAck(write.tx, write.key, self.site, ok)
        if write.home == self.site:
            self._on_ack(ack)
        else:
            self.router.send(write.home, DIRECT_CHANNEL, ack, ack.kind)

    def _on_commit_request(self, request: RbpCommitRequest) -> None:
        if request.tx in self._finished:
            # Locally aborted already (an abort raced the request, or the
            # presumed-abort watchdog fired): vote no so the home learns to
            # abort instead of waiting for a vote that will never arrive.
            self.rbcast.broadcast(RbpVote(request.tx, self.site, False))
            return
        state = self._votes.setdefault(request.tx, _VoteState(request.home))
        state.request_seen = True
        state.home = request.home
        # We acknowledged every write (otherwise an abort would have
        # arrived), so we hold the locks and vote yes; a site that lost the
        # transaction's state (e.g. it crashed and recovered) votes no.
        yes = request.tx in self._buffered or request.home == self.site
        self.rbcast.broadcast(RbpVote(request.tx, self.site, yes))
        self._check_votes(request.tx)

    def _on_vote(self, vote: RbpVote) -> None:
        if vote.tx in self._finished:
            return
        state = self._votes.setdefault(vote.tx, _VoteState(home=-1))
        state.votes[vote.site] = vote.yes
        self._check_votes(vote.tx)

    def _check_votes(self, tx_id: str) -> None:
        state = self._votes.get(tx_id)
        if state is None or state.decided or not state.request_seen:
            return
        if not self.has_quorum:
            # A minority view must never decide: unanimity over a quorumless
            # member set can "commit" a transaction the majority side then
            # contradicts (and silently undoes at the healing state
            # transfer).  Our own transactions are aborted by the view
            # change; remote state waits for the home or the orphan watchdog.
            return
        members = set(self.view_members)
        if not members <= set(state.votes):
            return
        state.decided = True
        if all(state.votes[member] for member in members):
            self._commit_local(tx_id, state)
        else:
            tx = self.local.get(tx_id)
            if tx is not None and state.home == self.site:
                self._write_queue.pop(tx_id, None)
                self.abort_home(tx, AbortReason.VIEW_LOSS)
            self._purge(tx_id)

    def _commit_local(self, tx_id: str, state: _VoteState) -> None:
        writes = self._buffered.pop(tx_id, {})
        installed = self.install_writes(tx_id, writes)
        self.locks.release_all(tx_id)
        self._votes.pop(tx_id, None)
        self._write_homes.pop(tx_id, None)
        self._write_seen.pop(tx_id, None)
        if state.home == self.site:
            tx = self.local.get(tx_id)
            if tx is not None:
                self._write_queue.pop(tx_id, None)
                self.commit_home(tx, installed)
        self.trace.emit(self.now, self.name, "rbp.applied", tx=tx_id)

    def _purge(self, tx_id: str) -> None:
        """Abort cleanup at any site: locks, buffers, vote state."""
        self._finished.add(tx_id)
        self._buffered.pop(tx_id, None)
        self._votes.pop(tx_id, None)
        self._write_homes.pop(tx_id, None)
        self._write_seen.pop(tx_id, None)
        self.locks.release_all(tx_id)
        tx = self.local.get(tx_id)
        if tx is not None and not tx.terminal:
            # Abort broadcast raced our own bookkeeping (shouldn't happen:
            # only the home broadcasts aborts).  Finish it locally.
            self._write_queue.pop(tx_id, None)
            self.abort_home(tx, AbortReason.WRITE_CONFLICT)

    # -- direct (point-to-point) deliveries ----------------------------------------

    def _on_direct(self, src: int, payload: Any) -> None:
        if isinstance(payload, RbpWriteAck):
            self._on_ack(payload)
        else:
            raise RuntimeError(f"site {self.site}: unexpected direct payload {payload!r}")

    # -- crash / recovery ---------------------------------------------------------------

    def on_crash(self) -> None:
        super().on_crash()
        self._buffered.clear()
        self._votes.clear()
        self._write_round.clear()
        self._write_queue.clear()
        self._write_homes.clear()
        self._write_seen.clear()

    # -- view changes ----------------------------------------------------------------

    def on_view_change(self, members: list[int], has_quorum: bool) -> None:
        super().on_view_change(members, has_quorum)
        member_set = set(members)
        if not has_quorum:
            # Minority view: our in-flight updates can never be decided here
            # (see _check_votes) and submit() refuses new ones.  Abort them
            # now so clients get a final NO_QUORUM outcome instead of
            # waiting on a heal that may never come.
            for tx in [t for t in self.local.values() if not t.read_only]:
                if not tx.terminal:
                    self._abort_everywhere(tx, AbortReason.NO_QUORUM)
        # Write rounds: acks are now needed only from surviving members.
        for tx_id, rounds in list(self._write_round.items()):
            tx = self.local.get(tx_id)
            if tx is not None:
                for round_ in list(rounds.values()):
                    self._check_round(tx, round_)
        # Vote tallies: ignore departed voters.
        for tx_id, state in list(self._votes.items()):
            state.votes = {s: v for s, v in state.votes.items() if s in member_set}
            self._check_votes(tx_id)
        # Transactions homed at departed sites are presumed aborted: their
        # initiator can no longer drive 2PC to completion.
        for tx_id, state in list(self._votes.items()):
            if state.home not in member_set and state.home != -1:
                self._purge(tx_id)
        for tx_id in list(self._buffered):
            if tx_id in self._votes or tx_id in self.local:
                continue
            # Buffered writes with no vote state and no local owner belong
            # to transactions whose home may have died pre-2PC; drop them if
            # the home left the view.
            self._maybe_drop_orphan(tx_id, member_set)

    def _maybe_drop_orphan(self, tx_id: str, member_set: set[int]) -> None:
        """Drop a buffered write whose home left the view before 2PC began:
        this site never voted for it, so no view containing this site can
        have committed it."""
        home = self._write_homes.get(tx_id)
        if home is not None and home not in member_set:
            self.trace.emit(self.now, self.name, "rbp.drop_orphan", tx=tx_id)
            self._purge(tx_id)
